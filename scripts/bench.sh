#!/usr/bin/env bash
# Release benchmark driver. Performance numbers quoted anywhere in this repo
# must come from this script: it configures an optimized Release build
# (`build-release/`), regenerates every figure/ablation table in `results/`,
# and runs the google-benchmark micro suites with machine-readable output:
#
#   results/BENCH_selector.json  — bench_selector_scaling, merged with the
#       committed pre-optimization Release baseline
#       (results/BENCH_selector_baseline_pre_pr.json) and annotated with
#       per-benchmark CPU-time speedups so the DP-optimization claim stays
#       checkable from one file.
#   results/BENCH_campaign.json  — bench_campaign_throughput (end-to-end
#       campaigns/s per selector, plus the BM_CampaignPlanThreads
#       plan-thread scaling sweep at 100/1k/10k users), merged with the
#       committed pre-PR Release baseline
#       (results/BENCH_campaign_baseline_pre_pr.json) and annotated with
#       per-benchmark CPU-time speedups, same shape as BENCH_selector.json.
#
# Figure tables are deterministic (fixed seeds, thread-count invariant
# aggregation), so regenerating them from a Release binary must reproduce
# the checked-in text bit for bit; the micro-benchmark .txt captures are
# timing snapshots and will differ run to run.
#
# After regenerating BENCH_campaign.json, scripts/bench_gate.py compares the
# fresh capture against the committed HEAD version of the same file and
# fails the run when any gated campaign-throughput series lost more than 15%
# — a regression has to be acknowledged (--skip-gate), never committed
# silently.
#
# Usage: scripts/bench.sh [--skip-figures] [--skip-micro] [--skip-gate]
#                         [--min-time=<t>]
#   --min-time takes a google-benchmark duration in seconds as a plain
#   double, e.g. 0.05 (default: the library's 0.5) and only affects the
#   micro suites.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
BUILD=build-release

SKIP_FIGURES=0
SKIP_MICRO=0
SKIP_GATE=0
MIN_TIME=""
for arg in "$@"; do
  case "${arg}" in
    --skip-figures) SKIP_FIGURES=1 ;;
    --skip-micro) SKIP_MICRO=1 ;;
    --skip-gate) SKIP_GATE=1 ;;
    --min-time=*) MIN_TIME="${arg#--min-time=}" ;;
    *) echo "bench: unknown argument ${arg}" >&2; exit 2 ;;
  esac
done

MICRO_ARGS=()
if [[ -n "${MIN_TIME}" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=${MIN_TIME}")
fi

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j "${JOBS}"
mkdir -p results

# Paper figures, ablations and extensions: plain-text tables. Keep this list
# in sync with the mcs_add_figure() targets in bench/CMakeLists.txt.
FIGURES=(
  bench_ahp_tables
  bench_fig5_dp_vs_greedy
  bench_fig6_coverage
  bench_fig7_completeness
  bench_fig8_measurements
  bench_fig9_balance
  bench_ablation_factors
  bench_ablation_levels
  bench_ablation_radius
  bench_ablation_selector
  bench_ext_mobility
  bench_ext_reward_dynamics
  bench_ext_fairness
  bench_significance
  bench_ext_adaptive_budget
)

if [[ "${SKIP_FIGURES}" == "1" ]]; then
  echo "bench: skipping figure regeneration"
else
  for fig in "${FIGURES[@]}"; do
    echo "bench: ${fig}"
    "./${BUILD}/bench/${fig}" > "results/${fig}.txt"
  done
  # The fault-tolerance headline sweep is recorded in the labor-limited
  # regime (EXPERIMENTS.md): scarce workers, ample budget, baseline
  # abandon/loss churn; also dumps the ext_fault_*.csv series.
  echo "bench: bench_ext_fault_tolerance"
  ./${BUILD}/bench/bench_ext_fault_tolerance \
    --users=60 --budget=5000 --loss=0.1 --abandon=0.05 --reps=20 \
    --csv-dir=results > results/bench_ext_fault_tolerance.txt
fi

if [[ "${SKIP_MICRO}" == "1" ]]; then
  echo "bench: skipping micro benchmarks"
else
  SELECTOR_TMP="$(mktemp)"
  "./${BUILD}/bench/bench_selector_scaling" "${MICRO_ARGS[@]+"${MICRO_ARGS[@]}"}" \
    --benchmark_out="${SELECTOR_TMP}" --benchmark_out_format=json \
    | tee results/bench_selector_scaling.txt

  # Fold the committed pre-optimization baseline into BENCH_selector.json so
  # the speedup is auditable without digging through git history.
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${SELECTOR_TMP}" results/BENCH_selector_baseline_pre_pr.json \
      results/BENCH_selector.json <<'PY'
import json, os, sys

cur_path, base_path, out_path = sys.argv[1:4]
with open(cur_path) as f:
    cur = json.load(f)
merged = {"current": cur}
if os.path.exists(base_path):
    with open(base_path) as f:
        base = json.load(f)
    merged["baseline_pre_pr"] = base

    def cpu_times(run):
        return {b["name"]: b["cpu_time"] for b in run.get("benchmarks", [])
                if b.get("run_type", "iteration") == "iteration"}

    b_t, c_t = cpu_times(base), cpu_times(cur)
    merged["speedup_cpu_time_vs_baseline"] = {
        name: round(b_t[name] / c_t[name], 3)
        for name in c_t if name in b_t and c_t[name] > 0.0
    }
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY
  else
    cp "${SELECTOR_TMP}" results/BENCH_selector.json
  fi
  rm -f "${SELECTOR_TMP}"

  CAMPAIGN_TMP="$(mktemp)"
  "./${BUILD}/bench/bench_campaign_throughput" "${MICRO_ARGS[@]+"${MICRO_ARGS[@]}"}" \
    --benchmark_out="${CAMPAIGN_TMP}" --benchmark_out_format=json \
    | tee results/bench_campaign_throughput.txt

  # Same baseline fold as the selector suite: the pre-PR Release run rides
  # along inside BENCH_campaign.json with CPU-time speedups per benchmark.
  # The BM_CampaignMemo pairs are additionally distilled into a "plan_memo"
  # section: campaigns/s with the memo off vs on, the off->on speedup and
  # the memo hit rate, per user count. The BM_CampaignCommit pairs become a
  # "commit_phase" section: commit+prepass seconds for the buffered vs the
  # legacy commit path, plus the reduction against the committed HEAD
  # capture's BM_CampaignSharded shards=1 phase timers (the pre-PR release
  # numbers), so the commit-restructuring claim is auditable from one file.
  # The BM_CampaignReprice pairs become a "reprice_phase" section in the
  # same shape: reprice seconds for the serial vs the auto-threaded sweep
  # plus the reduction against the HEAD capture's shards=1 reprice timer.
  if command -v python3 >/dev/null 2>&1; then
    HEAD_CAMPAIGN="$(mktemp)"
    git show HEAD:results/BENCH_campaign.json > "${HEAD_CAMPAIGN}" \
      2>/dev/null || : > "${HEAD_CAMPAIGN}"
    python3 - "${CAMPAIGN_TMP}" results/BENCH_campaign_baseline_pre_pr.json \
      results/BENCH_campaign.json "${HEAD_CAMPAIGN}" <<'PY'
import json, os, re, sys

cur_path, base_path, out_path, head_path = sys.argv[1:5]
with open(cur_path) as f:
    cur = json.load(f)
merged = {"current": cur}
if os.path.exists(base_path):
    with open(base_path) as f:
        base = json.load(f)
    merged["baseline_pre_pr"] = base

    # Best repetition per name (repetition runs emit duplicates, with a
    # "/repeats:N" name suffix a single-run baseline lacks), matching the
    # bench_gate folding.
    def cpu_times(run):
        out = {}
        for b in run.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            t = b.get("cpu_time", 0.0)
            if t > 0.0:
                name = re.sub(r"/repeats:\d+$", "", b["name"])
                out[name] = min(out.get(name, t), t)
        return out

    b_t, c_t = cpu_times(base), cpu_times(cur)
    merged["speedup_cpu_time_vs_baseline"] = {
        name: round(b_t[name] / c_t[name], 3)
        for name in c_t if name in b_t
    }

memo = {}
for b in cur.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    parts = b["name"].split("/")
    if parts[0] != "BM_CampaignMemo" or len(parts) < 3:
        continue
    users, memo_on = parts[1], parts[2] == "1"
    entry = memo.setdefault(users, {})
    key = "memo_on" if memo_on else "memo_off"
    entry[key + "_campaigns_per_s"] = round(b.get("items_per_second", 0.0), 4)
    if memo_on:
        entry["hit_rate"] = round(b.get("hit_rate", 0.0), 4)
for entry in memo.values():
    off = entry.get("memo_off_campaigns_per_s")
    on = entry.get("memo_on_campaigns_per_s")
    if off and on:
        entry["speedup_campaigns_per_s"] = round(on / off, 3)
if memo:
    merged["plan_memo"] = memo

def commit_prepass_s(b):
    return b.get("phase_commit_s", 0.0) + b.get("phase_prepass_s", 0.0)

commit = {}
for b in cur.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    parts = b["name"].split("/")
    if parts[0] != "BM_CampaignCommit" or len(parts) < 3:
        continue
    users, legacy = parts[1], parts[2] == "1"
    key = "legacy" if legacy else "buffered"
    commit.setdefault(users, {})[key + "_commit_plus_prepass_s"] = round(
        commit_prepass_s(b), 4)

# Pre-PR phase timers: the committed HEAD capture's shards=1 sharded runs.
head_phase = {}
if os.path.getsize(head_path) > 0:
    with open(head_path) as f:
        head = json.load(f)
    head = head.get("current", head)
    for b in head.get("benchmarks", []):
        parts = b["name"].split("/")
        if parts[0] == "BM_CampaignSharded" and len(parts) >= 3 \
                and parts[2] == "1" and "phase_commit_s" in b:
            head_phase[parts[1]] = commit_prepass_s(b)

for users, entry in commit.items():
    buffered = entry.get("buffered_commit_plus_prepass_s")
    legacy = entry.get("legacy_commit_plus_prepass_s")
    if buffered and legacy:
        entry["reduction_vs_legacy"] = round(legacy / buffered, 3)
    if buffered and head_phase.get(users):
        entry["prev_release_commit_plus_prepass_s"] = round(
            head_phase[users], 4)
        entry["reduction_vs_prev_release"] = round(
            head_phase[users] / buffered, 3)
if commit:
    merged["commit_phase"] = commit

# Reprice A/B: best (min) phase_reprice_s per series across the
# single-iteration repetitions, serial (range(1)=0) vs auto-threaded.
reprice = {}
for b in cur.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    parts = b["name"].split("/")
    if parts[0] != "BM_CampaignReprice" or len(parts) < 3:
        continue
    users, key = parts[1], "threaded" if parts[2] == "1" else "serial"
    entry = reprice.setdefault(users, {})
    t = b.get("phase_reprice_s", 0.0)
    prev = entry.get(key + "_reprice_s")
    entry[key + "_reprice_s"] = round(min(prev, t) if prev else t, 4)

# Pre-PR reprice timers from the same HEAD shards=1 sharded runs.
head_reprice = {}
if os.path.getsize(head_path) > 0:
    for b in head.get("benchmarks", []):
        parts = b["name"].split("/")
        if parts[0] == "BM_CampaignSharded" and len(parts) >= 3 \
                and parts[2] == "1" and "phase_reprice_s" in b:
            head_reprice[parts[1]] = b["phase_reprice_s"]

for users, entry in reprice.items():
    serial = entry.get("serial_reprice_s")
    threaded = entry.get("threaded_reprice_s")
    if serial and threaded:
        entry["speedup_threaded_vs_serial"] = round(serial / threaded, 3)
    if serial and head_reprice.get(users):
        entry["prev_release_reprice_s"] = round(head_reprice[users], 4)
        entry["reduction_vs_prev_release"] = round(
            head_reprice[users] / serial, 3)
if reprice:
    merged["reprice_phase"] = reprice

with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY
    rm -f "${HEAD_CAMPAIGN}"
  else
    cp "${CAMPAIGN_TMP}" results/BENCH_campaign.json
  fi
  rm -f "${CAMPAIGN_TMP}"


  "./${BUILD}/bench/bench_incentive_micro" "${MICRO_ARGS[@]+"${MICRO_ARGS[@]}"}" \
    | tee results/bench_incentive_micro.txt
  "./${BUILD}/bench/bench_spatial_index" "${MICRO_ARGS[@]+"${MICRO_ARGS[@]}"}" \
    | tee results/bench_spatial_index.txt

  # Throughput regression gate: fresh numbers vs the committed HEAD
  # captures of the same files. Skipped per file when it has no committed
  # version yet (first bench day); skipped entirely without python3.
  if [[ "${SKIP_GATE}" == "1" ]]; then
    echo "bench: skipping regression gate"
  elif command -v python3 >/dev/null 2>&1; then
    GATE_BASE="$(mktemp)"
    if git show HEAD:results/BENCH_campaign.json > "${GATE_BASE}" 2>/dev/null; then
      python3 scripts/bench_gate.py results/BENCH_campaign.json "${GATE_BASE}"
    else
      echo "bench: no committed BENCH_campaign.json baseline; gate skipped"
    fi
    if git show HEAD:results/BENCH_selector.json > "${GATE_BASE}" 2>/dev/null; then
      python3 scripts/bench_gate.py results/BENCH_selector.json "${GATE_BASE}" \
        --series='^BM_(DpSelector|GreedySelector|BranchBound)'
    else
      echo "bench: no committed BENCH_selector.json baseline; gate skipped"
    fi
    rm -f "${GATE_BASE}"
  fi
fi

echo "bench: OK"
