#!/usr/bin/env bash
# Tier-1 verification:
#   1. the full build + test suite (ROADMAP.md's canonical command), then
#   2. the concurrency-sensitive suites — thread pool, parallel runner
#      determinism, simulator — rebuilt and rerun under ThreadSanitizer so
#      data races in the pool or the repetition merge path fail loudly.
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "tier1: skipping ThreadSanitizer stage"
  exit 0
fi

cmake -B build-tsan -S . -DMCS_TSAN=ON
cmake --build build-tsan -j "${JOBS}" --target test_common test_integration test_sim
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan --output-on-failure \
  -R 'ThreadPool|ParallelForEach|ParallelRunner|Determinism|Runner|Simulator'
echo "tier1: OK (full suite + TSan concurrency suites)"
