#!/usr/bin/env bash
# Tier-1 verification:
#   1. the full build + test suite (ROADMAP.md's canonical command), then
#   2. the concurrency-sensitive suites — thread pool, parallel runner
#      determinism, simulator — rebuilt and rerun under ThreadSanitizer so
#      data races in the pool or the repetition merge path fail loudly, then
#   3. the fault-injection and failure-recovery suites rebuilt and rerun
#      under ASan+UBSan (abandoned-tour prefix walks, runner retry paths and
#      event-trace bookkeeping are exactly where an off-by-one would hide),
#      then
#   4. a Release (-O3, NDEBUG) stage: the selector-equivalence suites rerun
#      at the optimization level performance numbers are quoted at (the DP
#      bound-prune and fused scan are exactly the code whose floating-point
#      behaviour could shift under optimization), plus a smoke run of the
#      micro benches so a broken bench binary fails tier-1, not bench day.
#
# The ASan stage also carries the durability net: the checkpoint envelope /
# writer / corruption-fuzz suites, the checkpoint-resume equivalence matrix
# and the crash harness (CheckpointCrash forks the test binary and _exit()s
# mid-write). --skip-crash excludes the fork-based crash tests on platforms
# where fork inside a sanitized test binary is awkward; everything else
# still runs.
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan] [--skip-release]
#                         [--skip-crash]
#   MCS_ASAN=0 in the environment also skips the ASan stage.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_RELEASE=0
SKIP_CRASH=0
for arg in "$@"; do
  case "${arg}" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-release) SKIP_RELEASE=1 ;;
    --skip-crash) SKIP_CRASH=1 ;;
    *) echo "tier1: unknown argument ${arg}" >&2; exit 2 ;;
  esac
done
CRASH_EXCLUDE=()
if [[ "${SKIP_CRASH}" == "1" ]]; then
  CRASH_EXCLUDE=(-E 'CheckpointCrash')
fi
if [[ "${MCS_ASAN:-1}" == "0" ]]; then
  SKIP_ASAN=1
fi

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${SKIP_TSAN}" == "1" ]]; then
  echo "tier1: skipping ThreadSanitizer stage"
else
  cmake -B build-tsan -S . -DMCS_TSAN=ON
  cmake --build build-tsan -j "${JOBS}" --target test_common test_integration test_sim
  # PlanEquivalence drives the parallel plan / serial commit path at thread
  # counts 2 and 8 — the only concurrent region inside a simulator — so it
  # must stay in the TSan net alongside the pool/runner suites.
  # PlanMemoEquivalence is the memo-equivalence stage: the memo's classify/
  # solve/publish phases share the table across the same plan workers, and
  # memoized campaigns must stay bit-identical (and race-free) under TSan.
  # ShardEquivalence drives the spatially sharded round loop (parallel
  # pre-pass + per-cell planning over the SoA stores) at shard counts 1-8
  # and auto — the widest concurrent surface in the simulator.
  # CommitEquivalence drives the buffered parallel commit (segment walk +
  # ordered merge + row-grouped delivery apply) against the legacy serial
  # loop at shard counts 0-8 and auto — every thread-local effect buffer
  # and its merge runs under TSan here.
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan --output-on-failure \
    -R 'ThreadPool|ParallelForEach|ParallelRunner|Determinism|Runner|Simulator|PlanEquivalence|PlanMemoEquivalence|RepriceEquivalence|ShardEquivalence|CommitEquivalence'
fi

if [[ "${SKIP_ASAN}" == "1" ]]; then
  echo "tier1: skipping ASan+UBSan stage"
else
  cmake -B build-asan -S . -DMCS_ASAN=ON
  cmake --build build-asan -j "${JOBS}" --target test_sim test_integration
  # Checkpoint* picks up the envelope/writer suites, the corruption fuzzers,
  # the resume-equivalence matrix, the RunnerCheckpoint recovery tests and
  # the fork-based CheckpointCrash kill-mid-write harness (unless
  # --skip-crash); decode and the directory-fallback walk are exactly the
  # code that must never read past a truncated buffer.
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R 'Fault|RunnerFailure|Simulator|EventLog|Checkpoint|SerializeWorld' \
    "${CRASH_EXCLUDE[@]}"
fi

if [[ "${SKIP_RELEASE}" == "1" ]]; then
  echo "tier1: skipping Release stage"
else
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "${JOBS}" \
    --target test_select test_sim test_incentive test_model \
    bench_selector_scaling bench_campaign_throughput bench_incentive_micro \
    bench_checkpoint
  # Selector equivalence plus the plan/memo/reprice/neighbor-cache
  # equivalence suites at the optimization level performance numbers are
  # quoted at (bit-identity claims must hold under -O3 as well). PlanMemo
  # covers both the unit proofs and the campaign-level memo equivalence;
  # BudgetTracker pins the compensated-sum overdraft bound under -O3.
  # CheckpointResume joins the -O3 net: bit-identical resume is a
  # floating-point identity claim just like the selector equivalences.
  # ShardEquivalence: sharded == legacy is likewise a floating-point
  # identity claim (the reach filter must drop exactly what the DP prune
  # drops under -O3's reassociation too). CommitEquivalence: the buffered
  # commit's merge replays payments and deliveries in the legacy order —
  # bit-identity that must survive -O3 exactly like the others.
  ctest --test-dir build-release --output-on-failure -j "${JOBS}" \
    -R 'DpEquivalence|PruneCandidatesInto|SolverEquivalence|DpSelector|PlanEquivalence|PlanMemo|RepriceEquivalence|OnDemandReprice|SteeredReprice|NeighborCache|BudgetTracker|CheckpointResume|CheckpointEnvelope|ShardEquivalence|CommitEquivalence'
  ./build-release/bench/bench_selector_scaling --benchmark_min_time=0.01 \
    --benchmark_filter='BM_DpSelector/14|BM_GreedySelector/14' >/dev/null
  # BM_CampaignCommit and BM_CampaignReprice join the smoke set: an A/B
  # bench that no longer builds or runs must fail tier-1, not bench day.
  # Only the 100k serial/buffered runs (trailing slash keeps the 1M configs
  # out — they are minutes of work and belong to bench day).
  ./build-release/bench/bench_campaign_throughput --benchmark_min_time=0.01 \
    --benchmark_filter='BM_Campaign/greedy/50|BM_CampaignPlanThreads/100/8|BM_CampaignCommit/100000/0/|BM_CampaignReprice/100000/1/' >/dev/null
  # Checkpoint write/load smoke: a broken durability bench (or a checkpoint
  # layer that stopped round-tripping under -O3) fails tier-1 here.
  ./build-release/bench/bench_checkpoint --benchmark_min_time=0.01 \
    --benchmark_filter='BM_CheckpointWrite|BM_CheckpointLoad' >/dev/null
  # The steady-state repricing path must stay allocation-free; the bench
  # counts operator-new calls per iteration and reports them as a counter.
  ALLOC_OUT="$(./build-release/bench/bench_incentive_micro --benchmark_min_time=0.01 \
    --benchmark_filter='BM_UpdateRewardsSteadyState/100')"
  echo "${ALLOC_OUT}" | tail -n 1
  if ! grep -Eq 'allocs_per_iter=0($|[^.0-9])' <<<"${ALLOC_OUT}"; then
    echo "tier1: BM_UpdateRewardsSteadyState allocates in steady state" >&2
    exit 1
  fi
  # The reprice fast path must do no O(n) work: with one dirty task and an
  # empty journal it reprices exactly 1 position (a fallback would read
  # ~#tasks) and touches the heap zero times per iteration.
  REPRICE_OUT="$(./build-release/bench/bench_incentive_micro --benchmark_min_time=0.01 \
    --benchmark_filter='BM_RepriceFastPath/100')"
  echo "${REPRICE_OUT}" | tail -n 1
  if ! grep -Eq 'repriced_per_iter=1($|[^.0-9])' <<<"${REPRICE_OUT}"; then
    echo "tier1: BM_RepriceFastPath repriced more than the dirty set" >&2
    exit 1
  fi
  if ! grep -Eq 'allocs_per_iter=0($|[^.0-9])' <<<"${REPRICE_OUT}"; then
    echo "tier1: BM_RepriceFastPath allocates in steady state" >&2
    exit 1
  fi
fi

echo "tier1: OK"
