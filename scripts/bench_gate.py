#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated google-benchmark JSON capture against the
committed baseline of the same file and fails (exit 1) when any pinned
series regresses by more than the threshold. Wired into scripts/bench.sh so
a bench-day regeneration that silently lost throughput fails loudly instead
of being committed as the new normal.

Usage:
  bench_gate.py FRESH BASELINE [--threshold=0.15] [--series=REGEX]

FRESH and BASELINE are either raw google-benchmark JSON files or the merged
results/BENCH_*.json shape ({"current": <benchmark json>, ...}); BASELINE is
typically materialized with `git show HEAD:results/BENCH_campaign.json`.

For each benchmark name matched by --series and present in both captures,
the gate compares `items_per_second` when the benchmark reports it (higher
is better) and `cpu_time` otherwise (lower is better). The default series
covers the campaign-throughput families whose numbers are quoted in
EXPERIMENTS.md; single-iteration large-world runs (BM_CampaignSharded) are
excluded by default because one sample has no noise floor to gate against.
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    """Name -> benchmark dict, for raw or merged ("current") captures."""
    with open(path) as f:
        doc = json.load(f)
    if "current" in doc and isinstance(doc["current"], dict):
        doc = doc["current"]
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument(
        "--series",
        default=r"^BM_Campaign(/|PlanThreads/|Memo/|Threaded)",
        help="regex of benchmark names to gate (default: the campaign "
             "throughput families)")
    args = ap.parse_args()

    fresh = load_benchmarks(args.fresh)
    base = load_benchmarks(args.baseline)
    series = re.compile(args.series)

    checked = 0
    failures = []
    for name, fb in sorted(fresh.items()):
        if not series.search(name) or name not in base:
            continue
        bb = base[name]
        if "items_per_second" in fb and "items_per_second" in bb:
            old, new = bb["items_per_second"], fb["items_per_second"]
            if old <= 0.0:
                continue
            checked += 1
            change = (new - old) / old  # negative = slower
            label = "items/s"
        else:
            old, new = bb.get("cpu_time", 0.0), fb.get("cpu_time", 0.0)
            if old <= 0.0 or new <= 0.0:
                continue
            checked += 1
            change = (old - new) / old  # negative = slower
            label = "cpu_time"
        if change < -args.threshold:
            failures.append(
                f"  {name}: {label} {old:.4g} -> {new:.4g} "
                f"({change * 100.0:+.1f}%)")

    if checked == 0:
        print("bench_gate: no overlapping gated series; nothing to check")
        return 0
    if failures:
        print(f"bench_gate: {len(failures)} series regressed more than "
              f"{args.threshold * 100.0:.0f}% vs baseline:")
        print("\n".join(failures))
        return 1
    print(f"bench_gate: OK ({checked} series within "
          f"{args.threshold * 100.0:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
