#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated google-benchmark JSON capture against the
committed baseline of the same file and fails (exit 1) when any pinned
series regresses by more than the threshold. Wired into scripts/bench.sh so
a bench-day regeneration that silently lost throughput fails loudly instead
of being committed as the new normal.

Usage:
  bench_gate.py FRESH BASELINE [--threshold=0.15] [--series=REGEX]

FRESH and BASELINE are either raw google-benchmark JSON files or the merged
results/BENCH_*.json shape ({"current": <benchmark json>, ...}); BASELINE is
typically materialized with `git show HEAD:results/BENCH_campaign.json`.

When a capture was taken with --benchmark_repetitions=N, every repetition
appears as its own "iteration" entry under the same name; the gate keeps
the best repetition per name (min cpu_time / max items_per_second), which
is the standard scheduling-noise filter — the best-of-N of a healthy build
is stable where the mean is not.

For each benchmark name matched by --series and present in both captures,
the gate compares `items_per_second` when the benchmark reports it (higher
is better) and `cpu_time` otherwise (lower is better). The default series
covers the campaign-throughput families whose numbers are quoted in
EXPERIMENTS.md; single-iteration large-world runs (BM_CampaignSharded,
BM_CampaignCommit, the 1M BM_CampaignReprice pair) are excluded by default
because one sample has no noise floor to gate against. The 100k
BM_CampaignReprice pair runs 3 repetitions, so it is gated (best-of-3
campaigns/s).
"""

import argparse
import json
import re
import sys


def better_of(a, b):
    """The better of two same-name benchmark entries: max items_per_second
    when both report it, else min cpu_time."""
    if "items_per_second" in a and "items_per_second" in b:
        return a if a["items_per_second"] >= b["items_per_second"] else b
    return a if a.get("cpu_time", 0.0) <= b.get("cpu_time", 0.0) else b


def normalize_name(name):
    """Strip the "/repeats:N" suffix repetition runs append, so a
    repetitions capture stays comparable with a single-run baseline (and
    vice versa)."""
    return re.sub(r"/repeats:\d+$", "", name)


def load_benchmarks(path):
    """Name -> best benchmark entry, for raw or merged ("current") captures.

    Repetition runs emit one "iteration" entry per repetition under the same
    name (plus aggregate entries, which are skipped); duplicates keep the
    best repetition instead of whichever happened to come last. Names are
    normalized via normalize_name.
    """
    with open(path) as f:
        doc = json.load(f)
    if "current" in doc and isinstance(doc["current"], dict):
        doc = doc["current"]
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = normalize_name(b["name"])
        out[name] = better_of(out[name], b) if name in out else b
    return out


def compare(fresh, base, threshold, series_regex):
    """Gate the overlapping series; returns (checked, failure_lines)."""
    series = re.compile(series_regex)
    checked = 0
    failures = []
    for name, fb in sorted(fresh.items()):
        if not series.search(name) or name not in base:
            continue
        bb = base[name]
        if "items_per_second" in fb and "items_per_second" in bb:
            old, new = bb["items_per_second"], fb["items_per_second"]
            if old <= 0.0:
                continue
            checked += 1
            change = (new - old) / old  # negative = slower
            label = "items/s"
        else:
            old, new = bb.get("cpu_time", 0.0), fb.get("cpu_time", 0.0)
            if old <= 0.0 or new <= 0.0:
                continue
            checked += 1
            change = (old - new) / old  # negative = slower
            label = "cpu_time"
        if change < -threshold:
            failures.append(
                f"  {name}: {label} {old:.4g} -> {new:.4g} "
                f"({change * 100.0:+.1f}%)")
    return checked, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument(
        "--series",
        default=r"^BM_Campaign(/|PlanThreads/|Memo/|Threaded|Reprice/100000/)",
        help="regex of benchmark names to gate (default: the campaign "
             "throughput families)")
    args = ap.parse_args()

    fresh = load_benchmarks(args.fresh)
    base = load_benchmarks(args.baseline)
    checked, failures = compare(fresh, base, args.threshold, args.series)

    if checked == 0:
        print("bench_gate: no overlapping gated series; nothing to check")
        return 0
    if failures:
        print(f"bench_gate: {len(failures)} series regressed more than "
              f"{args.threshold * 100.0:.0f}% vs baseline:")
        print("\n".join(failures))
        return 1
    print(f"bench_gate: OK ({checked} series within "
          f"{args.threshold * 100.0:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
