#include "sim/commit.h"

#include <cstddef>

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::sim {

void merge_commit_segments(const std::vector<CommitSegment>& segments,
                           Round k, const model::TaskStore& ts,
                           incentive::BudgetTracker& budget, EventLog& events,
                           RoundMetrics& rm) {
  for (const CommitSegment& seg : segments) {
    rm.dropped_users += seg.dropped;
    rm.abandoned_tours += seg.abandoned;
    rm.lost_measurements += seg.lost;
    rm.corrupted_measurements += seg.corrupted;
    rm.active_users += seg.active;
    for (const CommitLeg& leg : seg.legs) {
      const TaskId id = ts.id[leg.task_row];
      if (leg.accepted == 0) {
        // Lost upload: walked but never delivered. wasted_travel is a
        // running double sum, so the legs must be added one at a time in
        // visit order — a per-segment partial would round differently.
        rm.wasted_travel += leg.leg;
        events.record({k, leg.user, id, 0.0, leg.leg, /*accepted=*/false});
        continue;
      }
      budget.pay(leg.reward);
      events.record({k, leg.user, id, leg.reward, leg.leg, /*accepted=*/true,
                     leg.corrupted != 0});
    }
  }
}

void apply_commit_deliveries(const std::vector<CommitSegment>& segments,
                             Round k, model::TaskStore& ts,
                             CommitScratch& scratch, ThreadPool* pool,
                             int workers) {
  // Merge the per-segment dirty journals into the round's touched-row set
  // and flatten it to an ascending row list (for_each walks ascending).
  scratch.dirty.clear();
  for (const CommitSegment& seg : segments) scratch.dirty |= seg.dirty_rows;
  scratch.dirty_row_list.clear();
  scratch.dirty.for_each([&scratch](std::int64_t row) {
    scratch.dirty_row_list.push_back(static_cast<std::uint32_t>(row));
  });
  if (scratch.dirty_row_list.empty()) return;

  // Counting sort by task row, stable in leg order: segments are walked in
  // order and legs within a segment are in visit order, so each row's
  // deliveries land in exactly the order the serial commit appended them.
  if (scratch.task_count.size() < ts.size()) {
    scratch.task_count.resize(ts.size(), 0);  // kept all-zero between rounds
  }
  std::size_t total = 0;
  for (const CommitSegment& seg : segments) {
    for (const CommitLeg& leg : seg.legs) {
      if (leg.accepted == 0) continue;
      ++scratch.task_count[leg.task_row];
      ++total;
    }
  }
  const std::size_t n_rows = scratch.dirty_row_list.size();
  scratch.row_start.resize(n_rows + 1);
  std::uint32_t off = 0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::uint32_t row = scratch.dirty_row_list[i];
    scratch.row_start[i] = off;
    const std::uint32_t c = scratch.task_count[row];
    scratch.task_count[row] = off;  // becomes the scatter cursor
    off += c;
  }
  scratch.row_start[n_rows] = off;
  MCS_ASSERT(off == total, "commit scatter offsets out of step");
  scratch.ordered.resize(total);
  for (const CommitSegment& seg : segments) {
    for (const CommitLeg& leg : seg.legs) {
      if (leg.accepted == 0) continue;
      scratch.ordered[scratch.task_count[leg.task_row]++] = {leg.user,
                                                             leg.reward};
    }
  }
  for (const std::uint32_t row : scratch.dirty_row_list) {
    scratch.task_count[row] = 0;  // restore the all-zero invariant
  }

  // Row-grouped apply. Task::add_measurement's per-call invariant checks
  // (valid user, not expired, not already contributed) are preserved as
  // per-row asserts: expiry once per row, double-delivery via the
  // contributor insert's newly-set result.
  const auto apply_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t row = scratch.dirty_row_list[i];
      MCS_ASSERT(k <= ts.deadline[row],
                 "cannot add a measurement to an expired task");
      std::vector<model::Measurement>& ms = ts.measurements[row];
      ChunkedBitset& contributors = ts.contributors[row];
      const std::uint32_t b = scratch.row_start[i];
      const std::uint32_t e = scratch.row_start[i + 1];
      ms.reserve(ms.size() + (e - b));
      for (std::uint32_t j = b; j < e; ++j) {
        const CommitScratch::Delivery& d = scratch.ordered[j];
        MCS_ASSERT(d.user >= 0, "measurement needs a valid user");
        ms.push_back({d.user, k, d.reward});
        const bool fresh = contributors.set(d.user);
        MCS_ASSERT(fresh, "user already contributed to this task");
      }
    }
  };

  if (pool == nullptr || workers <= 1 || n_rows < 2) {
    apply_rows(0, n_rows);
    return;
  }
  // Contiguous row ranges balanced by delivery count (any partition writes
  // the same state; balance only affects wall clock).
  const std::size_t nw = static_cast<std::size_t>(workers);
  std::size_t lo = 0;
  for (std::size_t w = 0; w < nw && lo < n_rows; ++w) {
    const std::uint32_t target = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(w + 1) * total) / nw);
    std::size_t hi = (w + 1 == nw) ? n_rows : lo;
    while (hi < n_rows && scratch.row_start[hi] < target) ++hi;
    if (lo < hi) {
      pool->submit([&apply_rows, lo, hi] { apply_rows(lo, hi); });
    }
    lo = hi;
  }
  pool->wait_idle();
}

}  // namespace mcs::sim
