// Deterministic fault injection for crowdsensing campaigns.
//
// The paper's evaluation assumes perfectly reliable participants: every
// selected user completes its tour and every measurement uploads. Real
// fleets are dominated by churn — workers go offline for a round, abandon
// tours halfway, uploads vanish on flaky links, readings arrive corrupted,
// and the platform itself occasionally glitches a task out of a round's
// published set. FaultPlan describes the rates; FaultInjector turns them
// into concrete draws.
//
// Every draw is a pure hash of (plan seed, campaign seed, fault kind,
// entity ids) expanded through SplitMix64 — not a shared sequential stream.
// Two consequences the rest of the system relies on:
//   * campaigns stay bit-reproducible at any experiment thread count, and
//   * a fault drawn for one entity never shifts another entity's draws, so
//     raising one rate perturbs only the events it governs.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace mcs::sim {

/// Fault rates for one campaign. All probabilities in [0, 1]; the default
/// plan (all rates zero) injects nothing and leaves every campaign
/// bit-identical to a fault-free run, whatever `seed` is.
struct FaultPlan {
  double dropout_prob = 0.0;      // P[worker offline for a whole round]
  double abandon_prob = 0.0;      // P[tour abandoned after a random prefix]
  double upload_loss_prob = 0.0;  // P[one delivered measurement is lost]
  double corruption_prob = 0.0;   // P[an accepted reading is corrupted]
  double corruption_noise = 3.0;  // extra noise stddev on corrupted readings
  double withdraw_prob = 0.0;     // P[open task glitched out of one round]
  // Stream id mixed with the campaign seed: two plans with equal rates but
  // different seeds fault different (user, round) pairs.
  std::uint64_t seed = 0;

  /// True when any rate is positive (the injector has work to do).
  bool any() const;

  /// Throws mcs::Error unless every probability is in [0, 1] and the
  /// corruption noise is non-negative.
  void validate() const;
};

/// Stateless fault oracle for one campaign. Every query is a pure function
/// of (plan, campaign_seed, arguments): callers may ask in any order, any
/// number of times, from any thread, and always get the same answer.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t campaign_seed);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.any(); }

  /// The campaign seed the injector was built with. Together with plan()
  /// this is the injector's *entire* state — every draw is a pure hash, so a
  /// checkpoint records (plan, campaign_seed) and reconstruction replays
  /// identically with no stream position to save.
  std::uint64_t campaign_seed() const { return seed_; }

  /// Worker `user` is offline for the whole of round `k` (no session, no
  /// selection, no travel).
  bool drop_user(UserId user, Round k) const;

  /// Platform glitch: `task` is withdrawn from round `k`'s published set
  /// (not selectable, not deliverable this round; back next round).
  bool withdraw_task(TaskId task, Round k) const;

  /// Legs of the planned tour the user actually walks: `planned` when the
  /// tour is not abandoned, otherwise uniform in [0, planned - 1] — the
  /// user gives up before some task and goes home.
  int legs_completed(UserId user, Round k, int planned) const;

  /// The measurement of `task` by `user` in round `k` is lost in upload:
  /// the leg was walked but the platform receives nothing.
  bool lose_upload(UserId user, TaskId task, Round k) const;

  /// The accepted measurement is corrupted (the platform cannot tell; the
  /// event trace records it for ground-truth analyses).
  bool corrupt_upload(UserId user, TaskId task, Round k) const;

  /// Corruption model for the sensing substrate: the reading plus fresh
  /// N(0, corruption_noise) noise drawn from the (user, task, round) cell.
  double corrupt_reading(double reading, UserId user, TaskId task,
                         Round k) const;

 private:
  /// Uniform [0, 1) draw for one (kind, a, b) cell.
  double unit_draw(std::uint64_t kind, std::uint64_t a, std::uint64_t b) const;

  FaultPlan plan_;
  std::uint64_t seed_;
};

}  // namespace mcs::sim
