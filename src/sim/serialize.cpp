#include "sim/serialize.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mcs::sim {

Json scenario_to_json(const ScenarioParams& p) {
  Json::Object o;
  o["area_side"] = Json(p.area_side);
  o["num_tasks"] = Json(p.num_tasks);
  o["num_users"] = Json(p.num_users);
  o["required_measurements"] = Json(p.required_measurements);
  o["required_spread"] = Json(p.required_spread);
  o["deadline_min"] = Json(p.deadline_min);
  o["deadline_max"] = Json(p.deadline_max);
  o["speed_mps"] = Json(p.speed_mps);
  o["cost_per_meter"] = Json(p.cost_per_meter);
  o["user_budget_min_s"] = Json(p.user_budget_min_s);
  o["user_budget_max_s"] = Json(p.user_budget_max_s);
  o["neighbor_radius"] = Json(p.neighbor_radius);
  return Json(std::move(o));
}

ScenarioParams scenario_from_json(const Json& json) {
  const Json::Object& o = json.as_object();
  ScenarioParams p;
  for (const auto& [key, value] : o) {
    if (key == "area_side") p.area_side = value.as_number();
    else if (key == "num_tasks") p.num_tasks = static_cast<int>(value.as_int());
    else if (key == "num_users") p.num_users = static_cast<int>(value.as_int());
    else if (key == "required_measurements")
      p.required_measurements = static_cast<int>(value.as_int());
    else if (key == "required_spread")
      p.required_spread = static_cast<int>(value.as_int());
    else if (key == "deadline_min")
      p.deadline_min = static_cast<Round>(value.as_int());
    else if (key == "deadline_max")
      p.deadline_max = static_cast<Round>(value.as_int());
    else if (key == "speed_mps") p.speed_mps = value.as_number();
    else if (key == "cost_per_meter") p.cost_per_meter = value.as_number();
    else if (key == "user_budget_min_s")
      p.user_budget_min_s = value.as_number();
    else if (key == "user_budget_max_s")
      p.user_budget_max_s = value.as_number();
    else if (key == "neighbor_radius") p.neighbor_radius = value.as_number();
    else
      throw Error("unknown scenario key: " + key);
  }
  p.validate();
  return p;
}

ScenarioParams load_scenario(const std::string& path) {
  std::ifstream in(path);
  MCS_CHECK(in.good(), "cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scenario_from_json(Json::parse(buffer.str()));
}

namespace {

Json point_to_json(geo::Point p) {
  Json::Object o;
  o["x"] = Json(p.x);
  o["y"] = Json(p.y);
  return Json(std::move(o));
}

}  // namespace

Json world_to_json(const model::World& world) {
  Json::Object o;
  o["area_side"] = Json(world.area().width());
  o["neighbor_radius"] = Json(world.neighbor_radius());
  Json::Object travel;
  travel["speed_mps"] = Json(world.travel().speed_mps);
  travel["cost_per_meter"] = Json(world.travel().cost_per_meter);
  o["travel"] = Json(std::move(travel));

  Json tasks = Json::array();
  for (const model::Task& t : world.tasks()) {
    Json::Object jt;
    jt["id"] = Json(t.id());
    jt["location"] = point_to_json(t.location());
    jt["deadline"] = Json(t.deadline());
    jt["required"] = Json(t.required());
    jt["received"] = Json(t.received());
    jt["completed"] = Json(t.completed());
    jt["total_paid"] = Json(t.total_paid());
    Json contributors = Json::array();
    for (const auto& m : t.measurements()) {
      Json::Object jm;
      jm["user"] = Json(m.user);
      jm["round"] = Json(m.round);
      jm["reward"] = Json(m.reward_paid);
      contributors.push_back(Json(std::move(jm)));
    }
    jt["measurements"] = std::move(contributors);
    tasks.push_back(Json(std::move(jt)));
  }
  o["tasks"] = std::move(tasks);

  Json users = Json::array();
  for (const model::User& u : world.users()) {
    Json::Object ju;
    ju["id"] = Json(u.id());
    ju["home"] = point_to_json(u.home());
    ju["time_budget_s"] = Json(u.time_budget());
    ju["tasks_contributed"] = Json(static_cast<long long>(u.tasks_contributed()));
    ju["total_reward"] = Json(u.total_reward());
    ju["total_cost"] = Json(u.total_cost());
    users.push_back(Json(std::move(ju)));
  }
  o["users"] = std::move(users);
  return Json(std::move(o));
}

Json campaign_to_json(const CampaignMetrics& m) {
  Json::Object o;
  o["coverage_pct"] = Json(m.coverage_pct);
  o["completeness_pct"] = Json(m.completeness_pct);
  o["tasks_completed_pct"] = Json(m.tasks_completed_pct);
  o["avg_measurements"] = Json(m.avg_measurements);
  o["measurement_variance"] = Json(m.measurement_variance);
  o["total_paid"] = Json(m.total_paid);
  o["total_measurements"] = Json(m.total_measurements);
  o["avg_reward_per_measurement"] = Json(m.avg_reward_per_measurement);
  o["budget_overdraft"] = Json(m.budget_overdraft);
  o["reward_gini"] = Json(m.reward_gini);
  o["reward_jain"] = Json(m.reward_jain);
  o["active_user_fraction"] = Json(m.active_user_fraction);
  Json counts = Json::array();
  for (const int c : m.per_task_received) counts.push_back(Json(c));
  o["per_task_received"] = std::move(counts);
  return Json(std::move(o));
}

Json round_to_json(const RoundMetrics& m) {
  Json::Object o;
  o["round"] = Json(m.round);
  o["new_measurements"] = Json(m.new_measurements);
  o["total_measurements"] = Json(m.total_measurements);
  o["coverage_pct"] = Json(m.coverage_pct);
  o["completeness_pct"] = Json(m.completeness_pct);
  o["payout"] = Json(m.payout);
  o["active_users"] = Json(m.active_users);
  o["mean_user_profit"] = Json(m.mean_user_profit);
  o["mean_open_reward"] = Json(m.mean_open_reward);
  o["open_tasks"] = Json(m.open_tasks);
  o["dropped_users"] = Json(m.dropped_users);
  o["abandoned_tours"] = Json(m.abandoned_tours);
  o["lost_measurements"] = Json(m.lost_measurements);
  o["corrupted_measurements"] = Json(m.corrupted_measurements);
  o["withdrawn_tasks"] = Json(m.withdrawn_tasks);
  o["wasted_travel"] = Json(m.wasted_travel);
  return Json(std::move(o));
}

Json rounds_to_json(const std::vector<RoundMetrics>& history) {
  Json out = Json::array();
  for (const RoundMetrics& m : history) out.push_back(round_to_json(m));
  return out;
}

Json events_to_json(const EventLog& log) {
  Json out = Json::array();
  for (const SensingEvent& e : log.events()) {
    Json::Object o;
    o["round"] = Json(e.round);
    o["user"] = Json(e.user);
    o["task"] = Json(e.task);
    o["reward"] = Json(e.reward);
    o["leg_distance"] = Json(e.leg_distance);
    o["accepted"] = Json(e.accepted);
    o["corrupted"] = Json(e.corrupted);
    out.push_back(Json(std::move(o)));
  }
  return out;
}

}  // namespace mcs::sim
