#include "sim/serialize.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mcs::sim {

Json scenario_to_json(const ScenarioParams& p) {
  Json::Object o;
  o["area_side"] = Json(p.area_side);
  o["num_tasks"] = Json(p.num_tasks);
  o["num_users"] = Json(p.num_users);
  o["required_measurements"] = Json(p.required_measurements);
  o["required_spread"] = Json(p.required_spread);
  o["deadline_min"] = Json(p.deadline_min);
  o["deadline_max"] = Json(p.deadline_max);
  o["speed_mps"] = Json(p.speed_mps);
  o["cost_per_meter"] = Json(p.cost_per_meter);
  o["user_budget_min_s"] = Json(p.user_budget_min_s);
  o["user_budget_max_s"] = Json(p.user_budget_max_s);
  o["user_budget_quantum_s"] = Json(p.user_budget_quantum_s);
  o["home_sites"] = Json(p.home_sites);
  o["neighbor_radius"] = Json(p.neighbor_radius);
  return Json(std::move(o));
}

ScenarioParams scenario_from_json(const Json& json) {
  const Json::Object& o = json.as_object();
  ScenarioParams p;
  for (const auto& [key, value] : o) {
    if (key == "area_side") p.area_side = value.as_number();
    else if (key == "num_tasks") p.num_tasks = static_cast<int>(value.as_int());
    else if (key == "num_users") p.num_users = static_cast<int>(value.as_int());
    else if (key == "required_measurements")
      p.required_measurements = static_cast<int>(value.as_int());
    else if (key == "required_spread")
      p.required_spread = static_cast<int>(value.as_int());
    else if (key == "deadline_min")
      p.deadline_min = static_cast<Round>(value.as_int());
    else if (key == "deadline_max")
      p.deadline_max = static_cast<Round>(value.as_int());
    else if (key == "speed_mps") p.speed_mps = value.as_number();
    else if (key == "cost_per_meter") p.cost_per_meter = value.as_number();
    else if (key == "user_budget_min_s")
      p.user_budget_min_s = value.as_number();
    else if (key == "user_budget_max_s")
      p.user_budget_max_s = value.as_number();
    else if (key == "user_budget_quantum_s")
      p.user_budget_quantum_s = value.as_number();
    else if (key == "home_sites")
      p.home_sites = static_cast<int>(value.as_int());
    else if (key == "neighbor_radius") p.neighbor_radius = value.as_number();
    else
      throw Error("unknown scenario key: " + key);
  }
  p.validate();
  return p;
}

ScenarioParams load_scenario(const std::string& path) {
  errno = 0;
  std::ifstream in(path);
  if (!in.good()) {
    // ifstream swallows the reason; errno still has it on POSIX.
    const int err = errno;
    std::string detail = err != 0 ? std::strerror(err) : "stream not readable";
    throw Error("cannot open scenario file '" + path + "': " + detail);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scenario_from_json(Json::parse(buffer.str()));
}

namespace {

Json point_to_json(geo::Point p) {
  Json::Object o;
  o["x"] = Json(p.x);
  o["y"] = Json(p.y);
  return Json(std::move(o));
}

geo::Point point_from_json(const Json& j) {
  return geo::Point{j.at("x").as_number(), j.at("y").as_number()};
}

}  // namespace

Json world_to_json(const model::World& world) {
  Json::Object o;
  // area_side (the square width) predates the full corner export and is
  // kept for downstream plotting scripts; area_lo/area_hi carry the exact
  // box so non-square/offset areas round-trip too.
  o["area_side"] = Json(world.area().width());
  o["area_lo"] = point_to_json(world.area().lo);
  o["area_hi"] = point_to_json(world.area().hi);
  o["neighbor_radius"] = Json(world.neighbor_radius());
  Json::Object travel;
  travel["speed_mps"] = Json(world.travel().speed_mps);
  travel["cost_per_meter"] = Json(world.travel().cost_per_meter);
  o["travel"] = Json(std::move(travel));

  Json tasks = Json::array();
  for (const model::Task& t : world.tasks()) {
    Json::Object jt;
    jt["id"] = Json(t.id());
    jt["location"] = point_to_json(t.location());
    jt["deadline"] = Json(t.deadline());
    jt["required"] = Json(t.required());
    jt["received"] = Json(t.received());
    jt["completed"] = Json(t.completed());
    jt["total_paid"] = Json(t.total_paid());
    Json contributors = Json::array();
    for (const auto& m : t.measurements()) {
      Json::Object jm;
      jm["user"] = Json(m.user);
      jm["round"] = Json(m.round);
      jm["reward"] = Json(m.reward_paid);
      contributors.push_back(Json(std::move(jm)));
    }
    jt["measurements"] = std::move(contributors);
    tasks.push_back(Json(std::move(jt)));
  }
  o["tasks"] = std::move(tasks);

  Json users = Json::array();
  for (const model::User& u : world.users()) {
    Json::Object ju;
    ju["id"] = Json(u.id());
    ju["home"] = point_to_json(u.home());
    ju["location"] = point_to_json(u.location());
    ju["time_budget_s"] = Json(u.time_budget());
    ju["tasks_contributed"] = Json(static_cast<long long>(u.tasks_contributed()));
    ju["total_reward"] = Json(u.total_reward());
    ju["total_cost"] = Json(u.total_cost());
    users.push_back(Json(std::move(ju)));
  }
  o["users"] = std::move(users);
  return Json(std::move(o));
}

model::World world_from_json(const Json& json) {
  geo::BoundingBox area;
  if (json.has("area_lo") && json.has("area_hi")) {
    area = geo::BoundingBox(point_from_json(json.at("area_lo")),
                            point_from_json(json.at("area_hi")));
  } else {
    // Pre-durability snapshots recorded only the square side.
    area = geo::BoundingBox::square(json.at("area_side").as_number());
  }
  const Json& jtravel = json.at("travel");
  geo::TravelModel travel;
  travel.speed_mps = jtravel.at("speed_mps").as_number();
  travel.cost_per_meter = jtravel.at("cost_per_meter").as_number();
  model::World world(area, travel, json.at("neighbor_radius").as_number());

  // Tasks are rebuilt standalone and pushed through the mutable accessor —
  // add_task would renumber them densely, and snapshots may carry sparse
  // ids (externally keyed deployments; see the PR 4-5 regressions).
  for (const Json& jt : json.at("tasks").as_array()) {
    model::Task t(static_cast<TaskId>(jt.at("id").as_int()),
                  point_from_json(jt.at("location")),
                  static_cast<Round>(jt.at("deadline").as_int()),
                  static_cast<int>(jt.at("required").as_int()));
    for (const Json& jm : jt.at("measurements").as_array()) {
      t.add_measurement(static_cast<UserId>(jm.at("user").as_int()),
                        static_cast<Round>(jm.at("round").as_int()),
                        jm.at("reward").as_number());
    }
    // The replay recomputed every derived count; the snapshot carries its
    // own copies, so disagreement means the file lies about itself.
    MCS_CHECK(t.received() == static_cast<int>(jt.at("received").as_int()),
              "world snapshot: task received count does not match its "
              "measurement list");
    MCS_CHECK(t.completed() == jt.at("completed").as_bool(),
              "world snapshot: task completed flag does not match its "
              "measurement list");
    MCS_CHECK(t.total_paid() == jt.at("total_paid").as_number(),
              "world snapshot: task total_paid does not match its "
              "measurement list");
    world.tasks().push_back(std::move(t));
  }

  for (const Json& ju : json.at("users").as_array()) {
    model::User u(static_cast<UserId>(ju.at("id").as_int()),
                  point_from_json(ju.at("home")),
                  ju.at("time_budget_s").as_number());
    if (ju.has("location")) u.set_location(point_from_json(ju.at("location")));
    // One shot restores the accumulated doubles verbatim (0 + x == x).
    u.add_earnings(ju.at("total_reward").as_number(),
                   ju.at("total_cost").as_number());
    world.users().push_back(std::move(u));
  }

  // Users' contributed sets mirror the task measurement lists (the
  // simulator calls mark_contributed in lockstep with add_measurement);
  // rebuild them from the same source of truth. user() throws on a
  // measurement referencing an unknown user id.
  for (const model::Task& t : world.tasks()) {
    for (const model::Measurement& m : t.measurements()) {
      world.user(m.user).mark_contributed(t.id());
    }
  }
  for (const Json& ju : json.at("users").as_array()) {
    const model::User& u =
        world.user(static_cast<UserId>(ju.at("id").as_int()));
    MCS_CHECK(static_cast<long long>(u.tasks_contributed()) ==
                  ju.at("tasks_contributed").as_int(),
              "world snapshot: user contributed count does not match the "
              "task measurement lists");
  }
  return world;
}

Json campaign_to_json(const CampaignMetrics& m) {
  Json::Object o;
  o["coverage_pct"] = Json(m.coverage_pct);
  o["completeness_pct"] = Json(m.completeness_pct);
  o["tasks_completed_pct"] = Json(m.tasks_completed_pct);
  o["avg_measurements"] = Json(m.avg_measurements);
  o["measurement_variance"] = Json(m.measurement_variance);
  o["total_paid"] = Json(m.total_paid);
  o["total_measurements"] = Json(m.total_measurements);
  o["avg_reward_per_measurement"] = Json(m.avg_reward_per_measurement);
  o["budget_overdraft"] = Json(m.budget_overdraft);
  o["reward_gini"] = Json(m.reward_gini);
  o["reward_jain"] = Json(m.reward_jain);
  o["active_user_fraction"] = Json(m.active_user_fraction);
  o["dropped_user_rounds"] = Json(m.dropped_user_rounds);
  o["abandoned_tours"] = Json(m.abandoned_tours);
  o["lost_measurements"] = Json(m.lost_measurements);
  o["corrupted_measurements"] = Json(m.corrupted_measurements);
  o["withdrawn_task_rounds"] = Json(m.withdrawn_task_rounds);
  o["wasted_travel"] = Json(m.wasted_travel);
  o["plan_exact_hits"] = Json(m.plan_exact_hits);
  o["plan_fixup_hits"] = Json(m.plan_fixup_hits);
  o["plan_misses"] = Json(m.plan_misses);
  o["plan_fallbacks"] = Json(m.plan_fallbacks);
  Json counts = Json::array();
  for (const int c : m.per_task_received) counts.push_back(Json(c));
  o["per_task_received"] = std::move(counts);
  return Json(std::move(o));
}

Json round_to_json(const RoundMetrics& m) {
  Json::Object o;
  o["round"] = Json(m.round);
  o["new_measurements"] = Json(m.new_measurements);
  o["total_measurements"] = Json(m.total_measurements);
  o["coverage_pct"] = Json(m.coverage_pct);
  o["completeness_pct"] = Json(m.completeness_pct);
  o["payout"] = Json(m.payout);
  o["active_users"] = Json(m.active_users);
  o["mean_user_profit"] = Json(m.mean_user_profit);
  o["mean_open_reward"] = Json(m.mean_open_reward);
  o["open_tasks"] = Json(m.open_tasks);
  o["dropped_users"] = Json(m.dropped_users);
  o["abandoned_tours"] = Json(m.abandoned_tours);
  o["lost_measurements"] = Json(m.lost_measurements);
  o["corrupted_measurements"] = Json(m.corrupted_measurements);
  o["withdrawn_tasks"] = Json(m.withdrawn_tasks);
  o["wasted_travel"] = Json(m.wasted_travel);
  Json profits = Json::array();
  for (const Money p : m.user_profit) profits.push_back(Json(p));
  o["user_profit"] = std::move(profits);
  return Json(std::move(o));
}

Json rounds_to_json(const std::vector<RoundMetrics>& history) {
  Json out = Json::array();
  for (const RoundMetrics& m : history) out.push_back(round_to_json(m));
  return out;
}

RoundMetrics round_from_json(const Json& json) {
  RoundMetrics m;
  m.round = static_cast<Round>(json.at("round").as_int());
  m.new_measurements = static_cast<int>(json.at("new_measurements").as_int());
  m.total_measurements = json.at("total_measurements").as_int();
  m.coverage_pct = json.at("coverage_pct").as_number();
  m.completeness_pct = json.at("completeness_pct").as_number();
  m.payout = json.at("payout").as_number();
  m.active_users = static_cast<int>(json.at("active_users").as_int());
  for (const Json& p : json.at("user_profit").as_array()) {
    m.user_profit.push_back(p.as_number());
  }
  m.mean_user_profit = json.at("mean_user_profit").as_number();
  m.mean_open_reward = json.at("mean_open_reward").as_number();
  m.open_tasks = static_cast<int>(json.at("open_tasks").as_int());
  m.dropped_users = static_cast<int>(json.at("dropped_users").as_int());
  m.abandoned_tours = static_cast<int>(json.at("abandoned_tours").as_int());
  m.lost_measurements =
      static_cast<int>(json.at("lost_measurements").as_int());
  m.corrupted_measurements =
      static_cast<int>(json.at("corrupted_measurements").as_int());
  m.withdrawn_tasks = static_cast<int>(json.at("withdrawn_tasks").as_int());
  m.wasted_travel = json.at("wasted_travel").as_number();
  return m;
}

std::vector<RoundMetrics> rounds_from_json(const Json& json) {
  std::vector<RoundMetrics> history;
  for (const Json& m : json.as_array()) {
    history.push_back(round_from_json(m));
  }
  return history;
}

Json events_to_json(const EventLog& log) {
  Json out = Json::array();
  for (const SensingEvent& e : log.events()) {
    Json::Object o;
    o["round"] = Json(e.round);
    o["user"] = Json(e.user);
    o["task"] = Json(e.task);
    o["reward"] = Json(e.reward);
    o["leg_distance"] = Json(e.leg_distance);
    o["accepted"] = Json(e.accepted);
    o["corrupted"] = Json(e.corrupted);
    out.push_back(Json(std::move(o)));
  }
  return out;
}

std::vector<SensingEvent> events_from_json(const Json& json) {
  std::vector<SensingEvent> events;
  for (const Json& je : json.as_array()) {
    SensingEvent e;
    e.round = static_cast<Round>(je.at("round").as_int());
    e.user = static_cast<UserId>(je.at("user").as_int());
    e.task = static_cast<TaskId>(je.at("task").as_int());
    e.reward = je.at("reward").as_number();
    e.leg_distance = je.at("leg_distance").as_number();
    e.accepted = je.at("accepted").as_bool();
    e.corrupted = je.at("corrupted").as_bool();
    events.push_back(e);
  }
  return events;
}

}  // namespace mcs::sim
