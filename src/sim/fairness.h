// Fairness metrics over user earnings.
//
// A mechanism that completes every task by paying three couriers a fortune
// is a different system from one that spreads work across the crowd; the
// paper measures balance across *tasks* (Fig. 9a), this module adds the
// dual view across *users*: the Gini coefficient and Jain's fairness index
// of per-user profit/reward, used by the fairness extension bench.
#pragma once

#include <vector>

#include "model/world.h"

namespace mcs::sim {

/// Gini coefficient in [0,1]; 0 = perfectly equal. Negative values are
/// rejected (earnings are non-negative in this system); an all-zero or
/// empty vector yields 0 (degenerate equality).
double gini_coefficient(std::vector<double> values);

/// Jain's fairness index in (0,1]; 1 = perfectly equal. An all-zero or
/// empty vector yields 1.
double jain_index(const std::vector<double>& values);

/// Per-user lifetime rewards / profits of a world.
std::vector<double> user_rewards(const model::World& world);
std::vector<double> user_profits(const model::World& world);

struct FairnessReport {
  double reward_gini = 0.0;
  double reward_jain = 1.0;
  double profit_gini = 0.0;
  double profit_jain = 1.0;
  double active_fraction = 0.0;  // users with at least one contribution
};

FairnessReport fairness_report(const model::World& world);

}  // namespace mcs::sim
