// ASCII rendering of a world: a terminal heat map of task progress and
// user density, used by the CLI examples (quickstart --map) to make a
// campaign's spatial story visible without any plotting dependency.
//
//   . , : ; #   user density (empty -> dense)
//   0..9        task progress in tenths (digit at the task's cell)
//   *           completed task
//   !           expired, incomplete task
#pragma once

#include <string>

#include "common/types.h"
#include "model/world.h"

namespace mcs::sim {

struct AsciiMapOptions {
  int width = 60;   // characters
  int height = 30;  // lines
  Round round = 1;  // used to classify tasks as expired
  bool legend = true;
};

/// Render the world as a character grid. Tasks overwrite density glyphs in
/// their cell; if several tasks share one cell the worst-progress one is
/// shown (that is the one needing attention).
std::string render_ascii_map(const model::World& world,
                             const AsciiMapOptions& options = {});

}  // namespace mcs::sim
