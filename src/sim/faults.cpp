#include "sim/faults.h"

#include "common/error.h"

namespace mcs::sim {

namespace {

// Distinct odd multipliers per fault kind keep the hash cells of different
// queries statistically independent even for equal (a, b) arguments.
constexpr std::uint64_t kDropKind = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kWithdrawKind = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kAbandonKind = 0x94d049bb133111ebULL;
constexpr std::uint64_t kAbandonLegKind = 0xd6e8feb86659fd93ULL;
constexpr std::uint64_t kLossKind = 0xa0761d6478bd642fULL;
constexpr std::uint64_t kCorruptKind = 0xe7037ed1a0b428dbULL;
constexpr std::uint64_t kNoiseKind = 0x8ebc6af09c88c6e3ULL;

void check_prob(double p, const char* what) {
  MCS_CHECK(p >= 0.0 && p <= 1.0, std::string(what) + " must be in [0, 1]");
}

}  // namespace

bool FaultPlan::any() const {
  return dropout_prob > 0.0 || abandon_prob > 0.0 || upload_loss_prob > 0.0 ||
         corruption_prob > 0.0 || withdraw_prob > 0.0;
}

void FaultPlan::validate() const {
  check_prob(dropout_prob, "dropout_prob");
  check_prob(abandon_prob, "abandon_prob");
  check_prob(upload_loss_prob, "upload_loss_prob");
  check_prob(corruption_prob, "corruption_prob");
  check_prob(withdraw_prob, "withdraw_prob");
  MCS_CHECK(corruption_noise >= 0.0, "corruption_noise must be >= 0");
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t campaign_seed)
    : plan_(plan) {
  plan_.validate();
  // Expand the two seeds into one well-mixed stream id so that nearby
  // campaign seeds (the runner hands out seed, seed^const, ...) do not
  // produce correlated fault cells.
  SplitMix64 sm(plan.seed ^ (campaign_seed * 0x2545f4914f6cdd1dULL));
  seed_ = sm.next();
}

double FaultInjector::unit_draw(std::uint64_t kind, std::uint64_t a,
                                std::uint64_t b) const {
  SplitMix64 sm(seed_ ^ (kind * (a + 1)) ^ (kind + 0x6a09e667f3bcc909ULL) * b);
  sm.next();  // decorrelate from the raw cell index
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

bool FaultInjector::drop_user(UserId user, Round k) const {
  return unit_draw(kDropKind, static_cast<std::uint64_t>(user),
                   static_cast<std::uint64_t>(k)) < plan_.dropout_prob;
}

bool FaultInjector::withdraw_task(TaskId task, Round k) const {
  return unit_draw(kWithdrawKind, static_cast<std::uint64_t>(task),
                   static_cast<std::uint64_t>(k)) < plan_.withdraw_prob;
}

int FaultInjector::legs_completed(UserId user, Round k, int planned) const {
  MCS_CHECK(planned >= 0, "planned leg count must be non-negative");
  if (planned == 0) return 0;
  const std::uint64_t u = static_cast<std::uint64_t>(user);
  const std::uint64_t r = static_cast<std::uint64_t>(k);
  if (unit_draw(kAbandonKind, u, r) >= plan_.abandon_prob) return planned;
  // Abandoned: walk a uniform prefix of [0, planned - 1] legs.
  const double frac = unit_draw(kAbandonLegKind, u, r);
  return static_cast<int>(frac * planned);  // frac < 1 => result < planned
}

bool FaultInjector::lose_upload(UserId user, TaskId task, Round k) const {
  const std::uint64_t cell =
      static_cast<std::uint64_t>(user) * 0x100000001b3ULL +
      static_cast<std::uint64_t>(task);
  return unit_draw(kLossKind, cell, static_cast<std::uint64_t>(k)) <
         plan_.upload_loss_prob;
}

bool FaultInjector::corrupt_upload(UserId user, TaskId task, Round k) const {
  const std::uint64_t cell =
      static_cast<std::uint64_t>(user) * 0x100000001b3ULL +
      static_cast<std::uint64_t>(task);
  return unit_draw(kCorruptKind, cell, static_cast<std::uint64_t>(k)) <
         plan_.corruption_prob;
}

double FaultInjector::corrupt_reading(double reading, UserId user, TaskId task,
                                      Round k) const {
  const std::uint64_t cell =
      static_cast<std::uint64_t>(user) * 0x100000001b3ULL +
      static_cast<std::uint64_t>(task);
  SplitMix64 sm(seed_ ^ (kNoiseKind * (cell + 1)) ^
                static_cast<std::uint64_t>(k));
  Rng rng(sm.next());
  return reading + rng.normal(0.0, plan_.corruption_noise);
}

}  // namespace mcs::sim
