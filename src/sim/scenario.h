// Scenario generation: builds random Worlds matching the experimental setup
// of §VI — uniformly placed tasks and users in a square area, random
// deadlines and per-user time budgets.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "model/world.h"

namespace mcs::sim {

struct ScenarioParams {
  // Deployment area and population (§VI defaults).
  Meters area_side = 3000.0;
  int num_tasks = 20;
  int num_users = 100;

  // Task requirements. phi_i is drawn uniformly from
  // [required_measurements - required_spread, required_measurements +
  // required_spread] (clamped to >= 1); the paper's setup is homogeneous
  // (spread 0, phi = 20).
  int required_measurements = 20;  // phi_i (center)
  int required_spread = 0;
  Round deadline_min = 5;          // deadlines drawn uniformly from
  Round deadline_max = 15;         // [deadline_min, deadline_max]

  // Travel model (§VI: walking 2 m/s, 0.002 $/m).
  double speed_mps = 2.0;
  Money cost_per_meter = 0.002;

  // Per-round user time budget, uniform in [budget_min_s, budget_max_s].
  // The paper never states this distribution; see DESIGN.md §4.
  Seconds user_budget_min_s = 300.0;
  Seconds user_budget_max_s = 600.0;
  // Budget quantization: > 0 rounds every drawn budget down to
  // budget_min_s + n * quantum (still within the range). Bucketized budgets
  // model plan-granular devices and are what lets the plan memo share
  // solves across users; 0 (default) keeps the continuous draw — and the
  // historical rng stream — bit-identical.
  Seconds user_budget_quantum_s = 0.0;

  // Dense-home variant: > 0 draws this many shared "points of interest"
  // and homes every user at one of them (residential towers, transit hubs
  // — the regime where thousands of users start a round at the same
  // coordinates). 0 (default) keeps the continuous uniform home draw.
  int home_sites = 0;

  // Neighbor radius R for the demand indicator's X3 (paper gives no value).
  Meters neighbor_radius = 500.0;

  void validate() const;
};

/// Build a world with `params.num_tasks` tasks and `params.num_users` users,
/// locations uniform in the area, deadlines and budgets uniform in their
/// ranges. Consumes `rng`.
model::World generate_world(const ScenarioParams& params, Rng& rng);

/// Clustered variant: tasks are placed around `clusters` uniformly-drawn
/// centers with Gaussian spread `sigma` (remote-cluster scenarios make the
/// popularity imbalance the paper motivates even starker). Users stay
/// uniform.
model::World generate_clustered_world(const ScenarioParams& params,
                                      int clusters, Meters sigma, Rng& rng);

}  // namespace mcs::sim
