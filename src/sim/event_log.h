// Optional per-measurement event trace. Disabled by default to keep sweep
// memory flat; examples and debugging runs enable it to replay exactly who
// sensed what, where and for how much — including, under fault injection,
// the attempts that never made it (accepted == false), so fault traces can
// be replayed measurement by measurement.
#pragma once

#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace mcs::sim {

struct SensingEvent {
  Round round = 0;
  UserId user = kInvalidUser;
  TaskId task = kInvalidTask;
  Money reward = 0.0;         // 0 for a lost upload (nothing was paid)
  Meters leg_distance = 0.0;  // distance walked for this leg of the tour
  // False when the upload was lost in transit: the user walked the leg but
  // the platform received nothing — no payment, no task progress.
  bool accepted = true;
  // True when the accepted reading was corrupted (extra sensor noise). The
  // platform cannot tell; the trace keeps the ground truth.
  bool corrupted = false;
};

class EventLog {
 public:
  explicit EventLog(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void record(const SensingEvent& e);

  const std::vector<SensingEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Events of one round, in delivery order.
  std::vector<SensingEvent> round_events(Round k) const;

  /// Accepted events only (the measurements the platform actually has).
  std::vector<SensingEvent> accepted_events() const;

  /// Write a CSV dump (round,user,task,reward,leg_distance,accepted,
  /// corrupted).
  void write_csv(std::ostream& out) const;

  /// Replace the trace with a checkpointed one (resume path). Keeps the
  /// enabled flag: a disabled log stays empty and a restored-then-resumed
  /// campaign appends to the restored prefix exactly where it left off.
  void restore(std::vector<SensingEvent> events) {
    events_ = std::move(events);
  }

 private:
  bool enabled_;
  std::vector<SensingEvent> events_;
};

}  // namespace mcs::sim
