// Sensing and aggregation substrate (§III-A of the paper).
//
// The platform needs multiple *independent* measurements per task because a
// single user's reading is biased and noisy; it aggregates what it receives
// into an estimate. This module models exactly that: a ground truth per
// task, a per-user sensor (bias + noise), and robust aggregators. It backs
// the quality-vs-measurements experiment that motivates phi = 20 and the
// steered baseline's diminishing-returns quality curve Q(x).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mcs::sim {

/// A user's sensing characteristics: reading = truth + bias + N(0, noise).
/// Bias is fixed per user (cheap phone, bad calibration); noise is fresh
/// per measurement.
struct SensorProfile {
  double bias = 0.0;
  double noise_stddev = 1.0;
};

/// Draw a population of sensor profiles: biases N(0, bias_stddev), noise
/// levels uniform in [noise_min, noise_max].
std::vector<SensorProfile> draw_sensor_population(std::size_t num_users,
                                                  double bias_stddev,
                                                  double noise_min,
                                                  double noise_max, Rng& rng);

/// One reading of `truth` by `sensor`.
double sense(double truth, const SensorProfile& sensor, Rng& rng);

enum class Aggregator { kMean, kMedian, kTrimmedMean };

Aggregator parse_aggregator(const std::string& name);
const char* aggregator_name(Aggregator a);

/// Aggregate readings into one estimate. kTrimmedMean drops the top and
/// bottom 20% (at least one value survives). Throws on empty input.
double aggregate(const std::vector<double>& readings, Aggregator how);

/// Monte-Carlo estimate of the RMSE of the aggregate as a function of the
/// number of contributing users: for each trial, draw x distinct sensors
/// from the population, one reading each, aggregate, and compare to truth.
/// Returns rmse[x-1] for x in 1..max_measurements.
std::vector<double> quality_curve(const std::vector<SensorProfile>& population,
                                  int max_measurements, int trials,
                                  Aggregator how, Rng& rng);

/// Fit the diminishing-returns quality model Q(x) = 1 - (1-delta)^x (the
/// steered baseline's curve) to a quality series q[x-1] in [0,1], by least
/// squares over delta on a grid. Returns the best delta in (0,1).
double fit_quality_delta(const std::vector<double>& quality);

/// Turn an RMSE curve into a normalized quality series in [0,1]:
/// q(x) = 1 - rmse(x)/rmse(1). Monotone when aggregation helps.
std::vector<double> rmse_to_quality(const std::vector<double>& rmse);

}  // namespace mcs::sim
