#include "sim/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/hash.h"
#include "sim/serialize.h"

namespace mcs::sim {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::uint64_t u64_from_hex(const std::string& s) {
  MCS_CHECK(s.size() == 16, "expected a 16-digit hex u64");
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else throw Error("invalid hex digit in u64 field");
  }
  return v;
}

Json params_to_json(const SimulatorParams& p) {
  Json::Object o;
  o["max_rounds"] = Json(p.max_rounds);
  o["platform_budget"] = Json(p.platform_budget);
  o["record_events"] = Json(p.record_events);
  // Seeds are full u64s; Json numbers are doubles, which lose bits past
  // 2^53, so they travel as hex strings.
  o["order_seed"] = Json(hex_u64(p.order_seed));
  Json::Object faults;
  faults["dropout_prob"] = Json(p.faults.dropout_prob);
  faults["abandon_prob"] = Json(p.faults.abandon_prob);
  faults["upload_loss_prob"] = Json(p.faults.upload_loss_prob);
  faults["corruption_prob"] = Json(p.faults.corruption_prob);
  faults["corruption_noise"] = Json(p.faults.corruption_noise);
  faults["withdraw_prob"] = Json(p.faults.withdraw_prob);
  faults["seed"] = Json(hex_u64(p.faults.seed));
  o["faults"] = Json(std::move(faults));
  o["plan_threads"] = Json(p.plan_threads);
  o["reprice_threads"] = Json(p.reprice_threads);
  o["shards"] = Json(p.shards);
  o["phase_timers"] = Json(p.phase_timers);
  o["legacy_commit"] = Json(p.legacy_commit);
  Json::Object memo;
  memo["enabled"] = Json(p.memo.enabled);
  memo["cell_size"] = Json(p.memo.cell_size);
  memo["budget_bucket"] = Json(p.memo.budget_bucket);
  memo["max_entries_per_key"] = Json(p.memo.max_entries_per_key);
  o["memo"] = Json(std::move(memo));
  return Json(std::move(o));
}

SimulatorParams params_from_json(const Json& j) {
  SimulatorParams p;
  p.max_rounds = static_cast<Round>(j.at("max_rounds").as_int());
  MCS_CHECK(p.max_rounds >= 1, "max_rounds must be at least 1");
  p.platform_budget = j.at("platform_budget").as_number();
  p.record_events = j.at("record_events").as_bool();
  p.order_seed = u64_from_hex(j.at("order_seed").as_string());
  const Json& jf = j.at("faults");
  p.faults.dropout_prob = jf.at("dropout_prob").as_number();
  p.faults.abandon_prob = jf.at("abandon_prob").as_number();
  p.faults.upload_loss_prob = jf.at("upload_loss_prob").as_number();
  p.faults.corruption_prob = jf.at("corruption_prob").as_number();
  p.faults.corruption_noise = jf.at("corruption_noise").as_number();
  p.faults.withdraw_prob = jf.at("withdraw_prob").as_number();
  p.faults.seed = u64_from_hex(jf.at("seed").as_string());
  p.faults.validate();
  p.plan_threads = static_cast<int>(j.at("plan_threads").as_int());
  MCS_CHECK(p.plan_threads >= 0, "plan_threads must be non-negative");
  // Added after the first checkpoint format shipped; absent keys keep the
  // defaults so older checkpoints stay loadable.
  if (j.has("reprice_threads")) {
    p.reprice_threads = static_cast<int>(j.at("reprice_threads").as_int());
    MCS_CHECK(p.reprice_threads >= 0, "reprice_threads must be non-negative");
  }
  if (j.has("shards")) {
    p.shards = static_cast<int>(j.at("shards").as_int());
    MCS_CHECK(p.shards >= SimulatorParams::kAutoShards,
              "shards must be -1 (auto), 0 (legacy) or a worker count");
  }
  if (j.has("phase_timers")) p.phase_timers = j.at("phase_timers").as_bool();
  if (j.has("legacy_commit")) {
    p.legacy_commit = j.at("legacy_commit").as_bool();
  }
  const Json& jm = j.at("memo");
  p.memo.enabled = jm.at("enabled").as_bool();
  p.memo.cell_size = jm.at("cell_size").as_number();
  p.memo.budget_bucket = jm.at("budget_bucket").as_number();
  p.memo.max_entries_per_key =
      static_cast<int>(jm.at("max_entries_per_key").as_int());
  p.memo.validate();
  return p;
}

Json rng_state_to_json(const Rng::State& s) {
  Json out = Json::array();
  for (const std::uint64_t w : s) out.push_back(Json(hex_u64(w)));
  return out;
}

Rng::State rng_state_from_json(const Json& j) {
  const Json::Array& a = j.as_array();
  MCS_CHECK(a.size() == 4, "xoshiro256** state has exactly 4 words");
  Rng::State s{};
  for (std::size_t i = 0; i < 4; ++i) s[i] = u64_from_hex(a[i].as_string());
  MCS_CHECK((s[0] | s[1] | s[2] | s[3]) != 0,
            "xoshiro256** state must not be all-zero");
  return s;
}

Json memo_stats_to_json(const select::PlanMemoStats& s) {
  Json::Object o;
  o["exact_hits"] = Json(s.exact_hits);
  o["fixup_hits"] = Json(s.fixup_hits);
  o["misses"] = Json(s.misses);
  o["fallbacks"] = Json(s.fallbacks);
  o["rounds"] = Json(s.rounds);
  return Json(std::move(o));
}

select::PlanMemoStats memo_stats_from_json(const Json& j) {
  select::PlanMemoStats s;
  s.exact_hits = j.at("exact_hits").as_int();
  s.fixup_hits = j.at("fixup_hits").as_int();
  s.misses = j.at("misses").as_int();
  s.fallbacks = j.at("fallbacks").as_int();
  s.rounds = j.at("rounds").as_int();
  MCS_CHECK(s.exact_hits >= 0 && s.fixup_hits >= 0 && s.misses >= 0 &&
                s.fallbacks >= 0 && s.rounds >= 0,
            "plan-memo counters must be non-negative");
  return s;
}

}  // namespace

Json checkpoint_to_json(const CampaignCheckpoint& ckpt) {
  Json::Object o;
  o["version"] = Json(ckpt.version);
  o["scenario"] = ckpt.scenario;
  o["provenance"] = ckpt.provenance;
  o["params"] = params_to_json(ckpt.params);
  o["next_round"] = Json(ckpt.next_round);
  o["world"] = ckpt.world;
  o["mobility_rng"] = rng_state_to_json(ckpt.mobility_rng);
  o["mechanism"] = Json(ckpt.mechanism);
  o["mechanism_state"] = ckpt.mechanism_state;
  o["selector"] = Json(ckpt.selector);
  o["mobility"] = Json(ckpt.mobility);
  o["budget_spent"] = Json(ckpt.budget_spent);
  o["budget_comp"] = Json(ckpt.budget_comp);
  o["history"] = rounds_to_json(ckpt.history);
  EventLog log(true);
  log.restore(ckpt.events);
  o["events"] = events_to_json(log);
  o["memo_stats"] = memo_stats_to_json(ckpt.memo_stats);
  Json::Object phase;
  phase["prepass_s"] = Json(ckpt.phase_prepass_s);
  phase["plan_s"] = Json(ckpt.phase_plan_s);
  phase["reprice_s"] = Json(ckpt.phase_reprice_s);
  phase["commit_s"] = Json(ckpt.phase_commit_s);
  o["phase_seconds"] = Json(std::move(phase));
  return Json(std::move(o));
}

CampaignCheckpoint checkpoint_from_json(const Json& json) {
  CampaignCheckpoint c;
  c.version = static_cast<int>(json.at("version").as_int());
  MCS_CHECK(c.version == kCheckpointFormatVersion,
            "unsupported checkpoint format version");
  c.scenario = json.at("scenario");
  c.provenance = json.at("provenance");
  c.params = params_from_json(json.at("params"));
  c.next_round = static_cast<Round>(json.at("next_round").as_int());
  MCS_CHECK(c.next_round >= 1 && c.next_round <= c.params.max_rounds + 1,
            "checkpoint round cursor out of range");
  c.world = json.at("world");
  c.mobility_rng = rng_state_from_json(json.at("mobility_rng"));
  c.mechanism = json.at("mechanism").as_string();
  c.mechanism_state = json.at("mechanism_state");
  c.selector = json.at("selector").as_string();
  c.mobility = json.at("mobility").as_string();
  c.budget_spent = json.at("budget_spent").as_number();
  c.budget_comp = json.at("budget_comp").as_number();
  c.history = rounds_from_json(json.at("history"));
  MCS_CHECK(c.history.size() == static_cast<std::size_t>(c.next_round - 1),
            "checkpoint history length does not match its round cursor");
  c.events = events_from_json(json.at("events"));
  c.memo_stats = memo_stats_from_json(json.at("memo_stats"));
  // Added after the first checkpoint format shipped; absent on older
  // payloads, which decode with all-zero timers.
  if (json.has("phase_seconds")) {
    const Json& jp = json.at("phase_seconds");
    c.phase_prepass_s = jp.at("prepass_s").as_number();
    c.phase_plan_s = jp.at("plan_s").as_number();
    c.phase_reprice_s = jp.at("reprice_s").as_number();
    c.phase_commit_s = jp.at("commit_s").as_number();
    MCS_CHECK(c.phase_prepass_s >= 0.0 && c.phase_plan_s >= 0.0 &&
                  c.phase_reprice_s >= 0.0 && c.phase_commit_s >= 0.0,
              "phase timers must be non-negative");
  }
  return c;
}

std::string encode_checkpoint(const CampaignCheckpoint& ckpt) {
  const std::string payload = checkpoint_to_json(ckpt).dump();
  char header[64];
  std::snprintf(header, sizeof(header), "MCS-CKPT v%d crc32=%08x len=%zu\n",
                ckpt.version,
                crc32(payload.data(), payload.size()), payload.size());
  std::string out(header);
  out += payload;
  out += '\n';
  return out;
}

CampaignCheckpoint decode_checkpoint(const std::string& bytes) {
  const std::size_t eol = bytes.find('\n');
  MCS_CHECK(eol != std::string::npos && eol < 64,
            "checkpoint envelope: missing or oversized header line");
  const std::string header = bytes.substr(0, eol);
  int version = 0;
  unsigned int crc = 0;
  long long len = -1;
  const int matched = std::sscanf(header.c_str(),
                                  "MCS-CKPT v%d crc32=%8x len=%lld",
                                  &version, &crc, &len);
  MCS_CHECK(matched == 3 && header.compare(0, 9, "MCS-CKPT ") == 0,
            "checkpoint envelope: malformed header");
  MCS_CHECK(version == kCheckpointFormatVersion,
            "unsupported checkpoint format version");
  MCS_CHECK(len >= 0, "checkpoint envelope: negative payload length");
  // Exactly header + '\n' + payload + '\n': a shorter file is a torn or
  // truncated write, a longer one is not something this writer produced.
  MCS_CHECK(bytes.size() == eol + 1 + static_cast<std::size_t>(len) + 1 &&
                bytes.back() == '\n',
            "checkpoint envelope: payload length mismatch (truncated?)");
  const char* payload = bytes.data() + eol + 1;
  MCS_CHECK(crc32(payload, static_cast<std::size_t>(len)) == crc,
            "checkpoint envelope: CRC mismatch (corrupted)");
  return checkpoint_from_json(
      Json::parse(std::string(payload, static_cast<std::size_t>(len))));
}

namespace {

constexpr const char* kGenPrefix = "gen-";
constexpr const char* kGenSuffix = ".ckpt";

/// gen-<digits>.ckpt -> generation number; -1 for anything else (including
/// .tmp leftovers, which must never be loaded).
long long parse_generation(const std::string& name) {
  const std::size_t plen = std::strlen(kGenPrefix);
  const std::size_t slen = std::strlen(kGenSuffix);
  if (name.size() <= plen + slen) return -1;
  if (name.compare(0, plen, kGenPrefix) != 0) return -1;
  if (name.compare(name.size() - slen, slen, kGenSuffix) != 0) return -1;
  long long gen = 0;
  for (std::size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    gen = gen * 10 + (name[i] - '0');
    if (gen > 1'000'000'000'000LL) return -1;
  }
  return gen;
}

/// Published generations in `dir`, (generation, file name) pairs, unsorted.
std::vector<std::pair<long long, std::string>> list_generations(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw Error("cannot open checkpoint directory '" + dir +
                "': " + std::strerror(errno));
  }
  std::vector<std::pair<long long, std::string>> out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const long long gen = parse_generation(name);
    if (gen >= 0) out.emplace_back(gen, name);
  }
  ::closedir(d);
  return out;
}

void write_all(int fd, const char* data, std::size_t len,
               const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw Error("checkpoint write failed for '" + path +
                  "': " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("fsync failed for '" + what + "': " + std::strerror(err));
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    throw Error("cannot open checkpoint directory '" + dir +
                "' for fsync: " + std::strerror(errno));
  }
  fsync_or_throw(fd, dir);
  ::close(fd);
}

void fire_crash_point(StorageFaults& faults) {
  // Move out first: a real kill test calls _exit() inside and never
  // returns, and a surviving caller must see the fault disarmed.
  std::function<void()> hook = std::move(faults.on_crash_point);
  faults = {};
  if (hook) hook();
}

}  // namespace

std::string checkpoint_file_name(long long gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08lld%s", kGenPrefix, gen, kGenSuffix);
  return std::string(buf);
}

CheckpointWriter::CheckpointWriter(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep) {
  MCS_CHECK(keep_ >= 1, "checkpoint writer must keep at least one generation");
  // Continue the numbering of whatever generations already exist: a resumed
  // process must not overwrite the file it just recovered from.
  for (const auto& [gen, name] : list_generations(dir_)) {
    next_gen_ = std::max(next_gen_, gen + 1);
  }
}

bool CheckpointWriter::write(const CampaignCheckpoint& ckpt) {
  const std::string envelope = encode_checkpoint(ckpt);
  const std::size_t eol = envelope.find('\n');
  const std::size_t payload_off = eol + 1;
  const std::size_t payload_len = envelope.size() - payload_off - 1;

  const std::string final_path = dir_ + "/" + checkpoint_file_name(next_gen_);
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("cannot create checkpoint file '" + tmp_path +
                "': " + std::strerror(errno));
  }

  // Injected short write / ENOSPC: stop after N payload bytes.
  if (faults_.short_write_after >= 0 &&
      static_cast<std::size_t>(faults_.short_write_after) <= payload_len) {
    const std::size_t n = static_cast<std::size_t>(faults_.short_write_after);
    write_all(fd, envelope.data(), payload_off + n, tmp_path);
    ::close(fd);
    fire_crash_point(faults_);
    return false;  // crashed mid-write: torn tmp left behind, never renamed
  }
  if (faults_.enospc_after >= 0 &&
      static_cast<std::size_t>(faults_.enospc_after) <= payload_len) {
    const std::size_t n = static_cast<std::size_t>(faults_.enospc_after);
    write_all(fd, envelope.data(), payload_off + n, tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    fire_crash_point(faults_);
    throw Error("checkpoint write failed for '" + tmp_path +
                "': no space left on device (injected)");
  }
  if (faults_.torn_write_after >= 0 &&
      static_cast<std::size_t>(faults_.torn_write_after) <= payload_len) {
    // Good prefix, garbage tail, published anyway: the worst a non-atomic
    // filesystem can do short of losing the rename. Same byte count as the
    // real payload, so only the CRC can tell.
    std::string torn = envelope;
    const std::size_t from =
        payload_off + static_cast<std::size_t>(faults_.torn_write_after);
    for (std::size_t i = from; i < envelope.size() - 1; ++i) torn[i] = '#';
    write_all(fd, torn.data(), torn.size(), tmp_path);
    fsync_or_throw(fd, tmp_path);
    ::close(fd);
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      throw Error("checkpoint rename failed for '" + final_path +
                  "': " + std::strerror(errno));
    }
    ++next_gen_;  // the corrupt generation is published and numbered
    fire_crash_point(faults_);
    return false;
  }

  write_all(fd, envelope.data(), envelope.size(), tmp_path);
  fsync_or_throw(fd, tmp_path);
  ::close(fd);

  if (faults_.crash_before_rename) {
    fire_crash_point(faults_);
    return false;  // durable tmp, never published
  }

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_path.c_str());
    throw Error("checkpoint rename failed for '" + final_path +
                "': " + std::strerror(err));
  }
  fsync_dir(dir_);
  last_path_ = final_path;
  const long long published = next_gen_;
  ++next_gen_;

  if (faults_.crash_before_prune) {
    fire_crash_point(faults_);
    return false;  // generation durable, stale ones kept
  }

  // Retention: drop everything older than the newest `keep_` generations.
  for (const auto& [gen, name] : list_generations(dir_)) {
    if (gen <= published - keep_) ::unlink((dir_ + "/" + name).c_str());
  }
  return true;
}

bool has_checkpoint(const std::string& dir) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  return !list_generations(dir).empty();
}

CampaignCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw Error("cannot open checkpoint file '" + path +
                "': " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decode_checkpoint(buffer.str());
}

LoadedCheckpoint load_latest_checkpoint(const std::string& dir) {
  std::vector<std::pair<long long, std::string>> gens = list_generations(dir);
  std::sort(gens.begin(), gens.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  int skipped = 0;
  std::string reasons;
  for (const auto& [gen, name] : gens) {
    const std::string path = dir + "/" + name;
    try {
      LoadedCheckpoint loaded;
      loaded.checkpoint = load_checkpoint(path);
      loaded.path = path;
      loaded.generation = gen;
      loaded.skipped_generations = skipped;
      return loaded;
    } catch (const Error& e) {
      // Corrupt/truncated generation: fall back to the next older one.
      ++skipped;
      reasons += "\n  " + name + ": " + e.what();
    }
  }
  throw Error("no usable checkpoint generation in '" + dir + "' (" +
              std::to_string(gens.size()) + " candidate(s))" + reasons);
}

}  // namespace mcs::sim
