// Post-hoc analysis of a campaign's event trace: when was each task first
// covered, when did it complete, how far did users walk per measurement —
// the temporal quantities Figs. 6-8 aggregate, per task.
#pragma once

#include <vector>

#include "common/types.h"
#include "model/world.h"
#include "sim/event_log.h"

namespace mcs::sim {

struct TaskTimeline {
  TaskId task = kInvalidTask;
  Round first_measurement = 0;   // 0 = never covered
  Round completed_round = 0;     // 0 = never completed
  int measurements = 0;
  Money total_paid = 0.0;
};

/// One timeline per task, in task-id order. `required` is read from the
/// world; events supply the chronology.
std::vector<TaskTimeline> task_timelines(const model::World& world,
                                         const EventLog& log);

struct TraceSummary {
  double mean_rounds_to_coverage = 0.0;    // over covered tasks
  double mean_rounds_to_completion = 0.0;  // over completed tasks
  int tasks_never_covered = 0;
  int tasks_never_completed = 0;
  double mean_leg_distance = 0.0;          // meters walked per measurement
  double total_distance = 0.0;
};

TraceSummary summarize_trace(const model::World& world, const EventLog& log);

}  // namespace mcs::sim
