#include "sim/event_log.h"

#include <ostream>

#include "common/strings.h"

namespace mcs::sim {

void EventLog::record(const SensingEvent& e) {
  if (!enabled_) return;
  events_.push_back(e);
}

std::vector<SensingEvent> EventLog::round_events(Round k) const {
  std::vector<SensingEvent> out;
  for (const auto& e : events_) {
    if (e.round == k) out.push_back(e);
  }
  return out;
}

std::vector<SensingEvent> EventLog::accepted_events() const {
  std::vector<SensingEvent> out;
  for (const auto& e : events_) {
    if (e.accepted) out.push_back(e);
  }
  return out;
}

void EventLog::write_csv(std::ostream& out) const {
  out << "round,user,task,reward,leg_distance,accepted,corrupted\n";
  for (const auto& e : events_) {
    out << e.round << ',' << e.user << ',' << e.task << ','
        << format_fixed(e.reward, 4) << ',' << format_fixed(e.leg_distance, 2)
        << ',' << (e.accepted ? 1 : 0) << ',' << (e.corrupted ? 1 : 0) << '\n';
  }
}

}  // namespace mcs::sim
