// JSON serialization of scenarios, worlds and campaign results.
//
// Purpose: (a) scenario configs as versionable files, (b) machine-readable
// result dumps for external plotting/analysis, (c) world snapshots for
// debugging a specific campaign. Scenario round-trips (to_json ∘ from_json
// = identity); worlds and metrics are export-only.
#pragma once

#include <string>

#include "common/json.h"
#include "model/world.h"
#include "sim/event_log.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace mcs::sim {

Json scenario_to_json(const ScenarioParams& params);

/// Missing keys fall back to the ScenarioParams defaults; unknown keys are
/// rejected (config typos should not pass silently).
ScenarioParams scenario_from_json(const Json& json);

/// Convenience: parse a JSON file into scenario parameters.
ScenarioParams load_scenario(const std::string& path);

/// Full world snapshot: area, travel model, tasks (with progress and
/// contributor lists), users (with earnings).
Json world_to_json(const model::World& world);

Json campaign_to_json(const CampaignMetrics& metrics);
Json round_to_json(const RoundMetrics& metrics);
Json rounds_to_json(const std::vector<RoundMetrics>& history);
Json events_to_json(const EventLog& log);

}  // namespace mcs::sim
