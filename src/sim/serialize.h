// JSON serialization of scenarios, worlds and campaign results.
//
// Purpose: (a) scenario configs as versionable files, (b) machine-readable
// result dumps for external plotting/analysis, (c) world snapshots for
// debugging a specific campaign, (d) campaign checkpoints (sim/checkpoint.h).
// Scenarios, worlds, round histories and event traces all round-trip
// (to_json ∘ from_json = identity, doubles bit-exact via %.17g); campaign
// summaries stay export-only (they are recomputed from the world).
#pragma once

#include <string>

#include "common/json.h"
#include "model/world.h"
#include "sim/event_log.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace mcs::sim {

Json scenario_to_json(const ScenarioParams& params);

/// Missing keys fall back to the ScenarioParams defaults; unknown keys are
/// rejected (config typos should not pass silently).
ScenarioParams scenario_from_json(const Json& json);

/// Convenience: parse a JSON file into scenario parameters.
ScenarioParams load_scenario(const std::string& path);

/// Full world snapshot: area, travel model, tasks (with progress and
/// contributor lists), users (with locations and earnings).
Json world_to_json(const model::World& world);

/// Rebuild a World from a world_to_json snapshot. Sparse/non-dense task and
/// user ids are preserved verbatim. Measurements are replayed through
/// Task::add_measurement in recorded order and users' contributed sets are
/// rebuilt from them, so every derived count (received, completed,
/// total_paid, tasks_contributed) is recomputed — and then verified against
/// the snapshot's own copies, turning silent corruption into mcs::Error.
/// The restored world is bit-identical to the exported one: resuming a
/// campaign from it produces the same doubles the original would.
model::World world_from_json(const Json& json);

Json campaign_to_json(const CampaignMetrics& metrics);
Json round_to_json(const RoundMetrics& metrics);
Json rounds_to_json(const std::vector<RoundMetrics>& history);
Json events_to_json(const EventLog& log);

RoundMetrics round_from_json(const Json& json);
std::vector<RoundMetrics> rounds_from_json(const Json& json);
std::vector<SensingEvent> events_from_json(const Json& json);

}  // namespace mcs::sim
