#include "sim/fairness.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcs::sim {

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) {
    MCS_CHECK(v >= -1e-12, "gini expects non-negative values");
    total += v;
  }
  if (total <= 0.0) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * values[i];
  }
  // The formula is exact in [0, (n-1)/n]; clamp away summation dust.
  return std::clamp(weighted / (n * total), 0.0, 1.0);
}

double jain_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sq = 0.0;
  for (const double v : values) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sq);
}

std::vector<double> user_rewards(const model::World& world) {
  std::vector<double> out;
  out.reserve(world.num_users());
  for (const model::User& u : world.users()) out.push_back(u.total_reward());
  return out;
}

std::vector<double> user_profits(const model::World& world) {
  std::vector<double> out;
  out.reserve(world.num_users());
  for (const model::User& u : world.users()) {
    // Selections are individually rational, so lifetime profit is >= 0 up
    // to floating point; clamp the dust for the fairness metrics.
    out.push_back(std::max(0.0, u.total_profit()));
  }
  return out;
}

FairnessReport fairness_report(const model::World& world) {
  FairnessReport r;
  const auto rewards = user_rewards(world);
  const auto profits = user_profits(world);
  r.reward_gini = gini_coefficient(rewards);
  r.reward_jain = jain_index(rewards);
  r.profit_gini = gini_coefficient(profits);
  r.profit_jain = jain_index(profits);
  std::size_t active = 0;
  for (const model::User& u : world.users()) {
    if (u.tasks_contributed() > 0) ++active;
  }
  r.active_fraction = world.num_users() == 0
                          ? 0.0
                          : static_cast<double>(active) /
                                static_cast<double>(world.num_users());
  return r;
}

}  // namespace mcs::sim
