// Metric definitions used throughout §VI of the paper.
//
//  * coverage           — % of tasks with at least one measurement (spatial
//                         popularity balance, Fig. 6)
//  * overall completeness — % of required measurements delivered in time:
//                         100 * sum_i min(pi_i, phi_i) / sum_i phi_i (Fig. 7)
//  * tasks completed    — % of tasks that reached phi_i before the deadline
//  * avg measurement    — mean received count per task (capped at phi_i,
//                         Fig. 8a)
//  * variance of measurements — population variance of per-task received
//                         counts (participation balance, Fig. 9a)
//  * avg reward per measurement — total payout / total measurements (platform
//                         welfare proxy, Fig. 9b)
#pragma once

#include <vector>

#include "common/types.h"
#include "model/world.h"

namespace mcs::sim {

/// Snapshot of one finished round.
struct RoundMetrics {
  Round round = 0;
  int new_measurements = 0;         // delivered during this round
  long long total_measurements = 0; // cumulative
  double coverage_pct = 0.0;
  double completeness_pct = 0.0;
  Money payout = 0.0;               // paid during this round
  int active_users = 0;             // users who performed >= 1 task
  std::vector<Money> user_profit;   // profit of every user this round
  Money mean_user_profit = 0.0;
  // Mean reward actually published to this round's users: the round-start
  // price over open tasks for round-granularity mechanisms; for mechanisms
  // that reprice within the round (updates_within_round()), the mean of the
  // per-session published prices averaged over the round's user sessions.
  // 0 when nothing is open. Feeds the reward-dynamics diagnostic bench.
  Money mean_open_reward = 0.0;
  int open_tasks = 0;
  // Fault-injection accounting (all zero without a FaultPlan; see
  // sim/faults.h). Lost uploads do not advance task progress, so the demand
  // indicator re-inflates demand for under-delivered tasks — these counters
  // measure that degradation story.
  int dropped_users = 0;           // workers offline this round
  int abandoned_tours = 0;         // tours cut short mid-way
  int lost_measurements = 0;       // uploads that never reached the platform
  int corrupted_measurements = 0;  // accepted but noise-corrupted readings
  int withdrawn_tasks = 0;         // open tasks glitched out of this round
  Meters wasted_travel = 0.0;      // meters walked for lost uploads
};

/// End-of-campaign summary.
struct CampaignMetrics {
  double coverage_pct = 0.0;
  double completeness_pct = 0.0;
  double tasks_completed_pct = 0.0;
  double avg_measurements = 0.0;        // capped per-task mean
  double measurement_variance = 0.0;    // population variance (uncapped)
  Money total_paid = 0.0;
  long long total_measurements = 0;
  Money avg_reward_per_measurement = 0.0;
  Money budget_overdraft = 0.0;
  std::vector<int> per_task_received;   // final counts, one per task
  // User-side fairness (see sim/fairness.h).
  double reward_gini = 0.0;
  double reward_jain = 1.0;
  double active_user_fraction = 0.0;
  // Campaign totals of the per-round fault counters (summed over history by
  // Simulator::summary(); all zero without a FaultPlan).
  int dropped_user_rounds = 0;
  int abandoned_tours = 0;
  long long lost_measurements = 0;
  long long corrupted_measurements = 0;
  int withdrawn_task_rounds = 0;
  Meters wasted_travel = 0.0;
  // Plan-memo accounting (select/plan_memo.h; all zero unless
  // SimulatorParams::memo.enabled). Misses include the fallbacks; the hit
  // rate is (exact + fixup) / (exact + fixup + misses).
  long long plan_exact_hits = 0;
  long long plan_fixup_hits = 0;
  long long plan_misses = 0;
  long long plan_fallbacks = 0;
  // Cumulative wall-clock seconds per round phase, populated only when
  // SimulatorParams::phase_timers is set (all zero otherwise). Pre-pass
  // covers mobility/dropout (plus shard bucketing and the round task grid
  // in sharded mode), plan the selection solves, reprice the mechanism's
  // reward updates, commit the walk/merge/apply delivery pipeline. Untimed
  // glue (open-set scans, pool build, metrics) is excluded. The counters
  // are carried through checkpoints, so a resumed campaign's summary
  // reports whole-campaign times (wall clock, not comparable across
  // machines — a diagnostic, not a metric).
  double phase_prepass_s = 0.0;
  double phase_plan_s = 0.0;
  double phase_reprice_s = 0.0;
  double phase_commit_s = 0.0;
};

double coverage_pct(const model::World& world);
double completeness_pct(const model::World& world);
double tasks_completed_pct(const model::World& world);
double avg_measurements_capped(const model::World& world);
double measurement_variance(const model::World& world);

/// Full summary from the final world state; `total_paid` and `overdraft`
/// come from the simulator's budget tracker.
CampaignMetrics summarize(const model::World& world, Money total_paid,
                          Money overdraft);

}  // namespace mcs::sim
