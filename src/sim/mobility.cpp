#include "sim/mobility.h"

#include "common/error.h"
#include "common/strings.h"

namespace mcs::sim {

geo::Point RandomWaypointMobility::start_of_round(const model::User&, Round,
                                                  const geo::BoundingBox& area,
                                                  Rng& rng) {
  return {rng.uniform(area.lo.x, area.hi.x), rng.uniform(area.lo.y, area.hi.y)};
}

GaussianDriftMobility::GaussianDriftMobility(Meters sigma) : sigma_(sigma) {
  MCS_CHECK(sigma >= 0.0, "drift sigma must be non-negative");
}

geo::Point GaussianDriftMobility::start_of_round(const model::User& user, Round,
                                                 const geo::BoundingBox& area,
                                                 Rng& rng) {
  const geo::Point home = user.home();
  return area.clamp(
      {home.x + rng.normal(0.0, sigma_), home.y + rng.normal(0.0, sigma_)});
}

geo::Point CommuteMobility::start_of_round(const model::User& user, Round k,
                                           const geo::BoundingBox& area, Rng&) {
  if (k % 2 == 1) return user.home();
  const geo::Point center{(area.lo.x + area.hi.x) / 2.0,
                          (area.lo.y + area.hi.y) / 2.0};
  const geo::Point home = user.home();
  // Workplace = home mirrored through the area center (a stable, distinct
  // second anchor without extra per-user state).
  return area.clamp({2.0 * center.x - home.x, 2.0 * center.y - home.y});
}

MobilityKind parse_mobility(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "static" || lower == "static-home" || lower == "home") {
    return MobilityKind::kStaticHome;
  }
  if (lower == "waypoint" || lower == "random-waypoint") {
    return MobilityKind::kRandomWaypoint;
  }
  if (lower == "drift" || lower == "gaussian-drift") {
    return MobilityKind::kGaussianDrift;
  }
  if (lower == "commute") return MobilityKind::kCommute;
  throw Error("unknown mobility model: " + name);
}

const char* mobility_name(MobilityKind kind) {
  switch (kind) {
    case MobilityKind::kStaticHome: return "static-home";
    case MobilityKind::kRandomWaypoint: return "random-waypoint";
    case MobilityKind::kGaussianDrift: return "gaussian-drift";
    case MobilityKind::kCommute: return "commute";
  }
  return "?";
}

std::unique_ptr<MobilityModel> make_mobility(MobilityKind kind,
                                             Meters drift_sigma) {
  switch (kind) {
    case MobilityKind::kStaticHome:
      return std::make_unique<StaticHomeMobility>();
    case MobilityKind::kRandomWaypoint:
      return std::make_unique<RandomWaypointMobility>();
    case MobilityKind::kGaussianDrift:
      return std::make_unique<GaussianDriftMobility>(drift_sigma);
    case MobilityKind::kCommute:
      return std::make_unique<CommuteMobility>();
  }
  throw Error("unknown mobility kind");
}

}  // namespace mcs::sim
