#include "sim/sensing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/strings.h"

namespace mcs::sim {

std::vector<SensorProfile> draw_sensor_population(std::size_t num_users,
                                                  double bias_stddev,
                                                  double noise_min,
                                                  double noise_max, Rng& rng) {
  MCS_CHECK(bias_stddev >= 0.0, "bias stddev must be non-negative");
  MCS_CHECK(noise_min >= 0.0 && noise_max >= noise_min, "bad noise range");
  std::vector<SensorProfile> out;
  out.reserve(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    out.push_back(
        {rng.normal(0.0, bias_stddev), rng.uniform(noise_min, noise_max)});
  }
  return out;
}

double sense(double truth, const SensorProfile& sensor, Rng& rng) {
  return truth + sensor.bias + rng.normal(0.0, sensor.noise_stddev);
}

Aggregator parse_aggregator(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "mean" || lower == "average") return Aggregator::kMean;
  if (lower == "median") return Aggregator::kMedian;
  if (lower == "trimmed" || lower == "trimmed-mean") {
    return Aggregator::kTrimmedMean;
  }
  throw Error("unknown aggregator: " + name);
}

const char* aggregator_name(Aggregator a) {
  switch (a) {
    case Aggregator::kMean: return "mean";
    case Aggregator::kMedian: return "median";
    case Aggregator::kTrimmedMean: return "trimmed-mean";
  }
  return "?";
}

double aggregate(const std::vector<double>& readings, Aggregator how) {
  MCS_CHECK(!readings.empty(), "aggregate of no readings");
  switch (how) {
    case Aggregator::kMean:
      return std::accumulate(readings.begin(), readings.end(), 0.0) /
             static_cast<double>(readings.size());
    case Aggregator::kMedian: {
      std::vector<double> sorted(readings);
      std::sort(sorted.begin(), sorted.end());
      const std::size_t n = sorted.size();
      return n % 2 == 1 ? sorted[n / 2]
                        : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    }
    case Aggregator::kTrimmedMean: {
      std::vector<double> sorted(readings);
      std::sort(sorted.begin(), sorted.end());
      const std::size_t n = sorted.size();
      std::size_t trim = n / 5;  // 20% each side
      if (n - 2 * trim < 1) trim = (n - 1) / 2;
      double sum = 0.0;
      for (std::size_t i = trim; i < n - trim; ++i) sum += sorted[i];
      return sum / static_cast<double>(n - 2 * trim);
    }
  }
  throw Error("unknown aggregator");
}

std::vector<double> quality_curve(const std::vector<SensorProfile>& population,
                                  int max_measurements, int trials,
                                  Aggregator how, Rng& rng) {
  MCS_CHECK(!population.empty(), "empty sensor population");
  MCS_CHECK(max_measurements >= 1, "need at least one measurement");
  MCS_CHECK(static_cast<std::size_t>(max_measurements) <= population.size(),
            "cannot draw more distinct sensors than the population holds");
  MCS_CHECK(trials >= 1, "need at least one trial");

  std::vector<double> rmse(static_cast<std::size_t>(max_measurements), 0.0);
  std::vector<std::size_t> idx(population.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});

  for (int x = 1; x <= max_measurements; ++x) {
    double sq_sum = 0.0;
    for (int t = 0; t < trials; ++t) {
      rng.shuffle(idx);
      const double truth = rng.uniform(0.0, 100.0);
      std::vector<double> readings;
      readings.reserve(static_cast<std::size_t>(x));
      for (int i = 0; i < x; ++i) {
        readings.push_back(sense(truth, population[idx[static_cast<std::size_t>(i)]], rng));
      }
      const double err = aggregate(readings, how) - truth;
      sq_sum += err * err;
    }
    rmse[static_cast<std::size_t>(x - 1)] = std::sqrt(sq_sum / trials);
  }
  return rmse;
}

std::vector<double> rmse_to_quality(const std::vector<double>& rmse) {
  MCS_CHECK(!rmse.empty(), "empty rmse curve");
  MCS_CHECK(rmse.front() > 0.0, "rmse(1) must be positive to normalize");
  std::vector<double> q;
  q.reserve(rmse.size());
  for (const double r : rmse) {
    q.push_back(std::clamp(1.0 - r / rmse.front(), 0.0, 1.0));
  }
  return q;
}

double fit_quality_delta(const std::vector<double>& quality) {
  MCS_CHECK(!quality.empty(), "empty quality curve");
  double best_delta = 0.5;
  double best_err = kInf;
  for (int i = 1; i < 1000; ++i) {
    const double delta = static_cast<double>(i) / 1000.0;
    double err = 0.0;
    for (std::size_t x = 0; x < quality.size(); ++x) {
      const double model =
          1.0 - std::pow(1.0 - delta, static_cast<double>(x + 1));
      const double d = model - quality[x];
      err += d * d;
    }
    if (err < best_err) {
      best_err = err;
      best_delta = delta;
    }
  }
  return best_delta;
}

}  // namespace mcs::sim
