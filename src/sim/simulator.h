// The round-based crowdsensing campaign of Fig. 1.
//
// Each sensing round k:
//   (1) the platform updates rewards from the previous round's demands,
//   (2) tasks (with rewards) are published,
//   (3) every user solves its task-selection problem (Eq. 1),
//   (4) users walk their tours and upload measurements, earning the round's
//       published reward per accepted measurement and paying travel cost,
//   (5) the platform recomputes task demands for the next round.
// Completed and expired tasks are withdrawn at round boundaries. The loop
// runs until `max_rounds` or until no open task remains.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "incentive/budget.h"
#include "incentive/mechanism.h"
#include "model/world.h"
#include "select/plan_memo.h"
#include "select/selector.h"
#include "sim/commit.h"
#include "sim/event_log.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/mobility.h"

namespace mcs::sim {

struct CampaignCheckpoint;  // sim/checkpoint.h

struct SimulatorParams {
  Round max_rounds = 15;
  Money platform_budget = 1000.0;  // B
  bool record_events = false;      // keep a full per-measurement trace
  // Users act in a freshly shuffled order each round (only observable with
  // mechanisms that reprice within a round); the shuffle derives from this
  // seed, keeping campaigns bit-reproducible.
  std::uint64_t order_seed = 1;
  // Fault injection (sim/faults.h). The default plan injects nothing and
  // leaves the campaign bit-identical to a fault-free run; fault draws come
  // from their own hash-based stream (mixed from faults.seed and
  // order_seed), so they never perturb mobility or ordering draws.
  FaultPlan faults;
  // Worker threads for the per-user planning phase of round-granularity
  // mechanisms (updates_within_round() == false). 1 = plan serially
  // (default); 0 = one worker per hardware thread; n = exactly n. Prices,
  // the open set and the candidate pool are frozen at round start, so every
  // user's selection instance and plan can be computed concurrently and
  // committed serially in visit order — the campaign is bit-identical at
  // any thread count (pinned by the plan-equivalence suite, including under
  // TSan). Intra-round mechanisms reprice between sessions and always run
  // serially regardless of this knob. Requires the selector to support
  // clone(); selectors without it fall back to serial planning.
  int plan_threads = 1;
  // Spatially sharded round execution for round-granularity mechanisms
  // (updates_within_round() == false). 0 = the legacy round loop (default);
  // n >= 1 = sharded with exactly n workers; kAutoShards = one worker per
  // hardware thread. The sharded loop partitions users by the SpatialGrid
  // cell of their round-start location, runs mobility/dropout and the
  // per-user planning per shard on the plan workers, and commits serially
  // in visit order. It never builds the dense CandidatePool (per-user
  // candidates come from a spatial index over the open tasks, filtered by
  // the exact reach predicate the DP front-end prunes with), which is what
  // makes 10^6-user / 10^5-task rounds tractable. Campaigns are
  // bit-identical at any shard count (pinned by the shard-equivalence
  // suite); versus the legacy loop they are bit-identical whenever the
  // selector's output is invariant under dropping candidates beyond the
  // travel-distance budget (DP by construction, greedy by the triangle
  // inequality — both pinned) and mobility draws no randomness
  // (static-home, commute). Stochastic mobility uses per-user hash-seeded
  // substreams instead of the serial draw stream: a different but equally
  // valid trajectory, still invariant across shard counts. Intra-round
  // mechanisms ignore this knob, and selectors without clone() fall back
  // to the legacy loop (exactly like plan_threads).
  int shards = 0;
  static constexpr int kAutoShards = -1;
  // Worker threads for the reprice phase: the mechanism's demand/level/
  // reward sweep and, when a neighbor-cache rebuild is due, the cache's
  // per-task count pass. 1 = serial (default); 0 = one worker per hardware
  // thread; n = exactly n. The sweep partitions into disjoint task-row
  // ranges with a two-pass deterministic Nmax reduction, so campaigns are
  // bit-identical at any value (pinned by the reprice-equivalence suite,
  // including under TSan). Uses a dedicated pool so the plan/shard worker
  // counts stay independent knobs; mechanisms without a sharded sweep
  // simply ignore the workers.
  int reprice_threads = 1;
  // Record cumulative wall-clock seconds of the round phases (pre-pass /
  // plan / reprice / commit) into CampaignMetrics. Off by default: the
  // timer reads are cheap but nonzero, and the fields are diagnostics.
  bool phase_timers = false;
  // Debug oracle: force the legacy one-user-at-a-time serial commit instead
  // of the buffered walk/merge/apply pipeline (sim/commit.h) on the planned
  // and sharded paths. The two commits are bit-identical by construction —
  // this knob exists so the CommitEquivalence suite can pin that claim and
  // so BM_CampaignCommit can measure the old path. Intra-round mechanisms
  // always use the legacy per-session commit (they reprice mid-round).
  bool legacy_commit = false;
  // Cross-user plan memoization for the planning phase (select/plan_memo.h):
  // users of one round whose selection instances are provably equivalent
  // share one solve. Off by default; when memo.enabled the campaign stays
  // bit-identical to the memo-free run (pinned by the plan-memo equivalence
  // suite) at any plan_threads value — classification and publication are
  // serial phases, only the solves fan out. Intra-round mechanisms reprice
  // between sessions, so the memo does not apply to them (ignored, exactly
  // like plan_threads).
  select::PlanMemoParams memo;
};

class Simulator {
 public:
  /// Owns the world, the mechanism and the selector for the campaign.
  /// `mobility` defaults to the paper's static-home model when null.
  Simulator(model::World world,
            std::unique_ptr<incentive::IncentiveMechanism> mechanism,
            std::unique_ptr<select::TaskSelector> selector,
            SimulatorParams params,
            std::unique_ptr<MobilityModel> mobility = nullptr);

  /// Execute one sensing round; returns its metrics. Rounds are numbered
  /// from 1. Calling past max_rounds is an error.
  const RoundMetrics& step();

  /// Run rounds until max_rounds (or until every task is closed); returns
  /// the end-of-campaign summary.
  CampaignMetrics run();

  /// True when every task is either completed or past its deadline at the
  /// *next* round, i.e. there is nothing left to sense.
  bool all_tasks_closed() const;

  Round current_round() const { return next_round_ - 1; }
  const model::World& world() const { return world_; }
  const incentive::IncentiveMechanism& mechanism() const { return *mechanism_; }
  const select::TaskSelector& selector() const { return *selector_; }
  const MobilityModel& mobility() const { return *mobility_; }
  const FaultInjector& faults() const { return faults_; }
  const std::vector<RoundMetrics>& history() const { return history_; }
  const incentive::BudgetTracker& budget() const { return budget_; }
  const EventLog& events() const { return events_; }
  /// Cumulative plan-memo accounting (all zero unless params.memo.enabled).
  const select::PlanMemoStats& plan_memo_stats() const {
    return plan_memo_.stats();
  }

  /// Summary of the current state (usable mid-campaign too).
  CampaignMetrics summary() const;

  /// Snapshot the complete resumable campaign state (sim/checkpoint.h).
  /// Only meaningful at a round boundary — between step() calls — which is
  /// the only time this class can be observed from outside anyway. The
  /// returned checkpoint's `scenario` is left null; callers that generated
  /// the world from a ScenarioParams attach it for provenance.
  CampaignCheckpoint checkpoint() const;

  /// Rebuild a simulator from a checkpoint so that every subsequent
  /// step()/run() is bit-identical to the uninterrupted campaign. The
  /// caller supplies a mechanism/selector/mobility constructed with the
  /// same parameters as the original (the experiment config owns those);
  /// their names are validated against the checkpoint, then the
  /// mechanism's serialized state is overlaid via restore_state(). Throws
  /// mcs::Error on version, name, round-cursor or history mismatches.
  static Simulator resume(const CampaignCheckpoint& ckpt,
                          std::unique_ptr<incentive::IncentiveMechanism> mechanism,
                          std::unique_ptr<select::TaskSelector> selector,
                          std::unique_ptr<MobilityModel> mobility = nullptr);

  /// The mobility draw stream's full state (the simulator's only sequential
  /// RNG; fault draws are stateless hashes and the per-round visit shuffle
  /// re-derives its generator from order_seed and the round number).
  Rng::State mobility_rng_state() const { return mobility_rng_.state(); }

  /// Publish rewards for the upcoming round exactly as step() would and
  /// return the selection instance each user (indexed by id) would face —
  /// without performing the round. Used for paired selector comparisons
  /// (Fig. 5): different solvers can be evaluated on identical instances.
  /// For intra-round mechanisms this reflects the round-start prices.
  std::vector<select::SelectionInstance> peek_instances();

 private:
  /// Glitch fault: clears open-set entries withdrawn from round k; returns
  /// how many were withdrawn. No-op without faults.
  int apply_withdrawals(std::vector<bool>& open, Round k) const;

  /// Serial session loop for intra-round mechanisms: mobility, dropout,
  /// incremental reprice (dirty set = tasks the previous session touched),
  /// plan and commit, one user at a time in visit order.
  void run_sessions_intra_round(
      Round k, const std::vector<bool>& open,
      const std::shared_ptr<const select::CandidatePool>& pool,
      const std::vector<std::uint32_t>& visit_order, RoundMetrics& rm,
      double& session_mean_sum, int& priced_sessions);

  /// Parallel-plan / serial-commit session loop for round-granularity
  /// mechanisms: a serial pre-pass advances mobility and dropout in visit
  /// order (preserving the mobility rng stream), every surviving user's
  /// plan is computed concurrently against the frozen round state, then
  /// deliveries, payments and the remaining fault draws commit serially in
  /// visit order. Bit-identical to the serial loop at any thread count.
  void run_sessions_planned(
      Round k, const std::vector<bool>& open,
      const std::shared_ptr<const select::CandidatePool>& pool,
      const std::vector<std::uint32_t>& visit_order, RoundMetrics& rm);

  /// Sharded session loop (SimulatorParams::shards): pre-pass and planning
  /// fan out over spatial shards, commit stays serial in visit order.
  /// Returns false when the selector cannot clone() — the caller then
  /// builds the round pool and takes the legacy planned path.
  bool run_sessions_sharded(Round k, const std::vector<bool>& open,
                            const std::vector<std::uint32_t>& visit_order,
                            RoundMetrics& rm);

  /// Shard worker count per SimulatorParams::shards (kAutoShards resolves
  /// to the hardware concurrency).
  int shard_worker_count() const;

  /// Side length of the spatial shard cells: area-derived (longest side /
  /// 64), so the partition — and with it every per-cell memo table — is a
  /// pure function of the world geometry, never of the worker count.
  Meters shard_cell_size() const;

  /// Walk user `pos`'s planned tour: abandonment/upload fault draws,
  /// deliveries, payments, event records and the user's profit row. When
  /// `dirty` is non-null, the positions of tasks that gained a measurement
  /// are appended (feeds the next session's incremental reprice).
  void commit_session(Round k, model::User& u, std::size_t pos,
                      const select::Selection& sel, RoundMetrics& rm,
                      std::vector<std::size_t>* dirty);

  /// Buffered commit (sim/commit.h): walk every surviving user's tour into
  /// per-segment effect buffers (fanned over the plan workers when
  /// present), replay payments/events/wasted-travel in global visit order,
  /// then apply deliveries grouped by task row. `reward_row` is the frozen
  /// round price per task row (plans only reference rows it covers).
  /// Bit-identical to the legacy serial commit loop at any worker count.
  void commit_sessions(Round k, const std::vector<std::uint32_t>& visit_order,
                       const std::vector<char>& dropped,
                       const std::vector<select::Selection>& plans,
                       const std::vector<char>& feasible,
                       const std::vector<Money>& reward_row, RoundMetrics& rm);

  /// Lazily build the plan pool plus one selector clone per worker
  /// (selectors' scratch arenas are not reentrant — DESIGN.md §7). Returns
  /// false when the selector is not clonable; callers then plan serially.
  bool ensure_plan_workers(int threads);

  /// Solve the listed users' plans into `plans`/`feasible` (indexed by user
  /// position), serially or sharded across the plan workers — the batch
  /// primitive shared by the plain plan phase and the memo's solve waves.
  void solve_positions(const std::vector<std::uint32_t>& positions,
                       const std::vector<bool>& open,
                       const std::shared_ptr<const select::CandidatePool>& pool,
                       std::vector<select::Selection>& plans,
                       std::vector<char>& feasible);

  model::World world_;
  std::unique_ptr<incentive::IncentiveMechanism> mechanism_;
  std::unique_ptr<select::TaskSelector> selector_;
  SimulatorParams params_;
  std::unique_ptr<MobilityModel> mobility_;
  Rng mobility_rng_;
  FaultInjector faults_;
  incentive::BudgetTracker budget_;
  EventLog events_;
  Round next_round_ = 1;
  std::vector<RoundMetrics> history_;
  // Plan-phase workers (round-granularity mechanisms only), created on
  // first parallel round and reused across rounds.
  std::unique_ptr<ThreadPool> plan_pool_;
  std::vector<std::unique_ptr<select::TaskSelector>> plan_selectors_;
  // Reprice-phase workers (params_.reprice_threads > 1 after resolution),
  // created on first use and reused across rounds. Separate from plan_pool_
  // so resizing one phase's worker count never thrashes the other's
  // selector clones.
  std::unique_ptr<ThreadPool> reprice_pool_;
  // Cross-user plan memo (params_.memo); table rebuilt per round, stats
  // cumulative over the campaign.
  select::PlanMemo plan_memo_;
  // Sharded-loop state: one poolless PlanMemo per shard worker (tables are
  // per-cell, stats harvested into plan_memo_ each round) plus persistent
  // scratch so the steady state stays allocation-free.
  std::vector<std::unique_ptr<select::PlanMemo>> shard_memos_;
  std::vector<char> shard_dropped_;            // per user position, per round
  std::vector<std::uint32_t> shard_cell_of_;   // cell id per user position
  std::vector<std::uint32_t> shard_cell_start_;  // CSR offsets, n_cells + 1
  std::vector<std::uint32_t> shard_users_;     // positions grouped by cell
  std::vector<Money> shard_reward_;            // round-start price per task
  std::vector<select::Selection> shard_plans_;
  std::vector<char> shard_feasible_;
  // Per-worker cell histograms for the two-pass parallel bucketing
  // (workers × n_cells, count pass then scatter cursors).
  std::vector<std::uint32_t> shard_bucket_counts_;
  // Buffered-commit scratch (sim/commit.h) and the planned path's frozen
  // per-row price snapshot.
  CommitScratch commit_scratch_;
  std::vector<Money> commit_reward_;
  // Cumulative phase timers (params_.phase_timers; see CampaignMetrics).
  struct PhaseSeconds {
    double prepass = 0.0;
    double plan = 0.0;
    double reprice = 0.0;
    double commit = 0.0;
  };
  PhaseSeconds phase_;
};

}  // namespace mcs::sim
