#include "sim/ascii_map.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace mcs::sim {

namespace {

char density_glyph(int users) {
  if (users <= 0) return ' ';
  if (users == 1) return '.';
  if (users == 2) return ',';
  if (users <= 4) return ':';
  if (users <= 7) return ';';
  return '#';
}

char task_glyph(const model::Task& t, Round round) {
  if (t.completed()) return '*';
  if (t.expired_at(round)) return '!';
  const int tenths = std::min(
      9, static_cast<int>(t.progress() * 10.0));
  return static_cast<char>('0' + tenths);
}

}  // namespace

std::string render_ascii_map(const model::World& world,
                             const AsciiMapOptions& options) {
  MCS_CHECK(options.width >= 4 && options.height >= 2, "map too small");
  const int w = options.width;
  const int h = options.height;
  const geo::BoundingBox& area = world.area();

  auto cell_of = [&](geo::Point p) {
    const geo::Point c = area.clamp(p);
    int cx = static_cast<int>((c.x - area.lo.x) / area.width() * w);
    // Screen rows grow downward; map y grows upward.
    int cy = static_cast<int>((area.hi.y - c.y) / area.height() * h);
    cx = std::clamp(cx, 0, w - 1);
    cy = std::clamp(cy, 0, h - 1);
    return std::pair<int, int>{cx, cy};
  };

  std::vector<int> density(static_cast<std::size_t>(w * h), 0);
  for (const model::User& u : world.users()) {
    const auto [cx, cy] = cell_of(u.location());
    ++density[static_cast<std::size_t>(cy * w + cx)];
  }

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
          density_glyph(density[static_cast<std::size_t>(y * w + x)]);
    }
  }

  // Tasks overwrite density; the least-complete task in a cell wins.
  std::vector<double> cell_progress(static_cast<std::size_t>(w * h), 2.0);
  for (const model::Task& t : world.tasks()) {
    const auto [cx, cy] = cell_of(t.location());
    const auto idx = static_cast<std::size_t>(cy * w + cx);
    if (t.progress() < cell_progress[idx]) {
      cell_progress[idx] = t.progress();
      grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] =
          task_glyph(t, options.round);
    }
  }

  std::string out;
  out += '+' + std::string(static_cast<std::size_t>(w), '-') + "+\n";
  for (const std::string& row : grid) {
    out += '|';
    out += row;
    out += "|\n";
  }
  out += '+' + std::string(static_cast<std::size_t>(w), '-') + "+\n";
  if (options.legend) {
    out += "tasks: 0-9 progress/10, * complete, ! expired;"
           " users: . , : ; # by density\n";
  }
  return out;
}

}  // namespace mcs::sim
