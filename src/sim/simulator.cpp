#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/error.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "geo/distance.h"
#include "geo/spatial_grid.h"
#include "select/candidate_pool.h"
#include "sim/checkpoint.h"
#include "sim/serialize.h"

namespace mcs::sim {

Simulator::Simulator(model::World world,
                     std::unique_ptr<incentive::IncentiveMechanism> mechanism,
                     std::unique_ptr<select::TaskSelector> selector,
                     SimulatorParams params,
                     std::unique_ptr<MobilityModel> mobility)
    : world_(std::move(world)),
      mechanism_(std::move(mechanism)),
      selector_(std::move(selector)),
      params_(params),
      mobility_(mobility ? std::move(mobility)
                         : std::make_unique<StaticHomeMobility>()),
      mobility_rng_(params.order_seed ^ 0xb0b1b2b3b4b5b6b7ULL),
      faults_(params.faults, params.order_seed),
      budget_(params.platform_budget, /*strict=*/false),
      events_(params.record_events),
      plan_memo_(params.memo) {
  MCS_CHECK(mechanism_ != nullptr, "simulator needs a mechanism");
  MCS_CHECK(selector_ != nullptr, "simulator needs a selector");
  MCS_CHECK(params.max_rounds >= 1, "max_rounds must be at least 1");
}

namespace {

// Monotonic wall clock for the opt-in phase timers.
double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The mechanism's reward table as a dense per-task-row snapshot when it
// publishes one of the right size, else nullptr. The bulk phases below read
// rows[i] from the contiguous array instead of paying a virtual
// bounds-checked reward(id) call per task; mechanisms without a row-indexed
// table (custom id-keyed ones) keep the virtual path.
const std::vector<Money>* reward_rows_of(
    const incentive::IncentiveMechanism& mechanism, std::size_t num_tasks) {
  const std::vector<Money>* rows = mechanism.reward_rows();
  return rows != nullptr && rows->size() == num_tasks ? rows : nullptr;
}

std::vector<bool> open_tasks(const model::World& world,
                             const incentive::IncentiveMechanism& mechanism,
                             Round k) {
  const std::vector<Money>* rows = reward_rows_of(mechanism, world.num_tasks());
  std::vector<bool> open(world.num_tasks(), false);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    const Money r = rows != nullptr ? (*rows)[i] : mechanism.reward(t.id());
    open[i] = !t.completed() && !t.expired_at(k) && r > 0.0;
  }
  return open;
}

// The geometry every user session of the round shares: one pool row per
// open task, in task-vector order (so make_instance can recover pool rows
// by counting open slots). Pool rewards are the round-start prices; the
// per-user instances re-read prices from the mechanism, because intra-round
// mechanisms reprice between sessions — the pool only contributes the
// candidate-distance block.
std::shared_ptr<const select::CandidatePool> build_round_pool(
    const model::World& world, const incentive::IncentiveMechanism& mechanism,
    const std::vector<bool>& open) {
  const std::vector<Money>* rows = reward_rows_of(mechanism, world.num_tasks());
  std::vector<select::Candidate> candidates;
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    if (!open[i]) continue;
    const model::Task& t = world.tasks()[i];
    const Money r = rows != nullptr ? (*rows)[i] : mechanism.reward(t.id());
    candidates.push_back({t.id(), t.location(), r});
  }
  return std::make_shared<const select::CandidatePool>(std::move(candidates));
}

select::SelectionInstance make_instance(
    const model::World& world, const incentive::IncentiveMechanism& mechanism,
    const model::User& u, const std::vector<bool>& open,
    std::shared_ptr<const select::CandidatePool> pool, geo::Point start,
    Seconds time_budget) {
  select::SelectionInstance inst;
  inst.start = start;
  inst.travel = world.travel();
  inst.time_budget = time_budget;
  inst.pool = std::move(pool);
  // Fetched per instance, so intra-round repricing between sessions is
  // visible here too: the row table aliases the mechanism's live reward
  // vector, it is not a copy.
  const std::vector<Money>* rows = reward_rows_of(mechanism, world.num_tasks());
  std::int32_t pool_row = -1;
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    if (!open[i]) continue;
    ++pool_row;  // every open task owns one pool row, contributed or not
    const model::Task& t = world.tasks()[i];
    if (t.has_contributed(u.id())) continue;
    const Money reward =
        rows != nullptr ? (*rows)[i] : mechanism.reward(t.id());
    if (reward <= 0.0) continue;
    inst.candidates.push_back({t.id(), t.location(), reward});
    inst.pool_index.push_back(pool_row);
  }
  return inst;
}

}  // namespace

std::vector<select::SelectionInstance> Simulator::peek_instances() {
  MCS_CHECK(next_round_ <= params_.max_rounds, "campaign already over");
  const Round k = next_round_;
  mechanism_->update_rewards(world_, k);
  std::vector<bool> open = open_tasks(world_, *mechanism_, k);
  apply_withdrawals(open, k);
  const auto pool = build_round_pool(world_, *mechanism_, open);
  std::vector<select::SelectionInstance> out;
  out.reserve(world_.num_users());
  for (const model::User& u : world_.users()) {
    out.push_back(make_instance(world_, *mechanism_, u, open, pool, u.home(),
                                u.time_budget()));
  }
  return out;
}

int Simulator::apply_withdrawals(std::vector<bool>& open, Round k) const {
  if (!faults_.enabled()) return 0;
  // Platform glitch: an open task vanishes from this round's published set
  // (users cannot select or deliver it); it returns next round.
  int withdrawn = 0;
  for (std::size_t i = 0; i < open.size(); ++i) {
    if (!open[i]) continue;
    if (faults_.withdraw_task(world_.tasks()[i].id(), k)) {
      open[i] = false;
      ++withdrawn;
    }
  }
  return withdrawn;
}

bool Simulator::all_tasks_closed() const {
  for (const model::Task& t : world_.tasks()) {
    if (!t.completed() && !t.expired_at(next_round_)) return false;
  }
  return true;
}

void Simulator::commit_session(Round k, model::User& u, std::size_t pos,
                               const select::Selection& sel, RoundMetrics& rm,
                               std::vector<std::size_t>* dirty) {
  const UserId uid = u.id();

  // Mid-tour abandonment: the user walks only the first `walked_legs`
  // legs of the planned tour and pays travel for those legs alone.
  const int planned_legs = static_cast<int>(sel.order.size());
  int walked_legs = planned_legs;
  if (faults_.enabled()) {
    walked_legs = faults_.legs_completed(uid, k, planned_legs);
    if (walked_legs < planned_legs) ++rm.abandoned_tours;
  }

  Money reward_earned = 0.0;
  Meters walked = 0.0;
  geo::Point at = u.location();
  for (int li = 0; li < walked_legs; ++li) {
    const TaskId id = sel.order[static_cast<std::size_t>(li)];
    model::Task& t = world_.task(id);
    const Money reward = mechanism_->reward(id);
    const Meters leg = geo::euclidean(at, t.location());
    walked += leg;
    at = t.location();
    if (faults_.enabled() && faults_.lose_upload(uid, id, k)) {
      // The leg was walked but the upload never arrived: no payment, no
      // task progress, and the user is not marked as a contributor — a
      // later round may retry. The demand indicator keeps asking.
      ++rm.lost_measurements;
      rm.wasted_travel += leg;
      events_.record({k, u.id(), id, 0.0, leg, /*accepted=*/false});
      continue;
    }
    const bool corrupted =
        faults_.enabled() && faults_.corrupt_upload(uid, id, k);
    t.add_measurement(u.id(), k, reward);
    u.mark_contributed(id);
    budget_.pay(reward);
    reward_earned += reward;
    if (corrupted) ++rm.corrupted_measurements;
    events_.record({k, u.id(), id, reward, leg, /*accepted=*/true,
                    corrupted});
    if (dirty != nullptr) {
      // The task's vector position (tasks_ is contiguous): the dirty set
      // speaks positions, matching the reprice() contract.
      dirty->push_back(static_cast<std::size_t>(&t - world_.tasks().data()));
    }
  }
  u.set_location(at);

  // A fully walked tour is charged the selector's own distance (keeps the
  // fault-free path bit-identical whatever accumulation a solver used);
  // an abandoned one pays for the walked prefix only.
  const Money cost = world_.travel().cost_for(
      walked_legs == planned_legs ? sel.distance : walked);
  u.add_earnings(reward_earned, cost);
  // Profit rows are indexed by the user's *position* in world().users(),
  // not by its id — ids need not be dense.
  rm.user_profit[pos] = reward_earned - cost;
  if (walked_legs > 0) ++rm.active_users;
}

void Simulator::commit_sessions(Round k,
                                const std::vector<std::uint32_t>& visit_order,
                                const std::vector<char>& dropped,
                                const std::vector<select::Selection>& plans,
                                const std::vector<char>& feasible,
                                const std::vector<Money>& reward_row,
                                RoundMetrics& rm) {
  const std::size_t n = visit_order.size();
  model::UserStore& us = world_.user_store_mut();
  const model::TaskStore& ts = world_.task_store();

  // Sparse-id worlds resolve plan task ids through the store's hash index;
  // warm it here, serially, so the concurrent walkers only ever read a
  // fresh index (IdRowIndex's lazy rebuild is not safe to race).
  bool dense_ids = true;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.id[i] != static_cast<TaskId>(i)) {
      dense_ids = false;
      break;
    }
  }
  if (!dense_ids && ts.row_index.built_size != ts.size()) {
    ts.row_index.rebuild(ts.id);
  }

  const int workers =
      plan_pool_ ? static_cast<int>(plan_selectors_.size()) : 1;
  const std::size_t n_segs = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(workers), n));
  if (commit_scratch_.segments.size() < n_segs) {
    commit_scratch_.segments.resize(n_segs);
  }
  for (CommitSegment& seg : commit_scratch_.segments) seg.clear();

  // Phase A: walk the tours into per-segment effect buffers. Everything a
  // walker writes is either private to its segment or private to its users'
  // rows (location, contributed set, earnings, profit) — segments hold
  // contiguous visit-order ranges, and a user appears in the visit order
  // exactly once.
  const bool faults_on = faults_.enabled();
  const geo::TravelModel& travel = world_.travel();
  const auto walk_range = [&](CommitSegment& seg, std::size_t lo,
                              std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const std::uint32_t pos = visit_order[idx];
      if (dropped[pos] != 0) {
        ++seg.dropped;
        continue;
      }
      MCS_ASSERT(feasible[pos] != 0, "selector returned an infeasible tour");
      const select::Selection& sel = plans[pos];
      const UserId uid = us.id[pos];
      const int planned_legs = static_cast<int>(sel.order.size());
      int walked_legs = planned_legs;
      if (faults_on) {
        walked_legs = faults_.legs_completed(uid, k, planned_legs);
        if (walked_legs < planned_legs) ++seg.abandoned;
      }
      Money reward_earned = 0.0;
      Meters walked = 0.0;
      geo::Point at = us.location[pos];
      for (int li = 0; li < walked_legs; ++li) {
        const TaskId id = sel.order[static_cast<std::size_t>(li)];
        const std::uint32_t row =
            dense_ids ? static_cast<std::uint32_t>(id) : ts.row_of(id);
        MCS_ASSERT(row != model::kNoRow &&
                       static_cast<std::size_t>(row) < ts.size(),
                   "planned task id unknown to the world");
        const Meters leg = geo::euclidean(at, ts.location[row]);
        walked += leg;
        at = ts.location[row];
        if (faults_on && faults_.lose_upload(uid, id, k)) {
          ++seg.lost;
          seg.legs.push_back({row, uid, 0.0, leg, 0, 0});
          continue;
        }
        const bool corrupted = faults_on && faults_.corrupt_upload(uid, id, k);
        const Money reward = reward_row[row];
        us.contributed[pos].set(id);
        reward_earned += reward;
        seg.paid.add(reward);
        if (corrupted) ++seg.corrupted;
        seg.legs.push_back({row, uid, reward, leg, 1,
                            static_cast<std::uint8_t>(corrupted ? 1 : 0)});
        seg.dirty_rows.set(row);
      }
      us.location[pos] = at;
      const Money cost = travel.cost_for(
          walked_legs == planned_legs ? sel.distance : walked);
      us.total_reward[pos] += reward_earned;
      us.total_cost[pos] += cost;
      rm.user_profit[pos] = reward_earned - cost;
      if (walked_legs > 0) ++seg.active;
    }
  };

  if (n_segs <= 1 || plan_pool_ == nullptr) {
    walk_range(commit_scratch_.segments[0], 0, n);
  } else {
    const std::size_t chunk = (n + n_segs - 1) / n_segs;
    for (std::size_t s = 0; s < n_segs; ++s) {
      const std::size_t lo = std::min(n, s * chunk);
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo < hi) {
        plan_pool_->submit(
            [&walk_range, &seg = commit_scratch_.segments[s], lo, hi] {
              walk_range(seg, lo, hi);
            });
      }
    }
    plan_pool_->wait_idle();
  }

  // Phase B: ordered merge — payments, events, wasted travel and fault
  // counters replay in global visit order, bit-identical to the serial
  // interleaving.
  const Money paid_before = budget_.spent();
  merge_commit_segments(commit_scratch_.segments, k, ts, budget_, events_, rm);
  Money sub_total = 0.0;
  for (const CommitSegment& seg : commit_scratch_.segments) {
    sub_total += seg.paid.total();
  }
  const Money paid_delta = budget_.spent() - paid_before;
  MCS_ASSERT(std::abs(paid_delta - sub_total) <=
                 1e-6 * std::max(1.0, std::abs(paid_delta)),
             "commit merge payment replay deviates from the sub-accounts");

  // Phase C: task-grouped delivery apply.
  apply_commit_deliveries(commit_scratch_.segments, k, world_.task_store_mut(),
                          commit_scratch_, plan_pool_.get(), workers);
}

void Simulator::run_sessions_intra_round(
    Round k, const std::vector<bool>& open,
    const std::shared_ptr<const select::CandidatePool>& pool,
    const std::vector<std::uint32_t>& visit_order, RoundMetrics& rm,
    double& session_mean_sum, int& priced_sessions) {
  // Task positions the previous session touched: between two sessions of
  // one round only those tasks gained measurements, so the mechanism can
  // reprice incrementally instead of rescanning the whole task set.
  const bool timed = params_.phase_timers;
  double t0 = 0.0;
  std::vector<std::size_t> dirty;
  for (const std::uint32_t pos : visit_order) {
    if (timed) t0 = mono_seconds();
    model::User& u = world_.users()[pos];
    // Mobility advances for every user, dropped or not (the worker is
    // somewhere that round; they just do not work) — fault draws therefore
    // never shift the mobility stream.
    u.set_location(
        mobility_->start_of_round(u, k, world_.area(), mobility_rng_));

    const bool drop = faults_.enabled() && faults_.drop_user(u.id(), k);
    if (timed) phase_.prepass += mono_seconds() - t0;
    if (drop) {
      // Offline this round: no session (so intra-round mechanisms see no
      // repricing event either), no travel, zero profit. The dirty set
      // carries over to the next surviving session.
      ++rm.dropped_users;
      continue;
    }

    if (timed) t0 = mono_seconds();
    mechanism_->reprice(world_, k, dirty);
    dirty.clear();
    // What this session was actually offered: the round's open tasks at
    // their freshly published prices (price 0 = withdrawn, not published).
    double session_sum = 0.0;
    int session_open = 0;
    for (std::size_t i = 0; i < world_.num_tasks(); ++i) {
      if (!open[i]) continue;
      const Money reward = mechanism_->reward(world_.tasks()[i].id());
      if (reward <= 0.0) continue;
      session_sum += reward;
      ++session_open;
    }
    if (session_open > 0) {
      session_mean_sum += session_sum / session_open;
      ++priced_sessions;
    }
    if (timed) {
      phase_.reprice += mono_seconds() - t0;
      t0 = mono_seconds();
    }

    const select::SelectionInstance inst = make_instance(
        world_, *mechanism_, u, open, pool, u.location(), u.time_budget());
    const select::Selection sel = selector_->select(inst);
    MCS_ASSERT(select::is_feasible(inst, sel),
               "selector returned an infeasible tour");
    if (timed) {
      phase_.plan += mono_seconds() - t0;
      t0 = mono_seconds();
    }
    commit_session(k, u, pos, sel, rm, &dirty);
    if (timed) phase_.commit += mono_seconds() - t0;
  }
}

bool Simulator::ensure_plan_workers(int threads) {
  if (plan_pool_ && static_cast<int>(plan_selectors_.size()) == threads) {
    return true;
  }
  plan_selectors_.clear();
  plan_pool_.reset();
  for (int i = 0; i < threads; ++i) {
    std::unique_ptr<select::TaskSelector> c = selector_->clone();
    if (c == nullptr) {
      // Selector predates the clone() hook: plan serially.
      plan_selectors_.clear();
      return false;
    }
    plan_selectors_.push_back(std::move(c));
  }
  plan_pool_ = std::make_unique<ThreadPool>(threads);
  return true;
}

void Simulator::solve_positions(
    const std::vector<std::uint32_t>& positions, const std::vector<bool>& open,
    const std::shared_ptr<const select::CandidatePool>& pool,
    std::vector<select::Selection>& plans, std::vector<char>& feasible) {
  // Prices, the open set and the pool are frozen for the whole round, and a
  // user's instance depends only on that frozen state plus the user's own
  // location and contributed set — nothing another user's session changes.
  // Plans are therefore order-free: compute them concurrently into per-user
  // slots. Feasibility is checked here (while the instance is still alive)
  // and only asserted at commit.
  const auto plan_user = [&](const select::TaskSelector& solver,
                             std::size_t pos) {
    const model::User& u = world_.users()[pos];
    const select::SelectionInstance inst = make_instance(
        world_, *mechanism_, u, open, pool, u.location(), u.time_budget());
    plans[pos] = solver.select(inst);
    feasible[pos] = select::is_feasible(inst, plans[pos]) ? 1 : 0;
  };

  const int threads = resolve_threads(params_.plan_threads);
  if (threads <= 1 || positions.size() <= 1 || !ensure_plan_workers(threads)) {
    for (const std::uint32_t pos : positions) plan_user(*selector_, pos);
  } else {
    // One selector clone per shard: DP/greedy scratch arenas are not
    // reentrant (DESIGN.md §7), so concurrent plans never share a solver.
    const std::size_t shards = plan_selectors_.size();
    for (std::size_t s = 0; s < shards; ++s) {
      plan_pool_->submit([&, s] {
        const select::TaskSelector& solver = *plan_selectors_[s];
        for (std::size_t i = s; i < positions.size(); i += shards) {
          plan_user(solver, positions[i]);
        }
      });
    }
    plan_pool_->wait_idle();
  }
}

void Simulator::run_sessions_planned(
    Round k, const std::vector<bool>& open,
    const std::shared_ptr<const select::CandidatePool>& pool,
    const std::vector<std::uint32_t>& visit_order, RoundMetrics& rm) {
  const std::size_t n_users = world_.num_users();
  const bool timed = params_.phase_timers;
  double t0 = timed ? mono_seconds() : 0.0;

  // Serial pre-pass in visit order: the mobility rng is one sequential
  // stream, so its draws must happen user-by-user exactly as the serial
  // interleaving would. Dropout draws are pure hashes (order-free) but are
  // taken here so the plan phase knows whom to skip.
  std::vector<char> dropped(n_users, 0);
  for (const std::uint32_t pos : visit_order) {
    model::User& u = world_.users()[pos];
    u.set_location(
        mobility_->start_of_round(u, k, world_.area(), mobility_rng_));
    if (faults_.enabled() && faults_.drop_user(u.id(), k)) dropped[pos] = 1;
  }
  if (timed) {
    phase_.prepass += mono_seconds() - t0;
    t0 = mono_seconds();
  }

  std::vector<select::Selection> plans(n_users);
  std::vector<char> feasible(n_users, 1);

  if (!params_.memo.enabled) {
    std::vector<std::uint32_t> to_plan;
    to_plan.reserve(n_users);
    for (std::size_t pos = 0; pos < n_users; ++pos) {
      if (!dropped[pos]) to_plan.push_back(static_cast<std::uint32_t>(pos));
    }
    solve_positions(to_plan, open, pool, plans, feasible);
  } else {
    // Memoized plan phase (select/plan_memo.h), three deterministic phases.
    //
    // Phase 1 — serial classification in position order: every surviving
    // user's instance is keyed against the memo. Owners (first of their
    // equivalence class) go to the solve wave; exact hits will copy the
    // owner's plan; dominance candidates stay pending until the owner's
    // result is known. Position order (not visit order) so that hit/miss
    // accounting and entry layout are independent of the round shuffle's
    // interaction with fault draws — and identical at any thread count.
    plan_memo_.begin_round(*pool);
    const int exact_limit = selector_->exact_candidate_limit();
    std::vector<select::PlanMemo::Ticket> tickets(n_users);
    std::vector<std::uint32_t> owners;
    for (std::size_t pos = 0; pos < n_users; ++pos) {
      if (dropped[pos]) continue;
      const model::User& u = world_.users()[pos];
      const select::SelectionInstance inst = make_instance(
          world_, *mechanism_, u, open, pool, u.location(), u.time_budget());
      tickets[pos] = plan_memo_.classify(inst, exact_limit);
      if (tickets[pos].outcome == select::PlanMemo::Outcome::kOwner) {
        owners.push_back(static_cast<std::uint32_t>(pos));
      }
    }

    // Phase 2 — owners solve concurrently; the memo is untouched.
    solve_positions(owners, open, pool, plans, feasible);

    // Phase 3 — serial, position order again: owners publish, exact hits
    // copy (the owner's position is smaller, so its plan is published by
    // the time a hit reads it), pendings resolve into a fix-up hit or the
    // exact-fallback wave, which then solves concurrently like the owners.
    std::vector<std::uint32_t> fallback;
    for (std::size_t pos = 0; pos < n_users; ++pos) {
      if (dropped[pos]) continue;
      const select::PlanMemo::Ticket& t = tickets[pos];
      switch (t.outcome) {
        case select::PlanMemo::Outcome::kOwner:
          plan_memo_.publish(t, plans[pos], feasible[pos] != 0);
          break;
        case select::PlanMemo::Outcome::kExactHit:
          plans[pos] = plan_memo_.cached_plan(t);
          feasible[pos] = plan_memo_.cached_feasible(t) ? 1 : 0;
          break;
        case select::PlanMemo::Outcome::kPending: {
          const select::Selection* cached = nullptr;
          if (plan_memo_.resolve(t, &cached)) {
            plans[pos] = *cached;  // the proven empty tour
            feasible[pos] = 1;
          } else {
            fallback.push_back(static_cast<std::uint32_t>(pos));
          }
          break;
        }
      }
    }
    solve_positions(fallback, open, pool, plans, feasible);
  }
  if (timed) {
    phase_.plan += mono_seconds() - t0;
    t0 = mono_seconds();
  }

  // Commit phase: payments, deliveries, events and the remaining fault
  // draws (abandonment, upload loss/corruption: pure hashes) replay exactly
  // as the legacy serial loop would — through the buffered walk/merge/apply
  // pipeline (sim/commit.h), or one user at a time under the debug oracle.
  if (params_.legacy_commit) {
    for (const std::uint32_t pos : visit_order) {
      if (dropped[pos]) {
        ++rm.dropped_users;
        continue;
      }
      MCS_ASSERT(feasible[pos] != 0, "selector returned an infeasible tour");
      commit_session(k, world_.users()[pos], pos, plans[pos], rm,
                     /*dirty=*/nullptr);
    }
  } else {
    // Freeze the round prices into a dense per-row snapshot — straight from
    // the mechanism's row table when it publishes one, else one virtual
    // reward() call per open task (instead of one per walked leg).
    const model::TaskStore& ts = world_.task_store();
    const std::vector<Money>* rows =
        reward_rows_of(*mechanism_, world_.num_tasks());
    commit_reward_.assign(world_.num_tasks(), 0.0);
    for (std::size_t i = 0; i < world_.num_tasks(); ++i) {
      if (open[i]) {
        commit_reward_[i] =
            rows != nullptr ? (*rows)[i] : mechanism_->reward(ts.id[i]);
      }
    }
    commit_sessions(k, visit_order, dropped, plans, feasible, commit_reward_,
                    rm);
  }
  if (timed) phase_.commit += mono_seconds() - t0;
}

int Simulator::shard_worker_count() const {
  return params_.shards == SimulatorParams::kAutoShards
             ? resolve_threads(0)
             : params_.shards;
}

Meters Simulator::shard_cell_size() const {
  const geo::BoundingBox& a = world_.area();
  return std::max(std::max(a.width(), a.height()) / 64.0, 1e-3);
}

bool Simulator::run_sessions_sharded(
    Round k, const std::vector<bool>& open,
    const std::vector<std::uint32_t>& visit_order, RoundMetrics& rm) {
  const int workers = std::max(shard_worker_count(), 1);
  const bool pooled_workers = workers > 1;
  if (pooled_workers && !ensure_plan_workers(workers)) {
    return false;  // selector predates clone(): take the legacy loop
  }

  const std::size_t n_users = world_.num_users();
  const std::size_t n_tasks = world_.num_tasks();
  const model::UserStore& us = world_.user_store();
  const model::TaskStore& ts = world_.task_store();
  const bool timed = params_.phase_timers;
  double t0 = timed ? mono_seconds() : 0.0;

  // --- Pre-pass: mobility and dropout over disjoint position ranges. Each
  // user's draws come from a private counter-based substream seeded from
  // (order_seed, round, position), so the result is a pure per-user
  // function — independent of execution order and worker count. Static
  // models (static-home, commute) draw nothing and land exactly where the
  // legacy serial stream puts them; stochastic models follow a different
  // but equally valid trajectory, still invariant across shard counts.
  // Mobility models must be stateless under concurrent calls (all shipped
  // ones are); dropout draws are stateless hashes already.
  shard_dropped_.assign(n_users, 0);
  const std::uint64_t round_base =
      hash_combine(mix64(params_.order_seed ^ 0x5ba9d0c4f1e2a687ULL),
                   static_cast<std::uint64_t>(k));
  const auto prepass_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t pos = lo; pos < hi; ++pos) {
      model::User& u = world_.users()[pos];
      Rng rng(hash_combine(round_base, static_cast<std::uint64_t>(pos)));
      u.set_location(mobility_->start_of_round(u, k, world_.area(), rng));
      if (faults_.enabled() && faults_.drop_user(u.id(), k)) {
        shard_dropped_[pos] = 1;
      }
    }
  };
  if (pooled_workers && n_users > 1) {
    const std::size_t chunk =
        (n_users + static_cast<std::size_t>(workers) - 1) /
        static_cast<std::size_t>(workers);
    for (int w = 0; w < workers; ++w) {
      const std::size_t lo =
          std::min(n_users, static_cast<std::size_t>(w) * chunk);
      const std::size_t hi = std::min(n_users, lo + chunk);
      if (lo < hi) plan_pool_->submit([&prepass_range, lo, hi] {
        prepass_range(lo, hi);
      });
    }
    plan_pool_->wait_idle();
  } else {
    prepass_range(0, n_users);
  }

  // --- Shard index: bucket users by the grid cell of their round-start
  // location (CSR layout; within a cell users keep ascending position, so
  // per-cell processing order is shard-count-invariant).
  const Meters cell = shard_cell_size();
  const geo::BoundingBox& area = world_.area();
  const int nx = std::max(1, static_cast<int>(std::ceil(area.width() / cell)));
  const int ny = std::max(1, static_cast<int>(std::ceil(area.height() / cell)));
  const std::size_t n_cells =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  const auto cell_of = [&](geo::Point p) {
    const int cx = std::clamp(static_cast<int>((p.x - area.lo.x) / cell), 0,
                              nx - 1);
    const int cy = std::clamp(static_cast<int>((p.y - area.lo.y) / cell), 0,
                              ny - 1);
    return static_cast<std::uint32_t>(cy) * static_cast<std::uint32_t>(nx) +
           static_cast<std::uint32_t>(cx);
  };
  shard_cell_of_.resize(n_users);
  shard_cell_start_.assign(n_cells + 1, 0);
  shard_users_.resize(n_users);
  if (pooled_workers && n_users >= 4096) {
    // Two-pass parallel bucketing: per-worker per-cell histograms, one
    // serial exclusive prefix over (cell-major, worker-minor), then a
    // parallel scatter from per-worker cursors. Worker w owns the
    // contiguous position range [w*chunk, (w+1)*chunk), and within a cell
    // the workers' slots follow ascending worker index — so every cell's
    // users land in ascending position order, exactly like the serial
    // counting sort.
    const std::size_t nw = static_cast<std::size_t>(workers);
    shard_bucket_counts_.assign(nw * n_cells, 0);
    const std::size_t chunk = (n_users + nw - 1) / nw;
    for (std::size_t w = 0; w < nw; ++w) {
      const std::size_t lo = std::min(n_users, w * chunk);
      const std::size_t hi = std::min(n_users, lo + chunk);
      if (lo < hi) {
        plan_pool_->submit([this, &us, &cell_of, n_cells, w, lo, hi] {
          std::uint32_t* counts = shard_bucket_counts_.data() + w * n_cells;
          for (std::size_t pos = lo; pos < hi; ++pos) {
            const std::uint32_t c = cell_of(us.location[pos]);
            shard_cell_of_[pos] = c;
            ++counts[c];
          }
        });
      }
    }
    plan_pool_->wait_idle();
    std::uint32_t run = 0;
    for (std::size_t c = 0; c < n_cells; ++c) {
      shard_cell_start_[c] = run;
      for (std::size_t w = 0; w < nw; ++w) {
        std::uint32_t& slot = shard_bucket_counts_[w * n_cells + c];
        const std::uint32_t cnt = slot;
        slot = run;  // becomes worker w's scatter cursor for cell c
        run += cnt;
      }
    }
    shard_cell_start_[n_cells] = run;
    for (std::size_t w = 0; w < nw; ++w) {
      const std::size_t lo = std::min(n_users, w * chunk);
      const std::size_t hi = std::min(n_users, lo + chunk);
      if (lo < hi) {
        plan_pool_->submit([this, n_cells, w, lo, hi] {
          std::uint32_t* cursor = shard_bucket_counts_.data() + w * n_cells;
          for (std::size_t pos = lo; pos < hi; ++pos) {
            shard_users_[cursor[shard_cell_of_[pos]]++] =
                static_cast<std::uint32_t>(pos);
          }
        });
      }
    }
    plan_pool_->wait_idle();
  } else {
    for (std::size_t pos = 0; pos < n_users; ++pos) {
      const std::uint32_t c = cell_of(us.location[pos]);
      shard_cell_of_[pos] = c;
      ++shard_cell_start_[c + 1];
    }
    for (std::size_t c = 0; c < n_cells; ++c) {
      shard_cell_start_[c + 1] += shard_cell_start_[c];
    }
    std::vector<std::uint32_t> fill(shard_cell_start_.begin(),
                                    shard_cell_start_.end() - 1);
    for (std::size_t pos = 0; pos < n_users; ++pos) {
      shard_users_[fill[shard_cell_of_[pos]]++] =
          static_cast<std::uint32_t>(pos);
    }
  }

  // --- Frozen round state: prices cached per task position (read from the
  // mechanism's dense row table when it publishes one; else one virtual
  // call per open task instead of one per candidate per user) and a spatial
  // index over the open tasks for reach-local candidate gathering.
  const std::vector<Money>* price_rows = reward_rows_of(*mechanism_, n_tasks);
  shard_reward_.assign(n_tasks, 0.0);
  geo::SpatialGrid task_grid(area, cell);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (!open[i]) continue;
    const Money r =
        price_rows != nullptr ? (*price_rows)[i] : mechanism_->reward(ts.id[i]);
    if (r <= 0.0) continue;
    shard_reward_[i] = r;
    task_grid.insert(static_cast<std::int32_t>(i), ts.location[i]);
  }
  if (timed) {
    phase_.prepass += mono_seconds() - t0;
    t0 = mono_seconds();
  }

  // --- Plan phase: contiguous cell ranges per worker. Every candidate list
  // is make_instance's (open, not contributed, priced, ascending task
  // position) minus the tasks beyond the user's travel-distance budget —
  // filtered with the exact predicate the DP front-end prunes with, after
  // an inflated-radius grid query that can only over-collect. The grid's
  // squared-distance hit test and the sqrt-based predicate round
  // differently within an ulp, hence the slack; the exact filter then
  // decides membership.
  shard_plans_.assign(n_users, select::Selection{});
  shard_feasible_.assign(n_users, 1);
  const bool memo_on = params_.memo.enabled;
  if (memo_on &&
      shard_memos_.size() != static_cast<std::size_t>(workers)) {
    shard_memos_.clear();
    for (int w = 0; w < workers; ++w) {
      shard_memos_.push_back(
          std::make_unique<select::PlanMemo>(params_.memo));
    }
  }
  const int exact_limit = selector_->exact_candidate_limit();

  const auto plan_cells = [&](int w, std::uint32_t c_lo, std::uint32_t c_hi) {
    const select::TaskSelector& solver =
        pooled_workers ? *plan_selectors_[static_cast<std::size_t>(w)]
                       : *selector_;
    select::PlanMemo* memo =
        memo_on ? shard_memos_[static_cast<std::size_t>(w)].get() : nullptr;
    std::vector<std::int32_t> hits;
    select::SelectionInstance inst;
    inst.travel = world_.travel();
    for (std::uint32_t c = c_lo; c < c_hi; ++c) {
      const std::uint32_t u_lo = shard_cell_start_[c];
      const std::uint32_t u_hi = shard_cell_start_[c + 1];
      if (u_lo == u_hi) continue;
      // One memo table per cell: the table contents depend only on the
      // cell's users (processed in position order), never on which worker
      // owns the cell — hits, misses and plans are shard-count-invariant.
      if (memo != nullptr) memo->begin_cell();
      for (std::uint32_t idx = u_lo; idx < u_hi; ++idx) {
        const std::uint32_t pos = shard_users_[idx];
        if (shard_dropped_[pos] != 0) continue;
        const model::User& u = world_.users()[pos];
        inst.start = us.location[pos];
        inst.time_budget = us.time_budget[pos];
        inst.candidates.clear();
        const Meters reach = inst.distance_budget();
        hits.clear();
        task_grid.for_each_in_radius(
            inst.start, reach * (1.0 + 1e-12) + 1e-9,
            [&hits](std::int32_t t) { hits.push_back(t); });
        std::sort(hits.begin(), hits.end());
        for (const std::int32_t t : hits) {
          const auto ti = static_cast<std::size_t>(t);
          if (geo::euclidean(inst.start, ts.location[ti]) > reach) continue;
          if (u.has_contributed(ts.id[ti])) continue;
          inst.candidates.push_back(
              {ts.id[ti], ts.location[ti], shard_reward_[ti]});
        }
        if (memo == nullptr) {
          shard_plans_[pos] = solver.select(inst);
          shard_feasible_[pos] =
              select::is_feasible(inst, shard_plans_[pos]) ? 1 : 0;
          continue;
        }
        // Single-pass memo: the owner of every class precedes its hits in
        // position order within the cell, so classify/solve/publish can
        // interleave without the legacy loop's phase barriers.
        const select::PlanMemo::Ticket ticket =
            memo->classify(inst, exact_limit);
        switch (ticket.outcome) {
          case select::PlanMemo::Outcome::kOwner: {
            shard_plans_[pos] = solver.select(inst);
            shard_feasible_[pos] =
                select::is_feasible(inst, shard_plans_[pos]) ? 1 : 0;
            memo->publish(ticket, shard_plans_[pos],
                          shard_feasible_[pos] != 0);
            break;
          }
          case select::PlanMemo::Outcome::kExactHit:
            shard_plans_[pos] = memo->cached_plan(ticket);
            shard_feasible_[pos] = memo->cached_feasible(ticket) ? 1 : 0;
            break;
          case select::PlanMemo::Outcome::kPending: {
            const select::Selection* cached = nullptr;
            if (memo->resolve(ticket, &cached)) {
              shard_plans_[pos] = *cached;  // the proven empty tour
              shard_feasible_[pos] = 1;
            } else {
              shard_plans_[pos] = solver.select(inst);
              shard_feasible_[pos] =
                  select::is_feasible(inst, shard_plans_[pos]) ? 1 : 0;
            }
            break;
          }
        }
      }
    }
  };

  if (pooled_workers) {
    // Contiguous cell ranges balanced by user count (any partition yields
    // the same campaign; balance only affects wall clock).
    std::vector<std::uint32_t> bounds(static_cast<std::size_t>(workers) + 1,
                                      0);
    bounds[static_cast<std::size_t>(workers)] =
        static_cast<std::uint32_t>(n_cells);
    std::uint32_t c = 0;
    for (int w = 1; w < workers; ++w) {
      const std::size_t target =
          static_cast<std::size_t>(w) * n_users /
          static_cast<std::size_t>(workers);
      while (c < n_cells && shard_cell_start_[c] < target) ++c;
      bounds[static_cast<std::size_t>(w)] = c;
    }
    for (int w = 0; w < workers; ++w) {
      const std::uint32_t lo = bounds[static_cast<std::size_t>(w)];
      const std::uint32_t hi = bounds[static_cast<std::size_t>(w) + 1];
      if (lo < hi) plan_pool_->submit([&plan_cells, w, lo, hi] {
        plan_cells(w, lo, hi);
      });
    }
    plan_pool_->wait_idle();
  } else {
    plan_cells(0, 0, static_cast<std::uint32_t>(n_cells));
  }

  if (memo_on) {
    // Harvest the workers' counters into the campaign aggregate. Counts are
    // summed, so the result does not depend on which worker owned which
    // cell; rounds advances once per sharded round.
    select::PlanMemoStats agg = plan_memo_.stats();
    ++agg.rounds;
    for (const auto& m : shard_memos_) {
      const select::PlanMemoStats& s = m->stats();
      agg.exact_hits += s.exact_hits;
      agg.fixup_hits += s.fixup_hits;
      agg.misses += s.misses;
      agg.fallbacks += s.fallbacks;
      m->reset_stats();
    }
    plan_memo_.restore_stats(agg);
  }
  if (timed) {
    phase_.plan += mono_seconds() - t0;
    t0 = mono_seconds();
  }

  // --- Commit: bit-identical to the legacy serial visit-order loop, via
  // the buffered walk/merge/apply pipeline (sim/commit.h) — or the loop
  // itself under the debug oracle. shard_reward_ already holds the frozen
  // per-row prices every plan of this round was computed against.
  if (params_.legacy_commit) {
    for (const std::uint32_t pos : visit_order) {
      if (shard_dropped_[pos] != 0) {
        ++rm.dropped_users;
        continue;
      }
      MCS_ASSERT(shard_feasible_[pos] != 0,
                 "selector returned an infeasible tour");
      commit_session(k, world_.users()[pos], pos, shard_plans_[pos], rm,
                     /*dirty=*/nullptr);
    }
  } else {
    commit_sessions(k, visit_order, shard_dropped_, shard_plans_,
                    shard_feasible_, shard_reward_, rm);
  }
  if (timed) phase_.commit += mono_seconds() - t0;
  return true;
}

const RoundMetrics& Simulator::step() {
  MCS_CHECK(next_round_ <= params_.max_rounds, "campaign already over");
  const Round k = next_round_;
  const bool intra_round = mechanism_->updates_within_round();
  const bool want_sharded = !intra_round && params_.shards != 0;
  const bool timed = params_.phase_timers;

  // Sharded rounds front-load the neighbor-cache rebuild (the mechanism's
  // first demand query would otherwise pay it serially): a no-op unless a
  // rebuild is due, and integer-exact either way.
  if (want_sharded) {
    const int w = shard_worker_count();
    if (w > 1 && ensure_plan_workers(w)) {
      world_.warm_neighbor_cache(*plan_pool_, w);
    }
  }

  // (1)+(2) Platform updates and publishes rewards for round k. With
  // reprice workers configured, a due neighbor-cache rebuild fans its count
  // pass over the dedicated reprice pool and the mechanism's sweep shards
  // over the same workers — both are reprice work, so both sit inside the
  // phase timer (unlike the sharded loop's untimed front-loaded warm above,
  // which belongs to the plan workers and predates this knob).
  double t0 = timed ? mono_seconds() : 0.0;
  const int reprice_workers = resolve_threads(params_.reprice_threads);
  if (reprice_workers > 1) {
    if (reprice_pool_ == nullptr || reprice_pool_->size() != reprice_workers) {
      reprice_pool_ = std::make_unique<ThreadPool>(reprice_workers);
    }
    world_.warm_neighbor_cache(*reprice_pool_, reprice_workers);
    mechanism_->set_reprice_workers(reprice_pool_.get(), reprice_workers);
  } else {
    mechanism_->set_reprice_workers(nullptr, 1);
  }
  mechanism_->update_rewards(world_, k);
  if (timed) phase_.reprice += mono_seconds() - t0;

  // Which tasks are open when the round begins. For round-granularity
  // mechanisms, selections are made against this snapshot and every
  // delivery within the round is honored; intra-round mechanisms reprice
  // before each user session, but a task that completes mid-round likewise
  // stays deliverable for the users of this round. Glitched tasks leave the
  // set before anything is published.
  std::vector<bool> open = open_tasks(world_, *mechanism_, k);

  RoundMetrics rm;
  rm.round = k;
  rm.withdrawn_tasks = apply_withdrawals(open, k);
  rm.user_profit.assign(world_.num_users(), 0.0);
  // Round-start snapshot of the published prices. For round-granularity
  // mechanisms these are exactly the prices every user of the round faces;
  // intra-round mechanisms reprice before each session, so their published
  // mean is re-recorded from the session prices below.
  const std::vector<Money>* price_rows =
      reward_rows_of(*mechanism_, world_.num_tasks());
  for (std::size_t i = 0; i < world_.num_tasks(); ++i) {
    if (!open[i]) continue;
    // Without a row snapshot, query by the task's id, not its vector
    // position — ids need not be dense (same bug class as the
    // DemandIndicator position/id mixup).
    rm.mean_open_reward += price_rows != nullptr
                               ? (*price_rows)[i]
                               : mechanism_->reward(world_.tasks()[i].id());
    ++rm.open_tasks;
  }
  if (rm.open_tasks > 0) rm.mean_open_reward /= rm.open_tasks;

  // Intra-round price recording: mean published price per user session,
  // averaged over the sessions that had at least one priced task.
  double session_mean_sum = 0.0;
  int priced_sessions = 0;

  const long long before = world_.total_received();
  const Money paid_before = budget_.spent();

  // Users take their sessions in a shuffled order each round. The order
  // holds positions into world().users() (iota over 0..U-1 and the
  // Fisher–Yates swaps are value-independent, so for dense ids this is the
  // same permutation the id-typed order produced).
  std::vector<std::uint32_t> visit_order(world_.num_users());
  std::iota(visit_order.begin(), visit_order.end(), std::uint32_t{0});
  Rng order_rng(params_.order_seed +
                0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(k));
  order_rng.shuffle(visit_order);

  // (3)+(4) Every user selects and performs a task set. The sharded loop
  // gathers candidates from a spatial index, so only the legacy paths pay
  // for the dense O(open^2) CandidatePool.
  if (!want_sharded || !run_sessions_sharded(k, open, visit_order, rm)) {
    const auto pool = build_round_pool(world_, *mechanism_, open);
    if (intra_round) {
      run_sessions_intra_round(k, open, pool, visit_order, rm,
                               session_mean_sum, priced_sessions);
    } else {
      run_sessions_planned(k, open, pool, visit_order, rm);
    }
  }

  // For intra-round mechanisms the round-start snapshot is not what users
  // were offered; replace it with the mean over the session prices.
  if (intra_round && priced_sessions > 0) {
    rm.mean_open_reward = session_mean_sum / priced_sessions;
  }

  // (5) Round bookkeeping; the next update_rewards() call recomputes
  // demands from this new state.
  rm.new_measurements = static_cast<int>(world_.total_received() - before);
  rm.total_measurements = world_.total_received();
  rm.coverage_pct = coverage_pct(world_);
  rm.completeness_pct = completeness_pct(world_);
  rm.payout = budget_.spent() - paid_before;
  rm.mean_user_profit = mean_of(rm.user_profit);

  history_.push_back(std::move(rm));
  ++next_round_;
  return history_.back();
}

CampaignMetrics Simulator::run() {
  while (next_round_ <= params_.max_rounds && !all_tasks_closed()) {
    step();
  }
  return summary();
}

CampaignMetrics Simulator::summary() const {
  CampaignMetrics m = summarize(world_, budget_.spent(), budget_.overdraft());
  // Fault accounting lives in the round history (the world only ever sees
  // accepted measurements); fold it into the campaign totals here.
  for (const RoundMetrics& rm : history_) {
    m.dropped_user_rounds += rm.dropped_users;
    m.abandoned_tours += rm.abandoned_tours;
    m.lost_measurements += rm.lost_measurements;
    m.corrupted_measurements += rm.corrupted_measurements;
    m.withdrawn_task_rounds += rm.withdrawn_tasks;
    m.wasted_travel += rm.wasted_travel;
  }
  const select::PlanMemoStats& memo = plan_memo_.stats();
  m.plan_exact_hits = memo.exact_hits;
  m.plan_fixup_hits = memo.fixup_hits;
  m.plan_misses = memo.misses;
  m.plan_fallbacks = memo.fallbacks;
  m.phase_prepass_s = phase_.prepass;
  m.phase_plan_s = phase_.plan;
  m.phase_reprice_s = phase_.reprice;
  m.phase_commit_s = phase_.commit;
  return m;
}

CampaignCheckpoint Simulator::checkpoint() const {
  CampaignCheckpoint c;
  c.params = params_;
  c.next_round = next_round_;
  c.world = world_to_json(world_);
  c.mobility_rng = mobility_rng_.state();
  c.mechanism = mechanism_->name();
  c.mechanism_state = mechanism_->state_to_json();
  c.selector = selector_->name();
  c.mobility = mobility_->name();
  c.budget_spent = budget_.spent_raw();
  c.budget_comp = budget_.compensation();
  c.history = history_;
  c.events = events_.events();
  c.memo_stats = plan_memo_.stats();
  c.phase_prepass_s = phase_.prepass;
  c.phase_plan_s = phase_.plan;
  c.phase_reprice_s = phase_.reprice;
  c.phase_commit_s = phase_.commit;
  return c;
}

Simulator Simulator::resume(
    const CampaignCheckpoint& ckpt,
    std::unique_ptr<incentive::IncentiveMechanism> mechanism,
    std::unique_ptr<select::TaskSelector> selector,
    std::unique_ptr<MobilityModel> mobility) {
  MCS_CHECK(ckpt.version == kCheckpointFormatVersion,
            "unsupported checkpoint format version");
  MCS_CHECK(mechanism != nullptr, "resume needs a mechanism");
  MCS_CHECK(selector != nullptr, "resume needs a selector");
  MCS_CHECK(ckpt.mechanism == mechanism->name(),
            "checkpoint was written by mechanism '" + ckpt.mechanism +
                "', not '" + mechanism->name() + "'");
  MCS_CHECK(ckpt.selector.empty() || ckpt.selector == selector->name(),
            "checkpoint was written with selector '" + ckpt.selector +
                "', not '" + selector->name() + "'");
  // Overlay the serialized pricing state before the first update: a
  // resumed round-granularity mechanism starts the next round exactly
  // where the original's last publish left it.
  mechanism->restore_state(ckpt.mechanism_state);

  Simulator s(world_from_json(ckpt.world), std::move(mechanism),
              std::move(selector), ckpt.params, std::move(mobility));
  MCS_CHECK(ckpt.mobility.empty() || ckpt.mobility == s.mobility_->name(),
            "checkpoint was written with mobility '" + ckpt.mobility +
                "', not '" + std::string(s.mobility_->name()) + "'");
  MCS_CHECK(ckpt.next_round >= 1 &&
                ckpt.next_round <= ckpt.params.max_rounds + 1,
            "checkpoint round cursor out of range");
  MCS_CHECK(ckpt.history.size() ==
                static_cast<std::size_t>(ckpt.next_round - 1),
            "checkpoint history length does not match its round cursor");
  s.mobility_rng_.restore_state(ckpt.mobility_rng);
  s.budget_.restore(ckpt.budget_spent, ckpt.budget_comp);
  s.events_.restore(ckpt.events);
  s.history_ = ckpt.history;
  s.next_round_ = ckpt.next_round;
  s.plan_memo_.restore_stats(ckpt.memo_stats);
  s.phase_.prepass = ckpt.phase_prepass_s;
  s.phase_.plan = ckpt.phase_plan_s;
  s.phase_.reprice = ckpt.phase_reprice_s;
  s.phase_.commit = ckpt.phase_commit_s;
  return s;
}

}  // namespace mcs::sim
