#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcs::sim {

void ScenarioParams::validate() const {
  MCS_CHECK(area_side > 0.0, "area side must be positive");
  MCS_CHECK(num_tasks >= 1, "need at least one task");
  MCS_CHECK(num_users >= 1, "need at least one user");
  MCS_CHECK(required_measurements >= 1, "phi must be at least 1");
  MCS_CHECK(required_spread >= 0, "phi spread must be non-negative");
  MCS_CHECK(deadline_min >= 1 && deadline_max >= deadline_min,
            "bad deadline range");
  MCS_CHECK(speed_mps > 0.0, "speed must be positive");
  MCS_CHECK(cost_per_meter >= 0.0, "cost per meter must be non-negative");
  MCS_CHECK(user_budget_min_s >= 0.0 && user_budget_max_s >= user_budget_min_s,
            "bad user budget range");
  MCS_CHECK(user_budget_quantum_s >= 0.0,
            "budget quantum must be non-negative");
  MCS_CHECK(home_sites >= 0, "home sites must be non-negative");
  MCS_CHECK(neighbor_radius >= 0.0, "neighbor radius must be non-negative");
}

namespace {

model::World make_empty_world(const ScenarioParams& p) {
  geo::TravelModel travel;
  travel.speed_mps = p.speed_mps;
  travel.cost_per_meter = p.cost_per_meter;
  return model::World(geo::BoundingBox::square(p.area_side), travel,
                      p.neighbor_radius);
}

void add_users(model::World& world, const ScenarioParams& p, Rng& rng) {
  // home_sites > 0: users pick their home from a shared site set, so many
  // of them start every round at bit-equal coordinates (see scenario.h).
  // The sites are drawn up front; with home_sites == 0 no extra draw
  // happens and the historical rng stream is untouched.
  std::vector<geo::Point> sites;
  sites.reserve(static_cast<std::size_t>(std::max(0, p.home_sites)));
  for (int s = 0; s < p.home_sites; ++s) {
    sites.push_back(
        {rng.uniform(0.0, p.area_side), rng.uniform(0.0, p.area_side)});
  }
  for (int i = 0; i < p.num_users; ++i) {
    geo::Point home;
    if (sites.empty()) {
      home = {rng.uniform(0.0, p.area_side), rng.uniform(0.0, p.area_side)};
    } else {
      home = sites[static_cast<std::size_t>(
          rng.uniform_int(0, p.home_sites - 1))];
    }
    Seconds budget = rng.uniform(p.user_budget_min_s, p.user_budget_max_s);
    if (p.user_budget_quantum_s > 0.0) {
      budget = p.user_budget_min_s +
               std::floor((budget - p.user_budget_min_s) /
                          p.user_budget_quantum_s) *
                   p.user_budget_quantum_s;
    }
    world.add_user(home, budget);
  }
}

Round draw_deadline(const ScenarioParams& p, Rng& rng) {
  return static_cast<Round>(rng.uniform_int(p.deadline_min, p.deadline_max));
}

int draw_required(const ScenarioParams& p, Rng& rng) {
  if (p.required_spread == 0) return p.required_measurements;
  const long long lo =
      std::max(1LL, static_cast<long long>(p.required_measurements) -
                        p.required_spread);
  const long long hi = p.required_measurements + p.required_spread;
  return static_cast<int>(rng.uniform_int(lo, hi));
}

}  // namespace

model::World generate_world(const ScenarioParams& params, Rng& rng) {
  params.validate();
  model::World world = make_empty_world(params);
  for (int i = 0; i < params.num_tasks; ++i) {
    const geo::Point loc{rng.uniform(0.0, params.area_side),
                         rng.uniform(0.0, params.area_side)};
    world.add_task(loc, draw_deadline(params, rng), draw_required(params, rng));
  }
  add_users(world, params, rng);
  return world;
}

model::World generate_clustered_world(const ScenarioParams& params,
                                      int clusters, Meters sigma, Rng& rng) {
  params.validate();
  MCS_CHECK(clusters >= 1, "need at least one cluster");
  MCS_CHECK(sigma >= 0.0, "cluster sigma must be non-negative");
  model::World world = make_empty_world(params);

  std::vector<geo::Point> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    centers.push_back({rng.uniform(0.0, params.area_side),
                       rng.uniform(0.0, params.area_side)});
  }
  for (int i = 0; i < params.num_tasks; ++i) {
    const geo::Point& center =
        centers[static_cast<std::size_t>(rng.uniform_int(0, clusters - 1))];
    const geo::Point raw{center.x + rng.normal(0.0, sigma),
                         center.y + rng.normal(0.0, sigma)};
    world.add_task(world.area().clamp(raw), draw_deadline(params, rng),
                   draw_required(params, rng));
  }
  add_users(world, params, rng);
  return world;
}

}  // namespace mcs::sim
