#include "sim/trace_analysis.h"

#include "common/error.h"

namespace mcs::sim {

std::vector<TaskTimeline> task_timelines(const model::World& world,
                                         const EventLog& log) {
  std::vector<TaskTimeline> out(world.num_tasks());
  std::vector<int> required(world.num_tasks());
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    out[i].task = static_cast<TaskId>(i);
    required[i] = world.tasks()[i].required();
  }
  for (const SensingEvent& e : log.events()) {
    MCS_CHECK(e.task >= 0 &&
                  static_cast<std::size_t>(e.task) < world.num_tasks(),
              "trace references unknown task");
    if (!e.accepted) continue;  // lost uploads never reached the platform
    TaskTimeline& t = out[static_cast<std::size_t>(e.task)];
    if (t.first_measurement == 0) t.first_measurement = e.round;
    ++t.measurements;
    t.total_paid += e.reward;
    if (t.completed_round == 0 &&
        t.measurements >= required[static_cast<std::size_t>(e.task)]) {
      t.completed_round = e.round;
    }
  }
  return out;
}

TraceSummary summarize_trace(const model::World& world, const EventLog& log) {
  TraceSummary s;
  const auto timelines = task_timelines(world, log);
  double cov_sum = 0.0;
  int covered = 0;
  double compl_sum = 0.0;
  int completed = 0;
  for (const TaskTimeline& t : timelines) {
    if (t.first_measurement > 0) {
      cov_sum += t.first_measurement;
      ++covered;
    } else {
      ++s.tasks_never_covered;
    }
    if (t.completed_round > 0) {
      compl_sum += t.completed_round;
      ++completed;
    } else {
      ++s.tasks_never_completed;
    }
  }
  if (covered > 0) s.mean_rounds_to_coverage = cov_sum / covered;
  if (completed > 0) s.mean_rounds_to_completion = compl_sum / completed;

  for (const SensingEvent& e : log.events()) {
    s.total_distance += e.leg_distance;
  }
  if (!log.events().empty()) {
    s.mean_leg_distance =
        s.total_distance / static_cast<double>(log.events().size());
  }
  return s;
}

}  // namespace mcs::sim
