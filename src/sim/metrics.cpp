#include "sim/metrics.h"

#include <algorithm>

#include "common/stats.h"
#include "sim/fairness.h"

namespace mcs::sim {

double coverage_pct(const model::World& world) {
  if (world.num_tasks() == 0) return 100.0;
  std::size_t covered = 0;
  for (const model::Task& t : world.tasks()) {
    if (t.received() > 0) ++covered;
  }
  return 100.0 * static_cast<double>(covered) /
         static_cast<double>(world.num_tasks());
}

double completeness_pct(const model::World& world) {
  long long required = 0;
  long long useful = 0;
  for (const model::Task& t : world.tasks()) {
    required += t.required();
    useful += std::min(t.received(), t.required());
  }
  if (required == 0) return 100.0;
  return 100.0 * static_cast<double>(useful) / static_cast<double>(required);
}

double tasks_completed_pct(const model::World& world) {
  if (world.num_tasks() == 0) return 100.0;
  std::size_t done = 0;
  for (const model::Task& t : world.tasks()) {
    if (t.completed()) ++done;
  }
  return 100.0 * static_cast<double>(done) /
         static_cast<double>(world.num_tasks());
}

double avg_measurements_capped(const model::World& world) {
  if (world.num_tasks() == 0) return 0.0;
  double sum = 0.0;
  for (const model::Task& t : world.tasks()) {
    sum += std::min(t.received(), t.required());
  }
  return sum / static_cast<double>(world.num_tasks());
}

double measurement_variance(const model::World& world) {
  // Useful (capped) counts, consistent with avg_measurements_capped: the
  // balance metric of Fig. 9(a) contrasts starved tasks against satisfied
  // ones, and a task cannot be more than satisfied.
  std::vector<double> counts;
  counts.reserve(world.num_tasks());
  for (const model::Task& t : world.tasks()) {
    counts.push_back(static_cast<double>(std::min(t.received(), t.required())));
  }
  return population_variance(counts);
}

CampaignMetrics summarize(const model::World& world, Money total_paid,
                          Money overdraft) {
  CampaignMetrics m;
  m.coverage_pct = coverage_pct(world);
  m.completeness_pct = completeness_pct(world);
  m.tasks_completed_pct = tasks_completed_pct(world);
  m.avg_measurements = avg_measurements_capped(world);
  m.measurement_variance = measurement_variance(world);
  m.total_paid = total_paid;
  m.total_measurements = world.total_received();
  m.avg_reward_per_measurement =
      m.total_measurements > 0
          ? total_paid / static_cast<Money>(m.total_measurements)
          : 0.0;
  m.budget_overdraft = overdraft;
  m.per_task_received.reserve(world.num_tasks());
  for (const model::Task& t : world.tasks()) {
    m.per_task_received.push_back(t.received());
  }
  const FairnessReport fr = fairness_report(world);
  m.reward_gini = fr.reward_gini;
  m.reward_jain = fr.reward_jain;
  m.active_user_fraction = fr.active_fraction;
  return m;
}

}  // namespace mcs::sim
