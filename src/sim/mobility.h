// Mobility models: where a user starts each sensing round.
//
// The paper's evaluation keeps a static population (each user works from a
// fixed home location, which is what makes fixed-reward mechanisms run dry
// after a few rounds). Real deployments have churn, so the simulator
// accepts pluggable mobility: users may teleport to fresh waypoints, drift
// around their home, or commute between two anchors. The extension bench
// (bench_ext_mobility) studies how each mechanism copes.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "geo/bbox.h"
#include "model/user.h"

namespace mcs::sim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual const char* name() const = 0;

  /// Where `user` begins round `k`. Called once per (user, round); `rng` is
  /// a per-simulation stream, so models may draw freely. Implementations
  /// must return a point inside `area`.
  virtual geo::Point start_of_round(const model::User& user, Round k,
                                    const geo::BoundingBox& area, Rng& rng) = 0;
};

/// The paper's model: every round starts from the fixed home location.
class StaticHomeMobility final : public MobilityModel {
 public:
  const char* name() const override { return "static-home"; }
  geo::Point start_of_round(const model::User& user, Round,
                            const geo::BoundingBox&, Rng&) override {
    return user.home();
  }
};

/// Full churn: a fresh uniform waypoint every round (e.g. a commuter
/// population sampled anew each day).
class RandomWaypointMobility final : public MobilityModel {
 public:
  const char* name() const override { return "random-waypoint"; }
  geo::Point start_of_round(const model::User&, Round,
                            const geo::BoundingBox& area, Rng& rng) override;
};

/// Local wander: Gaussian displacement of the home location, clamped to the
/// area. sigma controls how far daily life strays from home.
class GaussianDriftMobility final : public MobilityModel {
 public:
  explicit GaussianDriftMobility(Meters sigma);
  const char* name() const override { return "gaussian-drift"; }
  geo::Point start_of_round(const model::User& user, Round,
                            const geo::BoundingBox& area, Rng& rng) override;

  Meters sigma() const { return sigma_; }

 private:
  Meters sigma_;
};

/// Commuter pattern: odd rounds start from home, even rounds from a fixed
/// per-user workplace (home mirrored through the area center), modelling a
/// population that alternates between two anchors.
class CommuteMobility final : public MobilityModel {
 public:
  const char* name() const override { return "commute"; }
  geo::Point start_of_round(const model::User& user, Round k,
                            const geo::BoundingBox& area, Rng& rng) override;
};

enum class MobilityKind { kStaticHome, kRandomWaypoint, kGaussianDrift, kCommute };

MobilityKind parse_mobility(const std::string& name);
const char* mobility_name(MobilityKind kind);

/// Factory. `drift_sigma` only applies to the Gaussian-drift model.
std::unique_ptr<MobilityModel> make_mobility(MobilityKind kind,
                                             Meters drift_sigma = 300.0);

}  // namespace mcs::sim
