// Deterministic shard-parallel commit for round-granularity mechanisms.
//
// The legacy commit walked every user's planned tour serially in visit
// order, interleaving per-leg work that touches wildly scattered state: a
// task-view lookup and a virtual reward() call per leg, a push into that
// task's measurement vector, a contributor-bitset insert, a budget payment
// and an event append. At 10^6 users that walk is cache-miss bound and was
// the dominant serial Amdahl term of Simulator::step() (PR 8's timers).
//
// The replacement splits the commit into three phases (DESIGN.md §10):
//
//   A. *Parallel session walk* — contiguous visit-order segments fan out
//      over the plan workers. Each segment walks its users' tours (fault
//      draws are stateless hashes; per-user state writes touch disjoint
//      rows) and records every walked leg as a POD CommitLeg in segment
//      order, plus a per-segment Neumaier payment sub-account, a dirty-task
//      journal (ChunkedBitset of task rows) and integer fault counters.
//   B. *Serial ordered merge* — segments are replayed in segment order (=
//      global visit order): budget payments, event records and the
//      wasted-travel accumulation happen per leg, in exactly the order the
//      serial commit produced them, so every order-sensitive accumulator
//      (the budget tracker's compensated words, rm.wasted_travel, the
//      event trace) is bit-identical at any worker count.
//   C. *Task-grouped delivery apply* — the segments' dirty journals merge
//      (ChunkedBitset::operator|=) into the round's touched-row set, the
//      accepted legs are counting-sorted by task row (stable in leg order,
//      so each task receives its measurements in visit order), and the
//      measurement/contributor columns are written row-by-row in one
//      cache-friendly sweep — parallelizable over disjoint row ranges.
//
// Phases A and C scale with workers; phase B is a linear sweep over two
// doubles and an append-only log, a few ns per leg. On one core the same
// structure is still the fast path: phase A reads prices from a dense
// per-row snapshot instead of a virtual call per leg, and phase C turns
// the random-access measurement writes into per-task sequential appends.
#pragma once

#include <cstdint>
#include <vector>

#include "common/chunked_bitset.h"
#include "common/types.h"
#include "incentive/budget.h"
#include "model/store.h"
#include "sim/event_log.h"
#include "sim/metrics.h"

namespace mcs {
class ThreadPool;
}

namespace mcs::sim {

/// One walked tour leg. `accepted == 0` marks an upload lost in flight:
/// the leg was walked (it feeds wasted_travel and the event trace) but
/// carries no payment and no delivery.
struct CommitLeg {
  std::uint32_t task_row = 0;  // task position in the TaskStore
  UserId user = kInvalidUser;
  Money reward = 0.0;  // published reward paid on acceptance; 0 when lost
  Meters leg = 0.0;    // leg distance as the session walk computed it
  std::uint8_t accepted = 0;
  std::uint8_t corrupted = 0;
};

/// Thread-local effect buffer of one contiguous visit-order segment.
struct CommitSegment {
  std::vector<CommitLeg> legs;  // every walked leg, in visit order
  // Per-segment compensated payment total. The merge replays the individual
  // payments instead of folding these (budget.h explains why); the
  // sub-accounts cross-check the replay and bound segment payouts.
  incentive::BudgetTracker::SubAccount paid;
  ChunkedBitset dirty_rows;  // task rows with at least one accepted delivery
  int dropped = 0;
  int abandoned = 0;
  int lost = 0;
  int corrupted = 0;
  int active = 0;

  void clear() {
    legs.clear();
    paid.reset();
    dirty_rows.clear();
    dropped = abandoned = lost = corrupted = active = 0;
  }
};

/// Reusable scratch of the commit pipeline (owned by the Simulator so the
/// steady state stays allocation-free).
struct CommitScratch {
  std::vector<CommitSegment> segments;
  // Counting-sort state for phase C. `task_count` is sized to the task set
  // and kept all-zero between rounds; `row_start` is CSR offsets aligned
  // with `dirty_row_list` (ascending task rows with deliveries).
  std::vector<std::uint32_t> task_count;
  std::vector<std::uint32_t> row_start;
  std::vector<std::uint32_t> dirty_row_list;
  ChunkedBitset dirty;
  struct Delivery {
    UserId user = kInvalidUser;
    Money reward = 0.0;
  };
  std::vector<Delivery> ordered;  // accepted legs grouped by task row
};

/// Phase B: replay segment effects in segment order — budget payments and
/// event records per leg, fault counters and wasted travel exactly as the
/// serial commit interleaved them. `ts` supplies task ids for the trace.
void merge_commit_segments(const std::vector<CommitSegment>& segments,
                           Round k, const model::TaskStore& ts,
                           incentive::BudgetTracker& budget, EventLog& events,
                           RoundMetrics& rm);

/// Phase C: merge the dirty journals, counting-sort the accepted legs by
/// task row (stable, so per-task delivery order equals visit order) and
/// append measurements / contributor bits row by row. `pool` may be null
/// (serial apply); with a pool the touched rows split into `workers`
/// contiguous, delivery-balanced ranges — disjoint rows, no shared writes.
void apply_commit_deliveries(const std::vector<CommitSegment>& segments,
                             Round k, model::TaskStore& ts,
                             CommitScratch& scratch, ThreadPool* pool,
                             int workers);

}  // namespace mcs::sim
