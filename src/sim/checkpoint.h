// Crash-safe campaign checkpoints (the durability layer of ROADMAP item
// "platform-service mode").
//
// A CampaignCheckpoint captures everything a mid-campaign Simulator needs to
// resume *bit-identically*: the world snapshot (tasks, users, earnings), the
// mechanism's serialized pricing state, the mobility RNG stream, the budget
// tracker's compensated accumulator, the round cursor, the metrics history
// and the event trace. Checkpoints are taken at round boundaries only — the
// one point where no plan, session or journal is in flight.
//
// On-disk format ("envelope"): a single ASCII header line
//
//   MCS-CKPT v<version> crc32=<8 hex digits> len=<payload bytes>\n
//
// followed by exactly `len` bytes of compact JSON payload and a trailing
// newline. The CRC-32 covers the raw payload bytes, so truncation fails the
// length check and any bit flip fails the checksum — a loader never parses
// bytes it cannot first vouch for.
//
// Write protocol (CheckpointWriter): each checkpoint becomes a new
// generation file `gen-<N>.ckpt`, written to `gen-<N>.ckpt.tmp`, fsync'd,
// renamed over the final name, directory fsync'd, then generations beyond
// the newest `keep` are pruned. A crash at any point leaves either the
// previous generations untouched (tmp never renamed) or the new generation
// fully durable — load_latest_checkpoint scans newest-first and falls back
// past unreadable/corrupt generations, so the last *good* generation always
// wins. StorageFaults injects short writes, torn (published-then-corrupted)
// writes, ENOSPC and crash points for the recovery tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/types.h"
#include "select/plan_memo.h"
#include "sim/event_log.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace mcs::sim {

inline constexpr int kCheckpointFormatVersion = 1;

/// Complete resumable state of one campaign at a round boundary.
/// `scenario` is provenance (the generating ScenarioParams as JSON; null
/// when the world was hand-built) — resume validates it when present but
/// reconstructs nothing from it, the world snapshot is authoritative.
struct CampaignCheckpoint {
  int version = kCheckpointFormatVersion;
  Json scenario;
  // Caller-defined identity of the campaign that wrote this checkpoint
  // (null when unused). The simulator ignores it; consumers that reuse a
  // checkpoint directory across runs (the experiment runner's sweeps share
  // one --checkpoint-dir across sweep points) stamp it on write and refuse
  // to resume from a checkpoint whose provenance is not theirs.
  Json provenance;
  SimulatorParams params;
  Round next_round = 1;           // the round the resumed campaign runs next
  Json world;                     // world_to_json snapshot
  Rng::State mobility_rng{};      // the simulator's only sequential stream
  std::string mechanism;          // IncentiveMechanism::name(), validated
  Json mechanism_state;           // IncentiveMechanism::state_to_json()
  std::string selector;           // TaskSelector::name(), validated
  std::string mobility;           // MobilityModel::name(), validated
  Money budget_spent = 0.0;       // BudgetTracker raw accumulator word
  Money budget_comp = 0.0;        // BudgetTracker Neumaier compensation word
  std::vector<RoundMetrics> history;
  std::vector<SensingEvent> events;
  select::PlanMemoStats memo_stats;
  // Cumulative phase timers (SimulatorParams::phase_timers): carried so a
  // resumed campaign's summary() reports whole-campaign phase times, not
  // just the post-resume slice. All zero when the timers are off.
  double phase_prepass_s = 0.0;
  double phase_plan_s = 0.0;
  double phase_reprice_s = 0.0;
  double phase_commit_s = 0.0;
};

/// JSON payload <-> checkpoint. u64 seeds and RNG words travel as hex
/// strings (Json numbers are doubles; 2^64 does not fit). from_json throws
/// mcs::Error on any missing key, type mismatch or out-of-range value.
Json checkpoint_to_json(const CampaignCheckpoint& ckpt);
CampaignCheckpoint checkpoint_from_json(const Json& json);

/// Envelope <-> checkpoint. decode throws mcs::Error on a malformed header,
/// unsupported version, length mismatch (truncation) or CRC mismatch.
std::string encode_checkpoint(const CampaignCheckpoint& ckpt);
CampaignCheckpoint decode_checkpoint(const std::string& bytes);

/// Injectable storage faults for the recovery harness. Counters are in
/// bytes of the payload being written; -1 disables a fault. Exactly one
/// write is faulted per armed field (the writer clears it after firing), so
/// a test arms, writes, observes, and the next write is clean again.
struct StorageFaults {
  // Write only this many payload bytes to the tmp file, then "crash" (no
  // rename): the loader never sees the torn tmp.
  long long short_write_after = -1;
  // Write this many good payload bytes, fill the rest with garbage, and
  // PUBLISH the file via rename anyway: the loader sees a corrupt
  // generation and must fall back past it.
  long long torn_write_after = -1;
  // Simulate ENOSPC after this many payload bytes: the writer unlinks the
  // tmp file and throws mcs::Error (the caller keeps running; previous
  // generations stay good).
  long long enospc_after = -1;
  // Leave a fully written, fsync'd tmp file but never rename it.
  bool crash_before_rename = false;
  // Publish the new generation but skip pruning old ones.
  bool crash_before_prune = false;
  // Called at the instant the armed fault fires, before the writer cleans
  // up — a real kill-mid-write test calls _exit() here.
  std::function<void()> on_crash_point;

  bool armed() const {
    return short_write_after >= 0 || torn_write_after >= 0 ||
           enospc_after >= 0 || crash_before_rename || crash_before_prune;
  }
};

/// File name of generation `gen` inside a checkpoint directory.
std::string checkpoint_file_name(long long gen);

/// Atomic generational checkpoint writer for one campaign directory.
class CheckpointWriter {
 public:
  /// `dir` must exist. `keep` >= 1 generations are retained; the writer
  /// scans the directory so a resumed process continues the generation
  /// numbering instead of overwriting the files it is recovering from.
  explicit CheckpointWriter(std::string dir, int keep = 2);

  const std::string& dir() const { return dir_; }
  int keep() const { return keep_; }

  /// Arm fault injection for the next write() calls (see StorageFaults).
  void set_faults(StorageFaults faults) { faults_ = std::move(faults); }

  /// Write one checkpoint as the next generation (tmp + fsync + rename +
  /// dir fsync + prune). Returns true on a clean, fully durable generation;
  /// false when an armed crash-style fault simulated a process death
  /// mid-protocol (the disk then holds whatever the crash left — a torn
  /// tmp, a published-but-corrupt generation, or a durable one with stale
  /// siblings — and the loader's fallback sorts it out). Throws mcs::Error
  /// on real I/O errors and on the injected ENOSPC. Armed faults are
  /// one-shot: they disarm when they fire.
  bool write(const CampaignCheckpoint& ckpt);

  /// Path of the last successfully published generation ("" before any).
  const std::string& last_path() const { return last_path_; }

 private:
  std::string dir_;
  int keep_;
  long long next_gen_ = 1;
  std::string last_path_;
  StorageFaults faults_;
};

struct LoadedCheckpoint {
  CampaignCheckpoint checkpoint;
  std::string path;
  long long generation = 0;
  // Newer generations that existed but failed to decode (corruption the
  // fallback walked past); useful for logging and the recovery tests.
  int skipped_generations = 0;
};

/// True when `dir` holds at least one published generation file (readable
/// or not — has_checkpoint only looks at names, load decides goodness).
bool has_checkpoint(const std::string& dir);

/// Load and decode one specific envelope file. Throws mcs::Error when the
/// file cannot be read or fails any envelope/payload check.
CampaignCheckpoint load_checkpoint(const std::string& path);

/// Load the newest decodable generation in `dir`, skipping corrupt or
/// truncated ones (tmp files are never considered). Throws mcs::Error when
/// no usable generation exists.
LoadedCheckpoint load_latest_checkpoint(const std::string& dir);

}  // namespace mcs::sim
