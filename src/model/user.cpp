#include "model/user.h"

#include "common/error.h"

namespace mcs::model {

User::User(UserId id, geo::Point home, Seconds time_budget)
    : own_(std::make_unique<UserStore>()) {
  MCS_CHECK(id >= 0, "user id must be non-negative");
  MCS_CHECK(time_budget >= 0.0, "time budget must be non-negative");
  own_->id.push_back(id);
  own_->home.push_back(home);
  own_->location.push_back(home);
  own_->time_budget.push_back(time_budget);
  own_->total_reward.push_back(0.0);
  own_->total_cost.push_back(0.0);
  own_->contributed.emplace_back();
  store_ = own_.get();
  row_ = 0;
}

User::User(const User& o) : own_(std::make_unique<UserStore>()) {
  own_->id.push_back(o.id());
  own_->home.push_back(o.home());
  own_->location.push_back(o.location());
  own_->time_budget.push_back(o.time_budget());
  own_->total_reward.push_back(o.total_reward());
  own_->total_cost.push_back(o.total_cost());
  own_->contributed.push_back(o.store_->contributed[o.row_]);
  store_ = own_.get();
  row_ = 0;
}

void User::assign_fields(const User& o) {
  store_->id[row_] = o.id();
  store_->home[row_] = o.home();
  store_->location[row_] = o.location();
  store_->time_budget[row_] = o.time_budget();
  store_->total_reward[row_] = o.total_reward();
  store_->total_cost[row_] = o.total_cost();
  store_->contributed[row_] = o.store_->contributed[o.row_];
}

User& User::operator=(const User& o) {
  if (this != &o) assign_fields(o);
  return *this;
}

User& User::operator=(User&& o) noexcept {
  if (this != &o) assign_fields(o);
  return *this;
}

std::uint32_t User::append_row(UserStore& store, const User& u) {
  const auto row = static_cast<std::uint32_t>(store.size());
  store.id.push_back(u.id());
  store.home.push_back(u.home());
  store.location.push_back(u.location());
  store.time_budget.push_back(u.time_budget());
  store.total_reward.push_back(u.total_reward());
  store.total_cost.push_back(u.total_cost());
  store.contributed.push_back(u.store_->contributed[u.row_]);
  return row;
}

void User::set_time_budget(Seconds budget) {
  MCS_CHECK(budget >= 0.0, "time budget must be non-negative");
  store_->time_budget[row_] = budget;
}

}  // namespace mcs::model
