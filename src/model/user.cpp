#include "model/user.h"

#include "common/error.h"

namespace mcs::model {

User::User(UserId id, geo::Point home, Seconds time_budget)
    : id_(id), home_(home), time_budget_(time_budget), location_(home) {
  MCS_CHECK(id >= 0, "user id must be non-negative");
  MCS_CHECK(time_budget >= 0.0, "time budget must be non-negative");
}

void User::set_time_budget(Seconds budget) {
  MCS_CHECK(budget >= 0.0, "time budget must be non-negative");
  time_budget_ = budget;
}

}  // namespace mcs::model
