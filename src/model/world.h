// World: the shared state of one crowdsensing deployment — the task set, the
// user population, the deployment area and the travel model. Owned by the
// simulator; incentive mechanisms and selectors observe it read-only.
#pragma once

#include <vector>

#include "common/types.h"
#include "geo/bbox.h"
#include "geo/path.h"
#include "geo/spatial_grid.h"
#include "model/task.h"
#include "model/user.h"

namespace mcs::model {

class World {
 public:
  World(geo::BoundingBox area, geo::TravelModel travel, Meters neighbor_radius);

  const geo::BoundingBox& area() const { return area_; }
  const geo::TravelModel& travel() const { return travel_; }
  Meters neighbor_radius() const { return neighbor_radius_; }

  TaskId add_task(geo::Point location, Round deadline, int required);
  UserId add_user(geo::Point home, Seconds time_budget);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_users() const { return users_.size(); }

  Task& task(TaskId id);
  const Task& task(TaskId id) const;
  User& user(UserId id);
  const User& user(UserId id) const;

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<User>& users() const { return users_; }
  std::vector<Task>& tasks() { return tasks_; }
  std::vector<User>& users() { return users_; }

  /// N_i for every task: number of users within neighbor_radius of the task
  /// location, computed with a spatial grid in O(n + m * r-cells).
  std::vector<int> neighbor_counts() const;

  /// Total number of measurements required across tasks (sum of phi_i);
  /// the denominator of Eq. 9.
  long long total_required() const;

  /// Total measurements received across tasks.
  long long total_received() const;

  /// Total rewards paid out so far (must never exceed the platform budget).
  Money total_paid() const;

 private:
  geo::BoundingBox area_;
  geo::TravelModel travel_;
  Meters neighbor_radius_;
  std::vector<Task> tasks_;
  std::vector<User> users_;
};

}  // namespace mcs::model
