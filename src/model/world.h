// World: the shared state of one crowdsensing deployment — the task set, the
// user population, the deployment area and the travel model. Owned by the
// simulator; incentive mechanisms and selectors observe it read-only.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "geo/bbox.h"
#include "geo/path.h"
#include "geo/spatial_grid.h"
#include "model/task.h"
#include "model/user.h"

namespace mcs::model {

class World {
 public:
  World(geo::BoundingBox area, geo::TravelModel travel, Meters neighbor_radius);

  const geo::BoundingBox& area() const { return area_; }
  const geo::TravelModel& travel() const { return travel_; }
  Meters neighbor_radius() const { return neighbor_radius_; }

  TaskId add_task(geo::Point location, Round deadline, int required);
  UserId add_user(geo::Point home, Seconds time_budget);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_users() const { return users_.size(); }

  Task& task(TaskId id);
  const Task& task(TaskId id) const;
  User& user(UserId id);
  const User& user(UserId id) const;

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<User>& users() const { return users_; }
  std::vector<Task>& tasks() { return tasks_; }
  std::vector<User>& users() { return users_; }

  /// N_i for every task: number of users within neighbor_radius of the task
  /// location (one entry per task *position*). Backed by a persistent
  /// spatial grid: the first call (and any call after the task set or the
  /// population changed) builds the grid and counts every task; subsequent
  /// calls diff the user positions against the last-synced snapshot and
  /// delta-update only the counts of tasks near a moved user — O(moved)
  /// instead of O(U + T·r-cells) per call, and allocation-free once warm.
  /// The cache is synced lazily on read, so callers may move users through
  /// User::set_location freely between calls. Counts are exact integers:
  /// the delta path uses the same distance predicate as a full recount, so
  /// the result is always identical to the brute-force O(U·T) scan.
  /// NOT thread-safe (the cache mutates under const): concurrent readers
  /// must hold distinct World instances, which is what the experiment
  /// runner's one-simulator-per-repetition shape guarantees.
  const std::vector<int>& neighbor_counts() const;

  /// The maximum of neighbor_counts() (Nmax, the X3 denominator of Eq. 6),
  /// maintained incrementally by a count histogram: O(1) amortized per
  /// count change instead of an O(T) max_element per query. Syncs the cache
  /// exactly like neighbor_counts() and always equals
  /// *max_element(neighbor_counts()) (0 when there are no tasks).
  int neighbor_max_count() const;

  /// Everything that happened to the neighbor counts since the journal was
  /// last taken. `rebuilt` true means the cache was rebuilt from scratch
  /// (task/user set changed, or first use) and `changed` lists nothing
  /// useful — the consumer must assume every count moved. Otherwise
  /// `changed` holds the task positions whose count was touched since the
  /// last take, deduplicated, in first-touch order (it may include
  /// positions whose count changed and changed back; consumers recompute
  /// from the current count, so that is merely redundant work, never
  /// wrong). The pointer stays valid until the next take.
  struct NeighborDelta {
    bool rebuilt = true;
    const std::vector<std::size_t>* changed = nullptr;
    /// The synced counts and running max at take time — identical to what
    /// neighbor_counts()/neighbor_max_count() would return, carried here so
    /// the consumer does not pay the location-diff sync three times over.
    const std::vector<int>* counts = nullptr;
    int max_count = 0;
  };

  /// Sync the cache and take the journal (clearing it). SINGLE-CONSUMER:
  /// taking is destructive, so exactly one reader may pair cached derived
  /// state with the journal — in this codebase the simulator's one
  /// mechanism per world (OnDemandMechanism's reprice fast path).
  /// neighbor_counts()/neighbor_max_count() never disturb the journal.
  NeighborDelta take_neighbor_changes() const;

  /// Total number of measurements required across tasks (sum of phi_i);
  /// the denominator of Eq. 9.
  long long total_required() const;

  /// Total measurements received across tasks.
  long long total_received() const;

  /// Total rewards paid out so far (must never exceed the platform budget).
  Money total_paid() const;

 private:
  /// True when the cached grids still describe the current task set and
  /// user-population size (locations may have drifted — that is what the
  /// delta sync handles; adding/removing tasks or users forces a rebuild).
  bool neighbor_cache_usable() const;
  void rebuild_neighbor_cache() const;
  void sync_neighbor_cache() const;

  geo::BoundingBox area_;
  geo::TravelModel travel_;
  Meters neighbor_radius_;
  std::vector<Task> tasks_;
  std::vector<User> users_;

  /// Apply a +-1 count change to task `pos`, keeping the histogram-backed
  /// running max and the change journal in step.
  void bump_neighbor_count(std::size_t pos, int delta) const;

  // Lazily maintained neighbor-count cache (see neighbor_counts()).
  struct NeighborCache {
    bool valid = false;
    std::optional<geo::SpatialGrid> user_grid;  // ids are user positions
    std::optional<geo::SpatialGrid> task_grid;  // ids are task positions
    std::vector<geo::Point> user_pos;           // last-synced user locations
    std::vector<geo::Point> task_pos;           // task set at build time
    std::vector<int> counts;                    // one per task position
    // Running max: count_freq[c] = number of tasks with count c; max_count
    // tracks the largest non-empty bucket (0 when there are no tasks).
    int max_count = 0;
    std::vector<int> count_freq;
    // Change journal (see take_neighbor_changes): `changed` accumulates
    // first-touch task positions, deduplicated by a generation-stamped mark
    // per task; `taken` is the buffer handed to the consumer (swap keeps
    // the steady state allocation-free). `rebuilt_pending` stays set from a
    // rebuild until the next take.
    std::vector<std::size_t> changed;
    std::vector<std::size_t> taken;
    std::vector<std::uint32_t> changed_mark;
    std::uint32_t changed_gen = 1;
    bool rebuilt_pending = true;
  };
  mutable NeighborCache ncache_;
};

}  // namespace mcs::model
