// World: the shared state of one crowdsensing deployment — the task set, the
// user population, the deployment area and the travel model. Owned by the
// simulator; incentive mechanisms and selectors observe it read-only.
//
// Storage is structure-of-arrays (model/store.h): every entity field lives
// in its own dense column, and the `User&`/`Task&` references handed out
// here are row views (model/user.h, model/task.h) — same accessor API as
// the historical array-of-objects layout, but single-field sweeps (mobility
// writes, neighbor-cache location diffs, shard bucketing) stream packed
// cache lines. Rows are append-only, so positions (row indices) are stable
// and views are only invalidated by destroying or copy-assigning the World.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "geo/bbox.h"
#include "geo/path.h"
#include "geo/spatial_grid.h"
#include "model/store.h"
#include "model/task.h"
#include "model/user.h"
#include "model/view_list.h"

namespace mcs {
class ThreadPool;
}

namespace mcs::model {

using TaskList = ViewList<Task, TaskStore>;
using UserList = ViewList<User, UserStore>;

class World {
 public:
  World(geo::BoundingBox area, geo::TravelModel travel, Meters neighbor_radius);

  // Stores are heap-held, so moving a World never invalidates the row views
  // (they point into the stores, not into the World object). Copying clones
  // the stores and regenerates the views over the clone.
  World(World&& o) noexcept;
  World& operator=(World&& o) noexcept;
  World(const World& o);
  World& operator=(const World& o);

  const geo::BoundingBox& area() const { return area_; }
  const geo::TravelModel& travel() const { return travel_; }
  Meters neighbor_radius() const { return neighbor_radius_; }

  TaskId add_task(geo::Point location, Round deadline, int required);
  UserId add_user(geo::Point home, Seconds time_budget);

  std::size_t num_tasks() const { return tstore_->size(); }
  std::size_t num_users() const { return ustore_->size(); }

  Task& task(TaskId id);
  const Task& task(TaskId id) const;
  User& user(UserId id);
  const User& user(UserId id) const;

  const TaskList& tasks() const { return tasks_; }
  const UserList& users() const { return users_; }
  TaskList& tasks() { return tasks_; }
  UserList& users() { return users_; }

  /// The raw structure-of-arrays columns. Read-only: the hot phases that
  /// sweep a single field (neighbor sync, shard bucketing, the sharded
  /// pre-pass) read these directly instead of striding over views.
  const UserStore& user_store() const { return *ustore_; }
  const TaskStore& task_store() const { return *tstore_; }

  /// Mutable column access for the simulator's bulk commit-apply path,
  /// which writes deliveries grouped by task row / user row instead of
  /// going through one view call per field. Restricted by contract to the
  /// per-entity *state* columns (measurements, contributors, contributed,
  /// location, total_reward, total_cost): row counts, ids and task
  /// geometry must not change through these — the neighbor cache, the row
  /// views and the id→row indices key on those.
  UserStore& user_store_mut() { return *ustore_; }
  TaskStore& task_store_mut() { return *tstore_; }

  /// N_i for every task: number of users within neighbor_radius of the task
  /// location (one entry per task *position*). Backed by a persistent
  /// spatial grid: the first call (and any call after the task set or the
  /// population changed) builds the grid and counts every task; subsequent
  /// calls diff the user positions against the last-synced snapshot and
  /// delta-update only the counts of tasks near a moved user — O(moved)
  /// instead of O(U + T·r-cells) per call, and allocation-free once warm.
  /// The cache is synced lazily on read, so callers may move users through
  /// User::set_location freely between calls. Counts are exact integers:
  /// the delta path uses the same distance predicate as a full recount, so
  /// the result is always identical to the brute-force O(U·T) scan.
  /// NOT thread-safe (the cache mutates under const): concurrent readers
  /// must hold distinct World instances, which is what the experiment
  /// runner's one-simulator-per-repetition shape guarantees. Debug builds
  /// carry a tripwire: concurrent entry to any cache-syncing accessor
  /// throws mcs::Error instead of racing silently.
  const std::vector<int>& neighbor_counts() const;

  /// The maximum of neighbor_counts() (Nmax, the X3 denominator of Eq. 6),
  /// maintained incrementally by a count histogram: O(1) amortized per
  /// count change instead of an O(T) max_element per query. Syncs the cache
  /// exactly like neighbor_counts() and always equals
  /// *max_element(neighbor_counts()) (0 when there are no tasks).
  int neighbor_max_count() const;

  /// Rebuild the neighbor cache with the per-task counting fanned out over
  /// `pool` when a rebuild is due (first use, or the task/user set
  /// changed). A no-op when the cache is merely stale — the delta sync is
  /// O(moved) and stays serial. Counts are integer-exact and identical to
  /// the serial rebuild: workers only run read-only count_radius queries
  /// over the freshly built user grid into disjoint count slots, and the
  /// histogram/journal bookkeeping is rebuilt serially afterwards. The
  /// caller must be the cache's single consumer (same contract as
  /// neighbor_counts()).
  void warm_neighbor_cache(ThreadPool& pool, int workers) const;

  /// Everything that happened to the neighbor counts since the journal was
  /// last taken. `rebuilt` true means the cache was rebuilt from scratch
  /// (task/user set changed, or first use) and `changed` lists nothing
  /// useful — the consumer must assume every count moved. Otherwise
  /// `changed` holds the task positions whose count was touched since the
  /// last take, deduplicated, in first-touch order (it may include
  /// positions whose count changed and changed back; consumers recompute
  /// from the current count, so that is merely redundant work, never
  /// wrong). The pointer stays valid until the next take.
  struct NeighborDelta {
    bool rebuilt = true;
    const std::vector<std::size_t>* changed = nullptr;
    /// The synced counts and running max at take time — identical to what
    /// neighbor_counts()/neighbor_max_count() would return, carried here so
    /// the consumer does not pay the location-diff sync three times over.
    const std::vector<int>* counts = nullptr;
    int max_count = 0;
  };

  /// Sync the cache and take the journal (clearing it). SINGLE-CONSUMER:
  /// taking is destructive, so exactly one reader may pair cached derived
  /// state with the journal — in this codebase the simulator's one
  /// mechanism per world (OnDemandMechanism's reprice fast path).
  /// neighbor_counts()/neighbor_max_count() never disturb the journal.
  NeighborDelta take_neighbor_changes() const;

  /// Total number of measurements required across tasks (sum of phi_i);
  /// the denominator of Eq. 9.
  long long total_required() const;

  /// Total measurements received across tasks.
  long long total_received() const;

  /// Total rewards paid out so far (must never exceed the platform budget).
  Money total_paid() const;

 private:
  /// True when the cached grids still describe the current task set and
  /// user-population size (locations may have drifted — that is what the
  /// delta sync handles; adding/removing tasks or users forces a rebuild).
  bool neighbor_cache_usable() const;
  void rebuild_neighbor_cache() const;
  void sync_neighbor_cache() const;

  /// Shared serial prologue/epilogue of the serial and pooled rebuilds:
  /// grids + position snapshots, then histogram/journal reconstruction.
  void rebuild_neighbor_grids() const;
  void rebuild_neighbor_derived() const;

  geo::BoundingBox area_;
  geo::TravelModel travel_;
  Meters neighbor_radius_;
  std::unique_ptr<TaskStore> tstore_;
  std::unique_ptr<UserStore> ustore_;
  TaskList tasks_;
  UserList users_;

  // Lazily maintained neighbor-count cache (see neighbor_counts()).
  //
  // Both spatial indices are immutable CSR snapshots (geo::FrozenGrid)
  // taken at rebuild time. The task grid stays exact between rebuilds by
  // contract (task locations are immutable; any task/user set change forces
  // a rebuild through neighbor_cache_usable()), and the delta sync queries
  // only it. The user grid is consulted only during the rebuild count pass
  // and goes stale as users move afterwards — nothing reads it between
  // rebuilds, which is exactly why the sync no longer pays per-moved-user
  // remove/insert maintenance the old mutable grid demanded.
  struct NeighborCache {
    bool valid = false;
    geo::FrozenGrid user_grid;         // ids are user positions
    geo::FrozenGrid task_grid;         // ids are task positions
    std::vector<geo::Point> user_pos;  // last-synced user locations
    std::vector<geo::Point> task_pos;  // task set at build time
    std::vector<int> counts;                    // one per task position
    // Running max: count_freq[c] = number of tasks with count c; max_count
    // tracks the largest non-empty bucket (0 when there are no tasks).
    int max_count = 0;
    std::vector<int> count_freq;
    // Change journal (see take_neighbor_changes): `changed` accumulates
    // first-touch task positions, deduplicated by a generation-stamped mark
    // per task; `taken` is the buffer handed to the consumer (swap keeps
    // the steady state allocation-free). `rebuilt_pending` stays set from a
    // rebuild until the next take.
    std::vector<std::size_t> changed;
    std::vector<std::size_t> taken;
    std::vector<std::uint32_t> changed_mark;
    std::uint32_t changed_gen = 1;
    bool rebuilt_pending = true;
    // Batched-sync scratch (sync_neighbor_cache): net count delta per task
    // and the first-touch list of the sync in flight. Both are left empty /
    // all-zero when the sync returns, so they carry no state between calls.
    std::vector<int> delta;
    std::vector<std::size_t> touched;
    std::vector<std::uint32_t> touch_mark;
  };
  mutable NeighborCache ncache_;
  // Debug tripwire for the documented NOT-thread-safe contract: every
  // cache-syncing entry point claims this flag for its duration, so two
  // concurrent readers fail an MCS_ASSERT instead of racing the mutable
  // cache. Compiled to nothing under NDEBUG.
  mutable std::atomic<int> ncache_busy_{0};
};

}  // namespace mcs::model
