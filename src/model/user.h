// A mobile user (worker) in the WST-mode crowdsensing system.
//
// Users are rational: each round they select the task set maximizing their
// profit (total reward minus travel cost) subject to a per-round travel-time
// budget. A user starts every round from its home location.
#pragma once

#include <unordered_set>

#include "common/types.h"
#include "geo/point.h"

namespace mcs::model {

class User {
 public:
  User(UserId id, geo::Point home, Seconds time_budget);

  UserId id() const { return id_; }
  geo::Point home() const { return home_; }

  /// Per-round travel-time budget B_ui (seconds).
  Seconds time_budget() const { return time_budget_; }
  void set_time_budget(Seconds budget);

  /// Location at the start of the current round.
  geo::Point location() const { return location_; }
  void set_location(geo::Point p) { location_ = p; }
  void return_home() { location_ = home_; }

  bool has_contributed(TaskId task) const {
    return contributed_.count(task) != 0;
  }
  void mark_contributed(TaskId task) { contributed_.insert(task); }
  std::size_t tasks_contributed() const { return contributed_.size(); }

  /// Lifetime earnings bookkeeping.
  Money total_reward() const { return total_reward_; }
  Money total_cost() const { return total_cost_; }
  Money total_profit() const { return total_reward_ - total_cost_; }
  void add_earnings(Money reward, Money cost) {
    total_reward_ += reward;
    total_cost_ += cost;
  }

 private:
  UserId id_;
  geo::Point home_;
  Seconds time_budget_;
  geo::Point location_;
  std::unordered_set<TaskId> contributed_;
  Money total_reward_ = 0.0;
  Money total_cost_ = 0.0;
};

}  // namespace mcs::model
