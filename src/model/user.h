// A mobile user (worker) in the WST-mode crowdsensing system.
//
// Users are rational: each round they select the task set maximizing their
// profit (total reward minus travel cost) subject to a per-round travel-time
// budget. A user starts every round from its home location.
//
// Storage: `User` is a thin VIEW over one row of a structure-of-arrays
// UserStore (model/store.h). A view constructed by the World (via
// World::users()) reads and writes the World's columns; a User constructed
// standalone (the historical value type, still used by tests and
// serialization) owns a private single-row store, so the accessor API is
// identical either way. Semantics:
//   * copy-construction yields a standalone deep copy (value semantics —
//     mutating the copy never touches the world);
//   * copy/move-assignment assigns the field VALUES into the target's
//     existing storage (a view target writes through to its world row,
//     exactly like assigning into the old std::vector<User> element);
//   * move-construction transfers the representation (a moved-from view is
//     empty and only destructible).
// Views are invalidated by their World's destruction or copy-assignment,
// never by appending users (rows are append-only and indices are stable).
#pragma once

#include <memory>
#include <utility>

#include "common/types.h"
#include "geo/point.h"
#include "model/store.h"

namespace mcs::model {

template <class ViewT, class StoreT>
class ViewList;

class User {
 public:
  /// Standalone user backed by its own single-row store.
  User(UserId id, geo::Point home, Seconds time_budget);

  User(const User& o);
  User(User&& o) noexcept
      : store_(o.store_), row_(o.row_), own_(std::move(o.own_)) {
    o.store_ = nullptr;
  }
  User& operator=(const User& o);
  User& operator=(User&& o) noexcept;

  UserId id() const { return store_->id[row_]; }
  geo::Point home() const { return store_->home[row_]; }

  /// Per-round travel-time budget B_ui (seconds).
  Seconds time_budget() const { return store_->time_budget[row_]; }
  void set_time_budget(Seconds budget);

  /// Location at the start of the current round.
  geo::Point location() const { return store_->location[row_]; }
  void set_location(geo::Point p) { store_->location[row_] = p; }
  void return_home() { store_->location[row_] = store_->home[row_]; }

  bool has_contributed(TaskId task) const {
    return store_->contributed[row_].test(task);
  }
  void mark_contributed(TaskId task) { store_->contributed[row_].set(task); }
  std::size_t tasks_contributed() const {
    return store_->contributed[row_].count();
  }

  /// Lifetime earnings bookkeeping.
  Money total_reward() const { return store_->total_reward[row_]; }
  Money total_cost() const { return store_->total_cost[row_]; }
  Money total_profit() const { return total_reward() - total_cost(); }
  void add_earnings(Money reward, Money cost) {
    store_->total_reward[row_] += reward;
    store_->total_cost[row_] += cost;
  }

 private:
  friend class ViewList<User, UserStore>;
  friend class World;

  User(UserStore* store, std::uint32_t row) : store_(store), row_(row) {}

  /// Append this user's field values as a fresh row of `store`.
  static std::uint32_t append_row(UserStore& store, const User& u);

  /// Overwrite this view's row with `o`'s field values.
  void assign_fields(const User& o);

  UserStore* store_ = nullptr;
  std::uint32_t row_ = 0;
  std::unique_ptr<UserStore> own_;  // non-null only for standalone users
};

}  // namespace mcs::model
