// A location-dependent sensing task.
//
// Each task t_i lives at a fixed location L_ti, must be finished before its
// deadline D_ti (expressed in sensing rounds), and needs phi_i independent
// measurements from *distinct* users (each user may contribute to a task at
// most once — §III-A of the paper).
#pragma once

#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "geo/point.h"

namespace mcs::model {

struct Measurement {
  UserId user = kInvalidUser;
  Round round = 0;
  Money reward_paid = 0.0;  // reward at the round the measurement arrived
};

class Task {
 public:
  Task(TaskId id, geo::Point location, Round deadline, int required);

  TaskId id() const { return id_; }
  geo::Point location() const { return location_; }
  Round deadline() const { return deadline_; }
  int required() const { return required_; }

  /// pi_i: number of measurements received so far.
  int received() const { return static_cast<int>(measurements_.size()); }

  /// Completing progress pi_i / phi_i in [0, 1].
  double progress() const;

  bool completed() const { return received() >= required_; }

  /// True when round k is already past the deadline (no rounds remain).
  bool expired_at(Round k) const { return k > deadline_; }

  /// Whether this task still accepts data at round k from this user.
  bool accepts(UserId user, Round k) const;

  bool has_contributed(UserId user) const {
    return contributors_.count(user) != 0;
  }

  /// Record a measurement. Enforces the distinct-user rule and the deadline;
  /// throws mcs::Error when violated. A task may end up with more than
  /// phi_i measurements: users commit against the rewards published at the
  /// start of a round, so every delivery within the round a task completes
  /// is still accepted and paid. Completed tasks are withdrawn (reward 0,
  /// never selectable) from the next round on.
  void add_measurement(UserId user, Round round, Money reward_paid);

  const std::vector<Measurement>& measurements() const { return measurements_; }

  /// Total rewards paid out for this task so far.
  Money total_paid() const;

 private:
  TaskId id_;
  geo::Point location_;
  Round deadline_;
  int required_;
  std::vector<Measurement> measurements_;
  std::unordered_set<UserId> contributors_;
};

}  // namespace mcs::model
