// A location-dependent sensing task.
//
// Each task t_i lives at a fixed location L_ti, must be finished before its
// deadline D_ti (expressed in sensing rounds), and needs phi_i independent
// measurements from *distinct* users (each user may contribute to a task at
// most once — §III-A of the paper).
//
// Storage: like User, `Task` is a thin view over one row of a
// structure-of-arrays TaskStore (model/store.h) — the World's row for views
// handed out by World::tasks(), a private single-row store for standalone
// construction. Copy-construction deep-copies to a standalone value;
// assignment writes field values through to the target's storage;
// move-construction transfers the representation. See model/user.h for the
// full semantics.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "geo/point.h"
#include "model/store.h"

namespace mcs::model {

template <class ViewT, class StoreT>
class ViewList;

class Task {
 public:
  /// Standalone task backed by its own single-row store.
  Task(TaskId id, geo::Point location, Round deadline, int required);

  Task(const Task& o);
  Task(Task&& o) noexcept
      : store_(o.store_), row_(o.row_), own_(std::move(o.own_)) {
    o.store_ = nullptr;
  }
  Task& operator=(const Task& o);
  Task& operator=(Task&& o) noexcept;

  TaskId id() const { return store_->id[row_]; }
  geo::Point location() const { return store_->location[row_]; }
  Round deadline() const { return store_->deadline[row_]; }
  int required() const { return store_->required[row_]; }

  /// pi_i: number of measurements received so far.
  int received() const {
    return static_cast<int>(store_->measurements[row_].size());
  }

  /// Completing progress pi_i / phi_i in [0, 1].
  double progress() const;

  bool completed() const { return received() >= required(); }

  /// True when round k is already past the deadline (no rounds remain).
  bool expired_at(Round k) const { return k > deadline(); }

  /// Whether this task still accepts data at round k from this user.
  bool accepts(UserId user, Round k) const;

  bool has_contributed(UserId user) const {
    return store_->contributors[row_].test(user);
  }

  /// Record a measurement. Enforces the distinct-user rule and the deadline;
  /// throws mcs::Error when violated. A task may end up with more than
  /// phi_i measurements: users commit against the rewards published at the
  /// start of a round, so every delivery within the round a task completes
  /// is still accepted and paid. Completed tasks are withdrawn (reward 0,
  /// never selectable) from the next round on.
  void add_measurement(UserId user, Round round, Money reward_paid);

  const std::vector<Measurement>& measurements() const {
    return store_->measurements[row_];
  }

  /// Total rewards paid out for this task so far.
  Money total_paid() const;

 private:
  friend class ViewList<Task, TaskStore>;
  friend class World;

  Task(TaskStore* store, std::uint32_t row) : store_(store), row_(row) {}

  /// Append this task's field values as a fresh row of `store`.
  static std::uint32_t append_row(TaskStore& store, const Task& t);

  /// Overwrite this view's row with `o`'s field values.
  void assign_fields(const Task& o);

  TaskStore* store_ = nullptr;
  std::uint32_t row_ = 0;
  std::unique_ptr<TaskStore> own_;  // non-null only for standalone tasks
};

}  // namespace mcs::model
