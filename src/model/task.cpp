#include "model/task.h"

#include "common/error.h"

namespace mcs::model {

Task::Task(TaskId id, geo::Point location, Round deadline, int required)
    : own_(std::make_unique<TaskStore>()) {
  MCS_CHECK(id >= 0, "task id must be non-negative");
  MCS_CHECK(deadline >= 1, "task deadline must be at least round 1");
  MCS_CHECK(required >= 1, "task must require at least one measurement");
  own_->id.push_back(id);
  own_->location.push_back(location);
  own_->deadline.push_back(deadline);
  own_->required.push_back(required);
  own_->measurements.emplace_back();
  own_->contributors.emplace_back();
  store_ = own_.get();
  row_ = 0;
}

Task::Task(const Task& o) : own_(std::make_unique<TaskStore>()) {
  own_->id.push_back(o.id());
  own_->location.push_back(o.location());
  own_->deadline.push_back(o.deadline());
  own_->required.push_back(o.required());
  own_->measurements.push_back(o.measurements());
  own_->contributors.push_back(o.store_->contributors[o.row_]);
  store_ = own_.get();
  row_ = 0;
}

void Task::assign_fields(const Task& o) {
  store_->id[row_] = o.id();
  store_->location[row_] = o.location();
  store_->deadline[row_] = o.deadline();
  store_->required[row_] = o.required();
  store_->measurements[row_] = o.measurements();
  store_->contributors[row_] = o.store_->contributors[o.row_];
}

Task& Task::operator=(const Task& o) {
  if (this != &o) assign_fields(o);
  return *this;
}

Task& Task::operator=(Task&& o) noexcept {
  if (this != &o) assign_fields(o);
  return *this;
}

std::uint32_t Task::append_row(TaskStore& store, const Task& t) {
  const auto row = static_cast<std::uint32_t>(store.size());
  store.id.push_back(t.id());
  store.location.push_back(t.location());
  store.deadline.push_back(t.deadline());
  store.required.push_back(t.required());
  store.measurements.push_back(t.measurements());
  store.contributors.push_back(t.store_->contributors[t.row_]);
  return row;
}

double Task::progress() const {
  const double p = static_cast<double>(received()) / required();
  return p > 1.0 ? 1.0 : p;
}

bool Task::accepts(UserId user, Round k) const {
  return !completed() && !expired_at(k) && !has_contributed(user);
}

void Task::add_measurement(UserId user, Round round, Money reward_paid) {
  MCS_CHECK(user >= 0, "invalid user id");
  MCS_CHECK(!expired_at(round), "task deadline passed");
  MCS_CHECK(!has_contributed(user),
            "user may contribute to a task at most once");
  store_->measurements[row_].push_back({user, round, reward_paid});
  store_->contributors[row_].set(user);
}

Money Task::total_paid() const {
  Money total = 0.0;
  for (const auto& m : measurements()) total += m.reward_paid;
  return total;
}

}  // namespace mcs::model
