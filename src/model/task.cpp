#include "model/task.h"

#include "common/error.h"

namespace mcs::model {

Task::Task(TaskId id, geo::Point location, Round deadline, int required)
    : id_(id), location_(location), deadline_(deadline), required_(required) {
  MCS_CHECK(id >= 0, "task id must be non-negative");
  MCS_CHECK(deadline >= 1, "task deadline must be at least round 1");
  MCS_CHECK(required >= 1, "task must require at least one measurement");
}

double Task::progress() const {
  const double p = static_cast<double>(received()) / required_;
  return p > 1.0 ? 1.0 : p;
}

bool Task::accepts(UserId user, Round k) const {
  return !completed() && !expired_at(k) && !has_contributed(user);
}

void Task::add_measurement(UserId user, Round round, Money reward_paid) {
  MCS_CHECK(user >= 0, "invalid user id");
  MCS_CHECK(!expired_at(round), "task deadline passed");
  MCS_CHECK(!has_contributed(user),
            "user may contribute to a task at most once");
  measurements_.push_back({user, round, reward_paid});
  contributors_.insert(user);
}

Money Task::total_paid() const {
  Money total = 0.0;
  for (const auto& m : measurements_) total += m.reward_paid;
  return total;
}

}  // namespace mcs::model
