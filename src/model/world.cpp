#include "model/world.h"

#include <utility>

#include "common/error.h"

namespace mcs::model {

World::World(geo::BoundingBox area, geo::TravelModel travel,
             Meters neighbor_radius)
    : area_(area), travel_(travel), neighbor_radius_(neighbor_radius) {
  MCS_CHECK(neighbor_radius >= 0.0, "neighbor radius must be non-negative");
  MCS_CHECK(travel.speed_mps > 0.0, "travel speed must be positive");
  MCS_CHECK(travel.cost_per_meter >= 0.0, "travel cost must be non-negative");
}

TaskId World::add_task(geo::Point location, Round deadline, int required) {
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.emplace_back(id, location, deadline, required);
  return id;
}

UserId World::add_user(geo::Point home, Seconds time_budget) {
  const auto id = static_cast<UserId>(users_.size());
  users_.emplace_back(id, home, time_budget);
  return id;
}

// add_task() assigns dense ids (position == id), which the fast path below
// serves; worlds assembled directly through the mutable tasks() accessor may
// carry arbitrary ids and fall back to a scan.
Task& World::task(TaskId id) {
  if (id >= 0 && static_cast<std::size_t>(id) < tasks_.size() &&
      tasks_[static_cast<std::size_t>(id)].id() == id) {
    return tasks_[static_cast<std::size_t>(id)];
  }
  for (Task& t : tasks_) {
    if (t.id() == id) return t;
  }
  throw Error("unknown task id");
}

const Task& World::task(TaskId id) const {
  return const_cast<World*>(this)->task(id);
}

// add_user() also assigns dense ids; the same scan fallback as task() keeps
// hand-assembled worlds with arbitrary user ids working (same bug class as
// the dense-TaskId fixes).
User& World::user(UserId id) {
  if (id >= 0 && static_cast<std::size_t>(id) < users_.size() &&
      users_[static_cast<std::size_t>(id)].id() == id) {
    return users_[static_cast<std::size_t>(id)];
  }
  for (User& u : users_) {
    if (u.id() == id) return u;
  }
  throw Error("unknown user id");
}

const User& World::user(UserId id) const {
  return const_cast<World*>(this)->user(id);
}

bool World::neighbor_cache_usable() const {
  if (!ncache_.valid) return false;
  if (ncache_.user_pos.size() != users_.size()) return false;
  if (ncache_.task_pos.size() != tasks_.size()) return false;
  // Task locations are immutable on Task, but the mutable tasks() accessor
  // lets tests swap whole vectors; a cheap point compare catches that.
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!(tasks_[i].location() == ncache_.task_pos[i])) return false;
  }
  return true;
}

void World::rebuild_neighbor_cache() const {
  // Cell size = query radius keeps the scan at a 3x3 cell neighborhood.
  const double cell =
      neighbor_radius_ > 0.0 ? neighbor_radius_ : area_.diameter();
  ncache_.user_grid.emplace(area_, cell);
  ncache_.task_grid.emplace(area_, cell);
  ncache_.user_pos.resize(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    ncache_.user_pos[i] = users_[i].location();
    ncache_.user_grid->insert(static_cast<std::int32_t>(i),
                              ncache_.user_pos[i]);
  }
  ncache_.task_pos.resize(tasks_.size());
  ncache_.counts.resize(tasks_.size());
  // Histogram for the running max: counts are bounded by the population.
  ncache_.count_freq.assign(users_.size() + 1, 0);
  ncache_.max_count = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    ncache_.task_pos[i] = tasks_[i].location();
    ncache_.task_grid->insert(static_cast<std::int32_t>(i),
                              ncache_.task_pos[i]);
    ncache_.counts[i] = static_cast<int>(
        ncache_.user_grid->count_radius(ncache_.task_pos[i],
                                        neighbor_radius_));
    ++ncache_.count_freq[static_cast<std::size_t>(ncache_.counts[i])];
    if (ncache_.counts[i] > ncache_.max_count) {
      ncache_.max_count = ncache_.counts[i];
    }
  }
  // Reset the change journal: per-position deltas are meaningless across a
  // rebuild, so consumers see rebuilt=true until the next take.
  ncache_.changed.clear();
  ncache_.changed_mark.assign(tasks_.size(), 0);
  ncache_.changed_gen = 1;
  ncache_.rebuilt_pending = true;
  ncache_.valid = true;
}

void World::bump_neighbor_count(std::size_t pos, int delta) const {
  int& c = ncache_.counts[pos];
  --ncache_.count_freq[static_cast<std::size_t>(c)];
  c += delta;
  if (static_cast<std::size_t>(c) >= ncache_.count_freq.size()) {
    ncache_.count_freq.resize(static_cast<std::size_t>(c) + 1, 0);
  }
  ++ncache_.count_freq[static_cast<std::size_t>(c)];
  if (c > ncache_.max_count) {
    ncache_.max_count = c;
  } else {
    // The old value may have been the last occupant of the top bucket; walk
    // down to the next non-empty one. Amortized O(1): the walk only ever
    // descends past levels some earlier increment climbed.
    while (ncache_.max_count > 0 &&
           ncache_.count_freq[static_cast<std::size_t>(ncache_.max_count)] ==
               0) {
      --ncache_.max_count;
    }
  }
  if (ncache_.changed_mark[pos] != ncache_.changed_gen) {
    ncache_.changed_mark[pos] = ncache_.changed_gen;
    ncache_.changed.push_back(pos);
  }
}

void World::sync_neighbor_cache() const {
  // Delta update: a user who moved from p0 to p1 leaves the neighborhood of
  // every task within radius of p0 and enters that of every task within
  // radius of p1. The task grid answers both "tasks near p" queries with
  // the exact predicate a full recount uses, so counts stay integer-exact.
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const geo::Point now = users_[i].location();
    if (now == ncache_.user_pos[i]) continue;
    ncache_.user_grid->remove(static_cast<std::int32_t>(i),
                              ncache_.user_pos[i]);
    ncache_.user_grid->insert(static_cast<std::int32_t>(i), now);
    ncache_.task_grid->for_each_in_radius(
        ncache_.user_pos[i], neighbor_radius_, [this](std::int32_t t) {
          bump_neighbor_count(static_cast<std::size_t>(t), -1);
        });
    ncache_.task_grid->for_each_in_radius(
        now, neighbor_radius_, [this](std::int32_t t) {
          bump_neighbor_count(static_cast<std::size_t>(t), +1);
        });
    ncache_.user_pos[i] = now;
  }
}

const std::vector<int>& World::neighbor_counts() const {
  if (neighbor_cache_usable()) {
    sync_neighbor_cache();
  } else {
    rebuild_neighbor_cache();
  }
  return ncache_.counts;
}

int World::neighbor_max_count() const {
  neighbor_counts();  // sync or rebuild
  return ncache_.max_count;
}

World::NeighborDelta World::take_neighbor_changes() const {
  neighbor_counts();  // sync or rebuild
  NeighborDelta d;
  d.rebuilt = ncache_.rebuilt_pending;
  std::swap(ncache_.changed, ncache_.taken);
  ncache_.changed.clear();
  // A fresh generation invalidates every mark; on wrap-around (once per
  // 2^32 takes) the marks are reset so stale stamps can never alias.
  if (++ncache_.changed_gen == 0) {
    ncache_.changed_mark.assign(ncache_.changed_mark.size(), 0);
    ncache_.changed_gen = 1;
  }
  ncache_.rebuilt_pending = false;
  d.changed = &ncache_.taken;
  d.counts = &ncache_.counts;
  d.max_count = ncache_.max_count;
  return d;
}

long long World::total_required() const {
  long long total = 0;
  for (const Task& t : tasks_) total += t.required();
  return total;
}

long long World::total_received() const {
  long long total = 0;
  for (const Task& t : tasks_) total += t.received();
  return total;
}

Money World::total_paid() const {
  Money total = 0.0;
  for (const Task& t : tasks_) total += t.total_paid();
  return total;
}

}  // namespace mcs::model
