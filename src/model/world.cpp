#include "model/world.h"

#include "common/error.h"

namespace mcs::model {

World::World(geo::BoundingBox area, geo::TravelModel travel,
             Meters neighbor_radius)
    : area_(area), travel_(travel), neighbor_radius_(neighbor_radius) {
  MCS_CHECK(neighbor_radius >= 0.0, "neighbor radius must be non-negative");
  MCS_CHECK(travel.speed_mps > 0.0, "travel speed must be positive");
  MCS_CHECK(travel.cost_per_meter >= 0.0, "travel cost must be non-negative");
}

TaskId World::add_task(geo::Point location, Round deadline, int required) {
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.emplace_back(id, location, deadline, required);
  return id;
}

UserId World::add_user(geo::Point home, Seconds time_budget) {
  const auto id = static_cast<UserId>(users_.size());
  users_.emplace_back(id, home, time_budget);
  return id;
}

// add_task() assigns dense ids (position == id), which the fast path below
// serves; worlds assembled directly through the mutable tasks() accessor may
// carry arbitrary ids and fall back to a scan.
Task& World::task(TaskId id) {
  if (id >= 0 && static_cast<std::size_t>(id) < tasks_.size() &&
      tasks_[static_cast<std::size_t>(id)].id() == id) {
    return tasks_[static_cast<std::size_t>(id)];
  }
  for (Task& t : tasks_) {
    if (t.id() == id) return t;
  }
  throw Error("unknown task id");
}

const Task& World::task(TaskId id) const {
  return const_cast<World*>(this)->task(id);
}

User& World::user(UserId id) {
  MCS_CHECK(id >= 0 && static_cast<std::size_t>(id) < users_.size(),
            "user id out of range");
  return users_[static_cast<std::size_t>(id)];
}

const User& World::user(UserId id) const {
  MCS_CHECK(id >= 0 && static_cast<std::size_t>(id) < users_.size(),
            "user id out of range");
  return users_[static_cast<std::size_t>(id)];
}

std::vector<int> World::neighbor_counts() const {
  // Cell size = query radius keeps the scan at a 3x3 cell neighborhood.
  const double cell =
      neighbor_radius_ > 0.0 ? neighbor_radius_ : area_.diameter();
  geo::SpatialGrid grid(area_, cell);
  for (const User& u : users_) grid.insert(u.id(), u.location());
  std::vector<int> counts;
  counts.reserve(tasks_.size());
  for (const Task& t : tasks_) {
    counts.push_back(
        static_cast<int>(grid.count_radius(t.location(), neighbor_radius_)));
  }
  return counts;
}

long long World::total_required() const {
  long long total = 0;
  for (const Task& t : tasks_) total += t.required();
  return total;
}

long long World::total_received() const {
  long long total = 0;
  for (const Task& t : tasks_) total += t.received();
  return total;
}

Money World::total_paid() const {
  Money total = 0.0;
  for (const Task& t : tasks_) total += t.total_paid();
  return total;
}

}  // namespace mcs::model
