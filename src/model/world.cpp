#include "model/world.h"

#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::model {

namespace {

#ifndef NDEBUG
// Debug tripwire for the NOT-thread-safe neighbor cache: claims the flag for
// the guarded scope; a second concurrent claimant fails loudly. Single-
// threaded re-entry cannot happen (no guarded method calls another guarded
// method while holding its guard).
class CacheBusyGuard {
 public:
  explicit CacheBusyGuard(std::atomic<int>& flag) : flag_(flag) {
    MCS_ASSERT(flag_.exchange(1, std::memory_order_acq_rel) == 0,
               "World neighbor cache accessed concurrently — the cache "
               "mutates under const and is documented single-consumer "
               "(world.h); give each thread its own World");
  }
  ~CacheBusyGuard() { flag_.store(0, std::memory_order_release); }

  CacheBusyGuard(const CacheBusyGuard&) = delete;
  CacheBusyGuard& operator=(const CacheBusyGuard&) = delete;

 private:
  std::atomic<int>& flag_;
};
#define MCS_NCACHE_GUARD(flag) const CacheBusyGuard ncache_busy_guard(flag)
#else
#define MCS_NCACHE_GUARD(flag) static_cast<void>(flag)
#endif

}  // namespace

World::World(geo::BoundingBox area, geo::TravelModel travel,
             Meters neighbor_radius)
    : area_(area),
      travel_(travel),
      neighbor_radius_(neighbor_radius),
      tstore_(std::make_unique<TaskStore>()),
      ustore_(std::make_unique<UserStore>()),
      tasks_(tstore_.get()),
      users_(ustore_.get()) {
  MCS_CHECK(neighbor_radius >= 0.0, "neighbor radius must be non-negative");
  MCS_CHECK(travel.speed_mps > 0.0, "travel speed must be positive");
  MCS_CHECK(travel.cost_per_meter >= 0.0, "travel cost must be non-negative");
}

World::World(World&& o) noexcept
    : area_(o.area_),
      travel_(o.travel_),
      neighbor_radius_(o.neighbor_radius_),
      tstore_(std::move(o.tstore_)),
      ustore_(std::move(o.ustore_)),
      tasks_(std::move(o.tasks_)),
      users_(std::move(o.users_)),
      ncache_(std::move(o.ncache_)) {}

World& World::operator=(World&& o) noexcept {
  if (this != &o) {
    area_ = o.area_;
    travel_ = o.travel_;
    neighbor_radius_ = o.neighbor_radius_;
    tstore_ = std::move(o.tstore_);
    ustore_ = std::move(o.ustore_);
    tasks_ = std::move(o.tasks_);
    users_ = std::move(o.users_);
    ncache_ = std::move(o.ncache_);
  }
  return *this;
}

World::World(const World& o)
    : area_(o.area_),
      travel_(o.travel_),
      neighbor_radius_(o.neighbor_radius_),
      tstore_(std::make_unique<TaskStore>(*o.tstore_)),
      ustore_(std::make_unique<UserStore>(*o.ustore_)),
      ncache_(o.ncache_) {
  tasks_.rebind(tstore_.get());
  users_.rebind(ustore_.get());
}

World& World::operator=(const World& o) {
  if (this != &o) {
    area_ = o.area_;
    travel_ = o.travel_;
    neighbor_radius_ = o.neighbor_radius_;
    *tstore_ = *o.tstore_;
    *ustore_ = *o.ustore_;
    tasks_.rebind(tstore_.get());
    users_.rebind(ustore_.get());
    ncache_ = o.ncache_;
  }
  return *this;
}

TaskId World::add_task(geo::Point location, Round deadline, int required) {
  MCS_CHECK(deadline >= 1, "task deadline must be at least round 1");
  MCS_CHECK(required >= 1, "task must require at least one measurement");
  const auto row = static_cast<std::uint32_t>(tstore_->size());
  const auto id = static_cast<TaskId>(row);
  tstore_->id.push_back(id);
  tstore_->location.push_back(location);
  tstore_->deadline.push_back(deadline);
  tstore_->required.push_back(required);
  tstore_->measurements.emplace_back();
  tstore_->contributors.emplace_back();
  tasks_.views_.push_back(Task(tstore_.get(), row));
  return id;
}

UserId World::add_user(geo::Point home, Seconds time_budget) {
  MCS_CHECK(time_budget >= 0.0, "time budget must be non-negative");
  const auto row = static_cast<std::uint32_t>(ustore_->size());
  const auto id = static_cast<UserId>(row);
  ustore_->id.push_back(id);
  ustore_->home.push_back(home);
  ustore_->location.push_back(home);
  ustore_->time_budget.push_back(time_budget);
  ustore_->total_reward.push_back(0.0);
  ustore_->total_cost.push_back(0.0);
  ustore_->contributed.emplace_back();
  users_.views_.push_back(User(ustore_.get(), row));
  return id;
}

// add_task() assigns dense ids (position == id), which the stores' inline
// fast path serves; worlds assembled directly through the mutable tasks()
// accessor may carry arbitrary ids and resolve through the lazily built
// id→row hash index (store.h) — O(1) amortized, never a per-lookup scan.
Task& World::task(TaskId id) {
  const std::uint32_t row = tstore_->row_of(id);
  if (row == kNoRow) throw Error("unknown task id");
  return tasks_[row];
}

const Task& World::task(TaskId id) const {
  return const_cast<World*>(this)->task(id);
}

User& World::user(UserId id) {
  const std::uint32_t row = ustore_->row_of(id);
  if (row == kNoRow) throw Error("unknown user id");
  return users_[row];
}

const User& World::user(UserId id) const {
  return const_cast<World*>(this)->user(id);
}

bool World::neighbor_cache_usable() const {
  if (!ncache_.valid) return false;
  if (ncache_.user_pos.size() != ustore_->size()) return false;
  if (ncache_.task_pos.size() != tstore_->size()) return false;
  // Task locations are immutable on Task, but the mutable tasks() accessor
  // lets tests append tasks later; a cheap point compare catches swaps too.
  for (std::size_t i = 0; i < tstore_->size(); ++i) {
    if (!(tstore_->location[i] == ncache_.task_pos[i])) return false;
  }
  return true;
}

void World::rebuild_neighbor_grids() const {
  // Cell size = query radius keeps the scan at a 3x3 cell neighborhood.
  // Both grids are frozen CSR snapshots of the position columns: the task
  // grid stays exact until the next rebuild (task locations are immutable
  // between rebuilds by the usable() contract), and the user grid is only
  // read by the rebuild count pass below — user movement afterwards makes
  // it stale, which is fine because the delta sync never consults it.
  const double cell =
      neighbor_radius_ > 0.0 ? neighbor_radius_ : area_.diameter();
  ncache_.user_pos.assign(ustore_->location.begin(), ustore_->location.end());
  ncache_.user_grid = geo::FrozenGrid(area_, cell, ncache_.user_pos);
  ncache_.task_pos.assign(tstore_->location.begin(), tstore_->location.end());
  ncache_.task_grid = geo::FrozenGrid(area_, cell, ncache_.task_pos);
  ncache_.counts.resize(tstore_->size());
}

void World::rebuild_neighbor_derived() const {
  // Histogram for the running max: counts are bounded by the population.
  ncache_.count_freq.assign(ustore_->size() + 1, 0);
  ncache_.max_count = 0;
  for (std::size_t i = 0; i < tstore_->size(); ++i) {
    ++ncache_.count_freq[static_cast<std::size_t>(ncache_.counts[i])];
    if (ncache_.counts[i] > ncache_.max_count) {
      ncache_.max_count = ncache_.counts[i];
    }
  }
  // Reset the change journal: per-position deltas are meaningless across a
  // rebuild, so consumers see rebuilt=true until the next take.
  ncache_.changed.clear();
  ncache_.changed_mark.assign(tstore_->size(), 0);
  ncache_.changed_gen = 1;
  ncache_.rebuilt_pending = true;
  // Size the sync scratch here too, so the first delta sync after a rebuild
  // is allocation-free (the steady-state reprice path is gated on zero
  // heap traffic).
  ncache_.delta.assign(tstore_->size(), 0);
  ncache_.touch_mark.assign(tstore_->size(), 0);
  ncache_.valid = true;
}

void World::rebuild_neighbor_cache() const {
  rebuild_neighbor_grids();
  for (std::size_t i = 0; i < tstore_->size(); ++i) {
    ncache_.counts[i] = static_cast<int>(
        ncache_.user_grid.count_radius(ncache_.task_pos[i],
                                       neighbor_radius_));
  }
  rebuild_neighbor_derived();
}

void World::warm_neighbor_cache(ThreadPool& pool, int workers) const {
  MCS_NCACHE_GUARD(ncache_busy_);
  if (neighbor_cache_usable()) return;  // delta sync stays lazy and serial
  if (workers <= 1 || tstore_->size() < 2) {
    rebuild_neighbor_cache();
    return;
  }
  // Grid construction is serial (the CSR counting sort is one pass); the
  // per-task counting — the O(T * users-in-3x3-cells) bulk of a rebuild —
  // fans out over disjoint count slots against the frozen user grid, with
  // the exact predicate of the serial rebuild.
  rebuild_neighbor_grids();
  const std::size_t n = tstore_->size();
  const auto w = static_cast<std::size_t>(workers);
  for (std::size_t s = 0; s < w; ++s) {
    pool.submit([this, s, w, n] {
      const std::size_t lo = s * n / w;
      const std::size_t hi = (s + 1) * n / w;
      for (std::size_t i = lo; i < hi; ++i) {
        ncache_.counts[i] = static_cast<int>(
            ncache_.user_grid.count_radius(ncache_.task_pos[i],
                                           neighbor_radius_));
      }
    });
  }
  pool.wait_idle();
  rebuild_neighbor_derived();
}

void World::sync_neighbor_cache() const {
  // Delta update: a user who moved from p0 to p1 leaves the neighborhood of
  // every task within radius of p0 and enters that of every task within
  // radius of p1. The task grid answers both "tasks near p" queries with
  // the exact predicate a full recount uses, so counts stay integer-exact.
  //
  // Batched: the per-user grid pokes only accumulate ±1 into a net-delta
  // scratch (plus a first-touch list), and the count / histogram / running
  // max / journal bookkeeping is applied once per touched task in a single
  // sweep afterwards. A drift round where every user moves pokes each hot
  // task hundreds of times; the batched kernel pays the histogram walk and
  // journal dedup once per task instead of once per poke. The final counts,
  // histogram, max and journal are identical to the historical poke-at-a-
  // time path: net deltas commute over integer adds, the max is re-derived
  // from the exact histogram, and the first-touch order of the scratch list
  // equals the first-bump order (same traversal, application deferred).
  if (ncache_.delta.size() != tstore_->size()) {
    ncache_.delta.assign(tstore_->size(), 0);  // kept all-zero between syncs
  }
  ncache_.touched.clear();
  const auto poke = [this](std::int32_t t, int d) {
    if (ncache_.delta[static_cast<std::size_t>(t)] == 0 &&
        ncache_.touch_mark[static_cast<std::size_t>(t)] !=
            ncache_.changed_gen) {
      ncache_.touched.push_back(static_cast<std::size_t>(t));
      ncache_.touch_mark[static_cast<std::size_t>(t)] = ncache_.changed_gen;
    }
    ncache_.delta[static_cast<std::size_t>(t)] += d;
  };
  if (ncache_.touch_mark.size() != tstore_->size()) {
    ncache_.touch_mark.assign(tstore_->size(), 0);
  }
  // Only the frozen task grid is consulted: the user grid is a rebuild-time
  // artifact nobody reads between rebuilds, so a moved user costs two CSR
  // radius queries and nothing else (the historical mutable user grid paid
  // a cell-vector remove + insert per mover on top, for no reader).
  for (std::size_t i = 0; i < ustore_->size(); ++i) {
    const geo::Point now = ustore_->location[i];
    if (now == ncache_.user_pos[i]) continue;
    ncache_.task_grid.for_each_in_radius(
        ncache_.user_pos[i], neighbor_radius_,
        [&poke](std::int32_t t) { poke(t, -1); });
    ncache_.task_grid.for_each_in_radius(
        now, neighbor_radius_, [&poke](std::int32_t t) { poke(t, +1); });
    ncache_.user_pos[i] = now;
  }
  for (const std::size_t pos : ncache_.touched) {
    // Touched tasks enter the journal even at net-zero delta — exactly the
    // positions the poke-at-a-time path journaled ("changed and changed
    // back" is documented as allowed; consumers recompute from the current
    // count).
    if (ncache_.changed_mark[pos] != ncache_.changed_gen) {
      ncache_.changed_mark[pos] = ncache_.changed_gen;
      ncache_.changed.push_back(pos);
    }
    const int d = ncache_.delta[pos];
    ncache_.delta[pos] = 0;
    ncache_.touch_mark[pos] = 0;
    if (d == 0) continue;
    int& c = ncache_.counts[pos];
    --ncache_.count_freq[static_cast<std::size_t>(c)];
    c += d;
    if (static_cast<std::size_t>(c) >= ncache_.count_freq.size()) {
      ncache_.count_freq.resize(static_cast<std::size_t>(c) + 1, 0);
    }
    ++ncache_.count_freq[static_cast<std::size_t>(c)];
    if (c > ncache_.max_count) {
      ncache_.max_count = c;
    } else {
      // The old value may have been the last occupant of the top bucket;
      // walk down to the next non-empty one. Amortized O(1): the walk only
      // descends past levels some earlier increment climbed.
      while (ncache_.max_count > 0 &&
             ncache_.count_freq[static_cast<std::size_t>(
                 ncache_.max_count)] == 0) {
        --ncache_.max_count;
      }
    }
  }
}

const std::vector<int>& World::neighbor_counts() const {
  MCS_NCACHE_GUARD(ncache_busy_);
  if (neighbor_cache_usable()) {
    sync_neighbor_cache();
  } else {
    rebuild_neighbor_cache();
  }
  return ncache_.counts;
}

int World::neighbor_max_count() const {
  neighbor_counts();  // sync or rebuild
  return ncache_.max_count;
}

World::NeighborDelta World::take_neighbor_changes() const {
  neighbor_counts();  // sync or rebuild
  MCS_NCACHE_GUARD(ncache_busy_);
  NeighborDelta d;
  d.rebuilt = ncache_.rebuilt_pending;
  std::swap(ncache_.changed, ncache_.taken);
  ncache_.changed.clear();
  // A fresh generation invalidates every mark; on wrap-around (once per
  // 2^32 takes) the marks are reset so stale stamps can never alias.
  if (++ncache_.changed_gen == 0) {
    ncache_.changed_mark.assign(ncache_.changed_mark.size(), 0);
    ncache_.changed_gen = 1;
  }
  ncache_.rebuilt_pending = false;
  d.changed = &ncache_.taken;
  d.counts = &ncache_.counts;
  d.max_count = ncache_.max_count;
  return d;
}

long long World::total_required() const {
  long long total = 0;
  for (const int r : tstore_->required) total += r;
  return total;
}

long long World::total_received() const {
  long long total = 0;
  for (const auto& m : tstore_->measurements) {
    total += static_cast<long long>(m.size());
  }
  return total;
}

Money World::total_paid() const {
  Money total = 0.0;
  for (const auto& ms : tstore_->measurements) {
    for (const Measurement& m : ms) total += m.reward_paid;
  }
  return total;
}

}  // namespace mcs::model
