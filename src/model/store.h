// Structure-of-arrays backing storage for the World's task set and user
// population.
//
// Hot round phases touch one field of every entity — mobility writes every
// user location, the neighbor cache diffs locations, sharding buckets users
// by position, demand scans task progress. With an array-of-objects layout
// each of those scans strides over the whole ~100-byte entity; the stores
// below keep each field in its own dense vector so a single-field sweep
// reads packed cache lines (8 points or ids per line) and vectorizes.
//
// `User` and `Task` (model/user.h, model/task.h) are thin views over one
// row of these stores — the same accessor API the array-of-objects layout
// had, so mechanisms, selectors, serialization and the event log compile
// unchanged. Rows are append-only: nothing in the system removes an entity
// mid-campaign, and append-only is what keeps row indices stable enough to
// serve as positions everywhere (visit orders, profit rows, dirty sets).
#pragma once

#include <cstdint>
#include <vector>

#include "common/chunked_bitset.h"
#include "common/types.h"
#include "geo/point.h"

namespace mcs::model {

/// One accepted measurement of a task.
struct Measurement {
  UserId user = kInvalidUser;
  Round round = 0;
  Money reward_paid = 0.0;  // reward at the round the measurement arrived
};

/// Parallel arrays over the user population; row i is user position i.
struct UserStore {
  std::vector<UserId> id;
  std::vector<geo::Point> home;
  std::vector<geo::Point> location;   // start-of-round position
  std::vector<Seconds> time_budget;   // per-round travel-time budget B_ui
  std::vector<Money> total_reward;    // lifetime earnings
  std::vector<Money> total_cost;      // lifetime travel spend
  std::vector<ChunkedBitset> contributed;  // task ids this user delivered to

  std::size_t size() const { return id.size(); }
};

/// Parallel arrays over the task set; row i is task position i.
struct TaskStore {
  std::vector<TaskId> id;
  std::vector<geo::Point> location;
  std::vector<Round> deadline;
  std::vector<int> required;  // phi_i
  std::vector<std::vector<Measurement>> measurements;
  std::vector<ChunkedBitset> contributors;  // user ids, mirrors measurements

  std::size_t size() const { return id.size(); }
};

}  // namespace mcs::model
