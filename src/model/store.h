// Structure-of-arrays backing storage for the World's task set and user
// population.
//
// Hot round phases touch one field of every entity — mobility writes every
// user location, the neighbor cache diffs locations, sharding buckets users
// by position, demand scans task progress. With an array-of-objects layout
// each of those scans strides over the whole ~100-byte entity; the stores
// below keep each field in its own dense vector so a single-field sweep
// reads packed cache lines (8 points or ids per line) and vectorizes.
//
// `User` and `Task` (model/user.h, model/task.h) are thin views over one
// row of these stores — the same accessor API the array-of-objects layout
// had, so mechanisms, selectors, serialization and the event log compile
// unchanged. Rows are append-only: nothing in the system removes an entity
// mid-campaign, and append-only is what keeps row indices stable enough to
// serve as positions everywhere (visit orders, profit rows, dirty sets).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/chunked_bitset.h"
#include "common/types.h"
#include "geo/point.h"

namespace mcs::model {

/// Row position returned by the id→row lookups for an unknown id.
inline constexpr std::uint32_t kNoRow = 0xffffffffu;

/// Lazily built id→row hash index shared by the two stores. World's
/// add_task()/add_user() assign dense ids (id == row), which the callers'
/// inline fast path serves without ever touching this; the index only
/// materializes for hand-assembled worlds with arbitrary ids — and then
/// lookups are O(1) instead of the historical O(n) scan fallback.
///
/// The index rebuilds itself whenever the store grew since the last build,
/// and once more when a lookup finds a stale entry (an id overwritten in
/// place through a mutable view — test-setup only; nothing mutates ids
/// mid-campaign). Lookups on a fresh index are read-only, so callers that
/// fan row lookups across threads are safe as long as the id set is frozen,
/// which a running campaign guarantees.
struct IdRowIndex {
  template <typename Id>
  std::uint32_t row_of(const std::vector<Id>& ids, Id want) const {
    if (built_size != ids.size()) rebuild(ids);
    auto it = map.find(static_cast<std::int64_t>(want));
    if (it != map.end() &&
        ids[it->second] == want) {
      return it->second;
    }
    // Either unknown or an id was overwritten in place: rebuild once and
    // give the new layout the final say.
    rebuild(ids);
    it = map.find(static_cast<std::int64_t>(want));
    return (it != map.end() && ids[it->second] == want) ? it->second : kNoRow;
  }

  template <typename Id>
  void rebuild(const std::vector<Id>& ids) const {
    map.clear();
    map.reserve(ids.size());
    for (std::size_t row = 0; row < ids.size(); ++row) {
      map.emplace(static_cast<std::int64_t>(ids[row]),
                  static_cast<std::uint32_t>(row));
    }
    built_size = ids.size();
  }

  mutable std::unordered_map<std::int64_t, std::uint32_t> map;
  mutable std::size_t built_size = static_cast<std::size_t>(-1);
};

/// One accepted measurement of a task.
struct Measurement {
  UserId user = kInvalidUser;
  Round round = 0;
  Money reward_paid = 0.0;  // reward at the round the measurement arrived
};

/// Parallel arrays over the user population; row i is user position i.
struct UserStore {
  std::vector<UserId> id;
  std::vector<geo::Point> home;
  std::vector<geo::Point> location;   // start-of-round position
  std::vector<Seconds> time_budget;   // per-round travel-time budget B_ui
  std::vector<Money> total_reward;    // lifetime earnings
  std::vector<Money> total_cost;      // lifetime travel spend
  std::vector<ChunkedBitset> contributed;  // task ids this user delivered to

  std::size_t size() const { return id.size(); }

  /// Row of the user with this id (kNoRow when unknown): dense fast path,
  /// then the lazily built hash index — never an O(n) scan per lookup.
  std::uint32_t row_of(UserId want) const {
    if (want >= 0 && static_cast<std::size_t>(want) < id.size() &&
        id[static_cast<std::size_t>(want)] == want) {
      return static_cast<std::uint32_t>(want);
    }
    return row_index.row_of(id, want);
  }

  IdRowIndex row_index;
};

/// Parallel arrays over the task set; row i is task position i.
struct TaskStore {
  std::vector<TaskId> id;
  std::vector<geo::Point> location;
  std::vector<Round> deadline;
  std::vector<int> required;  // phi_i
  std::vector<std::vector<Measurement>> measurements;
  std::vector<ChunkedBitset> contributors;  // user ids, mirrors measurements

  std::size_t size() const { return id.size(); }

  /// Row of the task with this id (kNoRow when unknown); same shape as
  /// UserStore::row_of.
  std::uint32_t row_of(TaskId want) const {
    if (want >= 0 && static_cast<std::size_t>(want) < id.size() &&
        id[static_cast<std::size_t>(want)] == want) {
      return static_cast<std::uint32_t>(want);
    }
    return row_index.row_of(id, want);
  }

  IdRowIndex row_index;
};

}  // namespace mcs::model
