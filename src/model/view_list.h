// ViewList: the vector-like container World hands out for its entities.
//
// World::users()/tasks() historically returned std::vector<User>/<Task>;
// with structure-of-arrays storage the entities live in a UserStore/
// TaskStore and `User`/`Task` are row views. ViewList keeps the vector
// surface the ~90 call sites use — size/empty/operator[]/front/back/data/
// begin/end/range-for/push_back/emplace_back — while keeping the store and
// the view vector in lockstep: every append writes a store row AND a view,
// so `&t - world.tasks().data()` is still the entity's position and
// serialization's push_back of standalone sparse-id entities still works.
//
// Append-only on purpose: nothing removes entities mid-campaign, and the
// absence of erase/insert is what keeps row indices valid as positions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mcs::model {

template <class ViewT, class StoreT>
class ViewList {
 public:
  using value_type = ViewT;
  using iterator = ViewT*;
  using const_iterator = const ViewT*;

  // Moves transfer the view vector (stores are heap-held by the World, so
  // the views stay valid); copying a list would detach views from rows, so
  // it is disabled — copy the World instead.
  ViewList(ViewList&&) noexcept = default;
  ViewList& operator=(ViewList&&) noexcept = default;
  ViewList(const ViewList&) = delete;
  ViewList& operator=(const ViewList&) = delete;

  std::size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  ViewT& operator[](std::size_t i) { return views_[i]; }
  const ViewT& operator[](std::size_t i) const { return views_[i]; }
  ViewT& front() { return views_.front(); }
  const ViewT& front() const { return views_.front(); }
  ViewT& back() { return views_.back(); }
  const ViewT& back() const { return views_.back(); }

  ViewT* data() { return views_.data(); }
  const ViewT* data() const { return views_.data(); }
  iterator begin() { return views_.data(); }
  iterator end() { return views_.data() + views_.size(); }
  const_iterator begin() const { return views_.data(); }
  const_iterator end() const { return views_.data() + views_.size(); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  /// Copies `v`'s field values into a fresh store row (whether `v` is a
  /// standalone value or a view of another store) and appends its view.
  void push_back(const ViewT& v) {
    const std::uint32_t row = ViewT::append_row(*store_, v);
    views_.push_back(ViewT(store_, row));
  }
  void push_back(ViewT&& v) { push_back(static_cast<const ViewT&>(v)); }

  template <class... Args>
  ViewT& emplace_back(Args&&... args) {
    push_back(ViewT(std::forward<Args>(args)...));
    return views_.back();
  }

  void reserve(std::size_t n) { views_.reserve(n); }

 private:
  template <class V, class S>
  friend class ViewList;
  friend class World;

  ViewList() = default;
  explicit ViewList(StoreT* store) : store_(store) {}

  /// Point this list at `store` and regenerate one view per row — the
  /// World's copy/assignment hook.
  void rebind(StoreT* store) {
    store_ = store;
    views_.clear();
    views_.reserve(store->size());
    for (std::uint32_t row = 0; row < store->size(); ++row) {
      views_.push_back(ViewT(store, row));
    }
  }

  StoreT* store_ = nullptr;
  std::vector<ViewT> views_;
};

}  // namespace mcs::model
