#include "incentive/budget.h"

#include <algorithm>

#include "common/error.h"

namespace mcs::incentive {

namespace {
constexpr Money kTolerance = 1e-9;
}

BudgetTracker::BudgetTracker(Money total, bool strict)
    : total_(total), strict_(strict) {
  MCS_CHECK(total > 0.0, "budget must be positive");
}

Money BudgetTracker::overdraft() const {
  return std::max(Money{0}, spent_ - total_);
}

bool BudgetTracker::can_afford(Money amount) const {
  return amount <= remaining() + kTolerance;
}

void BudgetTracker::pay(Money amount) {
  MCS_CHECK(amount >= 0.0, "payment must be non-negative");
  if (strict_) {
    MCS_CHECK(can_afford(amount), "payment exceeds platform budget");
  }
  spent_ += amount;
}

}  // namespace mcs::incentive
