#include "incentive/budget.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcs::incentive {

namespace {
constexpr Money kAbsTolerance = 1e-9;
constexpr Money kRelTolerance = 1e-12;
}  // namespace

BudgetTracker::BudgetTracker(Money total, bool strict)
    : total_(total), strict_(strict) {
  MCS_CHECK(total > 0.0, "budget must be positive");
}

Money BudgetTracker::overdraft() const {
  return std::max(Money{0}, spent() - total_);
}

bool BudgetTracker::can_afford(Money amount) const {
  return amount <= remaining() + (kAbsTolerance + kRelTolerance * total_);
}

void BudgetTracker::pay(Money amount) {
  MCS_CHECK(amount >= 0.0, "payment must be non-negative");
  if (strict_) {
    MCS_CHECK(can_afford(amount), "payment exceeds platform budget");
  }
  // Neumaier update: the branch routes the rounding error of `t = spent_ +
  // amount` into comp_ whichever operand dominates, so payments below half
  // an ulp of the running sum still accumulate instead of vanishing.
  const Money t = spent_ + amount;
  if (std::abs(spent_) >= std::abs(amount)) {
    comp_ += (spent_ - t) + amount;
  } else {
    comp_ += (amount - t) + spent_;
  }
  spent_ = t;
}

}  // namespace mcs::incentive
