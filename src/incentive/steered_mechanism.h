// Steered-crowdsensing baseline (Kawajiri et al., UbiComp'14), as
// instantiated in §VI of the paper:
//
//   R_ti^k = Rc + mu * dQ(x),   dQ(x) = Q(x+1) - Q(x)
//
// with the diminishing-returns quality model Q(x) = 1 - (1-delta)^x, so
// dQ(x) = delta * (1-delta)^x where x is the number of measurements already
// received. With the paper's constants (Rc=5, mu=100, delta=0.2) the reward
// starts at 25 and decays geometrically toward Rc=5 — a monotonically
// decreasing schedule, which is exactly the weakness the paper exploits.
#pragma once

#include "incentive/mechanism.h"

namespace mcs::incentive {

// Non-final so the equivalence suite can subclass it with reprice()
// overridden back to the full recompute as a reference oracle.
class SteeredMechanism : public IncentiveMechanism {
 public:
  SteeredMechanism(Money rc, double mu, double delta);

  const char* name() const override { return "steered"; }

  void update_rewards(const model::World& world, Round k) override;

  /// Steered crowdsensing reprices after every user session.
  bool updates_within_round() const override { return true; }

  /// O(dirty) intra-round repricing: R_ti^k depends only on the task's own
  /// received count (and the fixed round constants), so between two
  /// sessions only the tasks that just gained measurements can change
  /// price. Falls back to the full recompute when the round or the task
  /// set differs from the last published one. Bit-identical to
  /// update_rewards by construction (reward_at is a pure function of the
  /// received count); pinned by the repricing equivalence test.
  void reprice(const model::World& world, Round k,
               const std::vector<std::size_t>& dirty_tasks) override;

  /// Checkpoint state: only last_round_ beyond the base rewards — the
  /// schedule itself is a pure function of each task's received count.
  Json state_to_json() const override;
  void restore_state(const Json& state) override;

  /// Quality model Q(x) and its expected improvement dQ(x).
  double quality(int measurements) const;
  double quality_gain(int measurements) const;

  /// Reward for a task that has already received x measurements.
  Money reward_at(int measurements) const;

 private:
  Money rc_;
  double mu_;
  double delta_;
  Round last_round_ = 0;  // round rewards_ was last fully published for
};

}  // namespace mcs::incentive
