#include "incentive/mechanism.h"

#include "common/error.h"
#include "common/strings.h"
#include "incentive/fixed_mechanism.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/participation_mechanism.h"
#include "incentive/steered_mechanism.h"

namespace mcs::incentive {

void IncentiveMechanism::reprice(const model::World& world, Round k,
                                 const std::vector<std::size_t>& dirty_tasks) {
  (void)dirty_tasks;
  update_rewards(world, k);
}

Money IncentiveMechanism::reward(TaskId task) const {
  MCS_CHECK(task >= 0 && static_cast<std::size_t>(task) < rewards_.size(),
            "reward queried for unknown task (update_rewards not called?)");
  return rewards_[static_cast<std::size_t>(task)];
}

MechanismKind parse_mechanism(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "on-demand" || lower == "ondemand" || lower == "demand") {
    return MechanismKind::kOnDemand;
  }
  if (lower == "fixed") return MechanismKind::kFixed;
  if (lower == "steered") return MechanismKind::kSteered;
  if (lower == "participation" || lower == "radp") {
    return MechanismKind::kParticipation;
  }
  throw Error("unknown incentive mechanism: " + name);
}

const char* mechanism_name(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kOnDemand: return "on-demand";
    case MechanismKind::kFixed: return "fixed";
    case MechanismKind::kSteered: return "steered";
    case MechanismKind::kParticipation: return "participation";
  }
  return "?";
}

std::unique_ptr<IncentiveMechanism> make_mechanism(
    MechanismKind kind, const model::World& world,
    const MechanismParams& params, Rng& rng) {
  const RewardRule rule = RewardRule::from_budget(
      params.platform_budget, world.total_required(), params.lambda,
      params.demand_levels);
  switch (kind) {
    case MechanismKind::kOnDemand:
      return std::make_unique<OnDemandMechanism>(
          DemandIndicator::with_paper_defaults(),
          DemandLevelScale(params.demand_levels), rule);
    case MechanismKind::kFixed:
      return std::make_unique<FixedMechanism>(rule, world.num_tasks(), rng);
    case MechanismKind::kSteered:
      return std::make_unique<SteeredMechanism>(
          params.steered_rc, params.steered_mu, params.steered_delta);
    case MechanismKind::kParticipation:
      return std::make_unique<ParticipationMechanism>(
          rule, params.participation_target, params.participation_band);
  }
  throw Error("unknown incentive mechanism kind");
}

}  // namespace mcs::incentive
