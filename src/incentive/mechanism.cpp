#include "incentive/mechanism.h"

#include <climits>

#include "common/error.h"
#include "common/strings.h"
#include "incentive/fixed_mechanism.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/participation_mechanism.h"
#include "incentive/steered_mechanism.h"

namespace mcs::incentive {

void IncentiveMechanism::reprice(const model::World& world, Round k,
                                 const std::vector<std::size_t>& dirty_tasks) {
  (void)dirty_tasks;
  update_rewards(world, k);
}

Json IncentiveMechanism::state_to_json() const {
  Json state = Json::object();
  state["rewards"] = money_array(rewards_);
  return state;
}

void IncentiveMechanism::restore_state(const Json& state) {
  rewards_ = money_vector(state.at("rewards"));
}

Json IncentiveMechanism::money_array(const std::vector<Money>& values) {
  Json::Array out;
  out.reserve(values.size());
  for (const Money v : values) out.emplace_back(v);
  return Json(std::move(out));
}

std::vector<Money> IncentiveMechanism::money_vector(const Json& array) {
  const Json::Array& in = array.as_array();
  std::vector<Money> out;
  out.reserve(in.size());
  for (const Json& v : in) out.push_back(v.as_number());
  return out;
}

Json IncentiveMechanism::int_array(const std::vector<int>& values) {
  Json::Array out;
  out.reserve(values.size());
  for (const int v : values) out.emplace_back(v);
  return Json(std::move(out));
}

std::vector<int> IncentiveMechanism::int_vector(const Json& array) {
  const Json::Array& in = array.as_array();
  std::vector<int> out;
  out.reserve(in.size());
  for (const Json& v : in) {
    const long long i = v.as_int();
    MCS_CHECK(i >= INT_MIN && i <= INT_MAX, "integer out of range");
    out.push_back(static_cast<int>(i));
  }
  return out;
}

Money IncentiveMechanism::reward(TaskId task) const {
  MCS_CHECK(task >= 0 && static_cast<std::size_t>(task) < rewards_.size(),
            "reward queried for unknown task (update_rewards not called?)");
  return rewards_[static_cast<std::size_t>(task)];
}

MechanismKind parse_mechanism(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "on-demand" || lower == "ondemand" || lower == "demand") {
    return MechanismKind::kOnDemand;
  }
  if (lower == "fixed") return MechanismKind::kFixed;
  if (lower == "steered") return MechanismKind::kSteered;
  if (lower == "participation" || lower == "radp") {
    return MechanismKind::kParticipation;
  }
  throw Error("unknown incentive mechanism: " + name);
}

const char* mechanism_name(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kOnDemand: return "on-demand";
    case MechanismKind::kFixed: return "fixed";
    case MechanismKind::kSteered: return "steered";
    case MechanismKind::kParticipation: return "participation";
  }
  return "?";
}

std::unique_ptr<IncentiveMechanism> make_mechanism(
    MechanismKind kind, const model::World& world,
    const MechanismParams& params, Rng& rng) {
  const RewardRule rule = RewardRule::from_budget(
      params.platform_budget, world.total_required(), params.lambda,
      params.demand_levels);
  switch (kind) {
    case MechanismKind::kOnDemand:
      return std::make_unique<OnDemandMechanism>(
          DemandIndicator::with_paper_defaults(),
          DemandLevelScale(params.demand_levels), rule);
    case MechanismKind::kFixed:
      return std::make_unique<FixedMechanism>(rule, world.num_tasks(), rng);
    case MechanismKind::kSteered:
      return std::make_unique<SteeredMechanism>(
          params.steered_rc, params.steered_mu, params.steered_delta);
    case MechanismKind::kParticipation:
      return std::make_unique<ParticipationMechanism>(
          rule, params.participation_target, params.participation_band);
  }
  throw Error("unknown incentive mechanism kind");
}

}  // namespace mcs::incentive
