#include "incentive/on_demand_mechanism.h"

#include <algorithm>

#include "common/error.h"

namespace mcs::incentive {

OnDemandMechanism::OnDemandMechanism(DemandIndicator indicator,
                                     DemandLevelScale scale, RewardRule rule)
    : indicator_(std::move(indicator)), scale_(scale), rule_(rule) {}

void OnDemandMechanism::update_rewards(const model::World& world, Round k) {
  const std::vector<int>& counts = world.neighbor_counts();
  indicator_.normalized_demands_into(world, k, counts, last_demands_);
  scale_.levels_into(last_demands_, last_levels_);
  rewards_.assign(world.num_tasks(), 0.0);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;  // withdrawn
    rewards_[i] = rule_.reward(last_levels_[i]);
  }
  last_counts_.assign(counts.begin(), counts.end());
  last_max_neighbors_ =
      counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
  last_round_ = k;
  published_ = true;
}

void OnDemandMechanism::reprice_position(const model::World& world, Round k,
                                         std::size_t pos, int neighbors,
                                         int max_neighbors) {
  // Mirrors one iteration of demands_into + normalize + levels_into +
  // the pricing loop, in the same operation order, so the stored doubles
  // are bit-identical to a full recompute.
  const model::Task& t = world.tasks()[pos];
  const double d =
      indicator_.normalize(indicator_.demand(t, k, neighbors, max_neighbors));
  last_demands_[pos] = d;
  last_levels_[pos] = scale_.level(d);
  rewards_[pos] = (t.completed() || t.expired_at(k))
                      ? 0.0
                      : rule_.reward(last_levels_[pos]);
  last_counts_[pos] = neighbors;
}

void OnDemandMechanism::reprice(const model::World& world, Round k,
                                const std::vector<std::size_t>& dirty_tasks) {
  const std::size_t n = world.num_tasks();
  if (!published_ || last_round_ != k || rewards_.size() != n ||
      last_counts_.size() != n) {
    update_rewards(world, k);
    return;
  }
  const std::vector<int>& counts = world.neighbor_counts();
  MCS_CHECK(counts.size() == n, "one neighbor count per task");
  const int max_neighbors =
      counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
  if (max_neighbors != last_max_neighbors_) {
    // Nmax enters every task's X3 denominator: everything is dirty.
    update_rewards(world, k);
    return;
  }
  for (const std::size_t pos : dirty_tasks) {
    MCS_CHECK(pos < n, "dirty task position out of range");
    reprice_position(world, k, pos, counts[pos], max_neighbors);
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (counts[pos] != last_counts_[pos]) {
      reprice_position(world, k, pos, counts[pos], max_neighbors);
    }
  }
}

}  // namespace mcs::incentive
