#include "incentive/on_demand_mechanism.h"

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::incentive {

OnDemandMechanism::OnDemandMechanism(DemandIndicator indicator,
                                     DemandLevelScale scale, RewardRule rule)
    : indicator_(std::move(indicator)), scale_(scale), rule_(rule) {
  rewards_by_row_ = true;  // rewards_ is indexed by task position
}

void OnDemandMechanism::update_rewards(const model::World& world, Round k) {
  // Consume the world's change journal: this full recompute (re)baselines
  // every price against the current counts, so changes accumulated before
  // this publish must not leak into the next reprice's delta.
  const model::World::NeighborDelta delta = world.take_neighbor_changes();
  const std::vector<int>& counts = *delta.counts;
  const model::TaskStore& ts = world.task_store();
  const std::size_t n = ts.size();
  MCS_CHECK(counts.size() == n, "one neighbor count per task");
  last_demands_.resize(n);
  last_levels_.resize(n);
  rewards_.resize(n);
  // Fused demand/level/reward sweep, fanned over the reprice pool in
  // disjoint task-row ranges: one pass over the store columns instead of
  // three (demands, levels, pricing), and every row writes only its own
  // slots, so the result is bit-identical at any worker count. The per-row
  // operation is exactly reprice_position's (demand_from_fields -> normalize
  // -> level -> withdrawn-gated reward; received >= required / k > deadline
  // are Task::completed()/expired_at() verbatim), keeping the incremental
  // path's oracle this very function.
  parallel_ranges(
      reprice_pool_, reprice_workers_, n,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const int received = static_cast<int>(ts.measurements[i].size());
          const double d = indicator_.normalize(indicator_.demand_from_fields(
              ts.deadline[i], ts.required[i], received, k, counts[i],
              delta.max_count));
          last_demands_[i] = d;
          last_levels_[i] = scale_.level(d);
          const bool withdrawn = received >= ts.required[i] || k > ts.deadline[i];
          rewards_[i] = withdrawn ? 0.0 : rule_.reward(last_levels_[i]);
        }
      });
  // The histogram-backed running max is the same integer max_element finds.
  last_max_neighbors_ = delta.max_count;
  last_round_ = k;
  published_ = true;
}

Json OnDemandMechanism::state_to_json() const {
  Json state = IncentiveMechanism::state_to_json();
  state["last_demands"] = money_array(last_demands_);
  state["last_levels"] = int_array(last_levels_);
  state["last_max_neighbors"] = last_max_neighbors_;
  state["last_round"] = last_round_;
  state["published"] = published_;
  return state;
}

void OnDemandMechanism::restore_state(const Json& state) {
  IncentiveMechanism::restore_state(state);
  last_demands_ = money_vector(state.at("last_demands"));
  last_levels_ = int_vector(state.at("last_levels"));
  const long long nmax = state.at("last_max_neighbors").as_int();
  MCS_CHECK(nmax >= 0, "max neighbor count must be non-negative");
  last_max_neighbors_ = static_cast<int>(nmax);
  last_round_ = static_cast<Round>(state.at("last_round").as_int());
  published_ = state.at("published").as_bool();
  last_reprice_touched_ = 0;
}

void OnDemandMechanism::reprice_position(const model::World& world, Round k,
                                         std::size_t pos, int neighbors,
                                         int max_neighbors) {
  // Mirrors one iteration of demands_into + normalize + levels_into +
  // the pricing loop, in the same operation order, so the stored doubles
  // are bit-identical to a full recompute.
  const model::Task& t = world.tasks()[pos];
  const double d =
      indicator_.normalize(indicator_.demand(t, k, neighbors, max_neighbors));
  last_demands_[pos] = d;
  last_levels_[pos] = scale_.level(d);
  rewards_[pos] = (t.completed() || t.expired_at(k))
                      ? 0.0
                      : rule_.reward(last_levels_[pos]);
}

void OnDemandMechanism::reprice(const model::World& world, Round k,
                                const std::vector<std::size_t>& dirty_tasks) {
  const std::size_t n = world.num_tasks();
  if (!published_ || last_round_ != k || rewards_.size() != n) {
    update_rewards(world, k);
    last_reprice_touched_ = n;
    return;
  }
  // The delta since the last publish/reprice, straight from the neighbor
  // cache's journal: no O(n) count-diff scan, no O(n) max_element. Taking
  // before the fallback checks is safe — both fallbacks recompute in full
  // against the current counts (and consume an empty journal themselves).
  const model::World::NeighborDelta delta = world.take_neighbor_changes();
  if (delta.rebuilt) {
    // The cache was rebuilt (task or user set changed): there is no
    // per-position delta to replay.
    update_rewards(world, k);
    last_reprice_touched_ = n;
    return;
  }
  const std::vector<int>& counts = *delta.counts;
  MCS_CHECK(counts.size() == n, "one neighbor count per task");
  const int max_neighbors = delta.max_count;
  if (max_neighbors != last_max_neighbors_) {
    // Nmax enters every task's X3 denominator: everything is dirty.
    update_rewards(world, k);
    last_reprice_touched_ = n;
    return;
  }
  last_reprice_touched_ = 0;
  for (const std::size_t pos : dirty_tasks) {
    MCS_CHECK(pos < n, "dirty task position out of range");
    reprice_position(world, k, pos, counts[pos], max_neighbors);
    ++last_reprice_touched_;
  }
  // Positions whose count was touched by user movement. The journal may
  // include net-zero round trips; repricing from the *current* count is a
  // pure function, so those recompute to bit-identical values.
  for (const std::size_t pos : *delta.changed) {
    reprice_position(world, k, pos, counts[pos], max_neighbors);
    ++last_reprice_touched_;
  }
}

}  // namespace mcs::incentive
