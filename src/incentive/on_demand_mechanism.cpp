#include "incentive/on_demand_mechanism.h"

namespace mcs::incentive {

OnDemandMechanism::OnDemandMechanism(DemandIndicator indicator,
                                     DemandLevelScale scale, RewardRule rule)
    : indicator_(std::move(indicator)), scale_(scale), rule_(rule) {}

void OnDemandMechanism::update_rewards(const model::World& world, Round k) {
  last_demands_ = indicator_.normalized_demands(world, k);
  last_levels_ = scale_.levels_for(last_demands_);
  rewards_.assign(world.num_tasks(), 0.0);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;  // withdrawn
    rewards_[i] = rule_.reward(last_levels_[i]);
  }
}

}  // namespace mcs::incentive
