#include "incentive/steered_mechanism.h"

#include <cmath>

#include "common/error.h"

namespace mcs::incentive {

SteeredMechanism::SteeredMechanism(Money rc, double mu, double delta)
    : rc_(rc), mu_(mu), delta_(delta) {
  MCS_CHECK(rc >= 0.0, "steered base reward must be non-negative");
  MCS_CHECK(mu >= 0.0, "steered mu must be non-negative");
  MCS_CHECK(delta > 0.0 && delta < 1.0, "steered delta must be in (0,1)");
}

double SteeredMechanism::quality(int measurements) const {
  MCS_CHECK(measurements >= 0, "measurement count must be non-negative");
  return 1.0 - std::pow(1.0 - delta_, measurements);
}

double SteeredMechanism::quality_gain(int measurements) const {
  return quality(measurements + 1) - quality(measurements);
}

Money SteeredMechanism::reward_at(int measurements) const {
  return rc_ + mu_ * quality_gain(measurements);
}

void SteeredMechanism::update_rewards(const model::World& world, Round k) {
  rewards_.assign(world.num_tasks(), 0.0);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;
    rewards_[i] = reward_at(t.received());
  }
}

}  // namespace mcs::incentive
