#include "incentive/steered_mechanism.h"

#include <cmath>

#include "common/error.h"

namespace mcs::incentive {

SteeredMechanism::SteeredMechanism(Money rc, double mu, double delta)
    : rc_(rc), mu_(mu), delta_(delta) {
  rewards_by_row_ = true;  // rewards_ is indexed by task position
  MCS_CHECK(rc >= 0.0, "steered base reward must be non-negative");
  MCS_CHECK(mu >= 0.0, "steered mu must be non-negative");
  MCS_CHECK(delta > 0.0 && delta < 1.0, "steered delta must be in (0,1)");
}

double SteeredMechanism::quality(int measurements) const {
  MCS_CHECK(measurements >= 0, "measurement count must be non-negative");
  return 1.0 - std::pow(1.0 - delta_, measurements);
}

double SteeredMechanism::quality_gain(int measurements) const {
  return quality(measurements + 1) - quality(measurements);
}

Money SteeredMechanism::reward_at(int measurements) const {
  return rc_ + mu_ * quality_gain(measurements);
}

Json SteeredMechanism::state_to_json() const {
  Json state = IncentiveMechanism::state_to_json();
  state["last_round"] = last_round_;
  return state;
}

void SteeredMechanism::restore_state(const Json& state) {
  IncentiveMechanism::restore_state(state);
  last_round_ = static_cast<Round>(state.at("last_round").as_int());
}

void SteeredMechanism::update_rewards(const model::World& world, Round k) {
  rewards_.assign(world.num_tasks(), 0.0);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;
    rewards_[i] = reward_at(t.received());
  }
  last_round_ = k;
}

void SteeredMechanism::reprice(const model::World& world, Round k,
                               const std::vector<std::size_t>& dirty_tasks) {
  if (last_round_ != k || rewards_.size() != world.num_tasks()) {
    update_rewards(world, k);
    return;
  }
  // Within the round k is fixed, so expiry cannot flip; completion only
  // flips through a new measurement, which puts the task in the dirty set.
  // Every untouched task therefore keeps the exact double a full recompute
  // would reproduce.
  for (const std::size_t i : dirty_tasks) {
    MCS_CHECK(i < rewards_.size(), "dirty task position out of range");
    const model::Task& t = world.tasks()[i];
    rewards_[i] = (t.completed() || t.expired_at(k))
                      ? 0.0
                      : reward_at(t.received());
  }
}

}  // namespace mcs::incentive
