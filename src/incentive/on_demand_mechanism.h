// The paper's demand-based dynamic ("pay on-demand") incentive mechanism.
//
// Every round: evaluate the AHP-weighted demand indicator for each task,
// normalize, quantize into demand levels, and price with the linear rule of
// Eq. 7. Completed and expired tasks get reward 0 (they are withdrawn).
#pragma once

#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/mechanism.h"
#include "incentive/reward.h"

namespace mcs::incentive {

class OnDemandMechanism final : public IncentiveMechanism {
 public:
  OnDemandMechanism(DemandIndicator indicator, DemandLevelScale scale,
                    RewardRule rule);

  const char* name() const override { return "on-demand"; }

  void update_rewards(const model::World& world, Round k) override;

  /// Introspection of the most recent update (for tests, traces and the
  /// Table III bench): normalized demands and levels per task.
  const std::vector<double>& last_normalized_demands() const {
    return last_demands_;
  }
  const std::vector<int>& last_levels() const { return last_levels_; }

  const DemandIndicator& indicator() const { return indicator_; }
  const RewardRule& rule() const { return rule_; }
  const DemandLevelScale& scale() const { return scale_; }

 private:
  DemandIndicator indicator_;
  DemandLevelScale scale_;
  RewardRule rule_;
  std::vector<double> last_demands_;
  std::vector<int> last_levels_;
};

}  // namespace mcs::incentive
