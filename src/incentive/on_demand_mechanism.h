// The paper's demand-based dynamic ("pay on-demand") incentive mechanism.
//
// Every round: evaluate the AHP-weighted demand indicator for each task,
// normalize, quantize into demand levels, and price with the linear rule of
// Eq. 7. Completed and expired tasks get reward 0 (they are withdrawn).
#pragma once

#include <cstddef>

#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/mechanism.h"
#include "incentive/reward.h"

namespace mcs::incentive {

class OnDemandMechanism final : public IncentiveMechanism {
 public:
  OnDemandMechanism(DemandIndicator indicator, DemandLevelScale scale,
                    RewardRule rule);

  const char* name() const override { return "on-demand"; }

  /// Allocation-free in steady state: demand/level/reward buffers are
  /// members reused across rounds (pinned by bench_incentive_micro's
  /// operator-new counter).
  void update_rewards(const model::World& world, Round k) override;

  /// Incremental repricing. A task's price can change between two sessions
  /// of one round only if (a) it gained a measurement (it is in
  /// `dirty_tasks`), or (b) its neighbor count moved because a user walked
  /// (delivered by World's neighbor-cache change journal), or (c) the
  /// global max neighbor count Nmax changed, which perturbs X3 for *every*
  /// task — that case falls back to the full recompute, as does a cache
  /// rebuild (no per-position delta exists to replay). X1 depends only on
  /// (k, deadline) and is frozen within the round. Bit-identical to
  /// update_rewards by the reprice() contract; the fast path is truly
  /// O(dirty + journaled count changes) — Nmax comes from the cache's
  /// count histogram, so there is no O(T) scan of any kind.
  void reprice(const model::World& world, Round k,
               const std::vector<std::size_t>& dirty_tasks) override;

  /// Number of task positions the most recent reprice() actually repriced
  /// (num_tasks when it fell back to a full update). Pins the O(dirty)
  /// contract in tests and the bench fast-path gate.
  std::size_t last_reprice_touched() const { return last_reprice_touched_; }

  /// Checkpoint state: the published demand/level/reward snapshot plus the
  /// reprice bookkeeping (Nmax, round, published). last_reprice_touched_ is
  /// a diagnostic, not pricing state, and is reset on restore. After a
  /// resume the world's neighbor cache is freshly rebuilt, so the first
  /// reprice() sees rebuilt=true and recomputes in full — bit-identical by
  /// the reprice() contract, with no cache state to serialize.
  Json state_to_json() const override;
  void restore_state(const Json& state) override;

  /// Introspection of the most recent update (for tests, traces and the
  /// Table III bench): normalized demands and levels per task.
  const std::vector<double>& last_normalized_demands() const {
    return last_demands_;
  }
  const std::vector<int>& last_levels() const { return last_levels_; }

  const DemandIndicator& indicator() const { return indicator_; }
  const RewardRule& rule() const { return rule_; }
  const DemandLevelScale& scale() const { return scale_; }

 private:
  void reprice_position(const model::World& world, Round k, std::size_t pos,
                        int neighbors, int max_neighbors);

  DemandIndicator indicator_;
  DemandLevelScale scale_;
  RewardRule rule_;
  std::vector<double> last_demands_;
  std::vector<int> last_levels_;
  // Reprice bookkeeping: the Nmax the current rewards_ were priced against
  // and the round they were published for. Per-position changes arrive via
  // World::take_neighbor_changes(), so no count snapshot is kept here.
  int last_max_neighbors_ = 0;
  Round last_round_ = 0;
  bool published_ = false;
  std::size_t last_reprice_touched_ = 0;
};

}  // namespace mcs::incentive
