#include "incentive/demand_level.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::incentive {

DemandLevelScale::DemandLevelScale(int levels) : levels_(levels) {
  MCS_CHECK(levels >= 1, "demand level count must be at least 1");
}

int DemandLevelScale::level(double normalized_demand) const {
  const double d = std::clamp(normalized_demand, 0.0, 1.0);
  // Buckets are left-open, right-closed except the first: ceil(d*N) with a
  // floor of 1 implements exactly Table III's edges. The epsilon keeps a
  // value sitting exactly on an edge (e.g. 0.29 at N=100, which rounds to
  // 29.000000000000004) in its own bucket instead of the one above.
  const int lvl = static_cast<int>(std::ceil(d * levels_ - 1e-9));
  return std::clamp(lvl, 1, levels_);
}

double DemandLevelScale::bucket_low(int level) const {
  MCS_CHECK(level >= 1 && level <= levels_, "demand level out of range");
  return static_cast<double>(level - 1) / levels_;
}

double DemandLevelScale::bucket_high(int level) const {
  MCS_CHECK(level >= 1 && level <= levels_, "demand level out of range");
  return static_cast<double>(level) / levels_;
}

std::vector<int> DemandLevelScale::levels_for(
    const std::vector<double>& demands) const {
  std::vector<int> out;
  levels_into(demands, out);
  return out;
}

void DemandLevelScale::levels_into(const std::vector<double>& demands,
                                   std::vector<int>& out) const {
  levels_into(demands, out, nullptr, 1);
}

void DemandLevelScale::levels_into(const std::vector<double>& demands,
                                   std::vector<int>& out, ThreadPool* pool,
                                   int workers) const {
  out.resize(demands.size());
  parallel_ranges(pool, workers, demands.size(),
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      out[i] = level(demands[i]);
                    }
                  });
}

}  // namespace mcs::incentive
