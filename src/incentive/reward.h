// The linear demand-level reward rule of §IV-C.
//
//   r_ti^k = r0 + lambda * (DL_ti^k - 1)                  (Eq. 7)
//
// with r0 chosen from the platform budget B so that even if every
// measurement were paid the maximum reward the budget holds (Eqs. 8–9):
//
//   r0 = B / sum_i(phi_i) - lambda * (N - 1)              (Eq. 9)
#pragma once

#include "common/types.h"

namespace mcs::incentive {

class RewardRule {
 public:
  /// Direct construction from the base reward r0, the per-level increment
  /// lambda and the number of demand levels N.
  RewardRule(Money r0, Money lambda, int levels);

  /// Derive r0 from the platform budget (Eq. 9). `total_required` is
  /// sum_i phi_i. Throws when the budget is too small for a positive r0.
  static RewardRule from_budget(Money budget, long long total_required,
                                Money lambda, int levels);

  Money r0() const { return r0_; }
  Money lambda() const { return lambda_; }
  int levels() const { return levels_; }

  /// Eq. 7.
  Money reward(int demand_level) const;

  Money min_reward() const { return reward(1); }
  Money max_reward() const { return reward(levels_); }

  /// Left side of Eq. 8 for a given total measurement requirement: the
  /// worst-case payout if every measurement earned the maximum reward.
  Money worst_case_payout(long long total_required) const;

 private:
  Money r0_;
  Money lambda_;
  int levels_;
};

}  // namespace mcs::incentive
