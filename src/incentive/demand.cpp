#include "incentive/demand.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::incentive {

double DemandParams::lambda_max() const {
  return std::max({lambda1, lambda2, lambda3});
}

double deadline_factor(Round deadline, Round k, double lambda1) {
  MCS_CHECK(k >= 1, "rounds are 1-based");
  const Round remaining = deadline - (k - 1);  // rounds left incl. this one
  if (remaining <= 0) return 0.0;              // expired: no demand
  return lambda1 * std::log(1.0 + 1.0 / static_cast<double>(remaining));
}

double progress_factor(int received, int required, double lambda2) {
  MCS_CHECK(required > 0, "required measurements must be positive");
  MCS_CHECK(received >= 0, "received measurements must be non-negative");
  const double progress =
      std::min(1.0, static_cast<double>(received) / required);
  return lambda2 * std::log(1.0 + (1.0 - progress));
}

double neighbor_factor(int neighbors, int max_neighbors, double lambda3) {
  MCS_CHECK(neighbors >= 0, "neighbor count must be non-negative");
  MCS_CHECK(max_neighbors >= neighbors,
            "max neighbor count below a task's count");
  if (max_neighbors == 0) return lambda3 * std::log(2.0);
  const double ratio = static_cast<double>(neighbors) / max_neighbors;
  return lambda3 * std::log(1.0 + (1.0 - ratio));
}

DemandIndicator::DemandIndicator(DemandParams params,
                                 const ahp::ComparisonMatrix& criteria_matrix,
                                 ahp::WeightMethod method)
    : params_(params) {
  MCS_CHECK(params.lambda1 > 0 && params.lambda2 > 0 && params.lambda3 > 0,
            "demand scale coefficients must be positive");
  MCS_CHECK(criteria_matrix.size() == 3,
            "demand indicator uses exactly three criteria");
  weights_ = ahp::compute_weights(criteria_matrix, method);
}

DemandIndicator::DemandIndicator(DemandParams params,
                                 std::vector<double> weights)
    : params_(params), weights_(std::move(weights)) {
  MCS_CHECK(params.lambda1 > 0 && params.lambda2 > 0 && params.lambda3 > 0,
            "demand scale coefficients must be positive");
  MCS_CHECK(weights_.size() == 3, "demand indicator uses exactly three criteria");
  double sum = 0.0;
  for (const double w : weights_) {
    MCS_CHECK(w >= 0.0, "criterion weights must be non-negative");
    sum += w;
  }
  MCS_CHECK(std::abs(sum - 1.0) < 1e-9, "criterion weights must sum to 1");
}

DemandIndicator DemandIndicator::with_paper_defaults(DemandParams params) {
  // Table I: deadline vs progress = 3, deadline vs neighbors = 5,
  // progress vs neighbors = 2.
  const auto m = ahp::ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  return DemandIndicator(params, m, ahp::WeightMethod::kRowAverage);
}

double DemandIndicator::demand_from_fields(Round deadline, int required,
                                           int received, Round k,
                                           int neighbors,
                                           int max_neighbors) const {
  if (received >= required || k > deadline) return 0.0;  // completed/expired
  const double x1 = deadline_factor(deadline, k, params_.lambda1);
  const double x2 = progress_factor(received, required, params_.lambda2);
  const double x3 = neighbor_factor(neighbors, max_neighbors, params_.lambda3);
  return weights_[0] * x1 + weights_[1] * x2 + weights_[2] * x3;
}

double DemandIndicator::demand(const model::Task& task, Round k, int neighbors,
                               int max_neighbors) const {
  return demand_from_fields(task.deadline(), task.required(), task.received(),
                            k, neighbors, max_neighbors);
}

std::vector<double> DemandIndicator::demands(const model::World& world,
                                             Round k) const {
  // neighbor_counts() is one entry per task *position*; index by position
  // (task ids need not be dense or equal to their vector index). The cache
  // maintains the running max alongside the counts, so no Nmax scan here.
  const std::vector<int>& counts = world.neighbor_counts();
  std::vector<double> out;
  demands_into(world, k, counts, world.neighbor_max_count(), out);
  return out;
}

std::vector<double> DemandIndicator::demands(
    const model::World& world, Round k,
    const std::vector<int>& neighbor_counts) const {
  std::vector<double> out;
  demands_into(world, k, neighbor_counts, out);
  return out;
}

void DemandIndicator::demands_into(const model::World& world, Round k,
                                   const std::vector<int>& neighbor_counts,
                                   std::vector<double>& out) const {
  // Standalone-caller fallback: the counts need not come from the world's
  // neighbor cache, so Nmax is derived from them by scanning.
  demands_into(world, k, neighbor_counts, kScanForMax, out);
}

void DemandIndicator::demands_into(const model::World& world, Round k,
                                   const std::vector<int>& neighbor_counts,
                                   int max_neighbors, std::vector<double>& out,
                                   ThreadPool* pool, int workers) const {
  sweep_into(world, k, neighbor_counts, max_neighbors, /*normalized=*/false,
             out, pool, workers);
}

int DemandIndicator::max_count_over(const std::vector<int>& counts,
                                    ThreadPool* pool, int workers) {
  if (counts.empty()) return 0;
  // Two-pass deterministic reduction: each range folds into its own fixed
  // slot, then the slots fold serially — integer max is associative, so any
  // partition (including the single serial range) yields the same Nmax.
  // Slots start at the identity 0 (counts are non-negative by contract)
  // because the serial path delivers everything as range 0.
  constexpr int kMaxRanges = 64;
  const int w = std::clamp(workers, 1, kMaxRanges);
  std::array<int, kMaxRanges> range_max;
  range_max.fill(0);
  parallel_ranges(pool, w, counts.size(),
                  [&](std::size_t s, std::size_t lo, std::size_t hi) {
                    int m = 0;
                    for (std::size_t i = lo; i < hi; ++i) {
                      m = std::max(m, counts[i]);
                    }
                    range_max[s] = m;
                  });
  int m = 0;
  for (int s = 0; s < w; ++s) m = std::max(m, range_max[s]);
  return m;
}

void DemandIndicator::sweep_into(const model::World& world, Round k,
                                 const std::vector<int>& neighbor_counts,
                                 int max_neighbors, bool normalized,
                                 std::vector<double>& out, ThreadPool* pool,
                                 int workers) const {
  MCS_CHECK(neighbor_counts.size() == world.num_tasks(),
            "one neighbor count per task");
  if (max_neighbors < 0) {
    max_neighbors = max_count_over(neighbor_counts, pool, workers);
  }
  // One cache-friendly sweep over the store columns instead of a Task view
  // per row: deadline/required stream as packed lines, and only the
  // measurement-vector size is read per task. Identical expression to
  // demand() by construction (shared demand_from_fields core). Every row
  // writes only its own out slot and the ranges are disjoint, so the
  // parallel sweep is race-free and bit-identical to the serial one.
  const model::TaskStore& ts = world.task_store();
  out.resize(ts.size());
  parallel_ranges(pool, workers, ts.size(),
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      const double d = demand_from_fields(
                          ts.deadline[i], ts.required[i],
                          static_cast<int>(ts.measurements[i].size()), k,
                          neighbor_counts[i], max_neighbors);
                      out[i] = normalized ? normalize(d) : d;
                    }
                  });
}

double DemandIndicator::normalize(double demand) const {
  const double bound = params_.lambda_max() * std::log(2.0);
  const double d = demand / bound;
  return std::clamp(d, 0.0, 1.0);
}

std::vector<double> DemandIndicator::normalized_demands(
    const model::World& world, Round k) const {
  // Fused single pass (normalize applied as each row is produced) over the
  // cache's counts and running max — one sweep and one allocation where
  // this used to copy demands() and normalize in a second loop.
  const std::vector<int>& counts = world.neighbor_counts();
  std::vector<double> out;
  normalized_demands_into(world, k, counts, world.neighbor_max_count(), out);
  return out;
}

void DemandIndicator::normalized_demands_into(
    const model::World& world, Round k,
    const std::vector<int>& neighbor_counts, std::vector<double>& out) const {
  normalized_demands_into(world, k, neighbor_counts, kScanForMax, out);
}

void DemandIndicator::normalized_demands_into(
    const model::World& world, Round k,
    const std::vector<int>& neighbor_counts, int max_neighbors,
    std::vector<double>& out, ThreadPool* pool, int workers) const {
  sweep_into(world, k, neighbor_counts, max_neighbors, /*normalized=*/true,
             out, pool, workers);
}

}  // namespace mcs::incentive
