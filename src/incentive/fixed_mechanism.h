// Fixed incentive baseline (§VI): each task draws a random demand level when
// the campaign starts and keeps the corresponding Eq. 7 reward forever.
#pragma once

#include "common/rng.h"
#include "incentive/mechanism.h"
#include "incentive/reward.h"

namespace mcs::incentive {

class FixedMechanism final : public IncentiveMechanism {
 public:
  /// Draws one demand level per task uniformly from 1..rule.levels().
  FixedMechanism(RewardRule rule, std::size_t num_tasks, Rng& rng);

  /// Explicit levels (e.g. all tasks at the same reward).
  FixedMechanism(RewardRule rule, std::vector<int> levels);

  const char* name() const override { return "fixed"; }

  void update_rewards(const model::World& world, Round k) override;

  /// Checkpoint state: the drawn levels (construction consumed rng, so a
  /// rebuilt mechanism cannot re-derive them without replaying the draw).
  Json state_to_json() const override;
  void restore_state(const Json& state) override;

  const std::vector<int>& levels() const { return levels_; }

 private:
  RewardRule rule_;
  std::vector<int> levels_;
};

}  // namespace mcs::incentive
