// Adaptive-budget on-demand mechanism (our extension, not in the paper).
//
// The paper derives the base reward r0 once from the whole budget (Eq. 9):
// r0 = B/Σφ − λ(N−1). That is conservative: every measurement bought below
// the maximum reward leaves budget on the table. This variant re-derives
// the reward rule each round from the *remaining* budget and the *still
// missing* measurements, so unspent slack flows back into higher rewards —
// the worst-case bound of Eq. 8 holds round-by-round by construction:
//
//   r0_k = B_remaining / missing_k − λ(N−1),   clamped to [r0_floor, r0_cap].
//
// Everything else (demand indicator, levels) is the on-demand mechanism.
#pragma once

#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/mechanism.h"
#include "incentive/reward.h"

namespace mcs::incentive {

class AdaptiveBudgetMechanism final : public IncentiveMechanism {
 public:
  /// `budget` is the total platform budget B; `lambda`/`levels` as in
  /// Eq. 7. `r0_cap` bounds how far the base reward may escalate when only
  /// a few measurements remain (default: 10x the initial r0).
  AdaptiveBudgetMechanism(DemandIndicator indicator, DemandLevelScale scale,
                          Money budget, Money lambda,
                          Money r0_cap_factor = 10.0);

  const char* name() const override { return "on-demand-adaptive"; }

  void update_rewards(const model::World& world, Round k) override;

  /// The rule in force after the most recent update.
  const RewardRule& current_rule() const;

  /// Checkpoint state: the lazily computed initial r0 anchor and, once an
  /// update has run, the current rule's r0 (lambda and levels are
  /// construction parameters, so the rule is rebuilt from r0 alone).
  Json state_to_json() const override;
  void restore_state(const Json& state) override;

 private:
  DemandIndicator indicator_;
  DemandLevelScale scale_;
  Money budget_;
  Money lambda_;
  Money r0_cap_factor_;
  Money initial_r0_ = 0.0;        // computed lazily at the first update
  std::unique_ptr<RewardRule> rule_;
  // Scratch for the fused update sweep: fully recomputed every update, so
  // reused only to keep steady-state repricing allocation-free. Not
  // checkpoint state (nothing reads them across rounds).
  std::vector<double> last_demands_;
  std::vector<int> last_levels_;
};

}  // namespace mcs::incentive
