// Platform budget accounting: the total rewards paid to users over a whole
// campaign must never exceed the platform budget B (§III-B).
#pragma once

#include <cmath>

#include "common/types.h"

namespace mcs::incentive {

class BudgetTracker {
 public:
  /// Per-shard payment sub-account for the commit-merge path: the same
  /// Neumaier recurrence as pay(), but free-standing, so each commit
  /// segment can accumulate its own compensated payment total while the
  /// session walk fans out. Sub-account totals are order-sensitive in their
  /// last few ulps (floating-point addition does not associate), so the
  /// ordered merge never folds them into the campaign tracker — it replays
  /// the individual payments in global visit order, which is what keeps the
  /// tracker's (spent_, comp_) words bit-identical to the serial commit.
  /// The sub-accounts serve as the merge's per-segment cross-check and as
  /// diagnostics (DESIGN.md §10).
  struct SubAccount {
    Money sum = 0.0;
    Money comp = 0.0;

    void add(Money amount) {
      const Money t = sum + amount;
      if (std::abs(sum) >= std::abs(amount)) {
        comp += (sum - t) + amount;
      } else {
        comp += (amount - t) + sum;
      }
      sum = t;
    }

    Money total() const { return sum + comp; }
    void reset() { sum = comp = 0.0; }
  };

  /// In strict mode pay() throws on overdraft. In soft mode (used by the
  /// simulator) payments committed within a round are always honored and any
  /// excess is recorded as overdraft — Eq. 8 makes overdraft impossible at
  /// round granularity, but same-round over-delivery to an almost-complete
  /// task can theoretically overshoot, and the simulator reports rather than
  /// crashes if it ever does.
  explicit BudgetTracker(Money total, bool strict = true);

  Money total() const { return total_; }
  /// Compensated running sum of all payments (Neumaier): tiny payments are
  /// never absorbed by a large accumulated total, so a campaign of millions
  /// of micro-payments cannot silently drift past the budget the way a
  /// naive `spent_ += amount` does once `amount` drops below half an ulp
  /// of `spent_`.
  Money spent() const { return spent_ + comp_; }
  Money remaining() const { return total_ - spent(); }
  Money overdraft() const;

  /// True when charging `amount` stays within the budget up to a single
  /// absolute + relative tolerance: amount <= remaining() + 1e-9 +
  /// 1e-12 * total(). The relative term scales the slack with the budget's
  /// own ulp (a fixed 1e-9 is meaningless against a 1e9 budget, where one
  /// ulp is ~1.2e-7); the absolute term keeps tiny budgets permissive at
  /// the same magnitude as before. Together they bound the worst-case
  /// strict-mode overdraft by 1e-9 + 1e-12 * total() per campaign — the
  /// tolerance is only consumed once, by the final admitted payment.
  bool can_afford(Money amount) const;

  /// Record a payment; in strict mode throws mcs::Error when it would exceed
  /// the budget (beyond the can_afford() tolerance).
  void pay(Money amount);

  /// The two raw accumulator words, exposed for checkpointing. Restoring
  /// (spent_raw, compensation) verbatim — rather than folding them into one
  /// payment — keeps every subsequent pay() bit-identical to the
  /// uninterrupted run: the Neumaier recurrence depends on both words, not
  /// just their sum.
  Money spent_raw() const { return spent_; }
  Money compensation() const { return comp_; }
  void restore(Money spent, Money comp) {
    spent_ = spent;
    comp_ = comp;
  }

 private:
  Money total_;
  bool strict_;
  // Neumaier compensated accumulator: spent_ holds the running sum, comp_
  // the error term; the true total is their sum (see spent()).
  Money spent_ = 0.0;
  Money comp_ = 0.0;
};

}  // namespace mcs::incentive
