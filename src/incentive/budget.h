// Platform budget accounting: the total rewards paid to users over a whole
// campaign must never exceed the platform budget B (§III-B).
#pragma once

#include "common/types.h"

namespace mcs::incentive {

class BudgetTracker {
 public:
  /// In strict mode pay() throws on overdraft. In soft mode (used by the
  /// simulator) payments committed within a round are always honored and any
  /// excess is recorded as overdraft — Eq. 8 makes overdraft impossible at
  /// round granularity, but same-round over-delivery to an almost-complete
  /// task can theoretically overshoot, and the simulator reports rather than
  /// crashes if it ever does.
  explicit BudgetTracker(Money total, bool strict = true);

  Money total() const { return total_; }
  Money spent() const { return spent_; }
  Money remaining() const { return total_ - spent_; }
  Money overdraft() const;

  bool can_afford(Money amount) const;

  /// Record a payment; in strict mode throws mcs::Error when it would exceed
  /// the budget (beyond a tiny floating-point tolerance).
  void pay(Money amount);

 private:
  Money total_;
  bool strict_;
  Money spent_ = 0.0;
};

}  // namespace mcs::incentive
