#include "incentive/reward.h"

#include "common/error.h"

namespace mcs::incentive {

RewardRule::RewardRule(Money r0, Money lambda, int levels)
    : r0_(r0), lambda_(lambda), levels_(levels) {
  MCS_CHECK(levels >= 1, "reward rule needs at least one demand level");
  MCS_CHECK(r0 > 0.0, "base reward r0 must be positive");
  MCS_CHECK(lambda >= 0.0, "reward increment lambda must be non-negative");
}

RewardRule RewardRule::from_budget(Money budget, long long total_required,
                                   Money lambda, int levels) {
  MCS_CHECK(total_required > 0, "total required measurements must be positive");
  MCS_CHECK(budget > 0.0, "platform budget must be positive");
  const Money r0 = budget / static_cast<Money>(total_required) -
                   lambda * static_cast<Money>(levels - 1);
  MCS_CHECK(r0 > 0.0,
            "budget too small: Eq. 9 yields a non-positive base reward");
  return RewardRule(r0, lambda, levels);
}

Money RewardRule::reward(int demand_level) const {
  MCS_CHECK(demand_level >= 1 && demand_level <= levels_,
            "demand level out of range");
  return r0_ + lambda_ * static_cast<Money>(demand_level - 1);
}

Money RewardRule::worst_case_payout(long long total_required) const {
  return static_cast<Money>(total_required) * max_reward();
}

}  // namespace mcs::incentive
