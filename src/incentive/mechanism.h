// IncentiveMechanism: the platform-side pricing policy.
//
// At the start of every sensing round the simulator asks the mechanism to
// refresh the per-task rewards from the current world state; users then see
// those rewards when selecting tasks (Fig. 1 of the paper). Three policies
// are implemented: the paper's on-demand mechanism, a fixed mechanism and
// the steered-crowdsensing baseline of Kawajiri et al.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/types.h"
#include "model/world.h"

namespace mcs {
class ThreadPool;
}

namespace mcs::incentive {

class IncentiveMechanism {
 public:
  virtual ~IncentiveMechanism() = default;

  virtual const char* name() const = 0;

  /// Recompute rewards for round k from the world state (called once per
  /// round, before task selection). Implementations must size the reward
  /// vector to world.num_tasks().
  virtual void update_rewards(const model::World& world, Round k) = 0;

  /// Mechanisms that react to every arriving measurement (Kawajiri's
  /// steered crowdsensing recomputes its points each user session) return
  /// true; the simulator then refreshes rewards before each user instead of
  /// once per round. Round-granularity mechanisms keep the default.
  virtual bool updates_within_round() const { return false; }

  /// Incremental intra-round repricing. Between two user sessions of one
  /// round only a sliver of the world changes: the previous session's tasks
  /// gained measurements (their positions arrive in `dirty_tasks`) and some
  /// users moved (visible through World::neighbor_counts(), which is
  /// delta-maintained). The simulator calls this instead of
  /// update_rewards() before every session of a round that has already been
  /// published with update_rewards(world, k).
  ///
  /// Contract: after reprice() returns, rewards() must be bit-identical to
  /// what a full update_rewards(world, k) against the same world would
  /// produce — incrementality is an implementation detail, never a
  /// semantic. The default keeps that trivially true by recomputing in
  /// full; mechanisms with a cheap dirty-path override it (the equivalence
  /// suite pins steered's O(dirty) path against the full recompute).
  virtual void reprice(const model::World& world, Round k,
                       const std::vector<std::size_t>& dirty_tasks);

  /// Reward of task `task` at the current round (0 for tasks no longer
  /// asking for participants).
  Money reward(TaskId task) const;

  const std::vector<Money>& rewards() const { return rewards_; }

  /// Workers available to the next update_rewards()/reprice() call. The
  /// simulator points every mechanism at its reprice pool once per round;
  /// mechanisms with a sharded sweep (on-demand, adaptive) fan their
  /// per-task-row pricing out over it, the rest ignore it. pool = nullptr
  /// or workers <= 1 restores the serial path. The pool must outlive the
  /// pricing calls; the mechanism never owns it.
  void set_reprice_workers(ThreadPool* pool, int workers) {
    reprice_pool_ = pool;
    reprice_workers_ = workers;
  }

  /// The reward table as a dense per-task-row snapshot, or nullptr when
  /// rewards are not row-indexed. Mechanisms whose reward vector is indexed
  /// by task *position* (all built-in ones) opt in via rewards_by_row_;
  /// then (*reward_rows())[row] == reward(task id at row) for every row,
  /// and the simulator's bulk phases (open-task scan, commit reward tables)
  /// read the contiguous array instead of one virtual bounds-checked
  /// reward() call per task. Custom mechanisms keeping an id-keyed table
  /// (e.g. sparse task ids) leave the flag unset and keep the virtual path.
  /// The pointer/values are valid until the next update_rewards(),
  /// reprice() or restore_state() call.
  const std::vector<Money>* reward_rows() const {
    return rewards_by_row_ ? &rewards_ : nullptr;
  }

  /// Serialize every field that influences future pricing decisions, for
  /// campaign checkpoints. The contract is bit-exactness: after
  /// restore_state(state_to_json()) on a mechanism constructed with the
  /// same parameters, every subsequent update_rewards()/reprice() must
  /// produce the same doubles the uninterrupted mechanism would.
  /// Construction-time parameters (rules, scales, controller constants) are
  /// NOT serialized — the resume path rebuilds the mechanism from the
  /// experiment config first, then overlays this state. Derived classes
  /// call the base (which carries `rewards_`) and add their own keys.
  virtual Json state_to_json() const;

  /// Inverse of state_to_json(). Throws mcs::Error on missing keys, type
  /// mismatches or out-of-range values (corrupted checkpoint), leaving no
  /// partially restored state a caller is allowed to keep using.
  virtual void restore_state(const Json& state);

 protected:
  // JSON helpers shared by the state_to_json()/restore_state() overrides.
  // Doubles survive the trip bit-exactly (Json dumps %.17g); ints are
  // range-checked on the way back in.
  static Json money_array(const std::vector<Money>& values);
  static std::vector<Money> money_vector(const Json& array);
  static Json int_array(const std::vector<int>& values);
  static std::vector<int> int_vector(const Json& array);

  std::vector<Money> rewards_;
  // See reward_rows(): set true in the constructor of every mechanism whose
  // rewards_ is indexed by task position.
  bool rewards_by_row_ = false;
  // See set_reprice_workers(): the sharded-sweep mechanisms hand these to
  // parallel_ranges; (nullptr, 1) — the default — is the serial path.
  ThreadPool* reprice_pool_ = nullptr;
  int reprice_workers_ = 1;
};

enum class MechanismKind {
  kOnDemand,       // the paper's demand-based dynamic mechanism
  kFixed,          // fixed random per-task rewards (§VI baseline)
  kSteered,        // Kawajiri et al. quality-steered baseline (§VI)
  kParticipation,  // participation-target global price (à la Lee & Hoh [11])
};

MechanismKind parse_mechanism(const std::string& name);
const char* mechanism_name(MechanismKind kind);

/// Shared knobs for building a mechanism over a given world.
struct MechanismParams {
  Money platform_budget = 1000.0;  // B
  Money lambda = 0.5;              // per-level reward increment
  int demand_levels = 5;           // N
  // Steered baseline constants: reward = Rc + mu * dQ(x),
  // dQ(x) = delta * (1-delta)^x, spanning (Rc, Rc + mu*delta].
  //
  // §VI quotes (Rc=5, mu=100, delta=0.2, "reward varies in [5,25]"), but the
  // paper's own Fig. 9(b) shows steered paying under $2.5 per measurement —
  // i.e. the experiments ran steered at the same reward scale as the other
  // mechanisms. We default to the scale-normalized constants (rewards in
  // [0.5, 2.5], matching r0..r0+lambda(N-1)); pass the quoted values via
  // flags to reproduce the literal §VI text. See DESIGN.md §4.
  Money steered_rc = 0.5;
  double steered_mu = 10.0;
  double steered_delta = 0.2;
  // Participation-target baseline: desired active-user fraction per round
  // and the dead band around it.
  double participation_target = 0.5;
  double participation_band = 0.1;
};

/// Factory covering the three paper mechanisms. `rng` is consumed only by
/// the fixed mechanism (to draw its random per-task demand levels).
std::unique_ptr<IncentiveMechanism> make_mechanism(MechanismKind kind,
                                                   const model::World& world,
                                                   const MechanismParams& params,
                                                   Rng& rng);

}  // namespace mcs::incentive
