// IncentiveMechanism: the platform-side pricing policy.
//
// At the start of every sensing round the simulator asks the mechanism to
// refresh the per-task rewards from the current world state; users then see
// those rewards when selecting tasks (Fig. 1 of the paper). Three policies
// are implemented: the paper's on-demand mechanism, a fixed mechanism and
// the steered-crowdsensing baseline of Kawajiri et al.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/world.h"

namespace mcs::incentive {

class IncentiveMechanism {
 public:
  virtual ~IncentiveMechanism() = default;

  virtual const char* name() const = 0;

  /// Recompute rewards for round k from the world state (called once per
  /// round, before task selection). Implementations must size the reward
  /// vector to world.num_tasks().
  virtual void update_rewards(const model::World& world, Round k) = 0;

  /// Mechanisms that react to every arriving measurement (Kawajiri's
  /// steered crowdsensing recomputes its points each user session) return
  /// true; the simulator then refreshes rewards before each user instead of
  /// once per round. Round-granularity mechanisms keep the default.
  virtual bool updates_within_round() const { return false; }

  /// Reward of task `task` at the current round (0 for tasks no longer
  /// asking for participants).
  Money reward(TaskId task) const;

  const std::vector<Money>& rewards() const { return rewards_; }

 protected:
  std::vector<Money> rewards_;
};

enum class MechanismKind {
  kOnDemand,       // the paper's demand-based dynamic mechanism
  kFixed,          // fixed random per-task rewards (§VI baseline)
  kSteered,        // Kawajiri et al. quality-steered baseline (§VI)
  kParticipation,  // participation-target global price (à la Lee & Hoh [11])
};

MechanismKind parse_mechanism(const std::string& name);
const char* mechanism_name(MechanismKind kind);

/// Shared knobs for building a mechanism over a given world.
struct MechanismParams {
  Money platform_budget = 1000.0;  // B
  Money lambda = 0.5;              // per-level reward increment
  int demand_levels = 5;           // N
  // Steered baseline constants: reward = Rc + mu * dQ(x),
  // dQ(x) = delta * (1-delta)^x, spanning (Rc, Rc + mu*delta].
  //
  // §VI quotes (Rc=5, mu=100, delta=0.2, "reward varies in [5,25]"), but the
  // paper's own Fig. 9(b) shows steered paying under $2.5 per measurement —
  // i.e. the experiments ran steered at the same reward scale as the other
  // mechanisms. We default to the scale-normalized constants (rewards in
  // [0.5, 2.5], matching r0..r0+lambda(N-1)); pass the quoted values via
  // flags to reproduce the literal §VI text. See DESIGN.md §4.
  Money steered_rc = 0.5;
  double steered_mu = 10.0;
  double steered_delta = 0.2;
  // Participation-target baseline: desired active-user fraction per round
  // and the dead band around it.
  double participation_target = 0.5;
  double participation_band = 0.1;
};

/// Factory covering the three paper mechanisms. `rng` is consumed only by
/// the fixed mechanism (to draw its random per-task demand levels).
std::unique_ptr<IncentiveMechanism> make_mechanism(MechanismKind kind,
                                                   const model::World& world,
                                                   const MechanismParams& params,
                                                   Rng& rng);

}  // namespace mcs::incentive
