#include "incentive/adaptive_budget_mechanism.h"

#include <algorithm>

#include "common/error.h"

namespace mcs::incentive {

AdaptiveBudgetMechanism::AdaptiveBudgetMechanism(DemandIndicator indicator,
                                                 DemandLevelScale scale,
                                                 Money budget, Money lambda,
                                                 Money r0_cap_factor)
    : indicator_(std::move(indicator)),
      scale_(scale),
      budget_(budget),
      lambda_(lambda),
      r0_cap_factor_(r0_cap_factor) {
  MCS_CHECK(budget > 0.0, "budget must be positive");
  MCS_CHECK(lambda >= 0.0, "lambda must be non-negative");
  MCS_CHECK(r0_cap_factor >= 1.0, "r0 cap factor must be at least 1");
}

void AdaptiveBudgetMechanism::update_rewards(const model::World& world,
                                             Round k) {
  // Remaining budget and still-missing measurements (useful ones only).
  const Money spent = world.total_paid();
  const Money remaining = std::max(Money{0}, budget_ - spent);
  long long missing = 0;
  for (const model::Task& t : world.tasks()) {
    if (t.expired_at(k)) continue;
    missing += std::max(0, t.required() - t.received());
  }

  if (initial_r0_ == 0.0) {
    MCS_CHECK(missing > 0, "campaign starts with nothing to sense");
    initial_r0_ = budget_ / static_cast<Money>(missing) -
                  lambda_ * static_cast<Money>(scale_.levels() - 1);
    MCS_CHECK(initial_r0_ > 0.0,
              "budget too small: Eq. 9 yields a non-positive base reward");
  }

  Money r0;
  if (missing <= 0 || remaining <= 0.0) {
    r0 = initial_r0_;  // nothing open or nothing left; rewards moot below
  } else {
    r0 = remaining / static_cast<Money>(missing) -
         lambda_ * static_cast<Money>(scale_.levels() - 1);
  }
  // Never price below the paper's static rule (participation floor), never
  // above the escalation cap.
  r0 = std::clamp(r0, initial_r0_, initial_r0_ * r0_cap_factor_);
  rule_ = std::make_unique<RewardRule>(r0, lambda_, scale_.levels());

  const auto demands = indicator_.normalized_demands(world, k);
  const auto levels = scale_.levels_for(demands);
  rewards_.assign(world.num_tasks(), 0.0);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;
    // Affordability guard: stop publishing rewards the remaining budget
    // cannot honor for the task's missing measurements.
    if (remaining <= 0.0) continue;
    rewards_[i] = rule_->reward(levels[i]);
  }
}

Json AdaptiveBudgetMechanism::state_to_json() const {
  Json state = IncentiveMechanism::state_to_json();
  state["initial_r0"] = initial_r0_;
  if (rule_ != nullptr) state["rule_r0"] = rule_->r0();
  return state;
}

void AdaptiveBudgetMechanism::restore_state(const Json& state) {
  IncentiveMechanism::restore_state(state);
  initial_r0_ = state.at("initial_r0").as_number();
  MCS_CHECK(initial_r0_ >= 0.0, "initial r0 must be non-negative");
  if (state.has("rule_r0")) {
    rule_ = std::make_unique<RewardRule>(state.at("rule_r0").as_number(),
                                         lambda_, scale_.levels());
  } else {
    rule_.reset();
  }
}

const RewardRule& AdaptiveBudgetMechanism::current_rule() const {
  MCS_CHECK(rule_ != nullptr, "update_rewards not called yet");
  return *rule_;
}

}  // namespace mcs::incentive
