#include "incentive/adaptive_budget_mechanism.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::incentive {

AdaptiveBudgetMechanism::AdaptiveBudgetMechanism(DemandIndicator indicator,
                                                 DemandLevelScale scale,
                                                 Money budget, Money lambda,
                                                 Money r0_cap_factor)
    : indicator_(std::move(indicator)),
      scale_(scale),
      budget_(budget),
      lambda_(lambda),
      r0_cap_factor_(r0_cap_factor) {
  rewards_by_row_ = true;  // rewards_ is indexed by task position
  MCS_CHECK(budget > 0.0, "budget must be positive");
  MCS_CHECK(lambda >= 0.0, "lambda must be non-negative");
  MCS_CHECK(r0_cap_factor >= 1.0, "r0 cap factor must be at least 1");
}

void AdaptiveBudgetMechanism::update_rewards(const model::World& world,
                                             Round k) {
  // Remaining budget and still-missing measurements (useful ones only),
  // swept over the store columns (k > deadline is Task::expired_at()
  // verbatim, measurement size is Task::received()).
  const Money spent = world.total_paid();
  const Money remaining = std::max(Money{0}, budget_ - spent);
  const model::TaskStore& ts = world.task_store();
  const std::size_t n = ts.size();
  long long missing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (k > ts.deadline[i]) continue;
    missing += std::max(
        0, ts.required[i] - static_cast<int>(ts.measurements[i].size()));
  }

  if (initial_r0_ == 0.0) {
    MCS_CHECK(missing > 0, "campaign starts with nothing to sense");
    initial_r0_ = budget_ / static_cast<Money>(missing) -
                  lambda_ * static_cast<Money>(scale_.levels() - 1);
    MCS_CHECK(initial_r0_ > 0.0,
              "budget too small: Eq. 9 yields a non-positive base reward");
  }

  Money r0;
  if (missing <= 0 || remaining <= 0.0) {
    r0 = initial_r0_;  // nothing open or nothing left; rewards moot below
  } else {
    r0 = remaining / static_cast<Money>(missing) -
         lambda_ * static_cast<Money>(scale_.levels() - 1);
  }
  // Never price below the paper's static rule (participation floor), never
  // above the escalation cap.
  r0 = std::clamp(r0, initial_r0_, initial_r0_ * r0_cap_factor_);
  rule_ = std::make_unique<RewardRule>(r0, lambda_, scale_.levels());

  // Consume the journal for the synced counts and running Nmax (this
  // mechanism is its world's single pricing consumer, and it recomputes in
  // full every round, so taking — rather than peeking — is correct). Then
  // one fused demand/level/reward sweep over the store columns, fanned over
  // the reprice pool in disjoint task-row ranges: each row writes only its
  // own slots, so any worker count is bit-identical. last_demands_ and
  // last_levels_ are scratch (recomputed every round, never read across
  // rounds), hence not part of the checkpoint state.
  const model::World::NeighborDelta delta = world.take_neighbor_changes();
  const std::vector<int>& counts = *delta.counts;
  MCS_CHECK(counts.size() == n, "one neighbor count per task");
  last_demands_.resize(n);
  last_levels_.resize(n);
  rewards_.resize(n);
  const RewardRule& rule = *rule_;
  parallel_ranges(
      reprice_pool_, reprice_workers_, n,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const int received = static_cast<int>(ts.measurements[i].size());
          const double d = indicator_.normalize(indicator_.demand_from_fields(
              ts.deadline[i], ts.required[i], received, k, counts[i],
              delta.max_count));
          last_demands_[i] = d;
          last_levels_[i] = scale_.level(d);
          // Affordability guard: stop publishing rewards the remaining
          // budget cannot honor for the task's missing measurements.
          const bool withdrawn =
              received >= ts.required[i] || k > ts.deadline[i];
          rewards_[i] = (withdrawn || remaining <= 0.0)
                            ? 0.0
                            : rule.reward(last_levels_[i]);
        }
      });
}

Json AdaptiveBudgetMechanism::state_to_json() const {
  Json state = IncentiveMechanism::state_to_json();
  state["initial_r0"] = initial_r0_;
  if (rule_ != nullptr) state["rule_r0"] = rule_->r0();
  return state;
}

void AdaptiveBudgetMechanism::restore_state(const Json& state) {
  IncentiveMechanism::restore_state(state);
  initial_r0_ = state.at("initial_r0").as_number();
  MCS_CHECK(initial_r0_ >= 0.0, "initial r0 must be non-negative");
  if (state.has("rule_r0")) {
    rule_ = std::make_unique<RewardRule>(state.at("rule_r0").as_number(),
                                         lambda_, scale_.levels());
  } else {
    rule_.reset();
  }
}

const RewardRule& AdaptiveBudgetMechanism::current_rule() const {
  MCS_CHECK(rule_ != nullptr, "update_rewards not called yet");
  return *rule_;
}

}  // namespace mcs::incentive
