#include "incentive/participation_mechanism.h"

#include <algorithm>

#include "common/error.h"

namespace mcs::incentive {

ParticipationMechanism::ParticipationMechanism(RewardRule rule, double target,
                                               double band)
    : rule_(rule), target_(target), band_(band), level_((rule.levels() + 1) / 2) {
  rewards_by_row_ = true;  // rewards_ is indexed by task position
  MCS_CHECK(target > 0.0 && target <= 1.0, "participation target in (0,1]");
  MCS_CHECK(band >= 0.0 && band < target, "band must be in [0, target)");
}

void ParticipationMechanism::observe_participation(double active_fraction) {
  MCS_CHECK(active_fraction >= 0.0 && active_fraction <= 1.0 + 1e-9,
            "active fraction must be in [0,1]");
  if (active_fraction < target_ - band_) {
    level_ = std::min(level_ + 1, rule_.levels());
  } else if (active_fraction > target_ + band_) {
    level_ = std::max(level_ - 1, 1);
  }
}

Json ParticipationMechanism::state_to_json() const {
  Json state = IncentiveMechanism::state_to_json();
  state["level"] = level_;
  state["last_total_received"] = last_total_received_;
  return state;
}

void ParticipationMechanism::restore_state(const Json& state) {
  IncentiveMechanism::restore_state(state);
  const long long level = state.at("level").as_int();
  MCS_CHECK(level >= 1 && level <= rule_.levels(),
            "participation level out of range");
  level_ = static_cast<int>(level);
  last_total_received_ = state.at("last_total_received").as_int();
  MCS_CHECK(last_total_received_ >= 0,
            "total received count must be non-negative");
}

void ParticipationMechanism::update_rewards(const model::World& world,
                                            Round k) {
  // Self-contained controller input: infer last round's participation from
  // the measurement delta (the proxy saturates at 1).
  if (k > 1 && world.num_users() > 0) {
    const long long delta = world.total_received() - last_total_received_;
    const double proxy =
        std::min(1.0, static_cast<double>(delta) /
                          static_cast<double>(world.num_users()));
    observe_participation(proxy);
  }
  last_total_received_ = world.total_received();

  rewards_.assign(world.num_tasks(), 0.0);
  const Money reward = rule_.reward(level_);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;
    // One global price: the location-blindness this baseline embodies.
    rewards_[i] = reward;
  }
}

}  // namespace mcs::incentive
