// Quantization of normalized demand into N discrete demand levels
// (Table III of the paper: with N=5, demand (0.2,0.4] -> level 2, etc.).
#pragma once

#include <vector>

namespace mcs {
class ThreadPool;
}

namespace mcs::incentive {

class DemandLevelScale {
 public:
  /// `levels` = N >= 1 equal-width buckets over [0, 1].
  explicit DemandLevelScale(int levels);

  int levels() const { return levels_; }

  /// Demand level in 1..N. Bucket edges follow Table III: level 1 is
  /// [0, 1/N]; level L>1 is ((L-1)/N, L/N]. Values are clamped into [0,1].
  int level(double normalized_demand) const;

  /// Inclusive lower edge of a level's bucket (0 for level 1).
  double bucket_low(int level) const;
  /// Inclusive upper edge of a level's bucket.
  double bucket_high(int level) const;

  std::vector<int> levels_for(const std::vector<double>& demands) const;

  /// Allocation-free levels_for: writes into `out` (resized to match;
  /// steady-state callers reusing one buffer never allocate).
  void levels_into(const std::vector<double>& demands,
                   std::vector<int>& out) const;

  /// Sharded levels_into: the quantization sweep partitions into disjoint
  /// index ranges over `pool` (parallel_ranges semantics; pool = nullptr or
  /// workers <= 1 runs serially inline). level() is a pure per-element
  /// function into a private out slot, so the result is bit-identical at
  /// any worker count.
  void levels_into(const std::vector<double>& demands, std::vector<int>& out,
                   ThreadPool* pool, int workers) const;

 private:
  int levels_;
};

}  // namespace mcs::incentive
