// The demand indicator of §IV — the heart of the on-demand mechanism.
//
// The demand of task t_i at round k combines three factors (Eq. 2):
//   d_i^k = w1*X_i1 + w2*X_i2 + w3*X_i3
// with the factor definitions of Eqs. 3–5:
//   X_i1 = lambda1 * ln(1 + 1/(tau_i - (k-1)))        (deadline pressure)
//   X_i2 = lambda2 * ln(1 + (1 - pi_i/phi_i))         (missing progress)
//   X_i3 = lambda3 * ln(1 + (1 - N_i/Nmax))           (scarce neighbors)
// The weights come from an AHP pairwise comparison of the three criteria.
#pragma once

#include <vector>

#include "ahp/comparison_matrix.h"
#include "ahp/weights.h"
#include "common/types.h"
#include "model/world.h"

namespace mcs {
class ThreadPool;
}

namespace mcs::incentive {

/// Scale coefficients lambda1..lambda3 of Eqs. 3–5.
struct DemandParams {
  double lambda1 = 1.0;
  double lambda2 = 1.0;
  double lambda3 = 1.0;

  double lambda_max() const;
};

/// X_i1 of Eq. 3. `deadline` is tau_i (in rounds), `k` the current round
/// (1-based). Returns 0 for an already-expired task (k > tau_i): an expired
/// task exerts no demand. Monotically increasing in k, bounded by
/// lambda1*ln 2 (attained at the final round k = tau_i).
double deadline_factor(Round deadline, Round k, double lambda1);

/// X_i2 of Eq. 4 from received (pi_i) and required (phi_i) measurements.
/// Decreasing in progress; lambda2*ln 2 at zero progress, 0 when complete.
double progress_factor(int received, int required, double lambda2);

/// X_i3 of Eq. 5 from the task's neighboring-user count N_i and the maximum
/// count over all tasks Nmax. Decreasing in N_i; 0 when N_i == Nmax,
/// lambda3*ln 2 when N_i == 0. When Nmax == 0 every task is equally starved
/// and the factor takes its maximum value for all of them.
double neighbor_factor(int neighbors, int max_neighbors, double lambda3);

/// Evaluates demands for whole task sets against a World snapshot.
class DemandIndicator {
 public:
  /// `criteria_matrix` compares (deadline, progress, neighbors) pairwise;
  /// weights are extracted with `method` (the paper uses row averages,
  /// Eq. 6).
  DemandIndicator(DemandParams params, const ahp::ComparisonMatrix& criteria_matrix,
                  ahp::WeightMethod method = ahp::WeightMethod::kRowAverage);

  /// Explicit weights (deadline, progress, neighbors), bypassing AHP.
  /// Weights must be non-negative and sum to 1 (within tolerance); used by
  /// ablation studies (e.g. deadline-only = {1,0,0}).
  DemandIndicator(DemandParams params, std::vector<double> weights);

  /// Paper default: the Table I matrix {a12=3, a13=5, a23=2} giving
  /// W = (0.648, 0.230, 0.122).
  static DemandIndicator with_paper_defaults(DemandParams params = {});

  const std::vector<double>& weights() const { return weights_; }
  const DemandParams& params() const { return params_; }

  /// Raw demand d_i^k of one task (Eq. 2).
  double demand(const model::Task& task, Round k, int neighbors,
                int max_neighbors) const;

  /// Eq. 2 straight from store columns — the shared per-row core of
  /// demand() and every *_into sweep below, so all of them are the same
  /// expression by construction. Public so mechanisms fusing demand, level
  /// and reward into one column sweep (on_demand/adaptive update_rewards)
  /// price with the exact operation the pinned oracles use.
  double demand_from_fields(Round deadline, int required, int received,
                            Round k, int neighbors, int max_neighbors) const;

  /// Sentinel max_neighbors for the *_into overloads: scan the supplied
  /// counts for Nmax (two-pass deterministic reduction; see demands_into).
  static constexpr int kScanForMax = -1;

  /// Raw demands for all tasks of a world at round k. Completed or expired
  /// tasks get demand 0 (they no longer ask for participants).
  ///
  /// Demands are a pure function of the *current* world snapshot — nothing
  /// is cached between rounds. That statelessness is what makes the
  /// mechanism degrade gracefully under faults: a measurement lost in
  /// upload never advances pi_i, so the next recompute re-inflates the
  /// task's demand (and hence its published reward) until someone actually
  /// delivers.
  std::vector<double> demands(const model::World& world, Round k) const;

  /// Same, with the per-task neighbor counts already in hand (one entry per
  /// task position, as returned by World::neighbor_counts()). Lets callers
  /// that evaluate several rounds or mechanisms against one user placement
  /// skip the spatial-grid recount.
  std::vector<double> demands(const model::World& world, Round k,
                              const std::vector<int>& neighbor_counts) const;

  /// Allocation-free demands: writes into `out` (resized to match). The
  /// mechanism hot path calls this once per publish with a reused member
  /// buffer, so steady-state repricing allocates nothing. This overload
  /// scans the counts for Nmax — callers holding the cache's running max
  /// (World::neighbor_max_count() or NeighborDelta::max_count) should pass
  /// it to the overload below and skip the O(T) scan.
  void demands_into(const model::World& world, Round k,
                    const std::vector<int>& neighbor_counts,
                    std::vector<double>& out) const;

  /// The sharded core: the per-row sweep partitions into disjoint task-row
  /// ranges fanned out over `pool` (parallel_ranges; pool = nullptr or
  /// workers <= 1 runs serially inline). Each row is a pure function of the
  /// store columns, its count and Nmax written to its own out slot, so the
  /// result is bit-identical at any worker count. `max_neighbors` is Nmax
  /// (>= every count; callers with the cache's running max pass it here);
  /// kScanForMax derives it from the counts by a two-pass deterministic
  /// reduction — per-range integer max into fixed slots, then a serial fold
  /// — which is exact for any partition because integer max is associative.
  void demands_into(const model::World& world, Round k,
                    const std::vector<int>& neighbor_counts, int max_neighbors,
                    std::vector<double>& out, ThreadPool* pool = nullptr,
                    int workers = 1) const;

  /// Normalized demand in [0,1]: d / (lambda_max * ln 2)  (§IV-C).
  double normalize(double demand) const;

  std::vector<double> normalized_demands(const model::World& world,
                                         Round k) const;

  /// Allocation-free normalized_demands over precomputed neighbor counts.
  /// Fused: each row is normalized as it is produced (one column sweep, no
  /// second pass over out), which is the same per-element operation order
  /// as demands_into + normalize and therefore bit-identical to it.
  void normalized_demands_into(const model::World& world, Round k,
                               const std::vector<int>& neighbor_counts,
                               std::vector<double>& out) const;

  /// Sharded fused normalize; max_neighbors/pool semantics exactly as in
  /// the sharded demands_into above.
  void normalized_demands_into(const model::World& world, Round k,
                               const std::vector<int>& neighbor_counts,
                               int max_neighbors, std::vector<double>& out,
                               ThreadPool* pool = nullptr,
                               int workers = 1) const;

 private:
  /// Shared body of the two sharded *_into overloads (normalized toggles
  /// the fused per-row normalize).
  void sweep_into(const model::World& world, Round k,
                  const std::vector<int>& neighbor_counts, int max_neighbors,
                  bool normalized, std::vector<double>& out, ThreadPool* pool,
                  int workers) const;

  /// The kScanForMax reduction: max over counts, partitioned like
  /// sweep_into. Counts are non-negative by contract (neighbor_factor
  /// checks), so empty/serial slots fold as identity 0.
  static int max_count_over(const std::vector<int>& counts, ThreadPool* pool,
                            int workers);

  DemandParams params_;
  std::vector<double> weights_;
};

}  // namespace mcs::incentive
