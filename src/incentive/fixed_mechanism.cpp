#include "incentive/fixed_mechanism.h"

#include "common/error.h"

namespace mcs::incentive {

FixedMechanism::FixedMechanism(RewardRule rule, std::size_t num_tasks, Rng& rng)
    : rule_(rule) {
  rewards_by_row_ = true;  // rewards_ is indexed by task position
  levels_.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    levels_.push_back(
        static_cast<int>(rng.uniform_int(1, rule.levels())));
  }
}

FixedMechanism::FixedMechanism(RewardRule rule, std::vector<int> levels)
    : rule_(rule), levels_(std::move(levels)) {
  rewards_by_row_ = true;  // rewards_ is indexed by task position
  for (const int lvl : levels_) {
    MCS_CHECK(lvl >= 1 && lvl <= rule_.levels(), "demand level out of range");
  }
}

Json FixedMechanism::state_to_json() const {
  Json state = IncentiveMechanism::state_to_json();
  state["levels"] = int_array(levels_);
  return state;
}

void FixedMechanism::restore_state(const Json& state) {
  IncentiveMechanism::restore_state(state);
  std::vector<int> levels = int_vector(state.at("levels"));
  for (const int lvl : levels) {
    MCS_CHECK(lvl >= 1 && lvl <= rule_.levels(), "demand level out of range");
  }
  levels_ = std::move(levels);
}

void FixedMechanism::update_rewards(const model::World& world, Round k) {
  MCS_CHECK(world.num_tasks() == levels_.size(),
            "fixed mechanism was built for a different task count");
  rewards_.assign(world.num_tasks(), 0.0);
  for (std::size_t i = 0; i < world.num_tasks(); ++i) {
    const model::Task& t = world.tasks()[i];
    if (t.completed() || t.expired_at(k)) continue;
    // The defining property of this baseline: the reward never changes.
    rewards_[i] = rule_.reward(levels_[i]);
  }
}

}  // namespace mcs::incentive
