// Participation-target dynamic pricing — a baseline in the spirit of Lee &
// Hoh's RADP-VPC [11 in the paper]: keep the *level of participation*
// adequate by moving a single global price, ignoring location and per-task
// demand differences (exactly the shortcoming §I calls out).
//
// Controller: all open tasks share one reward level L_k in 1..N (priced by
// the same Eq. 7 rule the other mechanisms use). After each round, compare
// the fraction of users who performed at least one task against the target
// band [target - band, target + band]: participation below the band raises
// the level, above lowers it.
#pragma once

#include "incentive/mechanism.h"
#include "incentive/reward.h"

namespace mcs::incentive {

class ParticipationMechanism final : public IncentiveMechanism {
 public:
  /// `target` is the desired fraction of active users per round, `band` the
  /// dead zone around it.
  ParticipationMechanism(RewardRule rule, double target = 0.5,
                         double band = 0.1);

  const char* name() const override { return "participation"; }

  void update_rewards(const model::World& world, Round k) override;

  int current_level() const { return level_; }

  /// Checkpoint state: the controller's level and its last participation
  /// observation baseline.
  Json state_to_json() const override;
  void restore_state(const Json& state) override;

  /// Feed the controller one observation: the fraction of users active in
  /// the round that just ended; the next update_rewards() publishes the
  /// adjusted level. update_rewards() also infers this automatically from
  /// the world's measurement delta, so calling it is only needed when
  /// driving the mechanism outside the simulator (e.g. tests).
  void observe_participation(double active_fraction);

 private:
  RewardRule rule_;
  double target_;
  double band_;
  int level_;
  long long last_total_received_ = 0;
};

}  // namespace mcs::incentive
