// Static 2-d k-d tree over points.
//
// Complements the uniform SpatialGrid: the grid wins on dense uniform data
// with a known query radius, the k-d tree on skewed/clustered data and on
// k-nearest-neighbor queries (which the grid answers awkwardly). Built once
// over a fixed point set (median splits, O(n log n)); queries are
// logarithmic on balanced data.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace mcs::geo {

class KdTree {
 public:
  struct Item {
    std::int32_t id;
    Point p;
  };

  KdTree() = default;
  explicit KdTree(std::vector<Item> items);

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Ids of all points within `radius` of `center` (inclusive boundary).
  std::vector<std::int32_t> query_radius(Point center, double radius) const;

  /// Number of points within the radius.
  std::size_t count_radius(Point center, double radius) const;

  /// The k nearest points' ids, closest first. Returns fewer when the tree
  /// holds fewer than k points. Ties broken by insertion order.
  std::vector<std::int32_t> nearest(Point center, std::size_t k = 1) const;

 private:
  struct Node {
    std::int32_t left = -1;    // node indices, -1 = leaf edge
    std::int32_t right = -1;
    std::int32_t item = -1;    // index into items_
    bool split_x = true;       // splitting axis at this node
  };

  std::int32_t build(std::size_t begin, std::size_t end, bool split_x);
  void radius_walk(std::int32_t node, Point center, double r2,
                   std::vector<std::int32_t>* out, std::size_t* count) const;
  void nearest_walk(std::int32_t node, Point center,
                    std::vector<std::pair<double, std::int32_t>>& heap,
                    std::size_t k) const;

  std::vector<Item> items_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace mcs::geo
