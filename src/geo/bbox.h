// Axis-aligned bounding box over the deployment area.
#pragma once

#include <algorithm>

#include "common/error.h"
#include "geo/point.h"

namespace mcs::geo {

struct BoundingBox {
  Point lo;
  Point hi;

  BoundingBox() = default;
  BoundingBox(Point lo_, Point hi_) : lo(lo_), hi(hi_) {
    MCS_CHECK(lo.x <= hi.x && lo.y <= hi.y, "bounding box corners inverted");
  }

  /// Square box [0, side] x [0, side] — the paper's experiment field shape.
  static BoundingBox square(double side) {
    MCS_CHECK(side > 0.0, "bounding box side must be positive");
    return BoundingBox({0.0, 0.0}, {side, side});
  }

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  double area() const { return width() * height(); }

  bool contains(Point p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Clamp a point into the box.
  Point clamp(Point p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }

  /// Longest distance between two points of the box (the diagonal).
  double diameter() const {
    const double w = width();
    const double h = height();
    return std::sqrt(w * w + h * h);
  }
};

}  // namespace mcs::geo
