// Polyline paths and the travel model.
//
// A user performing a set of location-dependent tasks walks a simple path
// from its start location through the task locations; the paper charges time
// (against the per-round budget) and money (cost-per-meter) proportional to
// the traveled distance.
#pragma once

#include <vector>

#include "common/types.h"
#include "geo/distance.h"
#include "geo/point.h"

namespace mcs::geo {

/// Total length of the polyline visiting `points` in order.
double path_length(const std::vector<Point>& points,
                   Metric metric = Metric::kEuclidean);

/// Travel model: constant walking speed and per-meter monetary cost, as in
/// the paper's evaluation (2 m/s and 0.002 $/m).
struct TravelModel {
  double speed_mps = 2.0;          // walking speed
  Money cost_per_meter = 0.002;    // movement cost

  Seconds time_for(Meters d) const { return d / speed_mps; }
  Money cost_for(Meters d) const { return d * cost_per_meter; }
  Meters distance_within(Seconds t) const { return t * speed_mps; }
};

/// Point reached after walking `dist` meters along the polyline; clamps to
/// the final vertex when dist exceeds the path length.
Point point_along(const std::vector<Point>& points, double dist);

}  // namespace mcs::geo
