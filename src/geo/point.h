// Plain 2-D point/vector in meters (planar deployment area, as in the
// paper's 3000 m x 3000 m experiment field).
#pragma once

#include <cmath>

namespace mcs::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend Point operator*(double s, Point a) { return a * s; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
  friend bool operator!=(Point a, Point b) { return !(a == b); }
};

inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }
inline double norm(Point a) { return std::sqrt(dot(a, a)); }

/// Linear interpolation from a to b; t=0 -> a, t=1 -> b.
inline Point lerp(Point a, Point b, double t) { return a + (b - a) * t; }

}  // namespace mcs::geo
