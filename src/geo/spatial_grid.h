// Uniform-grid spatial index over 2-D points.
//
// The platform counts "neighboring mobile users" of every task each round
// (factor X3 of the demand indicator); a grid with cell size ~= query radius
// answers those range queries in O(points in 3x3 cells) instead of O(n).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/distance.h"
#include "geo/point.h"

namespace mcs::geo {

class SpatialGrid {
 public:
  /// `bounds` must cover all inserted points; `cell_size` is typically the
  /// expected query radius.
  SpatialGrid(BoundingBox bounds, double cell_size);

  /// Insert a point with an opaque caller id. Points outside the bounds are
  /// clamped into the border cells (queries remain exact because candidate
  /// hits are distance-verified against the original coordinates).
  void insert(std::int32_t id, Point p);

  /// Remove one occurrence of id (the one at the given point). Returns
  /// whether something was removed.
  bool remove(std::int32_t id, Point p);

  /// Rebuild from scratch (cheapest way to handle bulk movement).
  void clear();

  /// All ids with distance(center, p) <= radius (Euclidean).
  std::vector<std::int32_t> query_radius(Point center, double radius) const;

  /// Number of points within the radius; avoids materializing ids.
  std::size_t count_radius(Point center, double radius) const;

  /// Visit every id with distance(center, p) <= radius without allocating.
  /// The hit predicate is exactly the one query_radius/count_radius use
  /// (squared-distance compare), so callers doing incremental bookkeeping
  /// see the same membership a full query would.
  template <typename F>
  void for_each_in_radius(Point center, double radius, F&& visit) const {
    const double r2 = radius * radius;
    int cx0, cy0, cx1, cy1;
    cell_range(center, radius, cx0, cy0, cx1, cy1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        const auto& cell = cells_[static_cast<std::size_t>(cy) *
                                      static_cast<std::size_t>(nx_) +
                                  static_cast<std::size_t>(cx)];
        for (const Entry& e : cell) {
          if (squared_euclidean(center, e.p) <= r2) visit(e.id);
        }
      }
    }
  }

  /// Id of the nearest point, or -1 when the grid is empty. Distance is
  /// written to *out_distance when non-null.
  std::int32_t nearest(Point center, double* out_distance = nullptr) const;

  std::size_t size() const { return size_; }

 private:
  struct Entry {
    std::int32_t id;
    Point p;
  };

  std::size_t cell_index(Point p) const;
  void cell_range(Point center, double radius, int& cx0, int& cy0, int& cx1,
                  int& cy1) const;

  BoundingBox bounds_;
  double cell_size_;
  int nx_;
  int ny_;
  std::vector<std::vector<Entry>> cells_;
  std::size_t size_ = 0;
};

/// Immutable CSR snapshot of a point set on the same uniform grid geometry
/// as SpatialGrid. Built once from a dense point vector (ids are the point
/// indices 0..n-1), then queried read-only: a cell's entries live in one
/// contiguous span grouped cell-by-cell (offsets_ + SoA point/id arrays),
/// so a 3x3-cell radius query walks three contiguous row ranges instead of
/// chasing nine separately allocated cell vectors — the cache behavior that
/// makes the neighbor-cache delta sync (world.cpp) cheap at 10^5 tasks.
///
/// Query semantics match SpatialGrid exactly: same clamped cell ranges,
/// same squared-distance hit predicate, and the same visit order (cells in
/// row-major order, entries of one cell in ascending point index — the
/// counting sort below is stable, mirroring SpatialGrid's insertion order
/// when points are inserted in index order). Hot loops under an existing
/// SpatialGrid therefore migrate bit-identically, journals included.
/// Queries are const and touch no mutable state, so any number of threads
/// may query one frozen grid concurrently.
class FrozenGrid {
 public:
  /// Empty snapshot (queries hit nothing).
  FrozenGrid() = default;

  /// Snapshot `points`; entry ids are the point indices. Points outside
  /// the bounds clamp into border cells, exactly like SpatialGrid::insert.
  FrozenGrid(BoundingBox bounds, double cell_size,
             const std::vector<Point>& points);

  std::size_t size() const { return ids_.size(); }

  /// Number of points with distance(center, p) <= radius.
  std::size_t count_radius(Point center, double radius) const;

  /// Visit every point index with distance(center, p) <= radius, without
  /// allocating, in the deterministic order documented above.
  template <typename F>
  void for_each_in_radius(Point center, double radius, F&& visit) const {
    if (ids_.empty()) return;
    const double r2 = radius * radius;
    int cx0, cy0, cx1, cy1;
    cell_range(center, radius, cx0, cy0, cx1, cy1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      // Cells [cy][cx0..cx1] are adjacent in the CSR layout: one contiguous
      // entry span per grid row covers the whole row of the query window.
      const std::size_t row = static_cast<std::size_t>(cy) *
                              static_cast<std::size_t>(nx_);
      const std::uint32_t lo = offsets_[row + static_cast<std::size_t>(cx0)];
      const std::uint32_t hi =
          offsets_[row + static_cast<std::size_t>(cx1) + 1];
      for (std::uint32_t e = lo; e < hi; ++e) {
        if (squared_euclidean(center, points_[e]) <= r2) visit(ids_[e]);
      }
    }
  }

 private:
  void cell_range(Point center, double radius, int& cx0, int& cy0, int& cx1,
                  int& cy1) const;

  BoundingBox bounds_;
  double cell_size_ = 1.0;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::uint32_t> offsets_;  // nx*ny + 1 CSR cell offsets
  std::vector<Point> points_;           // entry coordinates, cell-grouped
  std::vector<std::int32_t> ids_;       // entry point indices, same order
};

}  // namespace mcs::geo
