#include "geo/distance.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace mcs::geo {

namespace {
constexpr double kEarthRadiusMeters = 6371008.8;  // IUGG mean radius
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double euclidean(Point a, Point b) { return norm(a - b); }

double squared_euclidean(Point a, Point b) {
  const Point d = a - b;
  return dot(d, d);
}

double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

double haversine(Point a, Point b) {
  const double lat1 = a.y * kDegToRad;
  const double lat2 = b.y * kDegToRad;
  const double dlat = (b.y - a.y) * kDegToRad;
  const double dlon = (b.x - a.x) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double distance(Point a, Point b, Metric metric) {
  switch (metric) {
    case Metric::kEuclidean: return euclidean(a, b);
    case Metric::kManhattan: return manhattan(a, b);
    case Metric::kHaversine: return haversine(a, b);
  }
  throw Error("distance: unknown metric");
}

Metric parse_metric(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "euclidean" || lower == "l2") return Metric::kEuclidean;
  if (lower == "manhattan" || lower == "l1") return Metric::kManhattan;
  if (lower == "haversine" || lower == "geo") return Metric::kHaversine;
  throw Error("unknown distance metric: " + name);
}

const char* metric_name(Metric metric) {
  switch (metric) {
    case Metric::kEuclidean: return "euclidean";
    case Metric::kManhattan: return "manhattan";
    case Metric::kHaversine: return "haversine";
  }
  return "?";
}

}  // namespace mcs::geo
