#include "geo/kdtree.h"

#include <algorithm>

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::geo {

KdTree::KdTree(std::vector<Item> items) : items_(std::move(items)) {
  if (items_.empty()) return;
  nodes_.reserve(items_.size());
  root_ = build(0, items_.size(), /*split_x=*/true);
}

std::int32_t KdTree::build(std::size_t begin, std::size_t end, bool split_x) {
  if (begin >= end) return -1;
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(items_.begin() + static_cast<long>(begin),
                   items_.begin() + static_cast<long>(mid),
                   items_.begin() + static_cast<long>(end),
                   [split_x](const Item& a, const Item& b) {
                     return split_x ? a.p.x < b.p.x : a.p.y < b.p.y;
                   });
  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_index)].item =
      static_cast<std::int32_t>(mid);
  nodes_[static_cast<std::size_t>(node_index)].split_x = split_x;
  const std::int32_t left = build(begin, mid, !split_x);
  const std::int32_t right = build(mid + 1, end, !split_x);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

void KdTree::radius_walk(std::int32_t node, Point center, double r2,
                         std::vector<std::int32_t>* out,
                         std::size_t* count) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Item& item = items_[static_cast<std::size_t>(n.item)];
  if (squared_euclidean(center, item.p) <= r2) {
    if (out != nullptr) out->push_back(item.id);
    if (count != nullptr) ++*count;
  }
  const double diff = n.split_x ? center.x - item.p.x : center.y - item.p.y;
  const std::int32_t near = diff <= 0.0 ? n.left : n.right;
  const std::int32_t far = diff <= 0.0 ? n.right : n.left;
  radius_walk(near, center, r2, out, count);
  if (diff * diff <= r2) radius_walk(far, center, r2, out, count);
}

std::vector<std::int32_t> KdTree::query_radius(Point center,
                                               double radius) const {
  MCS_CHECK(radius >= 0.0, "query radius must be non-negative");
  std::vector<std::int32_t> out;
  radius_walk(root_, center, radius * radius, &out, nullptr);
  return out;
}

std::size_t KdTree::count_radius(Point center, double radius) const {
  MCS_CHECK(radius >= 0.0, "query radius must be non-negative");
  std::size_t count = 0;
  radius_walk(root_, center, radius * radius, nullptr, &count);
  return count;
}

void KdTree::nearest_walk(
    std::int32_t node, Point center,
    std::vector<std::pair<double, std::int32_t>>& heap, std::size_t k) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Item& item = items_[static_cast<std::size_t>(n.item)];
  const double d2 = squared_euclidean(center, item.p);
  if (heap.size() < k) {
    heap.emplace_back(d2, item.id);
    std::push_heap(heap.begin(), heap.end());  // max-heap on distance
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, item.id};
    std::push_heap(heap.begin(), heap.end());
  }
  const double diff = n.split_x ? center.x - item.p.x : center.y - item.p.y;
  const std::int32_t near = diff <= 0.0 ? n.left : n.right;
  const std::int32_t far = diff <= 0.0 ? n.right : n.left;
  nearest_walk(near, center, heap, k);
  // Visit the far side only if the splitting plane could still hide a
  // closer point than the current k-th best.
  if (heap.size() < k || diff * diff < heap.front().first) {
    nearest_walk(far, center, heap, k);
  }
}

std::vector<std::int32_t> KdTree::nearest(Point center, std::size_t k) const {
  MCS_CHECK(k >= 1, "nearest needs k >= 1");
  std::vector<std::pair<double, std::int32_t>> heap;
  heap.reserve(k + 1);
  nearest_walk(root_, center, heap, k);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<std::int32_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, id] : heap) out.push_back(id);
  return out;
}

}  // namespace mcs::geo
