#include "geo/path.h"

#include "common/error.h"

namespace mcs::geo {

double path_length(const std::vector<Point>& points, Metric metric) {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += distance(points[i - 1], points[i], metric);
  }
  return total;
}

Point point_along(const std::vector<Point>& points, double dist) {
  MCS_CHECK(!points.empty(), "point_along: empty path");
  MCS_CHECK(dist >= 0.0, "point_along: negative distance");
  double remaining = dist;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double seg = euclidean(points[i - 1], points[i]);
    if (remaining <= seg) {
      if (seg == 0.0) return points[i];
      return lerp(points[i - 1], points[i], remaining / seg);
    }
    remaining -= seg;
  }
  return points.back();
}

}  // namespace mcs::geo
