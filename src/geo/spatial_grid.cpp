#include "geo/spatial_grid.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/types.h"
#include "geo/distance.h"

namespace mcs::geo {

SpatialGrid::SpatialGrid(BoundingBox bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  MCS_CHECK(cell_size > 0.0, "spatial grid cell size must be positive");
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size)));
  cells_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
}

std::size_t SpatialGrid::cell_index(Point p) const {
  const Point c = bounds_.clamp(p);
  int cx = static_cast<int>((c.x - bounds_.lo.x) / cell_size_);
  int cy = static_cast<int>((c.y - bounds_.lo.y) / cell_size_);
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(cx);
}

void SpatialGrid::insert(std::int32_t id, Point p) {
  cells_[cell_index(p)].push_back({id, p});
  ++size_;
}

bool SpatialGrid::remove(std::int32_t id, Point p) {
  auto& cell = cells_[cell_index(p)];
  for (auto it = cell.begin(); it != cell.end(); ++it) {
    if (it->id == id && it->p == p) {
      cell.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

void SpatialGrid::clear() {
  for (auto& cell : cells_) cell.clear();
  size_ = 0;
}

void SpatialGrid::cell_range(Point center, double radius, int& cx0, int& cy0,
                             int& cx1, int& cy1) const {
  cx0 = std::clamp(
      static_cast<int>((center.x - radius - bounds_.lo.x) / cell_size_), 0,
      nx_ - 1);
  cy0 = std::clamp(
      static_cast<int>((center.y - radius - bounds_.lo.y) / cell_size_), 0,
      ny_ - 1);
  cx1 = std::clamp(
      static_cast<int>((center.x + radius - bounds_.lo.x) / cell_size_), 0,
      nx_ - 1);
  cy1 = std::clamp(
      static_cast<int>((center.y + radius - bounds_.lo.y) / cell_size_), 0,
      ny_ - 1);
}

std::vector<std::int32_t> SpatialGrid::query_radius(Point center,
                                                    double radius) const {
  MCS_CHECK(radius >= 0.0, "query radius must be non-negative");
  std::vector<std::int32_t> out;
  const double r2 = radius * radius;
  int cx0, cy0, cx1, cy1;
  cell_range(center, radius, cx0, cy0, cx1, cy1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const auto& cell =
          cells_[static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(cx)];
      for (const Entry& e : cell) {
        if (squared_euclidean(center, e.p) <= r2) out.push_back(e.id);
      }
    }
  }
  return out;
}

std::size_t SpatialGrid::count_radius(Point center, double radius) const {
  MCS_CHECK(radius >= 0.0, "query radius must be non-negative");
  std::size_t count = 0;
  const double r2 = radius * radius;
  int cx0, cy0, cx1, cy1;
  cell_range(center, radius, cx0, cy0, cx1, cy1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const auto& cell =
          cells_[static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(cx)];
      for (const Entry& e : cell) {
        if (squared_euclidean(center, e.p) <= r2) ++count;
      }
    }
  }
  return count;
}

std::int32_t SpatialGrid::nearest(Point center, double* out_distance) const {
  if (size_ == 0) return kInvalidTask;
  // Expanding-ring search: examine cells in rings of increasing radius until
  // the best candidate is provably closer than any unexamined cell.
  std::int32_t best_id = -1;
  double best_d2 = kInf;
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    const double reach = cell_size_ * static_cast<double>(ring);
    if (best_id >= 0 && best_d2 <= reach * reach) break;
    int cx0, cy0, cx1, cy1;
    cell_range(center, reach + cell_size_, cx0, cy0, cx1, cy1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        const auto& cell = cells_[static_cast<std::size_t>(cy) *
                                      static_cast<std::size_t>(nx_) +
                                  static_cast<std::size_t>(cx)];
        for (const Entry& e : cell) {
          const double d2 = squared_euclidean(center, e.p);
          if (d2 < best_d2) {
            best_d2 = d2;
            best_id = e.id;
          }
        }
      }
    }
  }
  if (out_distance != nullptr) *out_distance = std::sqrt(best_d2);
  return best_id;
}

FrozenGrid::FrozenGrid(BoundingBox bounds, double cell_size,
                       const std::vector<Point>& points)
    : bounds_(bounds), cell_size_(cell_size) {
  MCS_CHECK(cell_size > 0.0, "spatial grid cell size must be positive");
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size)));
  const std::size_t n_cells =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  const std::size_t n = points.size();

  // Stable counting sort by cell: count, exclusive prefix, scatter in point
  // order — each cell's entries end up in ascending point index, matching a
  // SpatialGrid filled by inserting points 0..n-1 in order.
  const auto cell_of = [&](Point p) {
    const Point c = bounds_.clamp(p);
    int cx = static_cast<int>((c.x - bounds_.lo.x) / cell_size_);
    int cy = static_cast<int>((c.y - bounds_.lo.y) / cell_size_);
    cx = std::clamp(cx, 0, nx_ - 1);
    cy = std::clamp(cy, 0, ny_ - 1);
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(cx);
  };
  offsets_.assign(n_cells + 1, 0);
  std::vector<std::uint32_t> cell(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell[i] = static_cast<std::uint32_t>(cell_of(points[i]));
    ++offsets_[cell[i] + 1];
  }
  for (std::size_t c = 0; c < n_cells; ++c) offsets_[c + 1] += offsets_[c];
  points_.resize(n);
  ids_.resize(n);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = cursor[cell[i]]++;
    points_[slot] = points[i];
    ids_[slot] = static_cast<std::int32_t>(i);
  }
}

void FrozenGrid::cell_range(Point center, double radius, int& cx0, int& cy0,
                            int& cx1, int& cy1) const {
  cx0 = std::clamp(
      static_cast<int>((center.x - radius - bounds_.lo.x) / cell_size_), 0,
      nx_ - 1);
  cy0 = std::clamp(
      static_cast<int>((center.y - radius - bounds_.lo.y) / cell_size_), 0,
      ny_ - 1);
  cx1 = std::clamp(
      static_cast<int>((center.x + radius - bounds_.lo.x) / cell_size_), 0,
      nx_ - 1);
  cy1 = std::clamp(
      static_cast<int>((center.y + radius - bounds_.lo.y) / cell_size_), 0,
      ny_ - 1);
}

std::size_t FrozenGrid::count_radius(Point center, double radius) const {
  MCS_CHECK(radius >= 0.0, "query radius must be non-negative");
  std::size_t count = 0;
  for_each_in_radius(center, radius, [&count](std::int32_t) { ++count; });
  return count;
}

}  // namespace mcs::geo
