// Distance metrics between 2-D points.
//
// The paper's cost model is proportional to traveled distance; Euclidean is
// the default. Manhattan models grid-like street networks, and haversine is
// provided for callers feeding real latitude/longitude traces (degrees in
// Point::x = longitude, Point::y = latitude).
#pragma once

#include <string>

#include "geo/point.h"

namespace mcs::geo {

enum class Metric { kEuclidean, kManhattan, kHaversine };

double euclidean(Point a, Point b);
double squared_euclidean(Point a, Point b);
double manhattan(Point a, Point b);

/// Great-circle distance in meters between (lon, lat) degree pairs.
double haversine(Point lonlat_a, Point lonlat_b);

/// Dispatch on metric.
double distance(Point a, Point b, Metric metric);

/// Parse "euclidean" / "manhattan" / "haversine" (case-insensitive).
Metric parse_metric(const std::string& name);
const char* metric_name(Metric metric);

}  // namespace mcs::geo
