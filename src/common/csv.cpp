#include "common/csv.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mcs {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  MCS_CHECK(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  MCS_CHECK(row.size() == header_.size(), "CSV row width mismatch");
  rows_.push_back(std::move(row));
}

void CsvWriter::add_numeric_row(const std::vector<double>& row, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double v : row) cells.push_back(format_fixed(v, decimals));
  add_row(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write(std::ostream& out) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out << ',';
    out << escape(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << escape(row[i]);
    }
    out << '\n';
  }
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  MCS_CHECK(out.good(), "cannot open for writing: " + path);
  write(out);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MCS_CHECK(!header_.empty(), "table header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  MCS_CHECK(row.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& row, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double v : row) cells.push_back(format_fixed(v, decimals));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << " | ";
      os << std::string(width[i] - row[i].size(), ' ') << row[i];
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << "-+-";
    os << std::string(width[i], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

CsvWriter TextTable::as_csv() const {
  CsvWriter csv(header_);
  for (const auto& row : rows_) csv.add_row(row);
  return csv;
}

}  // namespace mcs
