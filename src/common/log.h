// Minimal leveled logger writing to stderr.
//
// The simulator is deterministic and single-threaded, so the logger favors
// simplicity: a global level, stream-style message construction, and no
// buffering beyond the final write.
#pragma once

#include <sstream>
#include <string>

namespace mcs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_write(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mcs

#define MCS_LOG(level)                             \
  if (static_cast<int>(level) < static_cast<int>(::mcs::log_level())) \
    ;                                              \
  else                                             \
    ::mcs::detail::LogLine(level)

#define MCS_DEBUG MCS_LOG(::mcs::LogLevel::kDebug)
#define MCS_INFO MCS_LOG(::mcs::LogLevel::kInfo)
#define MCS_WARN MCS_LOG(::mcs::LogLevel::kWarn)
#define MCS_ERROR MCS_LOG(::mcs::LogLevel::kError)
