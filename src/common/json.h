// Minimal JSON value type, parser and writer.
//
// Used for machine-readable experiment configs and result dumps (world
// snapshots, campaign summaries, event traces). Self-contained: the library
// has no third-party dependencies. Supports the full JSON grammar except
// \uXXXX escapes beyond Latin-1 (emitted verbatim as bytes on write;
// parsed into UTF-8 for the BMP on read).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps keys sorted -> deterministic output.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(long long n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw mcs::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  long long as_int() const;  // as_number, checked to be integral
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access. at() throws when missing; get() returns the
  /// fallback. operator[] inserts (object must be mutable).
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const;
  Json& operator[](const std::string& key);
  double get(const std::string& key, double fallback) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Array element access (throws out of range) and append.
  const Json& at(std::size_t index) const;
  void push_back(Json value);
  std::size_t size() const;  // array or object arity; 0 otherwise

  /// Serialize. `indent` 0 = compact single line; > 0 = pretty-printed.
  std::string dump(int indent = 0) const;

  /// Parse; throws mcs::Error with position on malformed input. Trailing
  /// non-whitespace is an error.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mcs
