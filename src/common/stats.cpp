#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcs {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MCS_CHECK(n_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  MCS_CHECK(n_ > 0, "max of empty stats");
  return max_;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  MCS_CHECK(!sorted.empty(), "quantile of empty vector");
  MCS_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> values, double q) {
  MCS_CHECK(!values.empty(), "quantile of empty vector");
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

BoxplotSummary boxplot_summary(const std::vector<double>& values) {
  MCS_CHECK(!values.empty(), "boxplot of empty vector");
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());

  BoxplotSummary s;
  s.n = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  // The input is already sorted: the sorted-path quantile avoids the three
  // copy + re-sort round trips the by-value overload would make here.
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_low = s.max;
  s.whisker_high = s.min;
  for (const double v : sorted) {
    if (v >= lo_fence) {
      s.whisker_low = v;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      s.whisker_high = *it;
      break;
    }
  }
  for (const double v : sorted) {
    if (v < lo_fence || v > hi_fence) ++s.n_outliers;
  }
  return s;
}

double population_variance(const std::vector<double>& values) {
  RunningStats rs;
  for (const double v : values) rs.add(v);
  return rs.variance();
}

double mean_of(const std::vector<double>& values) {
  RunningStats rs;
  for (const double v : values) rs.add(v);
  return rs.mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MCS_CHECK(hi > lo, "histogram: empty range");
  MCS_CHECK(bins > 0, "histogram: zero bins");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long long>(std::floor((x - lo_) / width));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  return bin_low(i + 1);
}

}  // namespace mcs
