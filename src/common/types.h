// Basic shared types for the Pay-On-Demand crowdsensing library.
#pragma once

#include <cstdint>
#include <limits>

namespace mcs {

/// Identifier of a sensing task (index into the task table of a World).
using TaskId = std::int32_t;

/// Identifier of a mobile user (index into the user table of a World).
using UserId = std::int32_t;

/// 1-based sensing round counter, as in the paper ("the kth round").
using Round = std::int32_t;

/// Monetary amount in dollars. The paper works with $-valued rewards/costs.
using Money = double;

/// Time in seconds.
using Seconds = double;

/// Distance in meters.
using Meters = double;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr UserId kInvalidUser = -1;

/// Convenience "infinity" used by shortest-path style computations.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace mcs
