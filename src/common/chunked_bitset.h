// ChunkedBitset: a sparse dynamic bitset for per-entity id sets.
//
// User::contributed_ and Task::contributors_ are "a few dozen ids out of a
// potentially huge universe" sets: at 1M users x 100k tasks a dense bitset
// per user costs 12.5 KB (12.5 GB across the population) and an
// unordered_set costs ~60 B per element plus pointer-chasing on every probe.
// This container stores only the 256-bit chunks that hold at least one set
// bit, sorted by chunk base, and answers membership with a binary search
// plus one word test — O(log chunks) with chunks typically 1-4, cache-local,
// and ~40 B per chunk.
//
// Values are non-negative 32-bit-range ids (UserId/TaskId are int32-backed
// in common/types.h). Insertion keeps the chunk vector sorted; the expected
// access pattern (a user contributes to spatially clustered, similarly
// numbered tasks) makes the common insert an append or an in-place word OR.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace mcs {

class ChunkedBitset {
 public:
  /// Bits per chunk. 256 keeps a chunk in one cache line (base + 4 words).
  static constexpr std::uint32_t kChunkBits = 256;

  bool test(std::int64_t value) const {
    if (value < 0) return false;
    const std::uint32_t v = checked(value);
    const Chunk* c = find(v / kChunkBits);
    if (c == nullptr) return false;
    return (c->words[(v % kChunkBits) / 64] >> (v % 64)) & 1u;
  }

  /// Sets `value`; returns true when the bit was newly set.
  bool set(std::int64_t value) {
    const std::uint32_t v = checked(value);
    const std::uint32_t base = v / kChunkBits;
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), base,
        [](const Chunk& c, std::uint32_t b) { return c.base < b; });
    if (it == chunks_.end() || it->base != base) {
      it = chunks_.insert(it, Chunk{base, {0, 0, 0, 0}});
    }
    std::uint64_t& w = it->words[(v % kChunkBits) / 64];
    const std::uint64_t bit = std::uint64_t{1} << (v % 64);
    if (w & bit) return false;
    w |= bit;
    ++count_;
    return true;
  }

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Bulk merge: set every value of `o` in this set. One sorted two-pointer
  /// walk over the chunk vectors — O(chunks(a) + chunks(b)) regardless of
  /// how many bits are set, which is what makes per-shard dirty-task
  /// journals cheap to fold into one round journal (the commit-merge path).
  /// Self-merge is a no-op.
  ChunkedBitset& operator|=(const ChunkedBitset& o) {
    if (this == &o || o.chunks_.empty()) return *this;
    if (chunks_.empty()) {
      chunks_ = o.chunks_;
      count_ = o.count_;
      return *this;
    }
    std::vector<Chunk> merged;
    merged.reserve(chunks_.size() + o.chunks_.size());
    std::size_t count = 0;
    auto a = chunks_.begin();
    auto b = o.chunks_.begin();
    const auto add = [&merged, &count](const Chunk& c) {
      count += static_cast<std::size_t>(
          std::popcount(c.words[0]) + std::popcount(c.words[1]) +
          std::popcount(c.words[2]) + std::popcount(c.words[3]));
      merged.push_back(c);
    };
    while (a != chunks_.end() && b != o.chunks_.end()) {
      if (a->base < b->base) {
        add(*a++);
      } else if (b->base < a->base) {
        add(*b++);
      } else {
        Chunk c = *a++;
        for (int wi = 0; wi < 4; ++wi) c.words[wi] |= b->words[wi];
        ++b;
        add(c);
      }
    }
    for (; a != chunks_.end(); ++a) add(*a);
    for (; b != o.chunks_.end(); ++b) add(*b);
    chunks_ = std::move(merged);
    count_ = count;
    return *this;
  }

  void clear() {
    chunks_.clear();
    count_ = 0;
  }

  /// Visit every set value in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Chunk& c : chunks_) {
      for (std::uint32_t wi = 0; wi < 4; ++wi) {
        std::uint64_t w = c.words[wi];
        while (w != 0) {
          const int b = std::countr_zero(w);
          fn(static_cast<std::int64_t>(c.base) * kChunkBits + wi * 64 + b);
          w &= w - 1;
        }
      }
    }
  }

  friend bool operator==(const ChunkedBitset& a, const ChunkedBitset& b) {
    if (a.count_ != b.count_) return false;
    if (a.chunks_.size() != b.chunks_.size()) return false;
    for (std::size_t i = 0; i < a.chunks_.size(); ++i) {
      if (a.chunks_[i].base != b.chunks_[i].base) return false;
      for (int wi = 0; wi < 4; ++wi) {
        if (a.chunks_[i].words[wi] != b.chunks_[i].words[wi]) return false;
      }
    }
    return true;
  }

 private:
  struct Chunk {
    std::uint32_t base = 0;  // value / kChunkBits
    std::uint64_t words[4] = {0, 0, 0, 0};
  };

  static std::uint32_t checked(std::int64_t value) {
    MCS_CHECK(value >= 0 && value <= 0xffffffffll,
              "ChunkedBitset value out of the 32-bit id range");
    return static_cast<std::uint32_t>(value);
  }

  const Chunk* find(std::uint32_t base) const {
    const auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), base,
        [](const Chunk& c, std::uint32_t b) { return c.base < b; });
    return (it != chunks_.end() && it->base == base) ? &*it : nullptr;
  }

  std::vector<Chunk> chunks_;
  std::size_t count_ = 0;
};

}  // namespace mcs
