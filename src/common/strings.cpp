#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace mcs {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

double parse_double(const std::string& s) {
  const std::string t = trim(s);
  MCS_CHECK(!t.empty(), "parse_double: empty string");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  MCS_CHECK(end == t.c_str() + t.size(), "parse_double: bad number '" + s + "'");
  return v;
}

long long parse_int(const std::string& s) {
  const std::string t = trim(s);
  MCS_CHECK(!t.empty(), "parse_int: empty string");
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  MCS_CHECK(end == t.c_str() + t.size(), "parse_int: bad integer '" + s + "'");
  return v;
}

bool parse_bool(const std::string& s) {
  const std::string t = to_lower(trim(s));
  if (t == "1" || t == "true" || t == "yes" || t == "on") return true;
  if (t == "0" || t == "false" || t == "no" || t == "off") return false;
  throw Error("parse_bool: bad boolean '" + s + "'");
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace mcs
