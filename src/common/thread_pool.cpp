#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.h"

namespace mcs {

int resolve_threads(int requested) {
  MCS_CHECK(requested >= 0, "thread count must be >= 0");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  has_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MCS_CHECK(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    MCS_CHECK(!stop_, "submit on a stopped pool");
    queue_.push_back(std::move(task));
  }
  has_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      has_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for_each(int threads, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  const auto resolved = static_cast<std::size_t>(resolve_threads(threads));
  const std::size_t workers = std::min(resolved, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  // Each worker drains the shared index counter; on the first exception the
  // others stop claiming new indices (in-flight ones still finish).
  const auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  {
    ThreadPool pool(static_cast<int>(workers));
    for (std::size_t w = 0; w < workers; ++w) pool.submit(drain);
    pool.wait_idle();
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void parallel_ranges_impl(
    ThreadPool* pool, int workers, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  // The parallel_ranges template front-end already took the serial exits
  // (n == 0, null pool, workers <= 1, n == 1) without type-erasing fn.
  const std::size_t w = std::min(static_cast<std::size_t>(workers), n);
  if (w <= 1) {
    fn(0, 0, n);
    return;
  }

  std::mutex error_mu;
  std::exception_ptr first_error;
  for (std::size_t s = 0; s < w; ++s) {
    pool->submit([&, s] {
      try {
        fn(s, s * n / w, (s + 1) * n / w);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  pool->wait_idle();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace mcs
