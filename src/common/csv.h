// Tabular output: CSV files for post-processing and fixed-width text tables
// for terminal display. Benchmarks print each paper figure as a text table
// and can optionally dump the same rows as CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcs {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// separators/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Format doubles with the given precision (separate name: a braced list of
  /// string literals would otherwise ambiguously match vector<double>'s
  /// iterator-pair constructor).
  void add_numeric_row(const std::vector<double>& row, int decimals = 6);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;

  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Right-aligned fixed-width table printer for terminal output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_numeric_row(const std::vector<double>& row, int decimals = 3);

  /// Render with column separators, e.g.
  ///   users | on-demand |  fixed | steered
  ///   ------+-----------+--------+--------
  ///      40 |     97.50 |  91.20 |   96.80
  std::string to_string() const;
  void print(std::ostream& out) const;

  /// The same rows as machine-readable CSV (for plotting scripts).
  CsvWriter as_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcs
