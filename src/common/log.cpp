#include "common/log.h"

#include <algorithm>
#include <cctype>
#include <iostream>

#include "common/error.h"

namespace mcs {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw Error("unknown log level: " + name);
}

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace mcs
