// Deterministic pseudo-random number generation.
//
// Simulations must be exactly reproducible from a single 64-bit seed, so the
// library carries its own generator (xoshiro256**) instead of relying on the
// implementation-defined std::default_random_engine, and its own bounded
// draws instead of the implementation-defined std distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace mcs {

/// SplitMix64: used to expand a 64-bit seed into generator state and to
/// derive independent sub-streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// plugged into <random> facilities when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// The complete generator state: the xoshiro256** 4x64-bit word array.
  /// There is nothing else — normal() uses the basic (non-polar) Box–Muller
  /// form and draws both uniforms fresh on every call, so no spare variate
  /// is ever cached. restore_state(state()) therefore resumes the stream
  /// exactly: every subsequent draw (next, uniform, uniform_int, normal,
  /// exponential, shuffle) is bit-identical to the uninterrupted sequence.
  using State = std::array<std::uint64_t, 4>;

  State state() const { return s_; }

  /// Restore a previously captured state. The all-zero state is the one
  /// fixed point xoshiro256** can never leave; a checkpoint can only contain
  /// it through corruption, so it is rejected rather than installed.
  void restore_state(const State& state) {
    MCS_CHECK((state[0] | state[1] | state[2] | state[3]) != 0,
              "xoshiro256** state must not be all-zero");
    s_ = state;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    MCS_CHECK(lo <= hi, "uniform: empty range");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MCS_CHECK(lo <= hi, "uniform_int: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t x;
    do {
      x = next();
    } while (x >= limit);
    return lo + static_cast<std::int64_t>(x % span);
  }

  /// Standard normal via Box–Muller (polar form would need state; the basic
  /// form is fine for simulation workloads).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent generator for a named sub-stream. Streams derived
  /// with distinct tags are statistically independent of the parent and of
  /// each other, and derivation does not disturb the parent's sequence.
  Rng split(std::uint64_t stream_tag) const {
    SplitMix64 sm(s_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_tag + 1)));
    std::uint64_t derived = sm.next() ^ s_[3];
    return Rng(derived);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace mcs
