// Summary statistics used by the experiment harness:
// streaming mean/variance (Welford), quantiles, five-number box-plot
// summaries, and simple fixed-bin histograms.
#pragma once

#include <cstddef>
#include <vector>

namespace mcs {

/// Numerically stable streaming accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Population variance (divide by n); the paper's "variance of
  /// measurements" is a population statistic over the fixed task set.
  double variance() const;
  /// Sample variance (divide by n-1).
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile with linear interpolation between order statistics
/// (the "type 7" estimator used by R and NumPy). q in [0,1].
double quantile(std::vector<double> values, double q);

/// Same estimator over values the caller has already sorted ascending — no
/// copy, no re-sort. Callers that need several quantiles of one sample
/// (boxplot_summary) sort once and use this.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Five-number summary for box plots, plus 1.5·IQR whiskers and outliers,
/// matching what Fig. 5(b) of the paper displays.
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double whisker_low = 0.0;   // smallest value >= q1 - 1.5*IQR
  double whisker_high = 0.0;  // largest value <= q3 + 1.5*IQR
  std::size_t n = 0;
  std::size_t n_outliers = 0;
};

BoxplotSummary boxplot_summary(const std::vector<double>& values);

/// Population variance of a vector (divide by n). Returns 0 for n < 1.
double population_variance(const std::vector<double>& values);

/// Arithmetic mean; returns 0 for an empty vector.
double mean_of(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mcs
