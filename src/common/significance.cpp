#include "common/significance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/stats.h"

namespace mcs {

namespace {

// log Gamma via Lanczos approximation.
double log_gamma(double x) {
  static const double g[] = {676.5203681218851,     -1259.1392167224028,
                             771.32342877765313,    -176.61502916214059,
                             12.507343278686905,    -0.13857109526572012,
                             9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = 0.99999999999980993;
  const double t = x + 7.5;
  for (int i = 0; i < 8; ++i) a += g[i] / (x + static_cast<double>(i) + 1.0);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

double normal_two_sided_p(double z) {
  return std::erfc(std::abs(z) / std::sqrt(2.0));
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  MCS_CHECK(a > 0.0 && b > 0.0, "incomplete_beta: a,b must be positive");
  MCS_CHECK(x >= 0.0 && x <= 1.0, "incomplete_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double df) {
  MCS_CHECK(df > 0.0, "degrees of freedom must be positive");
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

TestResult welch_t_test(const std::vector<double>& a,
                        const std::vector<double>& b) {
  MCS_CHECK(a.size() >= 2 && b.size() >= 2,
            "welch t-test needs at least 2 samples per side");
  RunningStats sa, sb;
  for (const double v : a) sa.add(v);
  for (const double v : b) sb.add(v);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = sa.sample_variance() / na;
  const double vb = sb.sample_variance() / nb;

  TestResult r;
  r.effect = sa.mean() - sb.mean();
  if (va + vb == 0.0) {
    // Constant samples: identical -> p=1; different -> p=0 (deterministic).
    r.statistic = r.effect == 0.0 ? 0.0 : std::copysign(1e9, r.effect);
    r.p_value = r.effect == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.statistic = r.effect / std::sqrt(va + vb);
  const double df = (va + vb) * (va + vb) /
                    (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.p_value = student_t_two_sided_p(r.statistic, df);
  return r;
}

TestResult mann_whitney_u(const std::vector<double>& a,
                          const std::vector<double>& b) {
  MCS_CHECK(!a.empty() && !b.empty(), "mann-whitney needs non-empty samples");
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double v;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(a.size() + b.size());
  for (const double v : a) pooled.push_back({v, true});
  for (const double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].v == pooled[i].v) ++j;
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j + 1));
    const double ties = static_cast<double>(j - i + 1);
    if (ties > 1.0) tie_correction += ties * ties * ties - ties;
    for (std::size_t k = i; k <= j; ++k) {
      if (pooled[k].from_a) rank_sum_a += midrank;
    }
    i = j + 1;
  }

  const double u_a = rank_sum_a - na * (na + 1.0) / 2.0;
  const double mean_u = na * nb / 2.0;
  const double n = na + nb;
  const double var_u =
      na * nb / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));

  TestResult r;
  r.effect = 2.0 * u_a / (na * nb) - 1.0;  // rank-biserial correlation
  if (var_u <= 0.0) {
    r.statistic = 0.0;
    r.p_value = 1.0;
    return r;
  }
  // Continuity correction.
  const double diff = u_a - mean_u;
  const double corrected =
      diff == 0.0 ? 0.0 : (std::abs(diff) - 0.5) / std::sqrt(var_u);
  r.statistic = std::copysign(corrected, diff);
  r.p_value = normal_two_sided_p(r.statistic);
  return r;
}

}  // namespace mcs
