// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcs {

/// Strip leading and trailing ASCII whitespace.
std::string trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// Parse helpers that throw mcs::Error with the offending text on failure
/// (std::stod silently accepts trailing garbage; these do not).
double parse_double(const std::string& s);
long long parse_int(const std::string& s);
bool parse_bool(const std::string& s);

/// printf-style double formatting used by table printers ("%.*f").
std::string format_fixed(double value, int decimals);

}  // namespace mcs
