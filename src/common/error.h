// Error handling helpers.
//
// The library throws mcs::Error for precondition violations and unrecoverable
// configuration problems. MCS_CHECK is used at API boundaries; internal
// invariants use MCS_ASSERT which compiles to a check in all build types
// (these paths are never hot).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcs {

/// Exception type thrown by the library on invalid arguments or broken
/// invariants. Carries a human-readable message including the failing site.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mcs

/// Verify a caller-visible precondition; throws mcs::Error on failure.
#define MCS_CHECK(expr, msg)                                      \
  do {                                                            \
    if (!(expr)) ::mcs::detail::fail(__FILE__, __LINE__, #expr, (msg)); \
  } while (0)

/// Verify an internal invariant. Same behaviour as MCS_CHECK; a separate
/// macro keeps intent visible at the call site.
#define MCS_ASSERT(expr, msg) MCS_CHECK(expr, msg)
