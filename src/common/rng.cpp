#include "common/rng.h"

#include <cmath>

namespace mcs {

double Rng::normal(double mean, double stddev) {
  MCS_CHECK(stddev >= 0.0, "normal: negative stddev");
  // Box–Muller; draw u1 away from 0 to keep log finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double rate) {
  MCS_CHECK(rate > 0.0, "exponential: rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace mcs
