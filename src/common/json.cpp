#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.h"

namespace mcs {

bool Json::as_bool() const {
  MCS_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  MCS_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

long long Json::as_int() const {
  MCS_CHECK(is_number(), "JSON value is not a number");
  const auto v = static_cast<long long>(number_);
  MCS_CHECK(static_cast<double>(v) == number_, "JSON number is not integral");
  return v;
}

const std::string& Json::as_string() const {
  MCS_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  MCS_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  MCS_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const Object& o = as_object();
  const auto it = o.find(key);
  MCS_CHECK(it != o.end(), "JSON object has no key '" + key + "'");
  return it->second;
}

bool Json::has(const std::string& key) const {
  return is_object() && object_.count(key) != 0;
}

Json& Json::operator[](const std::string& key) {
  MCS_CHECK(is_object(), "JSON value is not an object");
  return object_[key];
}

double Json::get(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_number() : fallback;
}

std::string Json::get(const std::string& key,
                      const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

bool Json::get(const std::string& key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}

const Json& Json::at(std::size_t index) const {
  const Array& a = as_array();
  MCS_CHECK(index < a.size(), "JSON array index out of range");
  return a[index];
}

void Json::push_back(Json value) {
  MCS_CHECK(is_array(), "JSON value is not an array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1), ' ')
      : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth), ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: write_number(out, number_); break;
    case Type::kString: write_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].write(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad;
        write_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.write(out, indent, depth + 1);
        if (++i < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kNumber: return a.number_ == b.number_;
    case Json::Type::kString: return a.string_ == b.string_;
    case Json::Type::kArray: return a.array_ == b.array_;
    case Json::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    skip_ws();
    Json v = value();
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                msg);
  }
  void check(bool ok, const std::string& msg) const {
    if (!ok) fail(msg);
  }

  char peek() const {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c,
          std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    check(pos_ < text_.size(), "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number();
    fail("unexpected character");
  }

  Json object() {
    expect('{');
    Json::Object out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      check(peek() == '"', "expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      out[std::move(key)] = value();
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      break;
    }
    return Json(std::move(out));
  }

  Json array() {
    expect('[');
    Json::Array out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    while (true) {
      out.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      break;
    }
    return Json(std::move(out));
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    check(pos_ < text_.size() &&
              std::isdigit(static_cast<unsigned char>(text_[pos_])),
          "malformed number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      check(pos_ < text_.size() &&
                std::isdigit(static_cast<unsigned char>(text_[pos_])),
            "malformed number fraction");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      check(pos_ < text_.size() &&
                std::isdigit(static_cast<unsigned char>(text_[pos_])),
            "malformed number exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return Json(std::stod(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace mcs
