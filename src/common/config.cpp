#include "common/config.h"

#include <fstream>

#include "common/error.h"
#include "common/strings.h"

namespace mcs {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        cfg.set(body, "true");
      } else {
        cfg.set(body.substr(0, eq), body.substr(eq + 1));
      }
    } else {
      cfg.positionals_.push_back(arg);
    }
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  MCS_CHECK(in.good(), "cannot open config file: " + path);
  Config cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    MCS_CHECK(eq != std::string::npos,
              path + ":" + std::to_string(lineno) + ": expected key = value");
    cfg.set(trim(t.substr(0, eq)), trim(t.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  consumed_.insert(key);
  return it->second;
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  consumed_.insert(key);
  return parse_double(it->second);
}

long long Config::get_int(const std::string& key, long long def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  consumed_.insert(key);
  return parse_int(it->second);
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  consumed_.insert(key);
  return parse_bool(it->second);
}

std::string Config::require_string(const std::string& key) const {
  MCS_CHECK(has(key), "missing required config key: " + key);
  return get_string(key, "");
}

double Config::require_double(const std::string& key) const {
  MCS_CHECK(has(key), "missing required config key: " + key);
  return get_double(key, 0.0);
}

long long Config::require_int(const std::string& key) const {
  MCS_CHECK(has(key), "missing required config key: " + key);
  return get_int(key, 0);
}

std::vector<std::string> Config::unconsumed_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (consumed_.count(k) == 0) out.push_back(k);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Config::items() const {
  return {values_.begin(), values_.end()};
}

}  // namespace mcs
