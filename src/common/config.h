// Key=value configuration store with typed accessors.
//
// Used by benchmarks and examples to expose every experiment knob as
// `--key=value` command-line flags and optional `key = value` config files.
// Unknown keys are kept (callers may probe), but consume-tracking lets a
// binary warn about flags nothing read.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mcs {

class Config {
 public:
  Config() = default;

  /// Parse `--key=value` / `--flag` style argv. Non-flag arguments are
  /// collected as positionals. A bare `--flag` stores "true".
  static Config from_args(int argc, const char* const* argv);

  /// Parse `key = value` lines; '#' starts a comment; blank lines ignored.
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  /// Typed getters with defaults. Each access marks the key as consumed.
  std::string get_string(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  long long get_int(const std::string& key, long long def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Required variants — throw mcs::Error when the key is missing.
  std::string require_string(const std::string& key) const;
  double require_double(const std::string& key) const;
  long long require_int(const std::string& key) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Keys that were set but never read; useful for flag-typo warnings.
  std::vector<std::string> unconsumed_keys() const;

  /// All key/value pairs (sorted by key), e.g. to echo the configuration.
  std::vector<std::pair<std::string, std::string>> items() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  mutable std::set<std::string> consumed_;
};

}  // namespace mcs
