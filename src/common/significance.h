// Two-sample significance tests for comparing mechanisms across repeated
// campaigns: Welch's unequal-variance t-test (parametric) and the
// Mann-Whitney U test with normal approximation (rank-based, for the
// skewed metrics like per-user profit). Self-contained: Student-t tail
// probabilities via the regularized incomplete beta function.
#pragma once

#include <vector>

namespace mcs {

/// Regularized incomplete beta function I_x(a, b), by continued fraction
/// (Lentz). Domain: a,b > 0, x in [0,1]. Accurate to ~1e-12.
double incomplete_beta(double a, double b, double x);

/// Two-sided p-value of Student's t with `df` degrees of freedom.
double student_t_two_sided_p(double t, double df);

struct TestResult {
  double statistic = 0.0;  // t or z depending on the test
  double p_value = 1.0;    // two-sided
  double effect = 0.0;     // mean difference (t-test) / rank-biserial (U)
};

/// Welch's t-test (two-sided). Requires at least two samples per side with
/// non-zero combined variance; identical constant samples yield p = 1.
TestResult welch_t_test(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Mann-Whitney U with tie-corrected normal approximation (two-sided).
/// Suitable for n >= ~8 per side.
TestResult mann_whitney_u(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace mcs
