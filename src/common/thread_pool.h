// A small fixed-size worker pool plus a deterministic-friendly
// parallel_for_each.
//
// The experiment harness runs many fully independent repetitions (each a
// pure function of its seed); parallel_for_each fans such index spaces out
// across workers while the caller keeps results order-independent by
// writing into per-index slots and merging on its own thread afterwards —
// that discipline is what keeps parallel aggregates bit-identical to the
// serial run regardless of thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcs {

/// Resolve a requested worker count: 0 means one worker per hardware
/// thread (at least 1 when the runtime cannot tell), n >= 1 means exactly
/// n. Negative requests are an error.
int resolve_threads(int requested);

/// Fixed-size pool of worker threads draining a FIFO task queue. Tasks must
/// not throw (wrap work that can fail and capture the error yourself;
/// parallel_for_each below does exactly that). Destruction drains the queue
/// and joins the workers.
class ThreadPool {
 public:
  /// `threads` follows resolve_threads(): 0 = hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Thread-safe.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished and the queue is empty.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable has_work_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run fn(0) .. fn(n-1), concurrently on up to `threads` workers
/// (resolve_threads() semantics; threads = 1 or n <= 1 runs inline on the
/// calling thread without spawning anything — the serial path). Blocks until
/// every index finished. Indices are claimed dynamically, so execution order
/// is unspecified: callers needing deterministic output must write results
/// into per-index slots and combine them after this returns. If fn throws,
/// remaining unclaimed indices are abandoned and the first exception is
/// rethrown on the calling thread.
void parallel_for_each(int threads, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

/// Fan fn(range, lo, hi) out over `pool`, splitting [0, n) into
/// min(workers, n) contiguous ranges at the s*n/w boundaries every sharded
/// phase in this codebase standardizes on. Runs inline as one range
/// (fn(0, 0, n)) when pool is null, workers <= 1 or n <= 1 — the serial
/// path. Blocks until every range finished; the first exception fn threw is
/// rethrown on the calling thread afterwards.
///
/// Determinism discipline: ranges are disjoint, so callers writing results
/// into per-index slots get bit-identical output at any worker count;
/// reductions store one partial per `range` slot and fold the slots
/// serially after this returns (see DemandIndicator's Nmax reduction).
/// `range` is always < min(workers, n) — but note the serial path delivers
/// everything as range 0, so per-range slots must be initialized to the
/// reduction's identity, not assumed all-written.
///
/// A template so the serial path invokes the callable directly: the
/// steady-state repricing sweeps run through here every round and must not
/// allocate (tier-1 gates allocs_per_iter=0), and wrapping a capturing
/// lambda in std::function heap-allocates. Only the fan-out path (which
/// allocates per-task queue nodes anyway) pays for the type erasure.
void parallel_ranges_impl(
    ThreadPool* pool, int workers, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

template <typename Fn>
void parallel_ranges(ThreadPool* pool, int workers, std::size_t n, Fn&& fn) {
  if (n == 0) {
    return;
  }
  if (pool == nullptr || workers <= 1 || n == 1) {
    fn(static_cast<std::size_t>(0), static_cast<std::size_t>(0), n);
    return;
  }
  parallel_ranges_impl(pool, workers, n, std::function<void(
      std::size_t, std::size_t, std::size_t)>(std::forward<Fn>(fn)));
}

}  // namespace mcs
