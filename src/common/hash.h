// Hashing helpers for caches that key on composite values (for example the
// plan memo's (start cell, budget bucket, candidate signature) key). These
// hashes are used for bucketing only — every consumer re-verifies bucket
// candidates by exact content comparison, so a collision costs a probe,
// never correctness.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mcs {

/// SplitMix64 finalizer: a fast 64-bit bijection with good avalanche.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold `v` into a running hash. Not commutative: combining the same values
/// in a different order yields a different hash.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum of
/// the campaign-checkpoint envelope. Unlike mix64/hash_combine this one IS
/// used for integrity, not bucketing: the standard test vector
/// crc32("123456789") == 0xCBF43926 is pinned in tests. Resumable: pass a
/// previous result as `seed` to continue over concatenated chunks.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace mcs
