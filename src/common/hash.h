// Hashing helpers for caches that key on composite values (for example the
// plan memo's (start cell, budget bucket, candidate signature) key). These
// hashes are used for bucketing only — every consumer re-verifies bucket
// candidates by exact content comparison, so a collision costs a probe,
// never correctness.
#pragma once

#include <cstdint>

namespace mcs {

/// SplitMix64 finalizer: a fast 64-bit bijection with good avalanche.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold `v` into a running hash. Not commutative: combining the same values
/// in a different order yields a different hash.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace mcs
