#include "sat/reverse_auction.h"

#include <algorithm>

#include "common/error.h"

namespace mcs::sat {

std::vector<AuctionAward> run_reverse_auction(std::vector<Bid> bids, int slots,
                                              Money reserve) {
  MCS_CHECK(slots >= 1, "auction needs at least one slot");
  MCS_CHECK(reserve >= 0.0, "reserve price must be non-negative");
  for (const Bid& b : bids) {
    MCS_CHECK(b.user >= 0, "bid from invalid user");
    MCS_CHECK(b.amount >= 0.0, "negative bid");
  }

  // Reject bids above the reserve, then sort ascending (ties by user id).
  std::erase_if(bids, [&](const Bid& b) { return b.amount > reserve; });
  std::sort(bids.begin(), bids.end(), [](const Bid& a, const Bid& b) {
    return a.amount != b.amount ? a.amount < b.amount : a.user < b.user;
  });

  const std::size_t winners =
      std::min(bids.size(), static_cast<std::size_t>(slots));
  // Uniform clearing price: the first rejected bid, or the reserve when the
  // auction is not fully contested (standard (k+1)-price multi-unit rule;
  // every winner is paid at least its bid).
  const Money price =
      bids.size() > winners ? bids[winners].amount : reserve;

  std::vector<AuctionAward> awards;
  awards.reserve(winners);
  for (std::size_t i = 0; i < winners; ++i) {
    awards.push_back({bids[i].user, price});
  }
  return awards;
}

}  // namespace mcs::sat
