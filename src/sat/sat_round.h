// One SAT-mode sensing round over a World.
//
// The server solicits bids from every user for every open task within
// reach (truthful bid = round-trip-free marginal travel cost from the
// user's current location), clears a reverse auction per task, and
// assigns winners. A user may win several tasks; assignments that would
// blow its travel-time budget are declined in server order (cheapest
// first), mirroring the negotiation overhead §II attributes to SAT.
//
// This is deliberately a *simple* SAT baseline — the point is an
// executable contrast to the WST pipeline, not a reproduction of any
// specific SAT paper.
#pragma once

#include <vector>

#include "common/types.h"
#include "model/world.h"
#include "sat/reverse_auction.h"

namespace mcs::sat {

struct SatRoundParams {
  int slots_per_task = 5;     // max winners per task per round
  Money reserve = 2.5;        // server's max payment per measurement
};

struct SatAssignment {
  TaskId task = kInvalidTask;
  UserId user = kInvalidUser;
  Money payment = 0.0;
};

struct SatRoundResult {
  std::vector<SatAssignment> assignments;  // executed ones
  int declined = 0;     // auction wins the user's budget couldn't honor
  Money total_paid = 0.0;
  Money total_user_cost = 0.0;  // travel cost actually incurred
};

/// Execute one SAT round at round `k`: collects bids, clears the auctions,
/// walks the accepted winners to their tasks (charging travel cost and
/// paying the auction payment), and records measurements in the world.
SatRoundResult run_sat_round(model::World& world, Round k,
                             const SatRoundParams& params);

}  // namespace mcs::sat
