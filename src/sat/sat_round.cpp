#include "sat/sat_round.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::sat {

SatRoundResult run_sat_round(model::World& world, Round k,
                             const SatRoundParams& params) {
  MCS_CHECK(k >= 1, "rounds are 1-based");
  MCS_CHECK(params.slots_per_task >= 1, "need at least one slot per task");

  // Users start the round from home (same convention as the WST loop).
  for (model::User& u : world.users()) u.return_home();

  // (1) Bid collection: marginal travel cost from the user's location.
  std::map<TaskId, std::vector<Bid>> books;
  for (const model::User& u : world.users()) {
    const Meters budget = world.travel().distance_within(u.time_budget());
    for (const model::Task& t : world.tasks()) {
      if (!t.accepts(u.id(), k)) continue;
      const Meters d = geo::euclidean(u.location(), t.location());
      if (d > budget) continue;  // unreachable: no bid
      books[t.id()].push_back({u.id(), world.travel().cost_for(d)});
    }
  }

  // (2) Clear one reverse auction per task; cheapest awards first so budget
  // declines bite the expensive assignments.
  std::vector<SatAssignment> awarded;
  for (auto& [task, bids] : books) {
    const int open_slots = std::min(
        params.slots_per_task,
        world.task(task).required() - world.task(task).received());
    if (open_slots <= 0) continue;
    for (const AuctionAward& award :
         run_reverse_auction(std::move(bids), open_slots, params.reserve)) {
      awarded.push_back({task, award.user, award.payment});
    }
  }
  std::sort(awarded.begin(), awarded.end(),
            [](const SatAssignment& a, const SatAssignment& b) {
              if (a.payment != b.payment) return a.payment < b.payment;
              if (a.task != b.task) return a.task < b.task;
              return a.user < b.user;
            });

  // (3) Execution: winners travel task-by-task in award order; an
  // assignment is declined when the user's remaining time budget cannot
  // absorb the leg.
  SatRoundResult result;
  std::map<UserId, Meters> used;
  for (const SatAssignment& a : awarded) {
    model::User& u = world.user(a.user);
    model::Task& t = world.task(a.task);
    const Meters leg = geo::euclidean(u.location(), t.location());
    const Meters budget = world.travel().distance_within(u.time_budget());
    Meters& spent = used[a.user];
    if (spent + leg > budget) {
      ++result.declined;
      continue;
    }
    spent += leg;
    t.add_measurement(u.id(), k, a.payment);
    u.mark_contributed(a.task);
    const Money cost = world.travel().cost_for(leg);
    u.add_earnings(a.payment, cost);
    u.set_location(t.location());
    result.assignments.push_back(a);
    result.total_paid += a.payment;
    result.total_user_cost += cost;
  }
  return result;
}

}  // namespace mcs::sat
