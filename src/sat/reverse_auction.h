// Server-Assigned-Tasks (SAT) mode: reverse-auction allocation.
//
// §II of the paper contrasts its WST design with the SAT literature, where
// the server collects bids and assigns tasks centrally. This module makes
// that contrast executable: a sealed-bid reverse auction per task with
// second-price (Vickrey) payments — truthful for the bidders — so the SAT
// and WST pipelines can be compared on identical worlds (see sat_round.h
// and the sat_vs_wst example).
//
// Model per round: every user may bid on every open task it can reach
// within its per-round budget; its truthful bid is its marginal travel
// cost. Each task accepts up to `slots` winners (lowest bids) and pays each
// winner the first rejected bid (or its own bid when no rejection exists).
#pragma once

#include <vector>

#include "common/types.h"

namespace mcs::sat {

struct Bid {
  UserId user = kInvalidUser;
  Money amount = 0.0;  // the user's cost to serve the task
};

struct AuctionAward {
  UserId user = kInvalidUser;
  Money payment = 0.0;  // >= the winner's bid (second-price)
};

/// Run one sealed-bid reverse auction: the `slots` lowest bids win; each
/// winner is paid the (slots+1)-th lowest bid, or `reserve` when fewer than
/// slots+1 bids exist. Bids above `reserve` are rejected outright (the
/// platform never pays more than its reserve price). Ties broken by user
/// id for determinism.
std::vector<AuctionAward> run_reverse_auction(std::vector<Bid> bids, int slots,
                                              Money reserve);

}  // namespace mcs::sat
