// Beam-search task selection: an anytime middle ground between the O(m^2)
// greedy heuristic and the exponential exact solvers.
//
// The search expands partial tours breadth-first, keeping only the `width`
// most promising states per depth. A state's priority is its realized
// profit plus the same admissible completion bound the branch-and-bound
// solver uses (each unvisited candidate counted at its cheapest possible
// incoming edge), so promising-but-unfinished tours are not starved by
// short greedy ones. Width 1 behaves like greedy-by-bound; width >= 2^m
// degenerates to exhaustive search. Complexity O(width * m^2) per depth,
// O(width * m^3) total.
#pragma once

#include "select/selector.h"

namespace mcs::select {

class BeamSearchSelector final : public TaskSelector {
 public:
  explicit BeamSearchSelector(int width = 8);

  const char* name() const override { return "beam-search"; }

  Selection select(const SelectionInstance& instance) const override;

  std::unique_ptr<TaskSelector> clone() const override {
    return std::make_unique<BeamSearchSelector>(width_);
  }

  int width() const { return width_; }

 private:
  int width_;
};

}  // namespace mcs::select
