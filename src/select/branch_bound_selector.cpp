#include "select/branch_bound_selector.h"

#include <algorithm>
#include <vector>

#include "select/travel_graph.h"

namespace mcs::select {

namespace {

struct SearchState {
  const TravelGraph* g;
  const SelectionInstance* inst;
  Meters dist_budget;
  std::vector<bool> visited;
  std::vector<std::size_t> path;  // candidate node indices (1..m)
  Meters dist = 0.0;
  Money reward = 0.0;
  Money best_profit = 0.0;
  std::vector<std::size_t> best_path;
  Meters best_dist = 0.0;
  Money best_reward = 0.0;
};

/// Optimistic additional profit from `current` (0 = start): every unvisited
/// candidate is assumed reachable via its globally cheapest incoming edge.
Money optimistic_gain(const SearchState& st, std::size_t current,
                      Meters remaining) {
  Money gain = 0.0;
  const std::size_t m = st.g->num_candidates();
  for (std::size_t q = 1; q <= m; ++q) {
    if (st.visited[q - 1]) continue;
    const Meters cheapest =
        std::min(st.g->min_incoming(q), st.g->dist(current, q));
    if (cheapest > remaining) continue;  // cannot possibly reach q
    const Money add = st.g->reward(q) - st.inst->travel.cost_for(cheapest);
    if (add > 0.0) gain += add;
  }
  return gain;
}

void dfs(SearchState& st, std::size_t current) {
  const Money profit = st.reward - st.inst->travel.cost_for(st.dist);
  if (profit > st.best_profit) {
    st.best_profit = profit;
    st.best_path = st.path;
    st.best_dist = st.dist;
    st.best_reward = st.reward;
  }
  const Meters remaining = st.dist_budget - st.dist;
  if (profit + optimistic_gain(st, current, remaining) <= st.best_profit) {
    return;  // bound: even the optimistic completion cannot beat the best
  }
  const std::size_t m = st.g->num_candidates();
  for (std::size_t q = 1; q <= m; ++q) {
    if (st.visited[q - 1]) continue;
    const Meters leg = st.g->dist(current, q);
    if (st.dist + leg > st.dist_budget) continue;
    st.visited[q - 1] = true;
    st.path.push_back(q);
    st.dist += leg;
    st.reward += st.g->reward(q);
    dfs(st, q);
    st.reward -= st.g->reward(q);
    st.dist -= leg;
    st.path.pop_back();
    st.visited[q - 1] = false;
  }
}

}  // namespace

Selection BranchBoundSelector::select(const SelectionInstance& instance) const {
  const std::size_t m = instance.candidates.size();
  if (m == 0) return {};

  const TravelGraph g(instance);
  SearchState st;
  st.g = &g;
  st.inst = &instance;
  st.dist_budget = instance.distance_budget();
  st.visited.assign(m, false);
  dfs(st, 0);

  Selection s;
  if (st.best_path.empty()) return s;
  for (const std::size_t node : st.best_path) s.order.push_back(g.task(node));
  s.distance = st.best_dist;
  s.reward = st.best_reward;
  s.cost = instance.travel.cost_for(st.best_dist);
  return s;
}

}  // namespace mcs::select
