#include "select/plan_memo.h"

#include <cmath>

#include "common/error.h"
#include "common/hash.h"
#include "geo/distance.h"
#include "select/candidate_pool.h"

namespace mcs::select {

void PlanMemoParams::validate() const {
  MCS_CHECK(cell_size > 0.0, "plan-memo cell size must be positive");
  MCS_CHECK(budget_bucket > 0.0, "plan-memo budget bucket must be positive");
  MCS_CHECK(max_entries_per_key >= 1,
            "plan-memo needs at least one entry per key");
}

PlanMemo::PlanMemo(PlanMemoParams params) : params_(params) {
  params_.validate();
}

void PlanMemo::begin_round(const CandidatePool& pool) {
  pool_ = &pool;
  cell_mode_ = false;
  entries_.clear();
  buckets_.clear();  // keeps the bucket array; no rehash next round
  ++stats_.rounds;
}

void PlanMemo::begin_cell() {
  pool_ = nullptr;
  cell_mode_ = true;
  entries_.clear();
  buckets_.clear();
}

std::uint64_t PlanMemo::key_of(const SelectionInstance& inst,
                               std::uint64_t sig_hash) const {
  const auto cell_x =
      static_cast<std::int64_t>(std::floor(inst.start.x / params_.cell_size));
  const auto cell_y =
      static_cast<std::int64_t>(std::floor(inst.start.y / params_.cell_size));
  const auto budget_bucket = static_cast<std::int64_t>(
      std::floor(inst.time_budget / params_.budget_bucket));
  std::uint64_t h = hash_combine(sig_hash, static_cast<std::uint64_t>(cell_x));
  h = hash_combine(h, static_cast<std::uint64_t>(cell_y));
  return hash_combine(h, static_cast<std::uint64_t>(budget_bucket));
}

PlanMemo::Ticket PlanMemo::classify(const SelectionInstance& inst,
                                    int exact_candidate_limit) {
  MCS_CHECK(pool_ != nullptr || cell_mode_,
            "PlanMemo::begin_round()/begin_cell() not called");

  // Canonical signature of the candidate subset. Pooled rounds use a
  // bitmask over the round's pool rows: identical masks => identical
  // candidate ids, locations and enumeration order (make_instance walks
  // rows ascending). Cell mode uses the candidate task-id vector directly
  // (ids ascend with task position, and within one round an id determines
  // its location) — the same implication, without a pool.
  std::uint64_t sig = 0;
  if (cell_mode_) {
    MCS_CHECK(!inst.has_pool(), "cell-mode instances are poolless");
    const std::size_t n = inst.candidates.size();
    scratch_ids_.resize(n);
    sig = mix64(static_cast<std::uint64_t>(n));
    for (std::size_t j = 0; j < n; ++j) {
      scratch_ids_[j] = inst.candidates[j].task;
      sig = hash_combine(sig, static_cast<std::uint64_t>(scratch_ids_[j]));
    }
  } else {
    MCS_CHECK(inst.has_pool() && inst.pool.get() == pool_,
              "instance must carry this round's candidate pool");
    const std::size_t rows = pool_->size();
    scratch_inclusion_.assign((rows + 63) / 64, 0);
    for (const std::int32_t row : inst.pool_index) {
      scratch_inclusion_[static_cast<std::size_t>(row) >> 6] |=
          1ULL << (static_cast<std::size_t>(row) & 63);
    }
    sig = mix64(static_cast<std::uint64_t>(rows));
    for (const std::uint64_t w : scratch_inclusion_) sig = hash_combine(sig, w);
  }
  const auto same_subset = [&](const Entry& e) {
    return cell_mode_ ? e.ids == scratch_ids_
                      : e.inclusion == scratch_inclusion_;
  };

  // Prices are frozen for the round by the caller (round-granularity
  // mechanisms), but the memo does not take that on faith: rewards and the
  // travel model are part of every verification, so a repriced or foreign
  // instance degrades to a miss instead of a wrong plan.
  const std::size_t m = inst.candidates.size();
  const auto economics_match = [&](const Entry& e) {
    if (e.travel.speed_mps != inst.travel.speed_mps ||
        e.travel.cost_per_meter != inst.travel.cost_per_meter) {
      return false;
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (e.rewards[j] != inst.candidates[j].reward) return false;
    }
    return true;
  };

  std::vector<std::uint32_t>& bucket = buckets_[key_of(inst, sig)];

  // Exact hit: the probing instance is bit-equal to a cached one, so the
  // cached plan is what this user's own (pure, deterministic) solve would
  // return. The hash only routed us here — every field is re-verified.
  for (const std::uint32_t idx : bucket) {
    const Entry& e = entries_[idx];
    if (!same_subset(e)) continue;
    if (!(e.start == inst.start) || e.time_budget != inst.time_budget) {
      continue;
    }
    if (!economics_match(e)) continue;
    ++stats_.exact_hits;
    return {Outcome::kExactHit, idx};
  }

  // Start legs: needed by the dominance probe and by this instance's own
  // entry should it become an owner.
  scratch_d0_.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    scratch_d0_[j] = geo::euclidean(inst.start, inst.candidates[j].location);
  }

  // Dominance probe (the start-leg fix-up): only sound when both the cached
  // solve and this user's would-be solve are exact at this candidate count.
  // The remaining condition — the cached optimum is the empty tour — is
  // checked at resolve(), after the owner published.
  if (exact_candidate_limit >= static_cast<int>(m)) {
    for (const std::uint32_t idx : bucket) {
      const Entry& e = entries_[idx];
      if (!same_subset(e)) continue;
      if (e.exact_limit < static_cast<int>(m)) continue;
      if (inst.time_budget > e.time_budget) continue;
      if (!economics_match(e)) continue;
      bool dominated = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (scratch_d0_[j] < e.d0[j]) {
          dominated = false;
          break;
        }
      }
      if (dominated) return {Outcome::kPending, idx};
    }
  }

  // Class owner: pays the full solve; cache it unless the bucket is full.
  ++stats_.misses;
  Ticket t{Outcome::kOwner, kNoEntry};
  if (bucket.size() < static_cast<std::size_t>(params_.max_entries_per_key)) {
    t.entry = static_cast<std::uint32_t>(entries_.size());
    bucket.push_back(t.entry);
    Entry e;
    e.start = inst.start;
    e.time_budget = inst.time_budget;
    if (cell_mode_) {
      e.ids = scratch_ids_;
    } else {
      e.inclusion = scratch_inclusion_;
    }
    e.d0 = scratch_d0_;
    e.travel = inst.travel;
    e.rewards.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      e.rewards[j] = inst.candidates[j].reward;
    }
    e.exact_limit = exact_candidate_limit;
    entries_.push_back(std::move(e));
  }
  return t;
}

void PlanMemo::publish(const Ticket& t, const Selection& plan, bool feasible) {
  if (t.entry == kNoEntry) return;
  MCS_CHECK(t.outcome == Outcome::kOwner, "publish() takes an owner ticket");
  Entry& e = entries_[t.entry];
  e.plan = plan;
  e.feasible = feasible;
  e.solved = true;
}

const Selection& PlanMemo::cached_plan(const Ticket& t) const {
  MCS_CHECK(t.outcome == Outcome::kExactHit && t.entry != kNoEntry,
            "cached_plan() takes an exact-hit ticket");
  const Entry& e = entries_[t.entry];
  MCS_CHECK(e.solved, "owner must publish before its hits are read");
  return e.plan;
}

bool PlanMemo::cached_feasible(const Ticket& t) const {
  MCS_CHECK(t.outcome == Outcome::kExactHit && t.entry != kNoEntry,
            "cached_feasible() takes an exact-hit ticket");
  const Entry& e = entries_[t.entry];
  MCS_CHECK(e.solved, "owner must publish before its hits are read");
  return e.feasible;
}

bool PlanMemo::resolve(const Ticket& t, const Selection** plan) {
  MCS_CHECK(t.outcome == Outcome::kPending && t.entry != kNoEntry,
            "resolve() takes a pending ticket");
  const Entry& e = entries_[t.entry];
  MCS_CHECK(e.solved, "owner must publish before pendings resolve");
  // The dominance argument proves the prober's optimum is the empty tour
  // only when the cached optimum is empty — including its economics, so a
  // nonstandard selector that decorated an empty order could never leak
  // values the prober's own solve would not produce.
  if (e.plan.order.empty() && e.plan.distance == 0.0 &&
      e.plan.reward == 0.0 && e.plan.cost == 0.0) {
    ++stats_.fixup_hits;
    *plan = &e.plan;
    return true;
  }
  ++stats_.fallbacks;
  ++stats_.misses;
  return false;
}

}  // namespace mcs::select
