#include "select/dp_selector.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::select {

namespace {

// Slack for the admissible state prune: a state is skipped only when its
// optimistic completion is at least this far below the incumbent, so
// floating-point rounding in the bound arithmetic (~1e-13 at campaign
// magnitudes) can never discard a state on the optimal chain. The bound is
// admissible because travel cost is linear in distance (TravelModel):
// every remaining candidate is entered by exactly one leg, and that leg is
// never shorter than the candidate's cheapest incoming edge.
constexpr Money kBoundSlack = 1e-9;

}  // namespace

DpSelector::DpSelector(int candidate_cap) : candidate_cap_(candidate_cap) {
  MCS_CHECK(candidate_cap >= 1 && candidate_cap <= 20,
            "DP candidate cap must be in [1, 20]");
}

void prune_candidates_into(const SelectionInstance& instance, int cap,
                           std::vector<Candidate>& kept,
                           std::vector<std::int32_t>& kept_pool_index) {
  kept.clear();
  kept_pool_index.clear();
  const bool pooled = instance.has_pool();
  const Meters budget = instance.distance_budget();
  // A task farther than the whole budget can never be on a feasible path.
  for (std::size_t i = 0; i < instance.candidates.size(); ++i) {
    const Candidate& c = instance.candidates[i];
    if (geo::euclidean(instance.start, c.location) > budget) continue;
    kept.push_back(c);
    if (pooled) kept_pool_index.push_back(instance.pool_index[i]);
  }
  if (kept.size() <= static_cast<std::size_t>(cap)) return;

  // Score by the profit of performing the task alone; keep the best `cap`.
  std::vector<std::size_t> idx(kept.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto score = [&](std::size_t i) {
    const Candidate& c = kept[i];
    return c.reward - instance.travel.cost_for(
                          geo::euclidean(instance.start, c.location));
  };
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return score(a) > score(b); });
  idx.resize(static_cast<std::size_t>(cap));
  std::sort(idx.begin(), idx.end());  // keep original relative order
  // idx is ascending with idx[k] >= k, so the gather is safe in place.
  for (std::size_t k = 0; k < idx.size(); ++k) {
    kept[k] = kept[idx[k]];
    if (pooled) kept_pool_index[k] = kept_pool_index[idx[k]];
  }
  kept.resize(idx.size());
  if (pooled) kept_pool_index.resize(idx.size());
}

SelectionInstance prune_candidates(const SelectionInstance& instance,
                                   int cap) {
  SelectionInstance pruned = instance;
  prune_candidates_into(instance, cap, pruned.candidates, pruned.pool_index);
  return pruned;
}

Selection DpSelector::select(const SelectionInstance& instance) const {
  prune_candidates_into(instance, candidate_cap_, kept_, kept_pool_index_);
  const std::size_t m = kept_.size();
  if (m == 0) return {};

  graph_.build(instance, kept_, kept_pool_index_);
  const TravelGraph& g = graph_;
  const geo::TravelModel& travel = instance.travel;
  const Meters dist_budget = instance.distance_budget();
  const std::size_t num_masks = std::size_t{1} << m;
  const std::size_t all = num_masks - 1;

  // dp[mask * m + (j-1)]: shortest path visiting `mask`, ending at node j.
  dp_.assign(num_masks * m, kInf);
  // parent node (0 = start) for path reconstruction.
  parent_.assign(num_masks * m, -1);
  // Prefix sums over masks; every entry is written before it is read (the
  // recurrences only look at strict submasks), so no initialization pass.
  subset_reward_.resize(num_masks);
  gain_in_.resize(num_masks);
  subset_reward_[0] = 0.0;
  gain_in_[0] = 0.0;

  // net_gain_[q]: the most profit candidate q can add to any tour — its
  // reward minus the cost of its globally cheapest incoming edge.
  net_gain_.resize(m);
  Money total_gain = 0.0;
  for (std::size_t q = 0; q < m; ++q) {
    net_gain_[q] =
        std::max(0.0, g.reward(q + 1) - travel.cost_for(g.min_incoming(q + 1)));
    total_gain += net_gain_[q];
  }

  for (std::size_t j = 0; j < m; ++j) {
    const Meters d = g.dist(0, j + 1);
    if (d <= dist_budget) {
      const std::size_t mask = std::size_t{1} << j;
      dp_[mask * m + j] = d;
      parent_[mask * m + j] = 0;
    }
  }

  Money best_profit = 0.0;  // doing nothing is always available
  std::size_t best_mask = 0;
  std::size_t best_end = 0;
  Meters best_dist = 0.0;

  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    const auto low_j = static_cast<std::size_t>(std::countr_zero(mask));
    const std::size_t rest = mask & (mask - 1);  // mask without its low bit
    const Money mask_reward = subset_reward_[rest] + g.reward(low_j + 1);
    subset_reward_[mask] = mask_reward;
    gain_in_[mask] = gain_in_[rest] + net_gain_[low_j];

    // Score `mask` in place: transitions only write to strict supersets, so
    // its dp rows are final once the outer loop arrives here. Scanning
    // masks in ascending order with strict comparisons reproduces the
    // reference implementation's separate best-profit pass bit for bit.
    Meters shortest = kInf;
    std::size_t end = 0;
    for (std::size_t bits = mask; bits != 0; bits &= bits - 1) {
      const auto j = static_cast<std::size_t>(std::countr_zero(bits));
      const Meters dj = dp_[mask * m + j];
      if (dj < shortest) {
        shortest = dj;
        end = j;
      }
    }
    if (shortest == kInf) continue;  // unreachable within budget
    const Money profit = mask_reward - travel.cost_for(shortest);
    if (profit > best_profit) {
      best_profit = profit;
      best_mask = mask;
      best_end = end;
      best_dist = shortest;
    }
    if (mask == all) continue;  // nothing left to extend

    // Optimistic profit still available outside `mask`.
    const Money gain_left = total_gain - gain_in_[mask];

    for (std::size_t bits = mask; bits != 0; bits &= bits - 1) {
      const auto j = static_cast<std::size_t>(std::countr_zero(bits));
      const Meters cur = dp_[mask * m + j];
      if (cur == kInf) continue;
      // Dominated state: even completing with every remaining candidate at
      // its cheapest incoming edge cannot beat the incumbent, so no
      // descendant of this state can win — skip the whole expansion.
      if (mask_reward - travel.cost_for(cur) + gain_left + kBoundSlack <=
          best_profit) {
        continue;
      }
      // Extend by one unvisited task q (Eq. 12).
      for (std::size_t unv = all & ~mask; unv != 0; unv &= unv - 1) {
        const auto q = static_cast<std::size_t>(std::countr_zero(unv));
        const Meters next = cur + g.dist(j + 1, q + 1);
        if (next > dist_budget) continue;  // infeasible extension
        const std::size_t slot = (mask | (std::size_t{1} << q)) * m + q;
        if (next < dp_[slot]) {
          dp_[slot] = next;
          parent_[slot] = static_cast<std::int8_t>(j + 1);
        }
      }
    }
  }

  if (best_mask == 0) return {};

  // Reconstruct the visiting order by walking parents backwards.
  Selection s;
  s.distance = best_dist;
  s.reward = subset_reward_[best_mask];
  s.cost = travel.cost_for(best_dist);
  reversed_.clear();
  std::size_t mask = best_mask;
  std::size_t j = best_end;
  while (true) {
    reversed_.push_back(g.task(j + 1));
    const std::int8_t p = parent_[mask * m + j];
    MCS_ASSERT(p >= 0, "DP parent chain broken");
    mask ^= (std::size_t{1} << j);
    if (p == 0) break;
    j = static_cast<std::size_t>(p - 1);
  }
  MCS_ASSERT(mask == 0, "DP parent chain did not consume the mask");
  s.order.assign(reversed_.rbegin(), reversed_.rend());
  return s;
}

}  // namespace mcs::select
