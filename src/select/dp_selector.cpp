#include "select/dp_selector.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/error.h"
#include "geo/distance.h"
#include "select/travel_graph.h"

namespace mcs::select {

DpSelector::DpSelector(int candidate_cap) : candidate_cap_(candidate_cap) {
  MCS_CHECK(candidate_cap >= 1 && candidate_cap <= 20,
            "DP candidate cap must be in [1, 20]");
}

SelectionInstance prune_candidates(const SelectionInstance& instance,
                                   int cap) {
  SelectionInstance pruned = instance;
  const Meters budget = instance.distance_budget();
  // A task farther than the whole budget can never be on a feasible path.
  std::erase_if(pruned.candidates, [&](const Candidate& c) {
    return geo::euclidean(instance.start, c.location) > budget;
  });
  if (pruned.candidates.size() <= static_cast<std::size_t>(cap)) return pruned;

  // Score by the profit of performing the task alone; keep the best `cap`.
  std::vector<std::size_t> idx(pruned.candidates.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto score = [&](std::size_t i) {
    const Candidate& c = pruned.candidates[i];
    return c.reward - instance.travel.cost_for(
                          geo::euclidean(instance.start, c.location));
  };
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return score(a) > score(b); });
  idx.resize(static_cast<std::size_t>(cap));
  std::sort(idx.begin(), idx.end());  // keep original relative order
  std::vector<Candidate> kept;
  kept.reserve(idx.size());
  for (const std::size_t i : idx) kept.push_back(pruned.candidates[i]);
  pruned.candidates = std::move(kept);
  return pruned;
}

Selection DpSelector::select(const SelectionInstance& instance) const {
  const SelectionInstance inst = prune_candidates(instance, candidate_cap_);
  const std::size_t m = inst.candidates.size();
  if (m == 0) return {};

  const TravelGraph g(inst);
  const Meters dist_budget = inst.distance_budget();
  const std::size_t num_masks = std::size_t{1} << m;

  // dp[mask * m + (j-1)]: shortest path visiting `mask`, ending at node j.
  std::vector<Meters> dp(num_masks * m, kInf);
  // parent node (0 = start) for path reconstruction.
  std::vector<std::int8_t> parent(num_masks * m, -1);

  for (std::size_t j = 0; j < m; ++j) {
    const Meters d = g.dist(0, j + 1);
    if (d <= dist_budget) {
      const std::size_t mask = std::size_t{1} << j;
      dp[mask * m + j] = d;
      parent[mask * m + j] = 0;
    }
  }

  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      const Meters cur = dp[mask * m + j];
      if (cur == kInf) continue;
      // Extend by one unvisited task q (Eq. 12).
      for (std::size_t q = 0; q < m; ++q) {
        if (mask & (std::size_t{1} << q)) continue;
        const Meters next = cur + g.dist(j + 1, q + 1);
        if (next > dist_budget) continue;  // infeasible extension
        const std::size_t nmask = mask | (std::size_t{1} << q);
        if (next < dp[nmask * m + q]) {
          dp[nmask * m + q] = next;
          parent[nmask * m + q] = static_cast<std::int8_t>(j + 1);
        }
      }
    }
  }

  // Precompute subset rewards incrementally: R(mask) = R(mask without lowest
  // set bit) + reward(lowest bit).
  std::vector<Money> subset_reward(num_masks, 0.0);
  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    const std::size_t low = mask & (~mask + 1);
    const std::size_t j = static_cast<std::size_t>(std::countr_zero(mask));
    subset_reward[mask] = subset_reward[mask ^ low] + g.reward(j + 1);
  }

  // Scan all feasible (mask, end) states for the best profit.
  Money best_profit = 0.0;  // doing nothing is always available
  std::size_t best_mask = 0;
  std::size_t best_end = 0;
  Meters best_dist = 0.0;
  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    Meters shortest = kInf;
    std::size_t end = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      if (dp[mask * m + j] < shortest) {
        shortest = dp[mask * m + j];
        end = j;
      }
    }
    if (shortest == kInf) continue;  // unreachable within budget
    const Money profit = subset_reward[mask] - inst.travel.cost_for(shortest);
    if (profit > best_profit) {
      best_profit = profit;
      best_mask = mask;
      best_end = end;
      best_dist = shortest;
    }
  }

  if (best_mask == 0) return {};

  // Reconstruct the visiting order by walking parents backwards.
  Selection s;
  s.distance = best_dist;
  s.reward = subset_reward[best_mask];
  s.cost = inst.travel.cost_for(best_dist);
  std::vector<TaskId> reversed;
  std::size_t mask = best_mask;
  std::size_t j = best_end;
  while (true) {
    reversed.push_back(g.task(j + 1));
    const std::int8_t p = parent[mask * m + j];
    MCS_ASSERT(p >= 0, "DP parent chain broken");
    mask ^= (std::size_t{1} << j);
    if (p == 0) break;
    j = static_cast<std::size_t>(p - 1);
  }
  MCS_ASSERT(mask == 0, "DP parent chain did not consume the mask");
  s.order.assign(reversed.rbegin(), reversed.rend());
  return s;
}

}  // namespace mcs::select
