// PlanMemo: cross-user memoization of per-round task-selection plans.
//
// At production density many users of one sensing round face *identical*
// selection instances: the open set and prices are frozen for the round
// (round-granularity mechanisms), the candidate geometry is the shared
// CandidatePool, and users clustered at the same point of interest share
// the same start location and often the same time budget and contributed
// set. Their DP solves are then byte-for-byte the same work, O(m^2 * 2^m)
// each. The memo keys every planned invocation by
//
//   (quantized start cell, time-budget bucket,
//    signature of the included pool-row subset)
//
// and lets only the first user of an equivalence class — the class *owner*
// — pay the solve; everyone else pays a hash lookup plus an O(m) fix-up
// check. The result is pinned bit-identical to the memo-free path: a plan
// is ever reused only under one of two *proofs*:
//
//  * Exact hit: the probing instance equals the cached one — bit-equal
//    start, bit-equal time budget and the identical included pool-row
//    subset. Selectors are documented deterministic pure functions of the
//    instance (selector.h), so the cached Selection IS what the probing
//    user's own solve would return. Safe for any selector.
//  * Dominance fix-up (start-leg fix-up for the empty tour): the cached
//    instance was solved *exactly* (TaskSelector::exact_candidate_limit()
//    covers the candidate count) and returned the empty selection; the
//    probing user has the same included subset, a time budget no larger
//    than the cached one, and a start-leg distance to every candidate no
//    shorter than the cached user's. Travel time and cost are linear in
//    distance (geo::TravelModel), so every tour feasible for the prober is
//    feasible for the cached user at no higher cost: all its tours have
//    profit <= the cached optimum <= 0, and an exact solver (strict
//    improvement over the empty incumbent, as the DP implements) returns
//    exactly the empty selection again.
//
// Everything else — different reachable set under the travel budget,
// tie-breaking ambiguity between distinct non-empty tours, contributed-task
// overlap that changes the included subset — fails verification and takes
// the exact fallback: the user's full solve runs as if the memo did not
// exist (counted in stats().fallbacks).
//
// Concurrency/determinism: the table is built per round in three phases
// driven by the simulator. (1) a serial classification pass in user-
// position order assigns every user a Ticket (owner / exact hit / pending
// dominance probe); (2) owners' solves run concurrently on the plan
// workers — the memo is not touched at all; (3) a serial pass in the same
// position order publishes owner plans into the table, copies them to
// exact hits and resolves pendings (failed probes become a second solve
// wave). Insertion order, hit/miss accounting and every returned plan are
// therefore identical at any plan_threads value.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "select/instance.h"

namespace mcs::select {

class CandidatePool;

struct PlanMemoParams {
  bool enabled = false;
  // Start-point quantization for the memo key. Coarser cells put more
  // near-identical users in one bucket (longer probe chains), finer cells
  // split them; correctness never depends on the value because every probe
  // re-verifies exact content.
  Meters cell_size = 250.0;
  // Time-budget quantization for the memo key (same bucketing-only role).
  Seconds budget_bucket = 60.0;
  // Cap on cached entries per key: once a bucket is full, further owners
  // still solve (and are counted as misses) but are not inserted.
  int max_entries_per_key = 8;

  void validate() const;
};

struct PlanMemoStats {
  long long exact_hits = 0;  // plan copied from a bit-equal instance
  long long fixup_hits = 0;  // dominance fix-up proved the empty plan
  long long misses = 0;      // full solves (class owners + fallbacks)
  long long fallbacks = 0;   // pendings whose fix-up failed (subset of misses)
  long long rounds = 0;      // rounds the memo was active for

  long long hits() const { return exact_hits + fixup_hits; }
  long long lookups() const { return hits() + misses; }
  double hit_rate() const {
    return lookups() > 0 ? static_cast<double>(hits()) /
                               static_cast<double>(lookups())
                         : 0.0;
  }
};

class PlanMemo {
 public:
  enum class Outcome : std::uint8_t {
    kOwner,     // first of its class: solve, then publish()
    kExactHit,  // bit-equal instance cached: copy via cached_plan()
    kPending,   // dominance candidate: resolve() after the owner published
  };

  struct Ticket {
    Outcome outcome = Outcome::kOwner;
    // Entry index for kExactHit/kPending, and for kOwner when the entry was
    // inserted (kNoEntry when its key bucket was full).
    std::uint32_t entry = kNoEntry;
  };

  static constexpr std::uint32_t kNoEntry = 0xffffffffu;

  explicit PlanMemo(PlanMemoParams params);

  const PlanMemoParams& params() const { return params_; }

  /// Start a new round: drop every entry (capacity is kept), remember the
  /// round's shared pool. Cumulative stats survive across rounds.
  void begin_round(const CandidatePool& pool);

  /// Poolless (cell) mode, used by the sharded round loop: start a table
  /// scoped to one shard cell. Instances carry no CandidatePool, so the
  /// equivalence-class signature is the candidate task-id vector instead of
  /// a pool-row bitmask — identical ids within one round imply identical
  /// locations and enumeration order, and rewards/travel/start/budget are
  /// re-verified exactly as in pooled mode, so every reuse proof carries
  /// over unchanged. Does not advance stats().rounds (the sharded loop
  /// counts each round once, not once per cell).
  void begin_cell();

  /// Phase 1, serial, in user-position order. The instance must carry the
  /// round pool (has_pool()). `exact_candidate_limit` is the solving
  /// selector's TaskSelector::exact_candidate_limit(). Updates stats for
  /// exact hits and owners; pendings are counted at resolve().
  Ticket classify(const SelectionInstance& inst, int exact_candidate_limit);

  /// Phase 3, serial, same order: publish an owner's freshly solved plan
  /// (and its is_feasible result) into its entry. No-op for kNoEntry.
  void publish(const Ticket& t, const Selection& plan, bool feasible);

  /// The plan cached for an exact-hit ticket (valid after the owner
  /// published, which position order guarantees).
  const Selection& cached_plan(const Ticket& t) const;
  bool cached_feasible(const Ticket& t) const;

  /// Resolve a pending ticket against its (now published) entry. True: the
  /// dominance fix-up holds, *plan is the proven (empty) selection, counted
  /// as a fix-up hit. False: the caller must run the full solve; counted as
  /// a fallback and a miss.
  bool resolve(const Ticket& t, const Selection** plan);

  const PlanMemoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Resume path: reinstall cumulative counters from a checkpoint. The
  /// table itself is per-round (begin_round drops it), so the counters are
  /// the memo's only cross-round state.
  void restore_stats(const PlanMemoStats& stats) { stats_ = stats; }

 private:
  struct Entry {
    geo::Point start;
    Seconds time_budget = 0.0;
    std::vector<std::uint64_t> inclusion;  // bitmask over pool rows
    std::vector<TaskId> ids;       // candidate ids (cell mode only)
    std::vector<Meters> d0;        // start-leg distance per included candidate
    std::vector<Money> rewards;    // per included candidate, insert-time
    geo::TravelModel travel;
    int exact_limit = 0;           // solver's exact cap at insert time
    bool solved = false;
    bool feasible = true;
    Selection plan;
  };

  std::uint64_t key_of(const SelectionInstance& inst,
                       std::uint64_t sig_hash) const;

  PlanMemoParams params_;
  const CandidatePool* pool_ = nullptr;
  bool cell_mode_ = false;  // begin_cell() table: signatures are id vectors
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
  PlanMemoStats stats_;
  // Scratch reused across classify() calls.
  std::vector<std::uint64_t> scratch_inclusion_;
  std::vector<TaskId> scratch_ids_;
  std::vector<Meters> scratch_d0_;
};

}  // namespace mcs::select
