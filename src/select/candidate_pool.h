// CandidatePool: the geometry every user of one sensing round shares.
//
// Within a round, all users face the same open task set — their selection
// instances differ only in the start location, the has-contributed filter
// and (for intra-round mechanisms) the published rewards. The candidate–
// candidate distances are therefore identical across the round's users, and
// recomputing the full (m+1)^2 matrix per user session was the dominant
// per-instance setup cost. The simulator builds one pool per round; each
// SelectionInstance carries a shared_ptr to it plus a per-candidate row
// index, and TravelGraph copies the candidate block out of the pool instead
// of recomputing it (only the per-user start row is still measured fresh).
//
// Pool distances are produced by the exact same geo::euclidean calls a
// poolless TravelGraph would make, so sharing is bit-invisible: selectors
// return identical selections with or without a pool.
#pragma once

#include <vector>

#include "select/instance.h"

namespace mcs::select {

class CandidatePool {
 public:
  CandidatePool() = default;

  /// Takes the round's open candidates (round-start rewards; only the task
  /// ids and locations are read back by selectors) and precomputes the
  /// dense m x m distance matrix.
  explicit CandidatePool(std::vector<Candidate> candidates);

  std::size_t size() const { return candidates_.size(); }
  const std::vector<Candidate>& candidates() const { return candidates_; }

  /// Distance between candidates a and b (pool row indices).
  Meters dist(std::size_t a, std::size_t b) const {
    return d_[a * candidates_.size() + b];
  }

 private:
  std::vector<Candidate> candidates_;
  std::vector<Meters> d_;  // size() * size(), row-major, symmetric
};

}  // namespace mcs::select
