#include "select/two_opt.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::select {

Selection improve_two_opt(const SelectionInstance& instance,
                          const Selection& s) {
  if (s.order.size() < 3) return s;

  std::unordered_map<TaskId, geo::Point> where;
  for (const Candidate& c : instance.candidates) where[c.task] = c.location;

  std::vector<TaskId> order = s.order;
  auto loc = [&](std::size_t i) {
    const auto it = where.find(order[i]);
    MCS_CHECK(it != where.end(), "2-opt: unknown task in order");
    return it->second;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    // Reverse order[i..j]; edges change at (i-1, i) and (j, j+1). For an
    // open path the last node has no outgoing edge, handled by `after`.
    for (std::size_t i = 0; i < order.size() - 1 && !improved; ++i) {
      const geo::Point before = (i == 0) ? instance.start : loc(i - 1);
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        const double removed =
            geo::euclidean(before, loc(i)) +
            (j + 1 < order.size() ? geo::euclidean(loc(j), loc(j + 1)) : 0.0);
        const double added =
            geo::euclidean(before, loc(j)) +
            (j + 1 < order.size() ? geo::euclidean(loc(i), loc(j + 1)) : 0.0);
        if (added < removed - 1e-9) {
          std::reverse(order.begin() + static_cast<long>(i),
                       order.begin() + static_cast<long>(j) + 1);
          improved = true;
          break;
        }
      }
    }
  }

  Selection out = evaluate_order(instance, order);
  MCS_ASSERT(out.distance <= s.distance + 1e-6,
             "2-opt must not lengthen the path");
  return out;
}

}  // namespace mcs::select
