#include "select/selector.h"

#include "common/error.h"
#include "common/strings.h"
#include "select/beam_search_selector.h"
#include "select/ils_selector.h"
#include "select/branch_bound_selector.h"
#include "select/brute_force_selector.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"

namespace mcs::select {

SelectorKind parse_selector(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "dp" || lower == "dynamic-programming") return SelectorKind::kDp;
  if (lower == "greedy") return SelectorKind::kGreedy;
  if (lower == "greedy2opt" || lower == "greedy+2opt" || lower == "greedy-2opt") {
    return SelectorKind::kGreedy2Opt;
  }
  if (lower == "bb" || lower == "branch-bound" || lower == "branchbound") {
    return SelectorKind::kBranchBound;
  }
  if (lower == "brute" || lower == "brute-force") return SelectorKind::kBruteForce;
  if (lower == "beam" || lower == "beam-search") return SelectorKind::kBeamSearch;
  if (lower == "ils" || lower == "local-search") return SelectorKind::kIls;
  throw Error("unknown task selector: " + name);
}

const char* selector_name(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kDp: return "dp";
    case SelectorKind::kGreedy: return "greedy";
    case SelectorKind::kGreedy2Opt: return "greedy+2opt";
    case SelectorKind::kBranchBound: return "branch-bound";
    case SelectorKind::kBruteForce: return "brute-force";
    case SelectorKind::kBeamSearch: return "beam-search";
    case SelectorKind::kIls: return "ils";
  }
  return "?";
}

std::unique_ptr<TaskSelector> make_selector(SelectorKind kind,
                                            int dp_candidate_cap) {
  switch (kind) {
    case SelectorKind::kDp:
      return std::make_unique<DpSelector>(dp_candidate_cap);
    case SelectorKind::kGreedy:
      return std::make_unique<GreedySelector>(false);
    case SelectorKind::kGreedy2Opt:
      return std::make_unique<GreedySelector>(true);
    case SelectorKind::kBranchBound:
      return std::make_unique<BranchBoundSelector>();
    case SelectorKind::kBruteForce:
      return std::make_unique<BruteForceSelector>();
    case SelectorKind::kBeamSearch:
      return std::make_unique<BeamSearchSelector>();
    case SelectorKind::kIls:
      return std::make_unique<IlsSelector>();
  }
  throw Error("unknown task selector kind");
}

}  // namespace mcs::select
