#include "select/brute_force_selector.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "select/travel_graph.h"

namespace mcs::select {

BruteForceSelector::BruteForceSelector(int max_candidates)
    : max_candidates_(max_candidates) {
  MCS_CHECK(max_candidates >= 1 && max_candidates <= 12,
            "brute force cap must be in [1, 12]");
}

Selection BruteForceSelector::select(const SelectionInstance& instance) const {
  const std::size_t m = instance.candidates.size();
  MCS_CHECK(m <= static_cast<std::size_t>(max_candidates_),
            "instance too large for brute force");
  if (m == 0) return {};

  const TravelGraph g(instance);
  const Meters dist_budget = instance.distance_budget();

  Money best_profit = 0.0;
  Selection best;  // empty selection: profit 0

  for (std::size_t mask = 1; mask < (std::size_t{1} << m); ++mask) {
    std::vector<std::size_t> nodes;  // candidate indices in this subset
    Money reward = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (mask & (std::size_t{1} << j)) {
        nodes.push_back(j);
        reward += g.reward(j + 1);
      }
    }
    // Shortest feasible open path over the subset = min over permutations.
    std::sort(nodes.begin(), nodes.end());
    Meters shortest = kInf;
    std::vector<std::size_t> shortest_perm;
    std::vector<std::size_t> perm = nodes;
    do {
      Meters d = g.dist(0, perm[0] + 1);
      for (std::size_t i = 1; i < perm.size() && d <= dist_budget; ++i) {
        d += g.dist(perm[i - 1] + 1, perm[i] + 1);
      }
      if (d <= dist_budget && d < shortest) {
        shortest = d;
        shortest_perm = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));

    if (shortest == kInf) continue;
    const Money profit = reward - instance.travel.cost_for(shortest);
    if (profit > best_profit) {
      best_profit = profit;
      best.order.clear();
      for (const std::size_t j : shortest_perm) best.order.push_back(g.task(j + 1));
      best.distance = shortest;
      best.reward = reward;
      best.cost = instance.travel.cost_for(shortest);
    }
  }
  return best;
}

}  // namespace mcs::select
