// Exhaustive oracle: enumerates every subset and every visiting order.
// O(m! * 2^m) — only usable for tiny instances; exists to validate the DP
// and branch-and-bound solvers in tests.
#pragma once

#include "select/selector.h"

namespace mcs::select {

class BruteForceSelector final : public TaskSelector {
 public:
  /// Refuses instances with more than `max_candidates` (default 9).
  explicit BruteForceSelector(int max_candidates = 9);

  const char* name() const override { return "brute-force"; }

  Selection select(const SelectionInstance& instance) const override;

  std::unique_ptr<TaskSelector> clone() const override {
    return std::make_unique<BruteForceSelector>(max_candidates_);
  }

  int exact_candidate_limit() const override { return max_candidates_; }

 private:
  int max_candidates_;
};

}  // namespace mcs::select
