// Dense travel graph for a selection instance: node 0 is the user's start
// location, node i (1-based) is candidate i-1. Matches the graph
// G = (V, E, W, R) used in the paper's NP-hardness proof.
//
// A graph can be rebuilt in place (`build()`), reusing its storage — exact
// solvers that run once per user session keep one graph as scratch instead
// of allocating a fresh one per call. When the instance carries a shared
// CandidatePool, the candidate–candidate block is copied from the pool and
// only the start row is computed; the resulting distances are bit-identical
// to a poolless build (the pool stores the same geo::euclidean values).
#pragma once

#include <vector>

#include "select/instance.h"

namespace mcs::select {

class TravelGraph {
 public:
  /// Empty graph; call build() before use.
  TravelGraph() = default;

  explicit TravelGraph(const SelectionInstance& instance);

  /// (Re)build the graph from an instance, reusing internal storage.
  void build(const SelectionInstance& instance);

  /// (Re)build from an explicit candidate subset of `instance` (e.g. the
  /// DP's pruned view). `pool_index` must parallel `candidates` when the
  /// instance has a pool, mapping each kept candidate to its pool row; pass
  /// an empty vector to force plain recomputation.
  void build(const SelectionInstance& instance,
             const std::vector<Candidate>& candidates,
             const std::vector<std::int32_t>& pool_index);

  /// Number of candidates m.
  std::size_t num_candidates() const { return m_; }

  /// Distance between node i and node j (0 = start, 1..m = candidates).
  Meters dist(std::size_t i, std::size_t j) const {
    return d_[i * (m_ + 1) + j];
  }

  /// Reward of candidate node i (1..m); node 0 has reward 0.
  Money reward(std::size_t i) const { return r_[i]; }

  /// The candidate's task id for node i (1..m).
  TaskId task(std::size_t i) const;

  /// Smallest incoming edge weight of candidate node i from any other node
  /// (start or candidate). Used by branch-and-bound optimistic bounds.
  Meters min_incoming(std::size_t i) const { return min_in_[i]; }

 private:
  std::size_t m_ = 0;
  std::vector<Meters> d_;      // (m+1)^2 row-major
  std::vector<Money> r_;       // m+1
  std::vector<TaskId> tasks_;  // m+1 (index 0 unused)
  std::vector<Meters> min_in_; // m+1
};

}  // namespace mcs::select
