#include "select/beam_search_selector.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "select/travel_graph.h"

namespace mcs::select {

namespace {

struct BeamState {
  std::vector<std::size_t> path;  // candidate node indices (1..m)
  std::uint32_t visited = 0;      // bitmask over candidates
  Meters dist = 0.0;
  Money reward = 0.0;
  double priority = 0.0;          // profit + optimistic completion bound
};

Money profit_of(const SelectionInstance& inst, const BeamState& s) {
  return s.reward - inst.travel.cost_for(s.dist);
}

/// Optimistic completion: every unvisited candidate whose cheapest possible
/// leg still fits contributes its best-case marginal profit.
double completion_bound(const SelectionInstance& inst, const TravelGraph& g,
                        const BeamState& s, Meters dist_budget) {
  double bound = 0.0;
  const std::size_t current = s.path.empty() ? 0 : s.path.back();
  const Meters remaining = dist_budget - s.dist;
  for (std::size_t q = 1; q <= g.num_candidates(); ++q) {
    if (s.visited & (std::uint32_t{1} << (q - 1))) continue;
    const Meters cheapest = std::min(g.min_incoming(q), g.dist(current, q));
    if (cheapest > remaining) continue;
    const Money gain = g.reward(q) - inst.travel.cost_for(cheapest);
    if (gain > 0.0) bound += gain;
  }
  return bound;
}

}  // namespace

BeamSearchSelector::BeamSearchSelector(int width) : width_(width) {
  MCS_CHECK(width >= 1, "beam width must be at least 1");
}

Selection BeamSearchSelector::select(const SelectionInstance& instance) const {
  const std::size_t m = instance.candidates.size();
  if (m == 0) return {};
  MCS_CHECK(m <= 32, "beam search instance too large (mask width)");

  const TravelGraph g(instance);
  const Meters dist_budget = instance.distance_budget();

  BeamState best;  // the empty tour, profit 0
  std::vector<BeamState> beam{best};

  for (std::size_t depth = 0; depth < m && !beam.empty(); ++depth) {
    std::vector<BeamState> next;
    next.reserve(beam.size() * m);
    for (const BeamState& s : beam) {
      const std::size_t current = s.path.empty() ? 0 : s.path.back();
      for (std::size_t q = 1; q <= m; ++q) {
        if (s.visited & (std::uint32_t{1} << (q - 1))) continue;
        const Meters leg = g.dist(current, q);
        if (s.dist + leg > dist_budget) continue;
        BeamState t = s;
        t.path.push_back(q);
        t.visited |= std::uint32_t{1} << (q - 1);
        t.dist += leg;
        t.reward += g.reward(q);
        t.priority =
            profit_of(instance, t) + completion_bound(instance, g, t, dist_budget);
        if (profit_of(instance, t) > profit_of(instance, best)) best = t;
        next.push_back(std::move(t));
      }
    }
    if (next.size() > static_cast<std::size_t>(width_)) {
      std::partial_sort(next.begin(), next.begin() + width_, next.end(),
                        [](const BeamState& a, const BeamState& b) {
                          return a.priority > b.priority;
                        });
      next.resize(static_cast<std::size_t>(width_));
    }
    beam = std::move(next);
  }

  Selection out;
  if (best.path.empty()) return out;
  for (const std::size_t node : best.path) out.order.push_back(g.task(node));
  out.distance = best.dist;
  out.reward = best.reward;
  out.cost = instance.travel.cost_for(best.dist);
  return out;
}

}  // namespace mcs::select
