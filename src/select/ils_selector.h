// Iterated local search (ILS) task selection.
//
// For instance sizes where the exact solvers are hopeless (m in the
// hundreds) and plain greedy leaves profit on the table, ILS runs a
// classic perturb-and-improve loop:
//
//   start from the greedy tour
//   repeat `iterations` times:
//     perturb: randomly drop a few selected tasks / insert a few unselected
//     improve: best-insertion of profitable tasks + 2-opt on the tour
//     keep the result iff it beats the incumbent
//
// Deterministic for a fixed seed. Always >= greedy by construction (the
// incumbent starts there and never worsens).
#pragma once

#include <cstdint>

#include "select/selector.h"

namespace mcs::select {

class IlsSelector final : public TaskSelector {
 public:
  explicit IlsSelector(int iterations = 50, std::uint64_t seed = 1);

  const char* name() const override { return "ils"; }

  Selection select(const SelectionInstance& instance) const override;

  std::unique_ptr<TaskSelector> clone() const override {
    return std::make_unique<IlsSelector>(iterations_, seed_);
  }

  int iterations() const { return iterations_; }

 private:
  int iterations_;
  std::uint64_t seed_;
};

}  // namespace mcs::select
