// TaskSelector: strategy interface for the per-user task selection problem.
#pragma once

#include <memory>
#include <string>

#include "select/instance.h"

namespace mcs::select {

class TaskSelector {
 public:
  virtual ~TaskSelector() = default;

  virtual const char* name() const = 0;

  /// Solve the instance. Solvers never return an infeasible selection and
  /// never one with negative profit (doing nothing has profit 0, and users
  /// are rational).
  virtual Selection select(const SelectionInstance& instance) const = 0;

  /// Largest candidate count this selector solves *exactly* — the true
  /// optimum of Eq. 1 over the given candidates, with no heuristic pruning
  /// below that size. 0 for heuristics (greedy, beam, ILS, ...). The plan
  /// memo's dominance fix-up (select/plan_memo.h) is only sound for exact
  /// solves, so it consults this hook; the conservative default opts a
  /// selector out of everything except bit-equal instance reuse, which is
  /// safe for any deterministic selector.
  virtual int exact_candidate_limit() const { return 0; }

  /// A fresh selector of the same kind and configuration. Scratch arenas
  /// make select() non-reentrant (DESIGN.md §7), so the simulator's
  /// parallel planning pass gives each worker its own clone. Selectors are
  /// deterministic pure functions of the instance and their construction
  /// parameters, so a clone returns bit-identical selections. The default
  /// returns nullptr, which makes the simulator fall back to serial
  /// planning for selectors that do not implement the hook.
  virtual std::unique_ptr<TaskSelector> clone() const { return nullptr; }
};

enum class SelectorKind {
  kDp,          // optimal bitmask dynamic programming (paper §V-A)
  kGreedy,      // greedy marginal-profit heuristic (paper §V-B)
  kGreedy2Opt,  // greedy followed by 2-opt path improvement
  kBranchBound, // exact branch-and-bound (same optimum as DP)
  kBruteForce,  // exhaustive oracle for tests (tiny instances only)
  kBeamSearch,  // width-bounded beam search (anytime, between greedy and DP)
  kIls,         // iterated local search (for large instances)
};

SelectorKind parse_selector(const std::string& name);
const char* selector_name(SelectorKind kind);

/// Factory. `dp_candidate_cap` bounds the DP's exponential state space: when
/// an instance has more candidates, the lowest-scoring ones are pruned
/// before the exact solve (see DpSelector).
std::unique_ptr<TaskSelector> make_selector(SelectorKind kind,
                                            int dp_candidate_cap = 14);

}  // namespace mcs::select
