// Greedy task selection (paper §V-B): repeatedly move to the candidate with
// the highest marginal profit (reward minus cost of the leg from the current
// location) while the travel-time budget allows, stopping when no candidate
// improves the profit. O(m^2).
#pragma once

#include "select/selector.h"

namespace mcs::select {

class GreedySelector final : public TaskSelector {
 public:
  /// With `improve_with_two_opt`, the visiting order found greedily is
  /// post-optimized with 2-opt (shorter walk, same task set) — still a
  /// heuristic, but dominates plain greedy.
  explicit GreedySelector(bool improve_with_two_opt = false);

  const char* name() const override {
    return two_opt_ ? "greedy+2opt" : "greedy";
  }

  Selection select(const SelectionInstance& instance) const override;

  std::unique_ptr<TaskSelector> clone() const override {
    return std::make_unique<GreedySelector>(two_opt_);
  }

 private:
  bool two_opt_;
};

}  // namespace mcs::select
