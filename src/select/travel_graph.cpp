#include "select/travel_graph.h"

#include "common/error.h"
#include "geo/distance.h"
#include "select/candidate_pool.h"

namespace mcs::select {

TravelGraph::TravelGraph(const SelectionInstance& instance) { build(instance); }

void TravelGraph::build(const SelectionInstance& instance) {
  build(instance, instance.candidates, instance.pool_index);
}

void TravelGraph::build(const SelectionInstance& instance,
                        const std::vector<Candidate>& candidates,
                        const std::vector<std::int32_t>& pool_index) {
  m_ = candidates.size();
  const std::size_t n = m_ + 1;
  d_.assign(n * n, 0.0);
  r_.assign(n, 0.0);
  tasks_.assign(n, kInvalidTask);
  min_in_.assign(n, kInf);

  for (std::size_t i = 0; i < m_; ++i) {
    r_[i + 1] = candidates[i].reward;
    tasks_[i + 1] = candidates[i].task;
  }

  // Start row: always per-user (the start location is what varies).
  for (std::size_t j = 0; j < m_; ++j) {
    const Meters d = geo::euclidean(instance.start, candidates[j].location);
    d_[j + 1] = d;
    d_[(j + 1) * n] = d;
  }

  const CandidatePool* pool =
      pool_index.size() == m_ ? instance.pool.get() : nullptr;
  if (pool != nullptr) {
    // Candidate block straight from the round's shared matrix.
    for (std::size_t i = 0; i < m_; ++i) {
      const auto pi = static_cast<std::size_t>(pool_index[i]);
      for (std::size_t j = i + 1; j < m_; ++j) {
        const Meters d = pool->dist(pi, static_cast<std::size_t>(pool_index[j]));
        d_[(i + 1) * n + (j + 1)] = d;
        d_[(j + 1) * n + (i + 1)] = d;
      }
    }
  } else {
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = i + 1; j < m_; ++j) {
        const Meters d =
            geo::euclidean(candidates[i].location, candidates[j].location);
        d_[(i + 1) * n + (j + 1)] = d;
        d_[(j + 1) * n + (i + 1)] = d;
      }
    }
  }

  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      min_in_[i] = std::min(min_in_[i], d_[j * n + i]);
    }
  }
}

TaskId TravelGraph::task(std::size_t i) const {
  MCS_CHECK(i >= 1 && i <= m_, "travel graph node out of range");
  return tasks_[i];
}

}  // namespace mcs::select
