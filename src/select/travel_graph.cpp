#include "select/travel_graph.h"

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::select {

TravelGraph::TravelGraph(const SelectionInstance& instance)
    : m_(instance.candidates.size()) {
  const std::size_t n = m_ + 1;
  d_.assign(n * n, 0.0);
  r_.assign(n, 0.0);
  tasks_.assign(n, kInvalidTask);
  min_in_.assign(n, kInf);

  std::vector<geo::Point> pts(n);
  pts[0] = instance.start;
  for (std::size_t i = 0; i < m_; ++i) {
    pts[i + 1] = instance.candidates[i].location;
    r_[i + 1] = instance.candidates[i].reward;
    tasks_[i + 1] = instance.candidates[i].task;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Meters d = geo::euclidean(pts[i], pts[j]);
      d_[i * n + j] = d;
      d_[j * n + i] = d;
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      min_in_[i] = std::min(min_in_[i], d_[j * n + i]);
    }
  }
}

TaskId TravelGraph::task(std::size_t i) const {
  MCS_CHECK(i >= 1 && i <= m_, "travel graph node out of range");
  return tasks_[i];
}

}  // namespace mcs::select
