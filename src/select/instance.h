// One user's task-selection problem at one sensing round (Eq. 1):
// choose a subset of candidate tasks and a visiting order maximizing
// total reward minus travel cost, with travel time within the budget.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "geo/path.h"
#include "geo/point.h"

namespace mcs::select {

class CandidatePool;  // select/candidate_pool.h

/// A task the user could perform this round (not yet contributed to, not
/// completed, not expired, reward as published this round).
struct Candidate {
  TaskId task = kInvalidTask;
  geo::Point location;
  Money reward = 0.0;
};

struct SelectionInstance {
  geo::Point start;                  // user location at round start
  std::vector<Candidate> candidates;
  geo::TravelModel travel;
  Seconds time_budget = 0.0;         // B_ui^k

  // Shared round geometry (optional). When `pool` is set, `pool_index` runs
  // parallel to `candidates` and maps each one to its row in the pool;
  // selectors then reuse the pool's precomputed candidate–candidate
  // distances instead of recomputing them per user. Rewards are always read
  // from `candidates` (intra-round mechanisms reprice between sessions; the
  // pool carries geometry only). Instances without a pool behave exactly as
  // before — sharing is bit-invisible to every solver.
  std::shared_ptr<const CandidatePool> pool;
  std::vector<std::int32_t> pool_index;

  /// Maximum travel distance the time budget allows.
  Meters distance_budget() const { return travel.distance_within(time_budget); }

  /// True when the pool fields are usable for candidate-distance lookups.
  bool has_pool() const {
    return pool != nullptr && pool_index.size() == candidates.size();
  }
};

/// A solution: the chosen tasks in visiting order plus its economics.
struct Selection {
  std::vector<TaskId> order;   // task ids in visiting order
  Meters distance = 0.0;       // length of the walked path
  Money reward = 0.0;          // sum of selected rewards
  Money cost = 0.0;            // travel.cost_for(distance)

  Money profit() const { return reward - cost; }
  bool empty() const { return order.empty(); }
};

/// Recompute a selection's economics from an instance (used to cross-check
/// solver bookkeeping in tests). Throws if the order references unknown
/// tasks or repeats one.
Selection evaluate_order(const SelectionInstance& instance,
                         const std::vector<TaskId>& order);

/// True when the selection respects the travel-time budget.
bool is_feasible(const SelectionInstance& instance, const Selection& s,
                 double tol = 1e-6);

}  // namespace mcs::select
