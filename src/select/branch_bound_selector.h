// Exact branch-and-bound task selection.
//
// Depth-first search over visiting sequences with an admissible optimistic
// bound: from a partial path, any still-unvisited candidate q can add at
// most max(0, reward_q - cost(min incoming edge of q)) profit, and is only
// counted when its cheapest remaining leg fits the leftover budget. Finds
// the same optimum as the DP, typically much faster on sparse-profit
// instances, and without the DP's exponential memory.
#pragma once

#include <limits>

#include "select/selector.h"

namespace mcs::select {

class BranchBoundSelector final : public TaskSelector {
 public:
  const char* name() const override { return "branch-bound"; }

  Selection select(const SelectionInstance& instance) const override;

  std::unique_ptr<TaskSelector> clone() const override {
    return std::make_unique<BranchBoundSelector>();
  }

  /// Exact at any instance size (no candidate pruning).
  int exact_candidate_limit() const override {
    return std::numeric_limits<int>::max();
  }
};

}  // namespace mcs::select
