// Optimal dynamic-programming task selection (paper §V-A).
//
// State: dp[mask][j] = length of the shortest simple path that starts at the
// user's location, visits exactly the candidate set `mask`, and ends at
// candidate j (Eq. 11). Transition: extend a set by one task (Eq. 12).
// Every subset whose shortest path fits the travel budget is scored by
// profit R(mask) - cost(dp[mask]); the best feasible subset wins.
// Complexity O(m^2 * 2^m) time, O(m * 2^m) memory.
//
// Implementation notes (all exactness- and bit-preserving; the equivalence
// suite pins the returned Selection against the straightforward reference
// DP):
//  * The DP table, parent table and per-mask prefix sums live in a scratch
//    arena owned by the selector and are reused across calls — a campaign
//    round runs hundreds of user sessions and the per-call allocation of
//    the 2^m * m table dominated setup time. THREADING CONTRACT: the arena
//    makes select() non-reentrant; every simulator (and thus every runner
//    thread) must own its private DpSelector, which is what
//    make_selector() per Simulator already guarantees. Selectors must not
//    be shared across concurrently running simulators.
//  * Set-bit iteration uses countr_zero / clear-lowest-bit instead of
//    probing all m bits per state.
//  * The best-profit scan is fused into the relaxation sweep: when the
//    outer loop reaches `mask`, transitions (which only ever write to
//    strict supersets) can no longer change its rows, so the mask is scored
//    in place.
//  * States are expanded only when an admissible upper bound — current
//    profit plus every unvisited candidate at its globally cheapest
//    incoming edge (TravelGraph::min_incoming, the branch-and-bound bound)
//    — can still beat the incumbent. The bound is evaluated with a small
//    slack so floating-point rounding can never prune a state on the
//    optimal chain; dominated masks are simply never expanded.
//
// Instances larger than `candidate_cap` are first pruned to the cap by a
// reward-minus-detour score (the paper's experiments use m = 20 total tasks,
// but per-user candidate sets shrink quickly as tasks complete; the cap
// keeps worst-case rounds tractable). With pruning the result is optimal
// w.r.t. the kept candidates.
#pragma once

#include <cstdint>

#include "select/selector.h"
#include "select/travel_graph.h"

namespace mcs::select {

class DpSelector final : public TaskSelector {
 public:
  /// `candidate_cap` must be in [1, 20] (the table is 2^cap * (cap+1)).
  explicit DpSelector(int candidate_cap = 14);

  const char* name() const override { return "dp"; }

  Selection select(const SelectionInstance& instance) const override;

  std::unique_ptr<TaskSelector> clone() const override {
    return std::make_unique<DpSelector>(candidate_cap_);
  }

  int candidate_cap() const { return candidate_cap_; }

  /// Exact up to the cap: larger instances are reward-pruned first.
  int exact_candidate_limit() const override { return candidate_cap_; }

 private:
  int candidate_cap_;

  // Scratch arena (see threading contract above). Mutable because select()
  // is logically const: the arena never carries state between calls, it
  // only keeps its capacity.
  mutable std::vector<Candidate> kept_;
  mutable std::vector<std::int32_t> kept_pool_index_;
  mutable TravelGraph graph_;
  mutable std::vector<Meters> dp_;
  mutable std::vector<std::int8_t> parent_;
  mutable std::vector<Money> subset_reward_;  // R(mask)
  mutable std::vector<Money> gain_in_;        // optimistic gain inside mask
  mutable std::vector<Money> net_gain_;       // per-candidate bound term
  mutable std::vector<TaskId> reversed_;
};

/// Drop candidates that cannot be reached within the budget at all, then, if
/// still above `cap`, keep the `cap` best by reward - cost(direct distance).
/// Exposed for tests and for other exact solvers.
SelectionInstance prune_candidates(const SelectionInstance& instance, int cap);

/// Allocation-free core of prune_candidates: writes the kept candidates
/// (original relative order) into `kept`, and their pool rows into
/// `kept_pool_index` when the instance has a pool (cleared otherwise).
void prune_candidates_into(const SelectionInstance& instance, int cap,
                           std::vector<Candidate>& kept,
                           std::vector<std::int32_t>& kept_pool_index);

}  // namespace mcs::select
