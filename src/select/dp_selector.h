// Optimal dynamic-programming task selection (paper §V-A).
//
// State: dp[mask][j] = length of the shortest simple path that starts at the
// user's location, visits exactly the candidate set `mask`, and ends at
// candidate j (Eq. 11). Transition: extend a set by one task (Eq. 12).
// After filling the table, every subset whose shortest path fits the travel
// budget is scored by profit R(mask) - cost(dp[mask]); the best feasible
// subset wins. Complexity O(m^2 * 2^m) time, O(m * 2^m) memory.
//
// Instances larger than `candidate_cap` are first pruned to the cap by a
// reward-minus-detour score (the paper's experiments use m = 20 total tasks,
// but per-user candidate sets shrink quickly as tasks complete; the cap
// keeps worst-case rounds tractable). With pruning the result is optimal
// w.r.t. the kept candidates.
#pragma once

#include "select/selector.h"

namespace mcs::select {

class DpSelector final : public TaskSelector {
 public:
  /// `candidate_cap` must be in [1, 20] (the table is 2^cap * (cap+1)).
  explicit DpSelector(int candidate_cap = 14);

  const char* name() const override { return "dp"; }

  Selection select(const SelectionInstance& instance) const override;

  int candidate_cap() const { return candidate_cap_; }

 private:
  int candidate_cap_;
};

/// Drop candidates that cannot be reached within the budget at all, then, if
/// still above `cap`, keep the `cap` best by reward - cost(direct distance).
/// Exposed for tests and for other exact solvers.
SelectionInstance prune_candidates(const SelectionInstance& instance, int cap);

}  // namespace mcs::select
