#include "select/candidate_pool.h"

#include "geo/distance.h"

namespace mcs::select {

CandidatePool::CandidatePool(std::vector<Candidate> candidates)
    : candidates_(std::move(candidates)) {
  const std::size_t m = candidates_.size();
  d_.assign(m * m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      const Meters d =
          geo::euclidean(candidates_[a].location, candidates_[b].location);
      d_[a * m + b] = d;
      d_[b * m + a] = d;
    }
  }
}

}  // namespace mcs::select
