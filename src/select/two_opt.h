// 2-opt path improvement for an open path with a fixed start: reversing a
// segment of the visiting order can only shorten the walk, never change the
// task set, so reward is preserved while cost (and time) drop.
#pragma once

#include "select/instance.h"

namespace mcs::select {

/// Repeatedly apply improving 2-opt segment reversals until a local optimum;
/// returns the improved selection (same tasks, possibly shorter path).
Selection improve_two_opt(const SelectionInstance& instance,
                          const Selection& s);

}  // namespace mcs::select
