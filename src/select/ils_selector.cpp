#include "select/ils_selector.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"
#include "common/rng.h"
#include "geo/distance.h"
#include "select/greedy_selector.h"
#include "select/two_opt.h"

namespace mcs::select {

namespace {

/// Insert every profitable unselected candidate at its cheapest feasible
/// position (best-insertion), then 2-opt the tour. Repeats until no
/// insertion improves the profit.
Selection improve(const SelectionInstance& inst, Selection s) {
  const Meters dist_budget = inst.distance_budget();
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_set<TaskId> in_tour(s.order.begin(), s.order.end());

    const Candidate* best_candidate = nullptr;
    std::size_t best_pos = 0;
    double best_gain = 1e-9;  // require a strictly positive improvement
    Meters best_detour = 0.0;

    for (const Candidate& c : inst.candidates) {
      if (in_tour.count(c.task)) continue;
      // Cheapest insertion position (0 = before the first stop).
      for (std::size_t pos = 0; pos <= s.order.size(); ++pos) {
        geo::Point prev = inst.start;
        if (pos > 0) {
          for (const Candidate& d : inst.candidates) {
            if (d.task == s.order[pos - 1]) prev = d.location;
          }
        }
        Meters detour = geo::euclidean(prev, c.location);
        if (pos < s.order.size()) {
          geo::Point next_pt{};
          for (const Candidate& d : inst.candidates) {
            if (d.task == s.order[pos]) next_pt = d.location;
          }
          detour += geo::euclidean(c.location, next_pt) -
                    geo::euclidean(prev, next_pt);
        }
        if (s.distance + detour > dist_budget) continue;
        const double gain = c.reward - inst.travel.cost_for(detour);
        if (gain > best_gain) {
          best_gain = gain;
          best_candidate = &c;
          best_pos = pos;
          best_detour = detour;
        }
      }
    }

    if (best_candidate != nullptr) {
      s.order.insert(s.order.begin() + static_cast<long>(best_pos),
                     best_candidate->task);
      s.distance += best_detour;
      s.reward += best_candidate->reward;
      s.cost = inst.travel.cost_for(s.distance);
      changed = true;
    }
  }
  if (s.order.size() >= 3) s = improve_two_opt(inst, s);
  return s;
}

/// Drop `count` random stops from the tour.
Selection perturb(const SelectionInstance& inst, Selection s, Rng& rng,
                  std::size_t count) {
  for (std::size_t i = 0; i < count && !s.order.empty(); ++i) {
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.order.size()) - 1));
    s.order.erase(s.order.begin() + static_cast<long>(victim));
  }
  return evaluate_order(inst, s.order);
}

}  // namespace

IlsSelector::IlsSelector(int iterations, std::uint64_t seed)
    : iterations_(iterations), seed_(seed) {
  MCS_CHECK(iterations >= 0, "iterations must be non-negative");
}

Selection IlsSelector::select(const SelectionInstance& instance) const {
  if (instance.candidates.empty()) return {};

  Selection incumbent =
      improve(instance, GreedySelector().select(instance));
  Rng rng(seed_ ^ (instance.candidates.size() * 0x9e3779b97f4a7c15ULL));

  for (int it = 0; it < iterations_; ++it) {
    const std::size_t kick =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    Selection trial = perturb(instance, incumbent, rng, kick);
    trial = improve(instance, std::move(trial));
    if (trial.profit() > incumbent.profit()) incumbent = std::move(trial);
  }
  // A tour with non-positive profit is never rational; fall back to empty.
  if (incumbent.profit() < 0.0) return {};
  return incumbent;
}

}  // namespace mcs::select
