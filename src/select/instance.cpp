#include "select/instance.h"

#include <unordered_set>

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::select {

Selection evaluate_order(const SelectionInstance& instance,
                         const std::vector<TaskId>& order) {
  Selection s;
  s.order = order;
  std::unordered_set<TaskId> seen;
  geo::Point at = instance.start;
  for (const TaskId id : order) {
    MCS_CHECK(seen.insert(id).second, "task repeated in selection order");
    const Candidate* found = nullptr;
    for (const Candidate& c : instance.candidates) {
      if (c.task == id) {
        found = &c;
        break;
      }
    }
    MCS_CHECK(found != nullptr, "selection references unknown candidate");
    s.distance += geo::euclidean(at, found->location);
    s.reward += found->reward;
    at = found->location;
  }
  s.cost = instance.travel.cost_for(s.distance);
  return s;
}

bool is_feasible(const SelectionInstance& instance, const Selection& s,
                 double tol) {
  return instance.travel.time_for(s.distance) <= instance.time_budget + tol;
}

}  // namespace mcs::select
