#include "select/greedy_selector.h"

#include <vector>

#include "geo/distance.h"
#include "select/two_opt.h"

namespace mcs::select {

GreedySelector::GreedySelector(bool improve_with_two_opt)
    : two_opt_(improve_with_two_opt) {}

Selection GreedySelector::select(const SelectionInstance& instance) const {
  const Meters dist_budget = instance.distance_budget();
  std::vector<bool> taken(instance.candidates.size(), false);

  Selection s;
  geo::Point at = instance.start;
  while (true) {
    // Pick the unvisited candidate with the best positive marginal profit
    // whose leg still fits in the remaining budget.
    std::size_t best = instance.candidates.size();
    Money best_marginal = 0.0;
    Meters best_leg = 0.0;
    for (std::size_t i = 0; i < instance.candidates.size(); ++i) {
      if (taken[i]) continue;
      const Candidate& c = instance.candidates[i];
      const Meters leg = geo::euclidean(at, c.location);
      if (s.distance + leg > dist_budget) continue;
      const Money marginal = c.reward - instance.travel.cost_for(leg);
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = i;
        best_leg = leg;
      }
    }
    if (best == instance.candidates.size()) break;  // no satisfying task

    taken[best] = true;
    const Candidate& c = instance.candidates[best];
    s.order.push_back(c.task);
    s.distance += best_leg;
    s.reward += c.reward;
    at = c.location;
  }
  s.cost = instance.travel.cost_for(s.distance);

  if (two_opt_ && s.order.size() >= 3) {
    s = improve_two_opt(instance, s);
  }
  return s;
}

}  // namespace mcs::select
