#include "select/greedy_selector.h"

#include <vector>

#include "geo/distance.h"
#include "select/candidate_pool.h"
#include "select/two_opt.h"

namespace mcs::select {

GreedySelector::GreedySelector(bool improve_with_two_opt)
    : two_opt_(improve_with_two_opt) {}

Selection GreedySelector::select(const SelectionInstance& instance) const {
  const Meters dist_budget = instance.distance_budget();
  std::vector<bool> taken(instance.candidates.size(), false);

  // Candidate-candidate legs come from the round's shared distance block
  // when the instance has one (bit-identical to recomputing; the pool holds
  // the same geo::euclidean values). Only the start legs are computed here.
  const CandidatePool* pool =
      instance.has_pool() ? instance.pool.get() : nullptr;
  constexpr std::size_t kAtStart = static_cast<std::size_t>(-1);

  Selection s;
  geo::Point at = instance.start;
  std::size_t at_index = kAtStart;  // candidate index of `at`, if any
  while (true) {
    // Pick the unvisited candidate with the best positive marginal profit
    // whose leg still fits in the remaining budget.
    std::size_t best = instance.candidates.size();
    Money best_marginal = 0.0;
    Meters best_leg = 0.0;
    for (std::size_t i = 0; i < instance.candidates.size(); ++i) {
      if (taken[i]) continue;
      const Candidate& c = instance.candidates[i];
      const Meters leg =
          (pool != nullptr && at_index != kAtStart)
              ? pool->dist(static_cast<std::size_t>(instance.pool_index[at_index]),
                           static_cast<std::size_t>(instance.pool_index[i]))
              : geo::euclidean(at, c.location);
      if (s.distance + leg > dist_budget) continue;
      const Money marginal = c.reward - instance.travel.cost_for(leg);
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = i;
        best_leg = leg;
      }
    }
    if (best == instance.candidates.size()) break;  // no satisfying task

    taken[best] = true;
    const Candidate& c = instance.candidates[best];
    s.order.push_back(c.task);
    s.distance += best_leg;
    s.reward += c.reward;
    at = c.location;
    at_index = best;
  }
  s.cost = instance.travel.cost_for(s.distance);

  if (two_opt_ && s.order.size() >= 3) {
    s = improve_two_opt(instance, s);
  }
  return s;
}

}  // namespace mcs::select
