// Saaty consistency checking for pairwise comparison matrices.
//
// CI = (lambda_max - n) / (n - 1); CR = CI / RI(n) where RI is the random
// consistency index. Matrices with CR <= 0.1 are conventionally accepted.
#pragma once

#include <cstddef>

#include "ahp/comparison_matrix.h"

namespace mcs::ahp {

/// Saaty's random consistency index for matrices of size n (n <= 15; larger
/// n reuses the n=15 value, which is standard practice). RI(1)=RI(2)=0.
double random_index(std::size_t n);

/// Consistency index from the principal eigenvalue.
double consistency_index(double lambda_max, std::size_t n);

/// Consistency ratio CI/RI; defined as 0 for n <= 2 (always consistent).
double consistency_ratio(double lambda_max, std::size_t n);

struct ConsistencyReport {
  double lambda_max = 0.0;
  double ci = 0.0;
  double cr = 0.0;
  bool acceptable = true;  // cr <= threshold
};

/// Full check: computes the eigenvector estimate of lambda_max and derives
/// CI/CR. `threshold` defaults to Saaty's 0.1.
ConsistencyReport check_consistency(const ComparisonMatrix& m,
                                    double threshold = 0.1);

}  // namespace mcs::ahp
