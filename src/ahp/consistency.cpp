#include "ahp/consistency.h"

#include "ahp/weights.h"
#include "common/error.h"

namespace mcs::ahp {

double random_index(std::size_t n) {
  // Saaty (1980) random index table, extended through n=15.
  static constexpr double kRi[] = {0.0,  0.0,  0.0,  0.58, 0.90, 1.12,
                                   1.24, 1.32, 1.41, 1.45, 1.49, 1.51,
                                   1.48, 1.56, 1.57, 1.59};
  MCS_CHECK(n >= 1, "random index undefined for n=0");
  if (n >= 15) return kRi[15];
  return kRi[n];
}

double consistency_index(double lambda_max, std::size_t n) {
  MCS_CHECK(n >= 1, "consistency index undefined for n=0");
  if (n <= 2) return 0.0;
  return (lambda_max - static_cast<double>(n)) / (static_cast<double>(n) - 1.0);
}

double consistency_ratio(double lambda_max, std::size_t n) {
  if (n <= 2) return 0.0;
  return consistency_index(lambda_max, n) / random_index(n);
}

ConsistencyReport check_consistency(const ComparisonMatrix& m,
                                    double threshold) {
  ConsistencyReport report;
  const EigenResult eig = eigenvector_weights(m);
  report.lambda_max = eig.lambda_max;
  report.ci = consistency_index(eig.lambda_max, m.size());
  report.cr = consistency_ratio(eig.lambda_max, m.size());
  report.acceptable = report.cr <= threshold;
  return report;
}

}  // namespace mcs::ahp
