#include "ahp/hierarchy.h"

#include "common/error.h"

namespace mcs::ahp {

Hierarchy::Hierarchy(std::string goal, std::vector<std::string> criteria,
                     ComparisonMatrix criteria_matrix, WeightMethod method)
    : goal_(std::move(goal)),
      criteria_(std::move(criteria)),
      criteria_matrix_(std::move(criteria_matrix)),
      method_(method),
      alt_matrices_(criteria_.size()) {
  MCS_CHECK(criteria_matrix_.size() == criteria_.size(),
            "criteria matrix size must match criteria count");
  weights_ = compute_weights(criteria_matrix_, method_);
}

void Hierarchy::set_alternative_matrix(std::size_t criterion,
                                       ComparisonMatrix m) {
  MCS_CHECK(criterion < criteria_.size(), "criterion index out of range");
  alt_matrices_[criterion] = std::move(m);
}

std::vector<double> Hierarchy::synthesize(
    const std::vector<std::vector<double>>& scores) const {
  MCS_CHECK(scores.size() == criteria_.size(),
            "need one score vector per criterion");
  std::size_t n_alt = 0;
  for (std::size_t c = 0; c < criteria_.size(); ++c) {
    const std::size_t rows = alt_matrices_[c].has_value()
                                 ? alt_matrices_[c]->size()
                                 : scores[c].size();
    if (c == 0) {
      n_alt = rows;
    } else {
      MCS_CHECK(rows == n_alt, "alternative count mismatch across criteria");
    }
  }
  std::vector<double> out(n_alt, 0.0);
  for (std::size_t c = 0; c < criteria_.size(); ++c) {
    std::vector<double> s;
    if (alt_matrices_[c].has_value()) {
      s = compute_weights(*alt_matrices_[c], method_);
    } else {
      s = scores[c];
    }
    for (std::size_t a = 0; a < n_alt; ++a) out[a] += weights_[c] * s[a];
  }
  return out;
}

std::vector<double> Hierarchy::synthesize_from_matrices() const {
  for (std::size_t c = 0; c < criteria_.size(); ++c) {
    MCS_CHECK(alt_matrices_[c].has_value(),
              "criterion '" + criteria_[c] + "' has no alternative matrix");
  }
  return synthesize(std::vector<std::vector<double>>(criteria_.size()));
}

}  // namespace mcs::ahp
