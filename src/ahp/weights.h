// Priority (weight) extraction from a pairwise comparison matrix.
//
// Three standard estimators are provided:
//  * row-average of the column-normalized matrix — Eq. 6 of the paper,
//  * geometric mean of rows (logarithmic least squares),
//  * principal right eigenvector via power iteration (Saaty's original).
// For a perfectly consistent matrix all three agree.
#pragma once

#include <string>
#include <vector>

#include "ahp/comparison_matrix.h"

namespace mcs::ahp {

enum class WeightMethod { kRowAverage, kGeometricMean, kEigenvector };

WeightMethod parse_weight_method(const std::string& name);
const char* weight_method_name(WeightMethod method);

/// Row averages of the column-normalized matrix (paper Eq. 6). Sums to 1.
std::vector<double> row_average_weights(const ComparisonMatrix& m);

/// Geometric mean of each row, normalized to sum to 1.
std::vector<double> geometric_mean_weights(const ComparisonMatrix& m);

/// Result of the power-iteration eigenvector computation.
struct EigenResult {
  std::vector<double> weights;   // normalized to sum to 1
  double lambda_max = 0.0;       // principal eigenvalue estimate
  int iterations = 0;            // iterations until convergence
  bool converged = false;
};

/// Principal eigenvector via power iteration. For positive reciprocal
/// matrices the principal eigenvalue is real and >= n, so the iteration
/// converges; `tol` bounds the L1 change between iterates.
EigenResult eigenvector_weights(const ComparisonMatrix& m, double tol = 1e-12,
                                int max_iterations = 10000);

/// Dispatch on method.
std::vector<double> compute_weights(const ComparisonMatrix& m,
                                    WeightMethod method);

/// Estimate lambda_max from an arbitrary weight vector as the mean of
/// (A*w)_i / w_i — needed for the consistency index when weights were
/// obtained by a non-eigenvector method.
double estimate_lambda_max(const ComparisonMatrix& m,
                           const std::vector<double>& weights);

}  // namespace mcs::ahp
