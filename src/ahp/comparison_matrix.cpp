#include "ahp/comparison_matrix.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mcs::ahp {

ComparisonMatrix::ComparisonMatrix(std::size_t n) : n_(n), a_(n * n, 1.0) {
  MCS_CHECK(n >= 1, "comparison matrix must have at least one criterion");
}

ComparisonMatrix ComparisonMatrix::from_upper_triangle(
    std::size_t n, const std::vector<double>& upper) {
  MCS_CHECK(upper.size() == n * (n - 1) / 2,
            "upper triangle size must be n(n-1)/2");
  ComparisonMatrix m(n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, upper[k++]);
    }
  }
  return m;
}

ComparisonMatrix ComparisonMatrix::from_rows(
    const std::vector<std::vector<double>>& rows) {
  const std::size_t n = rows.size();
  ComparisonMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    MCS_CHECK(rows[i].size() == n, "comparison matrix must be square");
    for (std::size_t j = 0; j < n; ++j) {
      MCS_CHECK(rows[i][j] > 0.0, "comparison matrix entries must be positive");
      m.cell(i, j) = rows[i][j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    MCS_CHECK(std::abs(m.cell(i, i) - 1.0) < 1e-9,
              "comparison matrix diagonal must be 1");
    for (std::size_t j = i + 1; j < n; ++j) {
      const double prod = m.cell(i, j) * m.cell(j, i);
      MCS_CHECK(std::abs(prod - 1.0) < 1e-6,
                "comparison matrix must be reciprocal");
    }
  }
  return m;
}

double ComparisonMatrix::at(std::size_t i, std::size_t j) const {
  MCS_CHECK(i < n_ && j < n_, "comparison matrix index out of range");
  return cell(i, j);
}

void ComparisonMatrix::set(std::size_t i, std::size_t j, double v) {
  MCS_CHECK(i < n_ && j < n_, "comparison matrix index out of range");
  MCS_CHECK(v > 0.0, "comparison matrix entries must be positive");
  if (i == j) {
    MCS_CHECK(std::abs(v - 1.0) < 1e-12, "diagonal entries must equal 1");
    return;
  }
  cell(i, j) = v;
  cell(j, i) = 1.0 / v;
}

std::vector<std::vector<double>> ComparisonMatrix::normalized() const {
  std::vector<double> colsum(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    for (std::size_t i = 0; i < n_; ++i) colsum[j] += cell(i, j);
  }
  std::vector<std::vector<double>> out(n_, std::vector<double>(n_));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) out[i][j] = cell(i, j) / colsum[j];
  }
  return out;
}

std::vector<double> ComparisonMatrix::multiply(
    const std::vector<double>& w) const {
  MCS_CHECK(w.size() == n_, "matrix-vector size mismatch");
  std::vector<double> out(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) out[i] += cell(i, j) * w[j];
  }
  return out;
}

bool ComparisonMatrix::on_saaty_scale(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      const double v = cell(i, j);
      const double big = v >= 1.0 ? v : 1.0 / v;
      bool ok = false;
      for (int s = 1; s <= 9; ++s) {
        if (std::abs(big - static_cast<double>(s)) <= tol) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
  }
  return true;
}

bool ComparisonMatrix::is_consistent(double rel_tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t k = 0; k < n_; ++k) {
        const double lhs = cell(i, k);
        const double rhs = cell(i, j) * cell(j, k);
        if (std::abs(lhs - rhs) > rel_tol * std::max(std::abs(lhs), 1.0)) {
          return false;
        }
      }
    }
  }
  return true;
}

std::string ComparisonMatrix::to_string(int decimals) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (j) os << "  ";
      os << format_fixed(cell(i, j), decimals);
    }
    os << '\n';
  }
  return os.str();
}

ComparisonMatrix aggregate_judgments(
    const std::vector<ComparisonMatrix>& experts) {
  MCS_CHECK(!experts.empty(), "need at least one expert judgment");
  const std::size_t n = experts.front().size();
  for (const ComparisonMatrix& m : experts) {
    MCS_CHECK(m.size() == n, "expert matrices must share one size");
  }
  ComparisonMatrix out(n);
  const double inv = 1.0 / static_cast<double>(experts.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double log_sum = 0.0;
      for (const ComparisonMatrix& m : experts) log_sum += std::log(m.at(i, j));
      out.set(i, j, std::exp(log_sum * inv));
    }
  }
  return out;
}

ComparisonMatrix consistent_matrix_from_weights(const std::vector<double>& w) {
  const std::size_t n = w.size();
  MCS_CHECK(n >= 1, "weights must be non-empty");
  ComparisonMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    MCS_CHECK(w[i] > 0.0, "weights must be positive");
    for (std::size_t j = i + 1; j < n; ++j) m.set(i, j, w[i] / w[j]);
  }
  return m;
}

}  // namespace mcs::ahp
