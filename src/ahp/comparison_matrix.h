// Pairwise comparison matrices for the Analytic Hierarchy Process (Saaty).
//
// Entry a(i,j) states how much more important criterion i is than criterion
// j on Saaty's 1..9 scale; the matrix is positive and reciprocal
// (a(j,i) = 1/a(i,j), a(i,i) = 1). Table I of the paper is one such matrix.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcs::ahp {

class ComparisonMatrix {
 public:
  /// Identity-consistent n x n matrix (all entries 1).
  explicit ComparisonMatrix(std::size_t n);

  /// Build from the strict upper triangle in row-major order
  /// (a12, a13, ..., a1n, a23, ...). The lower triangle is filled with
  /// reciprocals and the diagonal with 1. For n=3 this is {a12, a13, a23};
  /// Table I of the paper is {3, 5, 2}.
  static ComparisonMatrix from_upper_triangle(std::size_t n,
                                              const std::vector<double>& upper);

  /// Build from a full matrix; validates positivity and reciprocity
  /// (within a small relative tolerance).
  static ComparisonMatrix from_rows(
      const std::vector<std::vector<double>>& rows);

  std::size_t size() const { return n_; }
  double at(std::size_t i, std::size_t j) const;

  /// Set a(i,j) = v (and a(j,i) = 1/v). v must be positive; setting a
  /// diagonal entry to anything but 1 is an error.
  void set(std::size_t i, std::size_t j, double v);

  /// Column-normalized matrix (each entry divided by its column sum) —
  /// Table II of the paper.
  std::vector<std::vector<double>> normalized() const;

  /// Matrix-vector product A*w.
  std::vector<double> multiply(const std::vector<double>& w) const;

  /// True when every off-diagonal entry (or its reciprocal) lies on Saaty's
  /// discrete fundamental scale {1..9, 1/2..1/9} within tolerance.
  bool on_saaty_scale(double tol = 1e-9) const;

  /// True when a(i,k) == a(i,j)*a(j,k) for all i,j,k (perfect consistency).
  bool is_consistent(double rel_tol = 1e-9) const;

  std::string to_string(int decimals = 3) const;

 private:
  std::size_t n_;
  std::vector<double> a_;  // row-major n*n

  double& cell(std::size_t i, std::size_t j) { return a_[i * n_ + j]; }
  const double& cell(std::size_t i, std::size_t j) const {
    return a_[i * n_ + j];
  }
};

/// A consistent matrix built from a priority vector: a(i,j) = w_i / w_j.
/// Useful for testing (its principal eigenvector is exactly w).
ComparisonMatrix consistent_matrix_from_weights(const std::vector<double>& w);

/// Group decision making: combine several experts' judgments into one
/// matrix by the element-wise geometric mean — the standard AIJ
/// (aggregation of individual judgments) rule, the only aggregation that
/// preserves reciprocity. All matrices must share one size.
ComparisonMatrix aggregate_judgments(const std::vector<ComparisonMatrix>& experts);

}  // namespace mcs::ahp
