// Multi-level AHP hierarchy synthesis.
//
// The paper's hierarchy (Fig. 2) has one goal, three criteria and the tasks
// as alternatives. The criteria weights come from a pairwise comparison
// matrix; the per-criterion scores of the alternatives are *measured*
// quantities (the demand factors X1..X3), so the alternative level uses raw
// scores rather than pairwise judgments. This class supports both styles:
// each criterion either carries its own comparison matrix over the
// alternatives or receives a score vector at evaluation time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ahp/comparison_matrix.h"
#include "ahp/weights.h"

namespace mcs::ahp {

class Hierarchy {
 public:
  /// `criteria_matrix` compares the criteria pairwise (goal level).
  Hierarchy(std::string goal, std::vector<std::string> criteria,
            ComparisonMatrix criteria_matrix,
            WeightMethod method = WeightMethod::kRowAverage);

  const std::string& goal() const { return goal_; }
  std::size_t num_criteria() const { return criteria_.size(); }
  const std::vector<std::string>& criteria() const { return criteria_; }

  /// Criteria weights derived from the comparison matrix (sum to 1).
  const std::vector<double>& criteria_weights() const { return weights_; }

  /// Attach a pairwise comparison matrix over the alternatives for one
  /// criterion (classical AHP alternative scoring).
  void set_alternative_matrix(std::size_t criterion, ComparisonMatrix m);

  /// Synthesize alternative priorities from per-criterion score vectors.
  /// scores[c][a] is the (already scaled) score of alternative a under
  /// criterion c; criteria with an attached matrix ignore their row and use
  /// the matrix-derived priorities instead. Returns one priority per
  /// alternative: sum_c w_c * score[c][a].
  std::vector<double> synthesize(
      const std::vector<std::vector<double>>& scores) const;

  /// Classical synthesis using only attached alternative matrices; every
  /// criterion must have one, and all must agree on the alternative count.
  std::vector<double> synthesize_from_matrices() const;

 private:
  std::string goal_;
  std::vector<std::string> criteria_;
  ComparisonMatrix criteria_matrix_;
  WeightMethod method_;
  std::vector<double> weights_;
  std::vector<std::optional<ComparisonMatrix>> alt_matrices_;
};

}  // namespace mcs::ahp
