#include "ahp/weights.h"

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/strings.h"

namespace mcs::ahp {

namespace {
void normalize_sum(std::vector<double>& v) {
  const double s = std::accumulate(v.begin(), v.end(), 0.0);
  MCS_CHECK(s > 0.0, "weight vector sums to zero");
  for (double& x : v) x /= s;
}
}  // namespace

WeightMethod parse_weight_method(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "row-average" || lower == "row_average" || lower == "avg") {
    return WeightMethod::kRowAverage;
  }
  if (lower == "geometric-mean" || lower == "geometric_mean" ||
      lower == "geomean") {
    return WeightMethod::kGeometricMean;
  }
  if (lower == "eigenvector" || lower == "eigen" || lower == "power") {
    return WeightMethod::kEigenvector;
  }
  throw Error("unknown AHP weight method: " + name);
}

const char* weight_method_name(WeightMethod method) {
  switch (method) {
    case WeightMethod::kRowAverage: return "row-average";
    case WeightMethod::kGeometricMean: return "geometric-mean";
    case WeightMethod::kEigenvector: return "eigenvector";
  }
  return "?";
}

std::vector<double> row_average_weights(const ComparisonMatrix& m) {
  const auto norm = m.normalized();
  const std::size_t n = m.size();
  std::vector<double> w(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) w[i] += norm[i][j];
    w[i] /= static_cast<double>(n);
  }
  // Row averages of a column-normalized matrix already sum to 1; normalize
  // anyway to wash out floating-point drift.
  normalize_sum(w);
  return w;
}

std::vector<double> geometric_mean_weights(const ComparisonMatrix& m) {
  const std::size_t n = m.size();
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    double log_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) log_sum += std::log(m.at(i, j));
    w[i] = std::exp(log_sum / static_cast<double>(n));
  }
  normalize_sum(w);
  return w;
}

EigenResult eigenvector_weights(const ComparisonMatrix& m, double tol,
                                int max_iterations) {
  const std::size_t n = m.size();
  EigenResult result;
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  for (int it = 1; it <= max_iterations; ++it) {
    std::vector<double> next = m.multiply(w);
    normalize_sum(next);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::abs(next[i] - w[i]);
    w = std::move(next);
    result.iterations = it;
    if (delta < tol) {
      result.converged = true;
      break;
    }
  }
  result.lambda_max = estimate_lambda_max(m, w);
  result.weights = std::move(w);
  return result;
}

std::vector<double> compute_weights(const ComparisonMatrix& m,
                                    WeightMethod method) {
  switch (method) {
    case WeightMethod::kRowAverage: return row_average_weights(m);
    case WeightMethod::kGeometricMean: return geometric_mean_weights(m);
    case WeightMethod::kEigenvector: return eigenvector_weights(m).weights;
  }
  throw Error("unknown AHP weight method");
}

double estimate_lambda_max(const ComparisonMatrix& m,
                           const std::vector<double>& weights) {
  const auto aw = m.multiply(weights);
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MCS_CHECK(weights[i] > 0.0, "weights must be positive");
    sum += aw[i] / weights[i];
    ++used;
  }
  return sum / static_cast<double>(used);
}

}  // namespace mcs::ahp
