#include "exp/runner.h"

#include "common/error.h"
#include "common/thread_pool.h"

namespace mcs::exp {

namespace {

sim::Simulator build_simulator(const ExperimentConfig& cfg, std::uint64_t seed,
                               select::SelectorKind selector_kind,
                               const MechanismFactory* factory) {
  Rng rng(seed);
  model::World world = sim::generate_world(cfg.scenario, rng);

  Rng mech_rng = rng.split(0xfeed);
  std::unique_ptr<incentive::IncentiveMechanism> mechanism =
      factory != nullptr
          ? (*factory)(world, mech_rng)
          : incentive::make_mechanism(cfg.mechanism, world, cfg.mech_params,
                                      mech_rng);
  auto selector = select::make_selector(selector_kind, cfg.dp_candidate_cap);

  sim::SimulatorParams sp;
  sp.max_rounds = cfg.max_rounds;
  sp.platform_budget = cfg.mech_params.platform_budget;
  sp.order_seed = seed ^ 0x5bd1e995;
  // Fault draws mix the plan seed with order_seed (itself a pure function
  // of the repetition seed), so every repetition faults independently.
  sp.faults = cfg.faults;
  sp.plan_threads = cfg.plan_threads;
  sp.memo.enabled = cfg.plan_memo;
  return sim::Simulator(std::move(world), std::move(mechanism),
                        std::move(selector), sp,
                        sim::make_mobility(cfg.mobility, cfg.drift_sigma));
}

RepetitionResult run_one(const ExperimentConfig& cfg, std::uint64_t seed,
                         const MechanismFactory* factory) {
  sim::Simulator simulator =
      build_simulator(cfg, seed, cfg.selector, factory);
  RepetitionResult result;
  result.campaign = simulator.run();
  result.rounds = simulator.history();
  return result;
}

AggregateResult aggregate(const ExperimentConfig& cfg,
                          const MechanismFactory* factory) {
  MCS_CHECK(cfg.repetitions >= 1, "need at least one repetition");
  cfg.faults.validate();

  // Repetitions are fully independent (each a pure function of its seed), so
  // they fan out across workers into slots indexed by rep; the merge below
  // then runs on this thread in repetition order, making the aggregate
  // bit-identical to the serial threads=1 run whatever the thread count.
  //
  // A repetition that throws mcs::Error gets one same-seed retry (shielding
  // long sweeps from transient failures); a second failure marks the slot
  // failed and the sweep carries on — one bad repetition must not poison a
  // campaign-hours sweep.
  struct Slot {
    RepetitionResult result;
    bool ok = false;
    std::string error;
  };
  const auto reps = static_cast<std::size_t>(cfg.repetitions);
  std::vector<Slot> slots(reps);
  parallel_for_each(cfg.threads, reps, [&](std::size_t rep) {
    const std::uint64_t seed = repetition_seed(cfg, static_cast<int>(rep));
    Slot& slot = slots[rep];
    for (int attempt = 0; attempt < 2 && !slot.ok; ++attempt) {
      try {
        if (cfg.repetition_probe) {
          cfg.repetition_probe(static_cast<int>(rep), attempt);
        }
        slot.result = run_one(cfg, seed, factory);
        slot.ok = true;
      } catch (const Error& e) {
        slot.error = e.what();
      }
    }
  });

  AggregateResult agg;
  const auto rounds = static_cast<std::size_t>(cfg.max_rounds);
  agg.round_new_measurements.resize(rounds);
  agg.round_coverage.resize(rounds);
  agg.round_completeness.resize(rounds);
  agg.round_mean_profit.resize(rounds);
  agg.round_mean_reward.resize(rounds);

  for (std::size_t rep = 0; rep < reps; ++rep) {
    if (!slots[rep].ok) {
      agg.failed_reps.push_back({static_cast<int>(rep),
                                 repetition_seed(cfg, static_cast<int>(rep)),
                                 slots[rep].error});
      continue;
    }
    const RepetitionResult& r = slots[rep].result;
    agg.coverage.add(r.campaign.coverage_pct);
    agg.completeness.add(r.campaign.completeness_pct);
    agg.tasks_completed.add(r.campaign.tasks_completed_pct);
    agg.avg_measurements.add(r.campaign.avg_measurements);
    agg.measurement_variance.add(r.campaign.measurement_variance);
    agg.reward_per_measurement.add(r.campaign.avg_reward_per_measurement);
    agg.total_paid.add(r.campaign.total_paid);
    agg.overdraft.add(r.campaign.budget_overdraft);
    agg.reward_gini.add(r.campaign.reward_gini);
    agg.reward_jain.add(r.campaign.reward_jain);
    agg.active_fraction.add(r.campaign.active_user_fraction);
    agg.dropped_users.add(r.campaign.dropped_user_rounds);
    agg.abandoned_tours.add(r.campaign.abandoned_tours);
    agg.lost_measurements.add(r.campaign.lost_measurements);
    agg.wasted_travel.add(r.campaign.wasted_travel);

    double last_cov = 0.0;
    double last_compl = 0.0;
    for (std::size_t k = 0; k < rounds; ++k) {
      if (k < r.rounds.size()) {
        const sim::RoundMetrics& rm = r.rounds[k];
        last_cov = rm.coverage_pct;
        last_compl = rm.completeness_pct;
        agg.round_new_measurements[k].add(rm.new_measurements);
        agg.round_mean_profit[k].add(rm.mean_user_profit);
        agg.round_mean_reward[k].add(rm.mean_open_reward);
      } else {
        // Campaign closed early: no further activity (and no further
        // prices — a closed campaign is excluded from the mean-reward
        // aggregate rather than dragged in as a zero-price round; the
        // per-round RunningStats count tracks how many campaigns were
        // still live).
        agg.round_new_measurements[k].add(0.0);
        agg.round_mean_profit[k].add(0.0);
      }
      agg.round_coverage[k].add(last_cov);
      agg.round_completeness[k].add(last_compl);
    }
  }
  MCS_CHECK(agg.failed_reps.size() < reps,
            "every repetition failed (first error: " +
                (agg.failed_reps.empty() ? std::string("none")
                                         : agg.failed_reps.front().error) +
                ")");
  return agg;
}

}  // namespace

RepetitionResult run_repetition(const ExperimentConfig& cfg,
                                std::uint64_t seed) {
  return run_one(cfg, seed, nullptr);
}

std::uint64_t repetition_seed(const ExperimentConfig& cfg, int rep) {
  MCS_CHECK(rep >= 0, "repetition index must be non-negative");
  // Spread repetition seeds with SplitMix so neighboring reps do not share
  // low-bit structure.
  SplitMix64 sm(cfg.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(rep + 1));
  return sm.next();
}

AggregateResult run_experiment(const ExperimentConfig& cfg) {
  return aggregate(cfg, nullptr);
}

AggregateResult run_experiment_with(const ExperimentConfig& cfg,
                                    const MechanismFactory& factory) {
  return aggregate(cfg, &factory);
}

DpVsGreedyResult run_dp_vs_greedy(const ExperimentConfig& cfg, Round at_round) {
  MCS_CHECK(at_round >= 1 && at_round <= cfg.max_rounds,
            "comparison round out of range");
  MCS_CHECK(cfg.repetitions >= 1, "need at least one repetition");
  // Same fan-out/ordered-merge scheme as aggregate(): each repetition fills
  // its own slot of per-user profit pairs, then the stats accumulate in
  // repetition order. Selectors are built per repetition: the DP's scratch
  // arena makes select() non-reentrant, so workers must not share one
  // (DESIGN.md §7 threading contract).
  struct RepProfits {
    std::vector<Money> dp;
    std::vector<Money> greedy;
  };
  const auto reps = static_cast<std::size_t>(cfg.repetitions);
  std::vector<RepProfits> per_rep(reps);
  parallel_for_each(cfg.threads, reps, [&](std::size_t rep) {
    const auto dp = select::make_selector(select::SelectorKind::kDp,
                                          cfg.dp_candidate_cap);
    const auto greedy = select::make_selector(select::SelectorKind::kGreedy);
    const std::uint64_t seed = repetition_seed(cfg, static_cast<int>(rep));
    sim::Simulator simulator =
        build_simulator(cfg, seed, select::SelectorKind::kDp, nullptr);
    for (Round k = 1; k < at_round; ++k) simulator.step();
    RepProfits& slot = per_rep[rep];
    for (const select::SelectionInstance& inst : simulator.peek_instances()) {
      slot.dp.push_back(dp->select(inst).profit());
      slot.greedy.push_back(greedy->select(inst).profit());
    }
  });

  DpVsGreedyResult out;
  for (const RepProfits& r : per_rep) {
    for (std::size_t i = 0; i < r.dp.size(); ++i) {
      out.dp_profit.add(r.dp[i]);
      out.greedy_profit.add(r.greedy[i]);
      out.differences.push_back(r.dp[i] - r.greedy[i]);
    }
  }
  return out;
}

}  // namespace mcs::exp
