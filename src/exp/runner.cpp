#include "exp/runner.h"

#include "common/error.h"

namespace mcs::exp {

namespace {

sim::Simulator build_simulator(const ExperimentConfig& cfg, std::uint64_t seed,
                               select::SelectorKind selector_kind,
                               const MechanismFactory* factory) {
  Rng rng(seed);
  model::World world = sim::generate_world(cfg.scenario, rng);

  Rng mech_rng = rng.split(0xfeed);
  std::unique_ptr<incentive::IncentiveMechanism> mechanism =
      factory != nullptr
          ? (*factory)(world, mech_rng)
          : incentive::make_mechanism(cfg.mechanism, world, cfg.mech_params,
                                      mech_rng);
  auto selector = select::make_selector(selector_kind, cfg.dp_candidate_cap);

  sim::SimulatorParams sp;
  sp.max_rounds = cfg.max_rounds;
  sp.platform_budget = cfg.mech_params.platform_budget;
  sp.order_seed = seed ^ 0x5bd1e995;
  return sim::Simulator(std::move(world), std::move(mechanism),
                        std::move(selector), sp,
                        sim::make_mobility(cfg.mobility, cfg.drift_sigma));
}

std::uint64_t rep_seed(const ExperimentConfig& cfg, int rep) {
  // Spread repetition seeds with SplitMix so neighboring reps do not share
  // low-bit structure.
  SplitMix64 sm(cfg.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(rep + 1));
  return sm.next();
}

RepetitionResult run_one(const ExperimentConfig& cfg, std::uint64_t seed,
                         const MechanismFactory* factory) {
  sim::Simulator simulator =
      build_simulator(cfg, seed, cfg.selector, factory);
  RepetitionResult result;
  result.campaign = simulator.run();
  result.rounds = simulator.history();
  return result;
}

AggregateResult aggregate(const ExperimentConfig& cfg,
                          const MechanismFactory* factory) {
  MCS_CHECK(cfg.repetitions >= 1, "need at least one repetition");
  AggregateResult agg;
  const auto rounds = static_cast<std::size_t>(cfg.max_rounds);
  agg.round_new_measurements.resize(rounds);
  agg.round_coverage.resize(rounds);
  agg.round_completeness.resize(rounds);
  agg.round_mean_profit.resize(rounds);
  agg.round_mean_reward.resize(rounds);

  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    const RepetitionResult r = run_one(cfg, rep_seed(cfg, rep), factory);
    agg.coverage.add(r.campaign.coverage_pct);
    agg.completeness.add(r.campaign.completeness_pct);
    agg.tasks_completed.add(r.campaign.tasks_completed_pct);
    agg.avg_measurements.add(r.campaign.avg_measurements);
    agg.measurement_variance.add(r.campaign.measurement_variance);
    agg.reward_per_measurement.add(r.campaign.avg_reward_per_measurement);
    agg.total_paid.add(r.campaign.total_paid);
    agg.overdraft.add(r.campaign.budget_overdraft);
    agg.reward_gini.add(r.campaign.reward_gini);
    agg.reward_jain.add(r.campaign.reward_jain);
    agg.active_fraction.add(r.campaign.active_user_fraction);

    double last_cov = 0.0;
    double last_compl = 0.0;
    for (std::size_t k = 0; k < rounds; ++k) {
      if (k < r.rounds.size()) {
        const sim::RoundMetrics& rm = r.rounds[k];
        last_cov = rm.coverage_pct;
        last_compl = rm.completeness_pct;
        agg.round_new_measurements[k].add(rm.new_measurements);
        agg.round_mean_profit[k].add(rm.mean_user_profit);
        agg.round_mean_reward[k].add(rm.mean_open_reward);
      } else {
        // Campaign closed early: no further activity.
        agg.round_new_measurements[k].add(0.0);
        agg.round_mean_profit[k].add(0.0);
        agg.round_mean_reward[k].add(0.0);
      }
      agg.round_coverage[k].add(last_cov);
      agg.round_completeness[k].add(last_compl);
    }
  }
  return agg;
}

}  // namespace

RepetitionResult run_repetition(const ExperimentConfig& cfg,
                                std::uint64_t seed) {
  return run_one(cfg, seed, nullptr);
}

AggregateResult run_experiment(const ExperimentConfig& cfg) {
  return aggregate(cfg, nullptr);
}

AggregateResult run_experiment_with(const ExperimentConfig& cfg,
                                    const MechanismFactory& factory) {
  return aggregate(cfg, &factory);
}

DpVsGreedyResult run_dp_vs_greedy(const ExperimentConfig& cfg, Round at_round) {
  MCS_CHECK(at_round >= 1 && at_round <= cfg.max_rounds,
            "comparison round out of range");
  DpVsGreedyResult out;
  const auto dp = select::make_selector(select::SelectorKind::kDp,
                                        cfg.dp_candidate_cap);
  const auto greedy = select::make_selector(select::SelectorKind::kGreedy);
  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = rep_seed(cfg, rep);
    sim::Simulator simulator =
        build_simulator(cfg, seed, select::SelectorKind::kDp, nullptr);
    for (Round k = 1; k < at_round; ++k) simulator.step();
    for (const select::SelectionInstance& inst : simulator.peek_instances()) {
      const Money dp_profit = dp->select(inst).profit();
      const Money gr_profit = greedy->select(inst).profit();
      out.dp_profit.add(dp_profit);
      out.greedy_profit.add(gr_profit);
      out.differences.push_back(dp_profit - gr_profit);
    }
  }
  return out;
}

}  // namespace mcs::exp
