#include "exp/runner.h"

#include <sys/stat.h>

#include <cstdio>
#include <optional>

#include "common/error.h"
#include "common/thread_pool.h"
#include "sim/checkpoint.h"
#include "sim/serialize.h"

namespace mcs::exp {

namespace {

sim::Simulator build_simulator(const ExperimentConfig& cfg, std::uint64_t seed,
                               select::SelectorKind selector_kind,
                               const MechanismFactory* factory) {
  Rng rng(seed);
  model::World world = sim::generate_world(cfg.scenario, rng);

  Rng mech_rng = rng.split(0xfeed);
  std::unique_ptr<incentive::IncentiveMechanism> mechanism =
      factory != nullptr
          ? (*factory)(world, mech_rng)
          : incentive::make_mechanism(cfg.mechanism, world, cfg.mech_params,
                                      mech_rng);
  auto selector = select::make_selector(selector_kind, cfg.dp_candidate_cap);

  sim::SimulatorParams sp;
  sp.max_rounds = cfg.max_rounds;
  sp.platform_budget = cfg.mech_params.platform_budget;
  sp.order_seed = seed ^ 0x5bd1e995;
  // Fault draws mix the plan seed with order_seed (itself a pure function
  // of the repetition seed), so every repetition faults independently.
  sp.faults = cfg.faults;
  sp.plan_threads = cfg.plan_threads;
  sp.reprice_threads = cfg.reprice_threads;
  sp.shards = cfg.shards;
  sp.phase_timers = cfg.phase_timers;
  sp.legacy_commit = cfg.legacy_commit;
  sp.memo.enabled = cfg.plan_memo;
  return sim::Simulator(std::move(world), std::move(mechanism),
                        std::move(selector), sp,
                        sim::make_mobility(cfg.mobility, cfg.drift_sigma));
}

/// Rebuild a simulator for repetition `seed` from a checkpoint. Replays the
/// construction-time draws exactly as build_simulator does — world
/// generation consumes `rng` and the mechanism stream splits from the
/// post-generation state — so a mechanism whose constructor draws (fixed's
/// levels) receives the same rng the original did; restore_state then
/// overlays the serialized pricing state. The freshly generated world is
/// only used for mechanism construction (it equals the campaign's initial
/// world); the simulator itself resumes from the checkpointed snapshot.
sim::Simulator resume_simulator(const ExperimentConfig& cfg,
                                std::uint64_t seed,
                                const MechanismFactory* factory,
                                const sim::CampaignCheckpoint& ckpt) {
  Rng rng(seed);
  model::World fresh = sim::generate_world(cfg.scenario, rng);
  Rng mech_rng = rng.split(0xfeed);
  std::unique_ptr<incentive::IncentiveMechanism> mechanism =
      factory != nullptr
          ? (*factory)(fresh, mech_rng)
          : incentive::make_mechanism(cfg.mechanism, fresh, cfg.mech_params,
                                      mech_rng);
  auto selector = select::make_selector(cfg.selector, cfg.dp_candidate_cap);
  return sim::Simulator::resume(
      ckpt, std::move(mechanism), std::move(selector),
      sim::make_mobility(cfg.mobility, cfg.drift_sigma));
}

/// Identity of one repetition under one experiment config, stamped into
/// every checkpoint it writes. Sweeps reuse a single --checkpoint-dir across
/// sweep points, so <dir>/rep-<n>/ can hold leftover generations from a
/// *different* experiment (other user count, budget, seed, ...) that would
/// decode fine and pass the simulator's name checks — resuming one would
/// graft another campaign's trajectory into this aggregate. Everything that
/// determines the campaign's trajectory goes into the fingerprint;
/// bit-identity-neutral knobs (threads, plan_threads, memo, the shard
/// *count*) stay out so a legitimate crash recovery at a different thread
/// count still resumes; sharded on/off is stamped (stochastic mobility
/// draws differ between the two loops). A
/// custom MechanismFactory is opaque and fingerprints as "factory": callers
/// sweeping *across* factories must use distinct checkpoint dirs.
Json repetition_provenance(const ExperimentConfig& cfg, std::uint64_t seed,
                           const MechanismFactory* factory) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(seed));
  Json::Object o;
  o["seed"] = Json(std::string(hex));
  o["scenario"] = sim::scenario_to_json(cfg.scenario);
  o["mechanism"] =
      Json(factory != nullptr ? std::string("factory")
                              : std::to_string(static_cast<int>(cfg.mechanism)));
  Json::Object mp;
  mp["platform_budget"] = Json(cfg.mech_params.platform_budget);
  mp["lambda"] = Json(cfg.mech_params.lambda);
  mp["demand_levels"] = Json(cfg.mech_params.demand_levels);
  mp["steered_rc"] = Json(cfg.mech_params.steered_rc);
  mp["steered_mu"] = Json(cfg.mech_params.steered_mu);
  mp["steered_delta"] = Json(cfg.mech_params.steered_delta);
  mp["participation_target"] = Json(cfg.mech_params.participation_target);
  mp["participation_band"] = Json(cfg.mech_params.participation_band);
  o["mech_params"] = Json(std::move(mp));
  o["selector"] = Json(static_cast<int>(cfg.selector));
  o["dp_candidate_cap"] = Json(cfg.dp_candidate_cap);
  o["mobility"] = Json(static_cast<int>(cfg.mobility));
  o["drift_sigma"] = Json(cfg.drift_sigma);
  o["max_rounds"] = Json(cfg.max_rounds);
  // Sharded on/off is part of the trajectory under stochastic mobility
  // (per-user substreams vs the serial draw stream); the shard *count* is
  // bit-identity-neutral and stays out, like plan_threads and
  // reprice_threads.
  o["sharded"] = Json(cfg.shards != 0);
  Json::Object f;
  f["dropout_prob"] = Json(cfg.faults.dropout_prob);
  f["abandon_prob"] = Json(cfg.faults.abandon_prob);
  f["upload_loss_prob"] = Json(cfg.faults.upload_loss_prob);
  f["corruption_prob"] = Json(cfg.faults.corruption_prob);
  f["corruption_noise"] = Json(cfg.faults.corruption_noise);
  f["withdraw_prob"] = Json(cfg.faults.withdraw_prob);
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(cfg.faults.seed));
  f["seed"] = Json(std::string(hex));
  o["faults"] = Json(std::move(f));
  return Json(std::move(o));
}

void mkdir_ignore_exists(const std::string& path) {
  // Failures other than EEXIST surface later as the writer's opendir error,
  // with a better message than mkdir's would be.
  ::mkdir(path.c_str(), 0755);
}

/// One repetition attempt. `rep` >= 0 enables the per-rep checkpoint
/// directory when the config asks for checkpointing; run_repetition passes
/// -1 (a standalone replay has no rep slot to resume).
RepetitionResult run_one(const ExperimentConfig& cfg, std::uint64_t seed,
                         const MechanismFactory* factory, int rep) {
  const bool checkpointing = cfg.checkpoint_every > 0 &&
                             !cfg.checkpoint_dir.empty() && rep >= 0;
  std::optional<sim::Simulator> simulator;
  RepetitionResult result;
  if (!checkpointing) {
    simulator.emplace(build_simulator(cfg, seed, cfg.selector, factory));
    result.campaign = simulator->run();
    result.rounds = simulator->history();
    return result;
  }

  const std::string dir =
      cfg.checkpoint_dir + "/rep-" + std::to_string(rep);
  mkdir_ignore_exists(cfg.checkpoint_dir);
  mkdir_ignore_exists(dir);
  const Json provenance = repetition_provenance(cfg, seed, factory);
  if (sim::has_checkpoint(dir)) {
    try {
      const sim::LoadedCheckpoint loaded = sim::load_latest_checkpoint(dir);
      // A provenance mismatch is not corruption — the directory holds the
      // leftovers of a different sweep point, seed or config. Start fresh;
      // this run's generations supersede them.
      if (loaded.checkpoint.provenance.dump() == provenance.dump()) {
        simulator.emplace(
            resume_simulator(cfg, seed, factory, loaded.checkpoint));
      }
    } catch (const Error&) {
      // Every generation corrupt: degrade to the full same-seed rerun.
    }
  }
  if (!simulator) {
    simulator.emplace(build_simulator(cfg, seed, cfg.selector, factory));
  }

  sim::CheckpointWriter writer(dir);
  while (simulator->current_round() < cfg.max_rounds &&
         !simulator->all_tasks_closed()) {
    simulator->step();
    const Round done = simulator->current_round();
    if (done % cfg.checkpoint_every == 0 && done < cfg.max_rounds) {
      sim::CampaignCheckpoint ckpt = simulator->checkpoint();
      ckpt.scenario = sim::scenario_to_json(cfg.scenario);
      ckpt.provenance = provenance;
      writer.write(ckpt);
    }
  }
  result.campaign = simulator->summary();
  result.rounds = simulator->history();
  return result;
}

AggregateResult aggregate(const ExperimentConfig& cfg,
                          const MechanismFactory* factory) {
  MCS_CHECK(cfg.repetitions >= 1, "need at least one repetition");
  MCS_CHECK(cfg.max_attempts >= 1, "need at least one attempt per repetition");
  cfg.faults.validate();

  // Repetitions are fully independent (each a pure function of its seed), so
  // they fan out across workers into slots indexed by rep; the merge below
  // then runs on this thread in repetition order, making the aggregate
  // bit-identical to the serial threads=1 run whatever the thread count.
  //
  // A repetition that throws mcs::Error gets same-seed retries up to
  // cfg.max_attempts (shielding long sweeps from transient failures; with
  // checkpointing on, a retry resumes from the last good generation);
  // exhausting the budget marks the slot failed and the sweep carries on —
  // one bad repetition must not poison a campaign-hours sweep.
  struct Slot {
    RepetitionResult result;
    bool ok = false;
    std::string error;
    int attempts = 0;
  };
  const auto reps = static_cast<std::size_t>(cfg.repetitions);
  std::vector<Slot> slots(reps);
  parallel_for_each(cfg.threads, reps, [&](std::size_t rep) {
    const std::uint64_t seed = repetition_seed(cfg, static_cast<int>(rep));
    Slot& slot = slots[rep];
    for (int attempt = 0; attempt < cfg.max_attempts && !slot.ok; ++attempt) {
      if (attempt > 0 && cfg.retry_backoff) {
        cfg.retry_backoff(static_cast<int>(rep), attempt);
      }
      slot.attempts = attempt + 1;
      try {
        if (cfg.repetition_probe) {
          cfg.repetition_probe(static_cast<int>(rep), attempt);
        }
        slot.result = run_one(cfg, seed, factory, static_cast<int>(rep));
        slot.ok = true;
      } catch (const Error& e) {
        slot.error = e.what();
      }
    }
  });

  AggregateResult agg;
  const auto rounds = static_cast<std::size_t>(cfg.max_rounds);
  agg.round_new_measurements.resize(rounds);
  agg.round_coverage.resize(rounds);
  agg.round_completeness.resize(rounds);
  agg.round_mean_profit.resize(rounds);
  agg.round_mean_reward.resize(rounds);

  agg.rep_attempts.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    agg.rep_attempts.push_back(slots[rep].attempts);
    if (!slots[rep].ok) {
      agg.failed_reps.push_back({static_cast<int>(rep),
                                 repetition_seed(cfg, static_cast<int>(rep)),
                                 slots[rep].error});
      continue;
    }
    const RepetitionResult& r = slots[rep].result;
    agg.coverage.add(r.campaign.coverage_pct);
    agg.completeness.add(r.campaign.completeness_pct);
    agg.tasks_completed.add(r.campaign.tasks_completed_pct);
    agg.avg_measurements.add(r.campaign.avg_measurements);
    agg.measurement_variance.add(r.campaign.measurement_variance);
    agg.reward_per_measurement.add(r.campaign.avg_reward_per_measurement);
    agg.total_paid.add(r.campaign.total_paid);
    agg.overdraft.add(r.campaign.budget_overdraft);
    agg.reward_gini.add(r.campaign.reward_gini);
    agg.reward_jain.add(r.campaign.reward_jain);
    agg.active_fraction.add(r.campaign.active_user_fraction);
    agg.dropped_users.add(r.campaign.dropped_user_rounds);
    agg.abandoned_tours.add(r.campaign.abandoned_tours);
    agg.lost_measurements.add(r.campaign.lost_measurements);
    agg.wasted_travel.add(r.campaign.wasted_travel);

    double last_cov = 0.0;
    double last_compl = 0.0;
    for (std::size_t k = 0; k < rounds; ++k) {
      if (k < r.rounds.size()) {
        const sim::RoundMetrics& rm = r.rounds[k];
        last_cov = rm.coverage_pct;
        last_compl = rm.completeness_pct;
        agg.round_new_measurements[k].add(rm.new_measurements);
        agg.round_mean_profit[k].add(rm.mean_user_profit);
        agg.round_mean_reward[k].add(rm.mean_open_reward);
      } else {
        // Campaign closed early: no further activity (and no further
        // prices — a closed campaign is excluded from the mean-reward
        // aggregate rather than dragged in as a zero-price round; the
        // per-round RunningStats count tracks how many campaigns were
        // still live).
        agg.round_new_measurements[k].add(0.0);
        agg.round_mean_profit[k].add(0.0);
      }
      agg.round_coverage[k].add(last_cov);
      agg.round_completeness[k].add(last_compl);
    }
  }
  MCS_CHECK(agg.failed_reps.size() < reps,
            "every repetition failed (first error: " +
                (agg.failed_reps.empty() ? std::string("none")
                                         : agg.failed_reps.front().error) +
                ")");
  return agg;
}

}  // namespace

RepetitionResult run_repetition(const ExperimentConfig& cfg,
                                std::uint64_t seed) {
  return run_one(cfg, seed, nullptr, /*rep=*/-1);
}

std::uint64_t repetition_seed(const ExperimentConfig& cfg, int rep) {
  MCS_CHECK(rep >= 0, "repetition index must be non-negative");
  // Spread repetition seeds with SplitMix so neighboring reps do not share
  // low-bit structure.
  SplitMix64 sm(cfg.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(rep + 1));
  return sm.next();
}

AggregateResult run_experiment(const ExperimentConfig& cfg) {
  return aggregate(cfg, nullptr);
}

AggregateResult run_experiment_with(const ExperimentConfig& cfg,
                                    const MechanismFactory& factory) {
  return aggregate(cfg, &factory);
}

DpVsGreedyResult run_dp_vs_greedy(const ExperimentConfig& cfg, Round at_round) {
  MCS_CHECK(at_round >= 1 && at_round <= cfg.max_rounds,
            "comparison round out of range");
  MCS_CHECK(cfg.repetitions >= 1, "need at least one repetition");
  // Same fan-out/ordered-merge scheme as aggregate(): each repetition fills
  // its own slot of per-user profit pairs, then the stats accumulate in
  // repetition order. Selectors are built per repetition: the DP's scratch
  // arena makes select() non-reentrant, so workers must not share one
  // (DESIGN.md §7 threading contract).
  struct RepProfits {
    std::vector<Money> dp;
    std::vector<Money> greedy;
  };
  const auto reps = static_cast<std::size_t>(cfg.repetitions);
  std::vector<RepProfits> per_rep(reps);
  parallel_for_each(cfg.threads, reps, [&](std::size_t rep) {
    const auto dp = select::make_selector(select::SelectorKind::kDp,
                                          cfg.dp_candidate_cap);
    const auto greedy = select::make_selector(select::SelectorKind::kGreedy);
    const std::uint64_t seed = repetition_seed(cfg, static_cast<int>(rep));
    sim::Simulator simulator =
        build_simulator(cfg, seed, select::SelectorKind::kDp, nullptr);
    for (Round k = 1; k < at_round; ++k) simulator.step();
    RepProfits& slot = per_rep[rep];
    for (const select::SelectionInstance& inst : simulator.peek_instances()) {
      slot.dp.push_back(dp->select(inst).profit());
      slot.greedy.push_back(greedy->select(inst).profit());
    }
  });

  DpVsGreedyResult out;
  for (const RepProfits& r : per_rep) {
    for (std::size_t i = 0; i < r.dp.size(); ++i) {
      out.dp_profit.add(r.dp[i]);
      out.greedy_profit.add(r.greedy[i]);
      out.differences.push_back(r.dp[i] - r.greedy[i]);
    }
  }
  return out;
}

}  // namespace mcs::exp
