// Shared plumbing for the per-figure benchmark binaries: flag parsing into
// an ExperimentConfig, user-count sweeps across mechanisms, and table
// rendering that mirrors the series of the paper's figures.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "exp/runner.h"

namespace mcs::exp {

/// Read every experiment knob from --key=value flags (all optional; defaults
/// are the paper's §VI values). Recognized keys include: users, tasks,
/// area, required, deadline-min/max, budget, lambda, levels, radius,
/// user-budget-min/max, speed, cost-per-meter, mechanism, selector, dp-cap,
/// rounds, reps, seed, threads (0 = one worker per hardware thread; the
/// MCS_THREADS environment variable supplies the default when the flag is
/// absent — results are bit-identical whatever the value), plan-threads
/// (per-simulator planning workers, default 1/MCS_PLAN_THREADS; likewise
/// bit-identical at any value), and the
/// fault-injection rates dropout, abandon, loss, corrupt, corrupt-noise,
/// withdraw, fault-seed (see sim/faults.h; all default to zero faults).
ExperimentConfig experiment_from_config(const Config& cfg);

/// The "users 40..140 step 20" x-axis of Figs. 6–9, overridable with
/// --users-from/--users-to/--users-step.
std::vector<int> user_counts_from_config(const Config& cfg);

/// All three mechanisms, in the paper's plotting order.
std::vector<incentive::MechanismKind> all_mechanisms();

/// Result grid of a user-count sweep: result(mechanism index, user index).
class UserSweep {
 public:
  UserSweep(ExperimentConfig base, std::vector<int> user_counts,
            std::vector<incentive::MechanismKind> mechanisms);

  /// Runs every (mechanism, user-count) cell. Deterministic: the same
  /// repetition seeds (hence the same worlds) are used in every column.
  void run();

  const std::vector<int>& user_counts() const { return user_counts_; }
  const std::vector<incentive::MechanismKind>& mechanisms() const {
    return mechanisms_;
  }
  const AggregateResult& result(std::size_t mech, std::size_t user_idx) const;

  /// Render one metric as a table: rows = user counts, one column per
  /// mechanism.
  TextTable table(
      const std::function<double(const AggregateResult&)>& metric,
      const std::string& x_label = "users", int decimals = 2) const;

 private:
  ExperimentConfig base_;
  std::vector<int> user_counts_;
  std::vector<incentive::MechanismKind> mechanisms_;
  std::vector<std::vector<AggregateResult>> results_;  // [mech][user]
  bool ran_ = false;
};

/// Round-series comparison at a fixed user count (Figs. 6b/7b/8b): rows =
/// rounds 1..max_rounds, one column per mechanism.
class RoundSeries {
 public:
  RoundSeries(ExperimentConfig base,
              std::vector<incentive::MechanismKind> mechanisms);

  void run();

  const AggregateResult& result(std::size_t mech) const;

  /// metric(agg, round_index) -> value plotted for that round.
  TextTable table(const std::function<double(const AggregateResult&,
                                             std::size_t)>& metric,
                  Round first_round = 1, int decimals = 2) const;

 private:
  ExperimentConfig base_;
  std::vector<incentive::MechanismKind> mechanisms_;
  std::vector<AggregateResult> results_;
  bool ran_ = false;
};

/// Echo the effective experiment setup (one line per knob) so recorded bench
/// output is self-describing.
void print_experiment_header(const ExperimentConfig& cfg,
                             const std::string& title);

/// Warn on unknown flags (typos) after a bench finished reading its config.
void warn_unconsumed(const Config& cfg);

/// When the user passed --csv-dir=<dir>, write `table` to <dir>/<name>.csv
/// (the directory must exist). No-op otherwise.
void maybe_dump_csv(const Config& cfg, const std::string& name,
                    const TextTable& table);

}  // namespace mcs::exp
