#include "exp/figures.h"

#include <cstdlib>
#include <iostream>

#include "common/error.h"
#include "common/strings.h"

namespace mcs::exp {

namespace {

// Default worker count when no --threads flag is given: the MCS_THREADS
// environment variable if set, otherwise 0 (one worker per hardware
// thread). Thread count never changes results — aggregates are
// bit-identical to the serial run — so auto-parallel is a safe default.
int threads_default_from_env() {
  const char* env = std::getenv("MCS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed < 0 ? 0 : static_cast<int>(parsed);
}

// Default plan-thread count when no --plan-threads flag is given: the
// MCS_PLAN_THREADS environment variable if set, otherwise 1 (serial
// planning — repetition fan-out already saturates the cores for the stock
// experiment panels).
int plan_threads_default_from_env() {
  const char* env = std::getenv("MCS_PLAN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed < 0 ? 1 : static_cast<int>(parsed);
}

// Default reprice-thread count when no --reprice-threads flag is given:
// the MCS_REPRICE_THREADS environment variable if set, otherwise 1 (serial
// repricing — same reasoning as plan threads).
int reprice_threads_default_from_env() {
  const char* env = std::getenv("MCS_REPRICE_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed < 0 ? 1 : static_cast<int>(parsed);
}

// Default for --plan-memo: the MCS_PLAN_MEMO environment variable ("1"
// enables), otherwise off. Memoization never changes results; it is off by
// default only because the stock panels' continuous user homes make hits
// impossible, so the table would be pure overhead.
bool plan_memo_default_from_env() {
  const char* env = std::getenv("MCS_PLAN_MEMO");
  return env != nullptr && *env == '1';
}

// Default for --shards: the MCS_SHARDS environment variable ("auto" = one
// worker per hardware thread), otherwise 0 (the legacy round loop).
std::string shards_default_from_env() {
  const char* env = std::getenv("MCS_SHARDS");
  return env == nullptr ? std::string("0") : std::string(env);
}

int parse_shards(const std::string& s) {
  if (s == "auto") return sim::SimulatorParams::kAutoShards;
  const long parsed = std::strtol(s.c_str(), nullptr, 10);
  MCS_CHECK(parsed >= -1,
            "--shards must be 'auto', -1 (auto), 0 (legacy) or a worker "
            "count");
  return static_cast<int>(parsed);
}

}  // namespace

ExperimentConfig experiment_from_config(const Config& cfg) {
  ExperimentConfig e;
  sim::ScenarioParams& s = e.scenario;
  s.area_side = cfg.get_double("area", s.area_side);
  s.num_tasks = static_cast<int>(cfg.get_int("tasks", s.num_tasks));
  s.num_users = static_cast<int>(cfg.get_int("users", s.num_users));
  s.required_measurements =
      static_cast<int>(cfg.get_int("required", s.required_measurements));
  s.required_spread =
      static_cast<int>(cfg.get_int("required-spread", s.required_spread));
  s.deadline_min = static_cast<Round>(cfg.get_int("deadline-min", s.deadline_min));
  s.deadline_max = static_cast<Round>(cfg.get_int("deadline-max", s.deadline_max));
  s.speed_mps = cfg.get_double("speed", s.speed_mps);
  s.cost_per_meter = cfg.get_double("cost-per-meter", s.cost_per_meter);
  s.user_budget_min_s = cfg.get_double("user-budget-min", s.user_budget_min_s);
  s.user_budget_max_s = cfg.get_double("user-budget-max", s.user_budget_max_s);
  s.neighbor_radius = cfg.get_double("radius", s.neighbor_radius);
  s.home_sites = static_cast<int>(cfg.get_int("home-sites", s.home_sites));
  s.user_budget_quantum_s =
      cfg.get_double("budget-quantum", s.user_budget_quantum_s);

  incentive::MechanismParams& m = e.mech_params;
  m.platform_budget = cfg.get_double("budget", m.platform_budget);
  m.lambda = cfg.get_double("lambda", m.lambda);
  m.demand_levels = static_cast<int>(cfg.get_int("levels", m.demand_levels));
  m.steered_rc = cfg.get_double("steered-rc", m.steered_rc);
  m.steered_mu = cfg.get_double("steered-mu", m.steered_mu);
  m.steered_delta = cfg.get_double("steered-delta", m.steered_delta);

  e.mechanism =
      incentive::parse_mechanism(cfg.get_string("mechanism", "on-demand"));
  e.selector = select::parse_selector(
      cfg.get_string("selector", select::selector_name(e.selector)));
  e.dp_candidate_cap =
      static_cast<int>(cfg.get_int("dp-cap", e.dp_candidate_cap));
  e.mobility = sim::parse_mobility(
      cfg.get_string("mobility", sim::mobility_name(e.mobility)));
  e.drift_sigma = cfg.get_double("drift-sigma", e.drift_sigma);
  e.max_rounds = static_cast<Round>(cfg.get_int("rounds", e.max_rounds));
  e.repetitions = static_cast<int>(cfg.get_int("reps", e.repetitions));
  e.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  sim::FaultPlan& f = e.faults;
  f.dropout_prob = cfg.get_double("dropout", f.dropout_prob);
  f.abandon_prob = cfg.get_double("abandon", f.abandon_prob);
  f.upload_loss_prob = cfg.get_double("loss", f.upload_loss_prob);
  f.corruption_prob = cfg.get_double("corrupt", f.corruption_prob);
  f.corruption_noise = cfg.get_double("corrupt-noise", f.corruption_noise);
  f.withdraw_prob = cfg.get_double("withdraw", f.withdraw_prob);
  f.seed = static_cast<std::uint64_t>(cfg.get_int("fault-seed", 0));
  f.validate();

  e.threads =
      static_cast<int>(cfg.get_int("threads", threads_default_from_env()));
  MCS_CHECK(e.threads >= 0, "--threads must be >= 0 (0 = all cores)");
  e.plan_threads = static_cast<int>(
      cfg.get_int("plan-threads", plan_threads_default_from_env()));
  MCS_CHECK(e.plan_threads >= 0,
            "--plan-threads must be >= 0 (0 = all cores, 1 = serial)");
  e.reprice_threads = static_cast<int>(
      cfg.get_int("reprice-threads", reprice_threads_default_from_env()));
  MCS_CHECK(e.reprice_threads >= 0,
            "--reprice-threads must be >= 0 (0 = all cores, 1 = serial)");
  e.plan_memo = cfg.get_bool("plan-memo", plan_memo_default_from_env());
  e.shards = parse_shards(cfg.get_string("shards", shards_default_from_env()));
  e.phase_timers = cfg.get_bool("phase-timers", false);
  e.max_attempts = static_cast<int>(cfg.get_int("max-attempts", e.max_attempts));
  MCS_CHECK(e.max_attempts >= 1, "--max-attempts must be >= 1");
  e.checkpoint_every =
      static_cast<Round>(cfg.get_int("checkpoint-every", e.checkpoint_every));
  MCS_CHECK(e.checkpoint_every >= 0,
            "--checkpoint-every must be >= 0 (0 = off)");
  e.checkpoint_dir = cfg.get_string("checkpoint-dir", e.checkpoint_dir);
  MCS_CHECK(e.checkpoint_every == 0 || !e.checkpoint_dir.empty(),
            "--checkpoint-every needs --checkpoint-dir");
  return e;
}

std::vector<int> user_counts_from_config(const Config& cfg) {
  const int from = static_cast<int>(cfg.get_int("users-from", 40));
  const int to = static_cast<int>(cfg.get_int("users-to", 140));
  const int step = static_cast<int>(cfg.get_int("users-step", 20));
  MCS_CHECK(from >= 1 && to >= from && step >= 1, "bad user-count sweep");
  std::vector<int> out;
  for (int n = from; n <= to; n += step) out.push_back(n);
  return out;
}

std::vector<incentive::MechanismKind> all_mechanisms() {
  return {incentive::MechanismKind::kOnDemand, incentive::MechanismKind::kFixed,
          incentive::MechanismKind::kSteered};
}

UserSweep::UserSweep(ExperimentConfig base, std::vector<int> user_counts,
                     std::vector<incentive::MechanismKind> mechanisms)
    : base_(std::move(base)),
      user_counts_(std::move(user_counts)),
      mechanisms_(std::move(mechanisms)) {
  MCS_CHECK(!user_counts_.empty(), "user sweep needs at least one count");
  MCS_CHECK(!mechanisms_.empty(), "user sweep needs at least one mechanism");
}

void UserSweep::run() {
  results_.assign(mechanisms_.size(), {});
  for (std::size_t mi = 0; mi < mechanisms_.size(); ++mi) {
    results_[mi].reserve(user_counts_.size());
    for (const int n : user_counts_) {
      ExperimentConfig cfg = base_;
      cfg.mechanism = mechanisms_[mi];
      cfg.scenario.num_users = n;
      results_[mi].push_back(run_experiment(cfg));
    }
  }
  ran_ = true;
}

const AggregateResult& UserSweep::result(std::size_t mech,
                                         std::size_t user_idx) const {
  MCS_CHECK(ran_, "UserSweep::run() not called");
  return results_.at(mech).at(user_idx);
}

TextTable UserSweep::table(
    const std::function<double(const AggregateResult&)>& metric,
    const std::string& x_label, int decimals) const {
  MCS_CHECK(ran_, "UserSweep::run() not called");
  std::vector<std::string> header{x_label};
  for (const auto kind : mechanisms_) {
    header.emplace_back(incentive::mechanism_name(kind));
  }
  TextTable t(header);
  for (std::size_t ui = 0; ui < user_counts_.size(); ++ui) {
    std::vector<std::string> row{std::to_string(user_counts_[ui])};
    for (std::size_t mi = 0; mi < mechanisms_.size(); ++mi) {
      row.push_back(format_fixed(metric(results_[mi][ui]), decimals));
    }
    t.add_row(std::move(row));
  }
  return t;
}

RoundSeries::RoundSeries(ExperimentConfig base,
                         std::vector<incentive::MechanismKind> mechanisms)
    : base_(std::move(base)), mechanisms_(std::move(mechanisms)) {
  MCS_CHECK(!mechanisms_.empty(), "round series needs at least one mechanism");
}

void RoundSeries::run() {
  results_.clear();
  results_.reserve(mechanisms_.size());
  for (const auto kind : mechanisms_) {
    ExperimentConfig cfg = base_;
    cfg.mechanism = kind;
    results_.push_back(run_experiment(cfg));
  }
  ran_ = true;
}

const AggregateResult& RoundSeries::result(std::size_t mech) const {
  MCS_CHECK(ran_, "RoundSeries::run() not called");
  return results_.at(mech);
}

TextTable RoundSeries::table(
    const std::function<double(const AggregateResult&, std::size_t)>& metric,
    Round first_round, int decimals) const {
  MCS_CHECK(ran_, "RoundSeries::run() not called");
  std::vector<std::string> header{"round"};
  for (const auto kind : mechanisms_) {
    header.emplace_back(incentive::mechanism_name(kind));
  }
  TextTable t(header);
  for (Round k = first_round; k <= base_.max_rounds; ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (std::size_t mi = 0; mi < mechanisms_.size(); ++mi) {
      row.push_back(format_fixed(
          metric(results_[mi], static_cast<std::size_t>(k - 1)), decimals));
    }
    t.add_row(std::move(row));
  }
  return t;
}

void print_experiment_header(const ExperimentConfig& cfg,
                             const std::string& title) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "area=" << cfg.scenario.area_side << "m"
            << " tasks=" << cfg.scenario.num_tasks
            << " users=" << cfg.scenario.num_users
            << " phi=" << cfg.scenario.required_measurements << " deadlines=["
            << cfg.scenario.deadline_min << "," << cfg.scenario.deadline_max
            << "]"
            << " user-budget=[" << cfg.scenario.user_budget_min_s << ","
            << cfg.scenario.user_budget_max_s << "]s"
            << " radius=" << cfg.scenario.neighbor_radius << "m\n";
  std::cout << "B=$" << cfg.mech_params.platform_budget
            << " lambda=$" << cfg.mech_params.lambda
            << " levels=" << cfg.mech_params.demand_levels
            << " selector=" << select::selector_name(cfg.selector)
            << " dp-cap=" << cfg.dp_candidate_cap
            << " rounds=" << cfg.max_rounds << " reps=" << cfg.repetitions
            << " seed=" << cfg.seed << " threads="
            << (cfg.threads == 0 ? std::string("auto")
                                 : std::to_string(cfg.threads))
            << " plan-threads="
            << (cfg.plan_threads == 0 ? std::string("auto")
                                      : std::to_string(cfg.plan_threads))
            << " reprice-threads="
            << (cfg.reprice_threads == 0 ? std::string("auto")
                                         : std::to_string(cfg.reprice_threads))
            << " plan-memo=" << (cfg.plan_memo ? "on" : "off")
            << " shards="
            << (cfg.shards == sim::SimulatorParams::kAutoShards
                    ? std::string("auto")
                    : std::to_string(cfg.shards))
            << " max-attempts=" << cfg.max_attempts << "\n";
  if (cfg.checkpoint_every > 0) {
    std::cout << "checkpoints: every=" << cfg.checkpoint_every
              << " dir=" << cfg.checkpoint_dir << "\n";
  }
  if (cfg.faults.any()) {
    std::cout << "faults: dropout=" << cfg.faults.dropout_prob
              << " abandon=" << cfg.faults.abandon_prob
              << " loss=" << cfg.faults.upload_loss_prob
              << " corrupt=" << cfg.faults.corruption_prob
              << " withdraw=" << cfg.faults.withdraw_prob
              << " fault-seed=" << cfg.faults.seed << "\n";
  }
  std::cout << "\n";
}

void warn_unconsumed(const Config& cfg) {
  for (const std::string& key : cfg.unconsumed_keys()) {
    std::cerr << "warning: unrecognized flag --" << key << "\n";
  }
}

void maybe_dump_csv(const Config& cfg, const std::string& name,
                    const TextTable& table) {
  const std::string dir = cfg.get_string("csv-dir", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  table.as_csv().write_file(path);
  std::cerr << "wrote " << path << "\n";
}

}  // namespace mcs::exp
