// Repeated-trial experiment runner.
//
// The paper averages every data point over 100 random scenarios; this runner
// executes R independent repetitions (fresh world, fresh mechanism, same
// knobs) with deterministic per-repetition seeds and aggregates campaign and
// per-round metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "incentive/mechanism.h"
#include "select/selector.h"
#include "sim/faults.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mcs::exp {

struct ExperimentConfig {
  sim::ScenarioParams scenario;
  incentive::MechanismKind mechanism = incentive::MechanismKind::kOnDemand;
  incentive::MechanismParams mech_params;
  select::SelectorKind selector = select::SelectorKind::kDp;
  int dp_candidate_cap = 14;
  sim::MobilityKind mobility = sim::MobilityKind::kStaticHome;
  Meters drift_sigma = 300.0;  // gaussian-drift mobility only
  Round max_rounds = 15;
  int repetitions = 20;
  std::uint64_t seed = 42;
  // Worker threads for the repetition fan-out: 0 = one per hardware thread,
  // 1 = run everything on the caller's thread (the serial path), n = exactly
  // n workers. Repetitions are independent seeded streams and results are
  // merged in repetition order, so every aggregate is bit-identical whatever
  // this is set to. Benches expose it as --threads / MCS_THREADS.
  int threads = 0;
  // Worker threads for each simulator's per-user planning phase
  // (SimulatorParams::plan_threads): 1 = serial (default), 0 = one per
  // hardware thread, n = exactly n. Only round-granularity mechanisms
  // parallelize; campaigns stay bit-identical at any value. Benches expose
  // it as --plan-threads / MCS_PLAN_THREADS. Composes with `threads`:
  // total concurrency is roughly threads * plan_threads, so prefer
  // repetition fan-out when there are many repetitions and plan threads
  // when a single large campaign dominates.
  int plan_threads = 1;
  // Worker threads for each simulator's reprice phase
  // (SimulatorParams::reprice_threads): 1 = serial (default), 0 = one per
  // hardware thread, n = exactly n. The demand/level/reward sweep and a due
  // neighbor-cache rebuild's count pass shard over them; campaigns stay
  // bit-identical at any value. Benches expose it as --reprice-threads /
  // MCS_REPRICE_THREADS. Composes with `threads` like plan_threads does.
  int reprice_threads = 1;
  // Spatially sharded round execution (SimulatorParams::shards): 0 = the
  // legacy round loop (default), n >= 1 = sharded with n workers, -1 =
  // auto (one per hardware thread). Campaigns are bit-identical at any
  // shard count; versus the legacy loop the trajectory only moves under
  // stochastic mobility (per-user substreams replace the serial draw
  // stream — see SimulatorParams::shards). Benches expose it as --shards /
  // MCS_SHARDS ("auto" accepted).
  int shards = 0;
  // Record per-phase round timings into each campaign's metrics
  // (SimulatorParams::phase_timers). Benches expose it as --phase-timers.
  bool phase_timers = false;
  // Force the legacy one-user-at-a-time serial commit
  // (SimulatorParams::legacy_commit). Bit-identity-neutral by construction;
  // exists for the commit-equivalence suite and the commit-phase bench.
  bool legacy_commit = false;
  // Cross-user plan memoization (SimulatorParams::memo): provably
  // equivalent selection instances within a round share one solve.
  // Campaigns stay bit-identical with it on or off; it only pays when many
  // users share a start location and budget (dense home sites — see
  // ScenarioParams::home_sites). Benches expose it as --plan-memo /
  // MCS_PLAN_MEMO.
  bool plan_memo = false;
  // Fault injection applied to every repetition's campaign (sim/faults.h).
  // Fault draws derive from the repetition seed, so they are independent
  // across repetitions and bit-reproducible at any thread count. Benches
  // expose the rates as --dropout/--abandon/--loss/--corrupt/--withdraw.
  sim::FaultPlan faults;
  // Diagnostic/test hook, called (from the worker thread) at the start of
  // every repetition attempt: attempt 0 always, higher attempts only for
  // same-seed retries after an mcs::Error (up to max_attempts in total). A
  // throwing probe counts as a failing attempt — fault-tolerance tests use
  // it to inject repetition failures. Must be thread-safe; null (the
  // default) is skipped.
  std::function<void(int rep, int attempt)> repetition_probe;
  // Attempt budget per repetition: the initial attempt plus up to
  // max_attempts-1 same-seed retries (the historical behaviour is 2 — one
  // retry). Must be >= 1.
  int max_attempts = 2;
  // Called (from the worker thread) before every retry — attempt >= 1,
  // never for the initial attempt. Production callers sleep here;
  // deterministic tests record the (rep, attempt) pairs instead, keeping
  // wall-clock out of the suite. Must be thread-safe; null (the default)
  // retries immediately.
  std::function<void(int rep, int attempt)> retry_backoff;
  // Campaign checkpointing (sim/checkpoint.h): checkpoint_every > 0 with a
  // non-empty checkpoint_dir writes a checkpoint every k rounds into
  // <checkpoint_dir>/rep-<rep>/ and — the payoff — a repetition attempt
  // that throws RESUMES from its last good generation on retry instead of
  // rerunning the whole campaign. Resume is bit-identical to the straight
  // run (pinned by the checkpoint-resume equivalence suite), so aggregates
  // are unchanged whether a repetition crashed or not. Checkpoints carry a
  // provenance stamp of the full repetition identity (seed, scenario,
  // mechanism + params, selector, mobility, faults, max_rounds); a
  // checkpoint whose stamp does not match is never resumed, so sweeps may
  // reuse one checkpoint_dir across sweep points — each point starts fresh
  // over the previous point's leftovers. 0 (default) keeps checkpointing
  // off.
  Round checkpoint_every = 0;
  std::string checkpoint_dir;
};

struct RepetitionResult {
  sim::CampaignMetrics campaign;
  std::vector<sim::RoundMetrics> rounds;
};

/// One full campaign with an explicit seed (world generation, fixed-
/// mechanism level draws and any other randomness all derive from it).
RepetitionResult run_repetition(const ExperimentConfig& cfg,
                                std::uint64_t seed);

/// The deterministic seed of repetition `rep`: an independent SplitMix64
/// stream per repetition derived from cfg.seed. This is exactly the seed
/// run_experiment feeds to repetition `rep`, exposed so tests can assert
/// stream independence and callers can re-run a single repetition.
std::uint64_t repetition_seed(const ExperimentConfig& cfg, int rep);

/// A repetition whose campaign threw mcs::Error on every attempt (the
/// initial one plus the same-seed retries of cfg.max_attempts). Recorded
/// instead of aborting the sweep; the seed lets the failure be replayed
/// with run_repetition.
struct FailedRepetition {
  int rep = -1;
  std::uint64_t seed = 0;
  std::string error;  // what() of the last failing attempt
};

/// Aggregates over repetitions. Round series are padded to max_rounds: a
/// campaign that closed early contributes zero new measurements and its
/// final coverage/completeness to the remaining rounds. Exception: the
/// mean-reward series — a closed campaign publishes no prices, so closed
/// rounds are excluded from round_mean_reward instead of being counted as
/// zero-price rounds (each RunningStats carries its own per-round sample
/// count; count() < repetitions on rounds some campaigns never reached).
/// Failed repetitions (see failed_reps) contribute to no aggregate at all:
/// every stat's count() is the number of *successful* repetitions.
struct AggregateResult {
  RunningStats coverage;
  RunningStats completeness;
  RunningStats tasks_completed;
  RunningStats avg_measurements;
  RunningStats measurement_variance;
  RunningStats reward_per_measurement;
  RunningStats total_paid;
  RunningStats overdraft;
  RunningStats reward_gini;
  RunningStats reward_jain;
  RunningStats active_fraction;
  std::vector<RunningStats> round_new_measurements;  // index = round-1
  std::vector<RunningStats> round_coverage;
  std::vector<RunningStats> round_completeness;
  std::vector<RunningStats> round_mean_profit;
  // Mean published reward; live campaigns only (see aggregation note above).
  std::vector<RunningStats> round_mean_reward;
  // Fault-degradation accounting (campaign totals; all zero without a
  // FaultPlan): dropped worker-rounds, abandoned tours, lost uploads,
  // meters walked for nothing.
  RunningStats dropped_users;
  RunningStats abandoned_tours;
  RunningStats lost_measurements;
  RunningStats wasted_travel;
  // Repetitions that exhausted their attempt budget (see FailedRepetition),
  // in rep order.
  std::vector<FailedRepetition> failed_reps;
  // Attempts consumed per repetition (index = rep; 1 = first try
  // succeeded, cfg.max_attempts = every retry was needed — whether the
  // last one succeeded is what failed_reps records).
  std::vector<int> rep_attempts;
};

/// Runs cfg.repetitions campaigns and aggregates them. A repetition that
/// throws mcs::Error is retried with the same seed (cfg.max_attempts,
/// cfg.retry_backoff; with checkpointing enabled a retry resumes from the
/// last good checkpoint instead of rerunning from round 1); once the
/// budget is exhausted it lands in failed_reps and the sweep continues.
/// Throws only when every repetition failed (nothing to aggregate).
AggregateResult run_experiment(const ExperimentConfig& cfg);

/// Builds the incentive mechanism for one repetition; `rng` is that
/// repetition's mechanism stream. Lets ablation studies inject mechanisms
/// the MechanismKind enum does not cover (custom weights, custom level
/// counts, ...). With cfg.threads != 1 repetitions run concurrently, so the
/// factory must be safe to call from multiple threads at once (stateless
/// factories — build from the arguments, capture only immutable data — are).
using MechanismFactory =
    std::function<std::unique_ptr<incentive::IncentiveMechanism>(
        const model::World& world, Rng& rng)>;

/// run_experiment with a custom mechanism per repetition; everything else
/// (scenario, selector, aggregation, padding, seeds) is identical.
AggregateResult run_experiment_with(const ExperimentConfig& cfg,
                                    const MechanismFactory& factory);

/// Fig. 5 support: simulate up to round `at_round`-1 (with the DP selector),
/// then evaluate DP and greedy on the *identical* published instances every
/// user faces at `at_round` — a paired comparison, so DP's per-user profit
/// dominates greedy's on every sample (optimality of the DP).
struct DpVsGreedyResult {
  RunningStats dp_profit;            // per-user profit at `at_round`, DP
  RunningStats greedy_profit;        // same, greedy
  std::vector<double> differences;   // per-user dp - greedy, all reps pooled
};

DpVsGreedyResult run_dp_vs_greedy(const ExperimentConfig& cfg, Round at_round);

}  // namespace mcs::exp
