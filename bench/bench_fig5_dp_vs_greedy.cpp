// Fig. 5 — DP vs greedy task selection.
//  (a) average profit per user at sensing round 2 vs number of users;
//  (b) box-plot summary of the per-user profit difference (DP - greedy),
//      both selectors run on identical scenarios.
//
// Flags: everything exp/figures.h accepts, plus --at-round (default 2).
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/strings.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  // Fig. 5 profiles the *selectors*, which only separate on rich instances;
  // the paper's Fig. 5 profit scale implies users that can chain many tasks
  // per round, so this bench defaults to a larger time budget than the
  // mechanism-comparison figures (override with --user-budget-min/max).
  if (!flags.has("user-budget-min")) base.scenario.user_budget_min_s = 1200.0;
  if (!flags.has("user-budget-max")) base.scenario.user_budget_max_s = 2400.0;
  const auto at_round = static_cast<Round>(flags.get_int("at-round", 2));
  const std::vector<int> users = exp::user_counts_from_config(flags);
  exp::print_experiment_header(base, "Fig. 5: DP vs greedy task selection");

  TextTable fig5a({"users", "dp avg profit $", "greedy avg profit $"});
  TextTable fig5b({"users", "min", "q1", "median", "q3", "max", "whisk-lo",
                   "whisk-hi", "outliers"});
  for (const int n : users) {
    exp::ExperimentConfig cfg = base;
    cfg.scenario.num_users = n;
    const exp::DpVsGreedyResult r = exp::run_dp_vs_greedy(cfg, at_round);
    fig5a.add_row({std::to_string(n), format_fixed(r.dp_profit.mean(), 3),
                   format_fixed(r.greedy_profit.mean(), 3)});
    const BoxplotSummary box = boxplot_summary(r.differences);
    fig5b.add_row({std::to_string(n), format_fixed(box.min, 3),
                   format_fixed(box.q1, 3), format_fixed(box.median, 3),
                   format_fixed(box.q3, 3), format_fixed(box.max, 3),
                   format_fixed(box.whisker_low, 3),
                   format_fixed(box.whisker_high, 3),
                   std::to_string(box.n_outliers)});
  }

  std::cout << "--- Fig. 5(a): average profit per user at round " << at_round
            << " ---\n";
  fig5a.print(std::cout);
  std::cout << "\n--- Fig. 5(b): per-user profit difference dp - greedy "
               "(boxplot) ---\n";
  fig5b.print(std::cout);
  exp::maybe_dump_csv(flags, "fig5a_profit", fig5a);
  exp::maybe_dump_csv(flags, "fig5b_difference_boxplot", fig5b);
  exp::warn_unconsumed(flags);
  return 0;
}
