// Microbenchmarks for the platform-side per-round work: AHP weight
// extraction, demand evaluation over a full world, neighbor counting via
// the spatial grid, and a whole simulated round.
#include <benchmark/benchmark.h>

#include "ahp/comparison_matrix.h"
#include "ahp/weights.h"
#include "common/rng.h"
#include "incentive/demand.h"
#include "incentive/on_demand_mechanism.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

using namespace mcs;

void BM_AhpRowAverage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  ahp::ComparisonMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.uniform_int(1, 9)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ahp::row_average_weights(m));
  }
}

void BM_AhpEigenvector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  ahp::ComparisonMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.uniform_int(1, 9)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ahp::eigenvector_weights(m));
  }
}

void BM_DemandEvaluation(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.num_users = 100;
  Rng rng(7);
  const model::World world = sim::generate_world(params, rng);
  const auto indicator = incentive::DemandIndicator::with_paper_defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(indicator.normalized_demands(world, 3));
  }
}

void BM_NeighborCounts(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_users = static_cast<int>(state.range(0));
  Rng rng(7);
  const model::World world = sim::generate_world(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.neighbor_counts());
  }
}

void BM_FullRound(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_users = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    model::World world = sim::generate_world(params, rng);
    Rng mech_rng(1);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                          world, {}, mech_rng);
    auto sel = select::make_selector(select::SelectorKind::kDp);
    sim::Simulator s(std::move(world), std::move(mech), std::move(sel), {});
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.step());
  }
}

}  // namespace

BENCHMARK(BM_AhpRowAverage)->Arg(3)->Arg(8)->Arg(15);
BENCHMARK(BM_AhpEigenvector)->Arg(3)->Arg(8)->Arg(15);
BENCHMARK(BM_DemandEvaluation)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_NeighborCounts)->Arg(40)->Arg(140)->Arg(1000);
BENCHMARK(BM_FullRound)->Arg(40)->Arg(100)->Arg(140);
