// Microbenchmarks for the platform-side per-round work: AHP weight
// extraction, demand evaluation over a full world, neighbor counting via
// the spatial grid, repricing, and a whole simulated round.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "ahp/comparison_matrix.h"
#include "ahp/weights.h"
#include "common/rng.h"
#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/reward.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

// Global heap instrumentation: counts every operator-new call in the
// process so the steady-state benches below can assert their hot loop is
// allocation-free (allocs_per_iter == 0). Counting only — the default
// malloc still serves the request.
std::atomic<std::uint64_t> g_new_calls{0};

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mcs;

void BM_AhpRowAverage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  ahp::ComparisonMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.uniform_int(1, 9)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ahp::row_average_weights(m));
  }
}

void BM_AhpEigenvector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  ahp::ComparisonMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.uniform_int(1, 9)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ahp::eigenvector_weights(m));
  }
}

void BM_DemandEvaluation(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.num_users = 100;
  Rng rng(7);
  const model::World world = sim::generate_world(params, rng);
  const auto indicator = incentive::DemandIndicator::with_paper_defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(indicator.normalized_demands(world, 3));
  }
}

void BM_NeighborCounts(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_users = static_cast<int>(state.range(0));
  Rng rng(7);
  const model::World world = sim::generate_world(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.neighbor_counts());
  }
}

// Steady-state on-demand repricing across rounds: after the first round
// warms the member buffers (demands, levels, rewards, neighbor cache) the
// per-round update must not touch the heap at all. The allocs_per_iter
// counter is the regression guard — it reads 0.00 when the path is clean.
void BM_UpdateRewardsSteadyState(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.num_users = 100;
  Rng rng(7);
  const model::World world = sim::generate_world(params, rng);
  // Budget scales with the task set (the stock 1000/400 = $2.5 per
  // required measurement) so Eq. 9 keeps a positive base reward at every
  // panel size.
  const incentive::RewardRule rule = incentive::RewardRule::from_budget(
      2.5 * static_cast<double>(world.total_required()),
      world.total_required(), 0.5, 5);
  incentive::OnDemandMechanism mech(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), rule);
  mech.update_rewards(world, 1);  // warm every buffer
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  std::uint64_t iters = 0;
  for (auto _ : state) {
    mech.update_rewards(world, 2);
    benchmark::DoNotOptimize(mech.rewards().data());
    ++iters;
  }
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  state.counters["allocs_per_iter"] = iters == 0
                                          ? 0.0
                                          : static_cast<double>(after - before) /
                                                static_cast<double>(iters);
}

// Intra-round incremental repricing: one dirty task against the full-scan
// alternative (BM_UpdateRewardsSteadyState above is exactly that scan).
void BM_RepriceDirtySession(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.num_users = 100;
  Rng rng(7);
  model::World world = sim::generate_world(params, rng);
  const incentive::RewardRule rule = incentive::RewardRule::from_budget(
      2.5 * static_cast<double>(world.total_required()),
      world.total_required(), 0.5, 5);
  incentive::OnDemandMechanism mech(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), rule);
  mech.update_rewards(world, 1);
  const std::vector<std::size_t> dirty = {0};
  for (auto _ : state) {
    mech.reprice(world, 1, dirty);
    benchmark::DoNotOptimize(mech.rewards().data());
  }
}

// The reprice fast path under the O(dirty) contract: one dirty task and
// one walking user per iteration against task-set sizes 20/100/500. The
// counters are the regression gate tier1.sh greps: repriced_per_iter must
// stay at the dirty width (1.00 here — the walker is outside every
// neighbor disc, so the journal stays empty; a fallback would read
// ~#tasks) and allocs_per_iter must read 0.00 once warm (no snapshot
// vectors, no O(n) count-diff scans).
void BM_RepriceFastPath(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.num_users = 100;
  Rng rng(7);
  model::World world = sim::generate_world(params, rng);
  const incentive::RewardRule rule = incentive::RewardRule::from_budget(
      2.5 * static_cast<double>(world.total_required()),
      world.total_required(), 0.5, 5);
  incentive::OnDemandMechanism mech(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), rule);
  mech.update_rewards(world, 1);
  // A user far from every task (the grid clamps out-of-bounds points into
  // border cells; distances stay exact): walking it touches no neighbor
  // disc, so the journal stays empty and Nmax is untouched — but the walk
  // still exercises the delta-sync machinery every iteration.
  world.add_user({-2000.0, -2000.0}, 600.0);
  (void)world.neighbor_counts();  // absorb the rebuild the new user forces
  mech.update_rewards(world, 1);  // re-baseline after the rebuild
  const std::vector<std::size_t> dirty = {0};
  const std::size_t walker = world.num_users() - 1;
  double flip = 0.0;
  mech.reprice(world, 1, dirty);  // warm the fast path once
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  std::uint64_t iters = 0;
  std::uint64_t repriced = 0;
  for (auto _ : state) {
    flip = 1.0 - flip;
    world.users()[walker].set_location({-2000.0 - flip, -2000.0});
    mech.reprice(world, 1, dirty);
    benchmark::DoNotOptimize(mech.rewards().data());
    repriced += mech.last_reprice_touched();
    ++iters;
  }
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  state.counters["allocs_per_iter"] =
      iters == 0 ? 0.0
                 : static_cast<double>(after - before) /
                       static_cast<double>(iters);
  state.counters["repriced_per_iter"] =
      iters == 0 ? 0.0
                 : static_cast<double>(repriced) / static_cast<double>(iters);
}

void BM_FullRound(benchmark::State& state) {
  sim::ScenarioParams params;
  params.num_users = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    model::World world = sim::generate_world(params, rng);
    Rng mech_rng(1);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                          world, {}, mech_rng);
    auto sel = select::make_selector(select::SelectorKind::kDp);
    sim::Simulator s(std::move(world), std::move(mech), std::move(sel), {});
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.step());
  }
}

}  // namespace

BENCHMARK(BM_AhpRowAverage)->Arg(3)->Arg(8)->Arg(15);
BENCHMARK(BM_AhpEigenvector)->Arg(3)->Arg(8)->Arg(15);
BENCHMARK(BM_DemandEvaluation)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_NeighborCounts)->Arg(40)->Arg(140)->Arg(1000);
BENCHMARK(BM_UpdateRewardsSteadyState)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_RepriceDirtySession)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_RepriceFastPath)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_FullRound)->Arg(40)->Arg(100)->Arg(140);
