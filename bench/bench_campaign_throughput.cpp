// End-to-end campaign throughput: how many full simulated campaigns per
// second the engine sustains, per selector. Unlike bench_selector_scaling
// (isolated solver calls on synthetic instances) this drives the whole
// per-round pipeline — mechanism repricing, the shared per-round candidate
// pool, selection, tour execution, metrics — exactly as experiments do, so
// it is the number that predicts sweep wall-clock.
//
// Methodology: each benchmark iteration runs a fixed panel of
// kCampaignsPerIter campaigns whose seeds depend only on the panel slot, so
// the workload is identical across iterations, builds and branches.
// `items_per_second` is campaigns/s; the `user_rounds` counter is the rate
// of user-round sessions (one potential selection call each), the natural
// unit for comparing scenarios of different size.
//
// BM_CampaignThreaded measures the parallel runner fan-out (threads = one
// per hardware thread) on the same workload; its aggregates are
// bit-identical to the serial ones by construction, so the ratio to
// BM_Campaign is pure scheduling overhead vs. speedup.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

#include "exp/runner.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace mcs;

constexpr int kCampaignsPerIter = 3;

exp::ExperimentConfig make_config(select::SelectorKind kind, int num_users) {
  exp::ExperimentConfig cfg;
  cfg.selector = kind;
  cfg.scenario.num_users = num_users;
  cfg.scenario.num_tasks = 20;
  cfg.max_rounds = 15;
  return cfg;
}

// One campaign per panel slot; seeds are fixed so every iteration replays
// the same worlds.
void run_panel(const exp::ExperimentConfig& cfg, benchmark::State& state,
               std::int64_t* user_rounds) {
  for (int r = 0; r < kCampaignsPerIter; ++r) {
    const std::uint64_t seed =
        0xca3917a1ULL + 977ULL * static_cast<std::uint64_t>(r);
    const exp::RepetitionResult rep = exp::run_repetition(cfg, seed);
    benchmark::DoNotOptimize(rep.campaign.total_paid);
    *user_rounds += static_cast<std::int64_t>(rep.rounds.size()) *
                    cfg.scenario.num_users;
  }
  (void)state;
}

void BM_Campaign(benchmark::State& state, select::SelectorKind kind) {
  const exp::ExperimentConfig cfg =
      make_config(kind, static_cast<int>(state.range(0)));
  std::int64_t user_rounds = 0;
  for (auto _ : state) {
    run_panel(cfg, state, &user_rounds);
  }
  state.SetItemsProcessed(state.iterations() * kCampaignsPerIter);
  state.counters["user_rounds"] = benchmark::Counter(
      static_cast<double>(user_rounds), benchmark::Counter::kIsRate);
}

// Intra-campaign plan-thread scaling: ONE campaign per iteration (a single
// repetition, the shape where repetition fan-out cannot help) at user
// counts 100 / 1k / 10k, with the per-user planning phase running on
// state.range(1) workers. plan_threads = 1 is the serial baseline; the
// campaign is bit-identical across thread counts, so the ratio between the
// two series is pure plan-phase speedup. Single repetition by design —
// this is the results/BENCH_campaign.json scaling artifact.
void BM_CampaignPlanThreads(benchmark::State& state) {
  exp::ExperimentConfig cfg = make_config(select::SelectorKind::kDp,
                                          static_cast<int>(state.range(0)));
  cfg.plan_threads = static_cast<int>(state.range(1));
  std::int64_t user_rounds = 0;
  for (auto _ : state) {
    const exp::RepetitionResult rep = exp::run_repetition(cfg, 0xca3917a1ULL);
    benchmark::DoNotOptimize(rep.campaign.total_paid);
    user_rounds += static_cast<std::int64_t>(rep.rounds.size()) *
                   cfg.scenario.num_users;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["user_rounds"] = benchmark::Counter(
      static_cast<double>(user_rounds), benchmark::Counter::kIsRate);
}

// Cross-user plan memoization on the dense-POI workload it exists for:
// users homed at a few shared sites with bucketized budgets, so most
// selection instances within a round are bit-equal. range(0) = users,
// range(1) = memo off/on; the campaign is bit-identical either way (pinned
// by the PlanMemoEquivalence suite), so the off→on items_per_second ratio
// is pure memoization speedup. The hit_rate counter is the fraction of
// planned sessions served from the table; this pairing is the
// results/BENCH_campaign.json memo artifact.
void BM_CampaignMemo(benchmark::State& state) {
  exp::ExperimentConfig cfg = make_config(select::SelectorKind::kDp,
                                          static_cast<int>(state.range(0)));
  cfg.scenario.home_sites = 64;
  cfg.scenario.user_budget_quantum_s = 150.0;
  // Dense cell: the same task set packed into a quarter of the stock area,
  // so each user reaches ~half the open set and the per-user DP is real
  // work — the regime where sharing solves pays.
  cfg.scenario.area_side = 1500.0;
  cfg.plan_memo = state.range(1) != 0;
  std::int64_t user_rounds = 0;
  double hit_rate = 0.0;
  for (auto _ : state) {
    const exp::RepetitionResult rep = exp::run_repetition(cfg, 0xca3917a1ULL);
    benchmark::DoNotOptimize(rep.campaign.total_paid);
    user_rounds += static_cast<std::int64_t>(rep.rounds.size()) *
                   cfg.scenario.num_users;
    const double hits = static_cast<double>(rep.campaign.plan_exact_hits +
                                            rep.campaign.plan_fixup_hits);
    const double lookups =
        hits + static_cast<double>(rep.campaign.plan_misses);
    hit_rate = lookups > 0.0 ? hits / lookups : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["user_rounds"] = benchmark::Counter(
      static_cast<double>(user_rounds), benchmark::Counter::kIsRate);
  state.counters["hit_rate"] = hit_rate;
}

// Process-wide peak resident set in MB (getrusage ru_maxrss; kilobytes on
// Linux). A high-water mark, so it only ever grows across benchmarks — the
// meaningful reading is from the large-world runs, which dwarf everything
// before them.
double max_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
  }
#endif
  return 0.0;
}

// Large-world campaigns through the spatially sharded round loop: ONE
// campaign per iteration at range(0) users (tasks and area scale with the
// population, keeping ~50 tasks in reach per user), shards = range(1)
// (0 = the legacy round loop). The campaign is bit-identical across shard
// counts (pinned by ShardEquivalence), so the series is pure round-loop
// scaling. Greedy selector: at this scale the per-user solve should be
// cheap so the round *loop* — pre-pass, demand, candidate gather, commit —
// is what's measured. Phase timers are on; the per-phase wall-clock totals
// and the process peak RSS ride along as counters. This is the
// results/BENCH_campaign.json large-world artifact.
void BM_CampaignSharded(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  exp::ExperimentConfig cfg;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.scenario.num_users = users;
  cfg.scenario.num_tasks = users / 10;
  // Density-preserving area: 100k users on a 30 km side, 1M on ~95 km.
  cfg.scenario.area_side = 30000.0 * std::sqrt(users / 100000.0);
  // Budget-per-measurement held constant (Eq. 9: r0 = B/sum(phi) -
  // lambda(N-1) = 1.0), so repricing behaves the same at every scale.
  cfg.mech_params.platform_budget =
      3.0 * 20.0 * static_cast<double>(cfg.scenario.num_tasks);
  cfg.max_rounds = 3;
  cfg.shards = static_cast<int>(state.range(1));
  cfg.phase_timers = true;
  std::int64_t user_rounds = 0;
  sim::CampaignMetrics last{};
  for (auto _ : state) {
    const exp::RepetitionResult rep = exp::run_repetition(cfg, 0xca3917a1ULL);
    benchmark::DoNotOptimize(rep.campaign.total_paid);
    user_rounds += static_cast<std::int64_t>(rep.rounds.size()) *
                   cfg.scenario.num_users;
    last = rep.campaign;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["user_rounds"] = benchmark::Counter(
      static_cast<double>(user_rounds), benchmark::Counter::kIsRate);
  state.counters["phase_prepass_s"] = last.phase_prepass_s;
  state.counters["phase_plan_s"] = last.phase_plan_s;
  state.counters["phase_reprice_s"] = last.phase_reprice_s;
  state.counters["phase_commit_s"] = last.phase_commit_s;
  state.counters["max_rss_mb"] = max_rss_mb();
}

// Commit-phase A/B on the sharded large-world workload: range(0) users,
// shards fixed at 1 so the commit and pre-pass phases are pure single-thread
// work, range(1) picks the commit path (0 = buffered segment commit, the
// default; 1 = the legacy per-user serial loop). The campaign is
// bit-identical between the two (pinned by CommitEquivalence), so the
// phase_commit_s + phase_prepass_s delta between the series is exactly the
// restructuring win the commit buffers buy. One campaign per iteration for
// the same reason as BM_CampaignSharded. This is the
// results/BENCH_campaign.json commit_phase artifact.
void BM_CampaignCommit(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  exp::ExperimentConfig cfg;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.scenario.num_users = users;
  cfg.scenario.num_tasks = users / 10;
  cfg.scenario.area_side = 30000.0 * std::sqrt(users / 100000.0);
  cfg.mech_params.platform_budget =
      3.0 * 20.0 * static_cast<double>(cfg.scenario.num_tasks);
  cfg.max_rounds = 3;
  cfg.shards = 1;
  cfg.phase_timers = true;
  cfg.legacy_commit = state.range(1) != 0;
  std::int64_t user_rounds = 0;
  sim::CampaignMetrics last{};
  for (auto _ : state) {
    const exp::RepetitionResult rep = exp::run_repetition(cfg, 0xca3917a1ULL);
    benchmark::DoNotOptimize(rep.campaign.total_paid);
    user_rounds += static_cast<std::int64_t>(rep.rounds.size()) *
                   cfg.scenario.num_users;
    last = rep.campaign;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["user_rounds"] = benchmark::Counter(
      static_cast<double>(user_rounds), benchmark::Counter::kIsRate);
  state.counters["phase_prepass_s"] = last.phase_prepass_s;
  state.counters["phase_plan_s"] = last.phase_plan_s;
  state.counters["phase_reprice_s"] = last.phase_reprice_s;
  state.counters["phase_commit_s"] = last.phase_commit_s;
  state.counters["max_rss_mb"] = max_rss_mb();
}

// Reprice-phase A/B on the sharded large-world workload: range(0) users,
// shards fixed at 1 so nothing else contends for the pool, range(1) picks
// the reprice path (0 = serial sweep, the default; 1 = reprice_threads=0,
// i.e. one worker per hardware thread). The campaign is bit-identical
// between the two (pinned by RepriceEquivalence), so the phase_reprice_s
// delta between the series is exactly the sharded-sweep win. One campaign
// per iteration for the same reason as BM_CampaignSharded. This is the
// results/BENCH_campaign.json reprice_phase artifact.
void BM_CampaignReprice(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  exp::ExperimentConfig cfg;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.scenario.num_users = users;
  cfg.scenario.num_tasks = users / 10;
  cfg.scenario.area_side = 30000.0 * std::sqrt(users / 100000.0);
  cfg.mech_params.platform_budget =
      3.0 * 20.0 * static_cast<double>(cfg.scenario.num_tasks);
  cfg.max_rounds = 3;
  cfg.shards = 1;
  cfg.phase_timers = true;
  cfg.reprice_threads = state.range(1) != 0 ? 0 : 1;
  std::int64_t user_rounds = 0;
  sim::CampaignMetrics last{};
  for (auto _ : state) {
    const exp::RepetitionResult rep = exp::run_repetition(cfg, 0xca3917a1ULL);
    benchmark::DoNotOptimize(rep.campaign.total_paid);
    user_rounds += static_cast<std::int64_t>(rep.rounds.size()) *
                   cfg.scenario.num_users;
    last = rep.campaign;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["user_rounds"] = benchmark::Counter(
      static_cast<double>(user_rounds), benchmark::Counter::kIsRate);
  state.counters["phase_prepass_s"] = last.phase_prepass_s;
  state.counters["phase_plan_s"] = last.phase_plan_s;
  state.counters["phase_reprice_s"] = last.phase_reprice_s;
  state.counters["phase_commit_s"] = last.phase_commit_s;
  state.counters["max_rss_mb"] = max_rss_mb();
}

void BM_CampaignThreaded(benchmark::State& state, select::SelectorKind kind) {
  exp::ExperimentConfig cfg =
      make_config(kind, static_cast<int>(state.range(0)));
  cfg.repetitions = 8;
  cfg.threads = 0;  // one worker per hardware thread
  for (auto _ : state) {
    const exp::AggregateResult agg = exp::run_experiment(cfg);
    benchmark::DoNotOptimize(agg.total_paid.mean());
  }
  state.SetItemsProcessed(state.iterations() * cfg.repetitions);
}

}  // namespace

// The gated families run 3 repetitions; scripts/bench_gate.py keeps the
// best repetition per series (min cpu_time / max items_per_second), so one
// scheduler hiccup on bench day cannot fail the gate or get enshrined as
// the new baseline.
BENCHMARK_CAPTURE(BM_Campaign, dp, mcs::select::SelectorKind::kDp)
    ->Arg(50)
    ->Arg(100)
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Campaign, greedy, mcs::select::SelectorKind::kGreedy)
    ->Arg(50)
    ->Arg(100)
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Campaign, branch_bound,
                  mcs::select::SelectorKind::kBranchBound)
    ->Arg(100)
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignThreaded, dp, mcs::select::SelectorKind::kDp)
    ->Arg(100)
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignPlanThreads)
    ->ArgsProduct({{100, 1000, 10000}, {1, 8}})
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignMemo)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
// Shard sweep at 100k users; the 1M-user / 100k-task configs are pinned to
// a single iteration (one campaign is minutes of work — min_time-driven
// repetition would make bench day unbounded).
BENCHMARK(BM_CampaignSharded)
    ->ArgsProduct({{100000}, {0, 1, 2, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// 1M users / 100k tasks is sharded-only: the legacy loop's per-round
// candidate pool is quadratic in open tasks (it is why the sharded loop
// plans poolless per cell) and does not fit time or memory at this scale.
BENCHMARK(BM_CampaignSharded)
    ->ArgsProduct({{1000000}, {1, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// Reprice A/B: serial (0) vs auto-threaded (1) at 100k and 1M users. The
// 100k pair takes 3 single-iteration repetitions (the gate keeps the best),
// the 1M pair one, like the other large-world runs; phase_reprice_s, not
// the total wall time, is the artifact.
BENCHMARK(BM_CampaignReprice)
    ->ArgsProduct({{100000}, {0, 1}})
    ->Iterations(1)
    ->Repetitions(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignReprice)
    ->ArgsProduct({{1000000}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// Commit A/B: buffered (0) vs legacy (1) at 100k and 1M users. Single
// iteration like the other large-world runs; the phase counters, not the
// total wall time, are the artifact.
BENCHMARK(BM_CampaignCommit)
    ->ArgsProduct({{100000, 1000000}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
