// Fig. 9 — participation balance and platform welfare.
//  (a) variance of per-task measurements vs number of users;
//  (b) average reward paid per measurement vs number of users.
#include <iostream>

#include "common/config.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  const std::vector<int> users = exp::user_counts_from_config(flags);
  exp::print_experiment_header(
      base, "Fig. 9: measurement variance & reward per measurement");

  exp::UserSweep sweep(base, users, exp::all_mechanisms());
  sweep.run();
  std::cout << "--- Fig. 9(a): variance of measurements ---\n";
  const TextTable fig9a = sweep.table([](const exp::AggregateResult& r) {
    return r.measurement_variance.mean();
  });
  fig9a.print(std::cout);

  std::cout << "\n--- Fig. 9(b): average reward per measurement ($) ---\n";
  const TextTable fig9b = sweep.table([](const exp::AggregateResult& r) {
    return r.reward_per_measurement.mean();
  });
  fig9b.print(std::cout);
  exp::maybe_dump_csv(flags, "fig9a_variance_vs_users", fig9a);
  exp::maybe_dump_csv(flags, "fig9b_reward_per_measurement_vs_users", fig9b);
  exp::warn_unconsumed(flags);
  return 0;
}
