// Extension: fairness across users, and the participation-target baseline.
//
// The paper measures balance across tasks (Fig. 9a); this bench measures
// the dual — how evenly the platform's money spreads across the *crowd* —
// via the Gini coefficient and Jain's index of per-user rewards, for all
// four mechanisms (the three §VI ones plus the participation-target
// global-price baseline in the spirit of Lee & Hoh).
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Extension: user-side fairness");

  TextTable table({"mechanism", "active users %", "reward gini", "reward jain",
                   "completeness %", "$ / measurement"});
  std::vector<incentive::MechanismKind> mechanisms = exp::all_mechanisms();
  mechanisms.push_back(incentive::MechanismKind::kParticipation);
  for (const auto kind : mechanisms) {
    exp::ExperimentConfig cfg = base;
    cfg.mechanism = kind;
    const exp::AggregateResult r = exp::run_experiment(cfg);
    table.add_row({incentive::mechanism_name(kind),
                   format_fixed(100.0 * r.active_fraction.mean(), 1),
                   format_fixed(r.reward_gini.mean(), 3),
                   format_fixed(r.reward_jain.mean(), 3),
                   format_fixed(r.completeness.mean(), 2),
                   format_fixed(r.reward_per_measurement.mean(), 3)});
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_fairness", table);
  exp::warn_unconsumed(flags);
  return 0;
}
