// Microbenchmark: neighbor counting backends.
//
// The platform recomputes N_i (users within R of every task) each round.
// Compares the uniform grid (library default), the k-d tree, and the naive
// O(n*m) scan across population sizes, on the paper's 3000 m field.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "geo/distance.h"
#include "geo/kdtree.h"
#include "geo/spatial_grid.h"

namespace {

using namespace mcs;

constexpr double kArea = 3000.0;
constexpr double kRadius = 500.0;
constexpr int kTasks = 20;

struct Layout {
  std::vector<geo::Point> users;
  std::vector<geo::Point> tasks;
};

Layout make_layout(int num_users) {
  Rng rng(static_cast<std::uint64_t>(num_users) * 31 + 7);
  Layout l;
  for (int i = 0; i < num_users; ++i) {
    l.users.push_back({rng.uniform(0, kArea), rng.uniform(0, kArea)});
  }
  for (int i = 0; i < kTasks; ++i) {
    l.tasks.push_back({rng.uniform(0, kArea), rng.uniform(0, kArea)});
  }
  return l;
}

void BM_NeighborsBrute(benchmark::State& state) {
  const Layout l = make_layout(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t total = 0;
    for (const geo::Point t : l.tasks) {
      for (const geo::Point u : l.users) {
        if (geo::euclidean(t, u) <= kRadius) ++total;
      }
    }
    benchmark::DoNotOptimize(total);
  }
}

void BM_NeighborsGrid(benchmark::State& state) {
  const Layout l = make_layout(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    geo::SpatialGrid grid(geo::BoundingBox::square(kArea), kRadius);
    for (std::size_t i = 0; i < l.users.size(); ++i) {
      grid.insert(static_cast<std::int32_t>(i), l.users[i]);
    }
    std::size_t total = 0;
    for (const geo::Point t : l.tasks) total += grid.count_radius(t, kRadius);
    benchmark::DoNotOptimize(total);
  }
}

void BM_NeighborsKdTree(benchmark::State& state) {
  const Layout l = make_layout(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<geo::KdTree::Item> items;
    items.reserve(l.users.size());
    for (std::size_t i = 0; i < l.users.size(); ++i) {
      items.push_back({static_cast<std::int32_t>(i), l.users[i]});
    }
    const geo::KdTree tree(std::move(items));
    std::size_t total = 0;
    for (const geo::Point t : l.tasks) total += tree.count_radius(t, kRadius);
    benchmark::DoNotOptimize(total);
  }
}

void BM_KdTreeKnn(benchmark::State& state) {
  const Layout l = make_layout(static_cast<int>(state.range(0)));
  std::vector<geo::KdTree::Item> items;
  for (std::size_t i = 0; i < l.users.size(); ++i) {
    items.push_back({static_cast<std::int32_t>(i), l.users[i]});
  }
  const geo::KdTree tree(std::move(items));
  for (auto _ : state) {
    std::size_t total = 0;
    for (const geo::Point t : l.tasks) total += tree.nearest(t, 10).size();
    benchmark::DoNotOptimize(total);
  }
}

}  // namespace

BENCHMARK(BM_NeighborsBrute)->Arg(140)->Arg(1000)->Arg(10000);
BENCHMARK(BM_NeighborsGrid)->Arg(140)->Arg(1000)->Arg(10000);
BENCHMARK(BM_NeighborsKdTree)->Arg(140)->Arg(1000)->Arg(10000);
BENCHMARK(BM_KdTreeKnn)->Arg(140)->Arg(1000)->Arg(10000);
