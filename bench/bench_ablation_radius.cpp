// Ablation: the neighbor radius R.
//
// The paper introduces R (users within R meters of a task are its
// "neighboring users", feeding demand factor X3) but never fixes a value;
// DESIGN.md documents our 500 m default. This bench sweeps R from "nobody
// is a neighbor" to "everybody is".
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Ablation: neighbor radius R");

  TextTable table({"radius m", "coverage %", "completeness %", "variance",
                   "$ / measurement"});
  for (const double radius : {100.0, 250.0, 500.0, 1000.0, 1500.0, 3000.0}) {
    exp::ExperimentConfig cfg = base;
    cfg.scenario.neighbor_radius = radius;
    const exp::AggregateResult r = exp::run_experiment(cfg);
    table.add_row({format_fixed(radius, 0), format_fixed(r.coverage.mean(), 2),
                   format_fixed(r.completeness.mean(), 2),
                   format_fixed(r.measurement_variance.mean(), 2),
                   format_fixed(r.reward_per_measurement.mean(), 3)});
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ablation_radius", table);
  exp::warn_unconsumed(flags);
  return 0;
}
