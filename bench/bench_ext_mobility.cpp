// Extension: user mobility between rounds.
//
// The paper's population is static (everyone starts each round at home) —
// that is exactly why fixed rewards run dry. This bench re-runs the
// mechanism comparison under four mobility models; with enough churn even
// a fixed mechanism keeps finding fresh users, and the on-demand advantage
// narrows. Not a paper figure: an extension experiment.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Extension: mobility models");

  for (const auto metric_pick : {0, 1}) {
    std::cout << (metric_pick == 0
                      ? "--- overall completeness % ---\n"
                      : "\n--- coverage % ---\n");
    TextTable table({"mobility", "on-demand", "fixed", "steered"});
    for (const auto mob :
         {sim::MobilityKind::kStaticHome, sim::MobilityKind::kGaussianDrift,
          sim::MobilityKind::kCommute, sim::MobilityKind::kRandomWaypoint}) {
      std::vector<std::string> row{sim::mobility_name(mob)};
      for (const auto mech : exp::all_mechanisms()) {
        exp::ExperimentConfig cfg = base;
        cfg.mobility = mob;
        cfg.mechanism = mech;
        const exp::AggregateResult r = exp::run_experiment(cfg);
        row.push_back(format_fixed(metric_pick == 0 ? r.completeness.mean()
                                                    : r.coverage.mean(),
                                   2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    exp::maybe_dump_csv(
        flags, metric_pick == 0 ? "ext_mobility_completeness" : "ext_mobility_coverage",
        table);
  }
  exp::warn_unconsumed(flags);
  return 0;
}
