// Ablation: campaign-level impact of the task-selection solver.
//
// Fig. 5 compares DP and greedy per-user; this bench asks what the solver
// choice does to the *platform's* metrics over whole campaigns, and how
// long each solver takes, for all five selectors.
#include <chrono>
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;
  using clock = std::chrono::steady_clock;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Ablation: task-selection solver");

  TextTable table({"selector", "completeness %", "avg meas / task",
                   "avg user profit r1 $", "wall ms / campaign"});
  for (const auto kind :
       {select::SelectorKind::kDp, select::SelectorKind::kBranchBound,
        select::SelectorKind::kBeamSearch, select::SelectorKind::kIls,
        select::SelectorKind::kGreedy2Opt, select::SelectorKind::kGreedy}) {
    exp::ExperimentConfig cfg = base;
    cfg.selector = kind;
    const auto start = clock::now();
    const exp::AggregateResult r = exp::run_experiment(cfg);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             clock::now() - start)
                             .count() /
                         cfg.repetitions;
    table.add_row({select::selector_name(kind),
                   format_fixed(r.completeness.mean(), 2),
                   format_fixed(r.avg_measurements.mean(), 2),
                   format_fixed(r.round_mean_profit[0].mean(), 3),
                   format_fixed(elapsed, 1)});
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ablation_selector", table);
  exp::warn_unconsumed(flags);
  return 0;
}
