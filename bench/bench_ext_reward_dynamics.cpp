// Extension: how the published rewards themselves evolve.
//
// A diagnostic behind Figs. 6-9: the mean published (per-measurement)
// reward over open tasks, round by round, for the three mechanisms. The
// on-demand schedule falls as progress arrives and rises again as the
// remaining tasks' deadlines approach; steered only decays; fixed is flat
// until tasks close.
#include <iostream>

#include "common/config.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Extension: published reward dynamics");

  exp::RoundSeries series(base, exp::all_mechanisms());
  series.run();
  std::cout << "--- mean published reward over open tasks ($/measurement), "
               "users=" << base.scenario.num_users << " ---\n";
  const TextTable table =
      series.table([](const exp::AggregateResult& r, std::size_t k) {
        return r.round_mean_reward[k].mean();
      });
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_reward_dynamics", table);
  exp::warn_unconsumed(flags);
  return 0;
}
