// Fig. 7 — overall completeness (% of required measurements delivered
// before the deadlines).
//  (a) vs number of users;  (b) vs sensing round at a fixed user count.
#include <iostream>

#include "common/config.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  const std::vector<int> users = exp::user_counts_from_config(flags);
  exp::print_experiment_header(base, "Fig. 7: overall completeness");

  exp::UserSweep sweep(base, users, exp::all_mechanisms());
  sweep.run();
  std::cout << "--- Fig. 7(a): overall completeness % vs number of users ---\n";
  const TextTable fig7a = sweep.table(
      [](const exp::AggregateResult& r) { return r.completeness.mean(); });
  fig7a.print(std::cout);
  std::cout << "\n(tasks fully completed before deadline, %)\n";
  const TextTable fig7a_tasks = sweep.table(
      [](const exp::AggregateResult& r) { return r.tasks_completed.mean(); });
  fig7a_tasks.print(std::cout);

  exp::RoundSeries series(base, exp::all_mechanisms());
  series.run();
  std::cout << "\n--- Fig. 7(b): overall completeness % vs round (users="
            << base.scenario.num_users << ") ---\n";
  const TextTable fig7b = series.table(
      [](const exp::AggregateResult& r, std::size_t k) {
        return r.round_completeness[k].mean();
      },
      /*first_round=*/5);
  fig7b.print(std::cout);
  exp::maybe_dump_csv(flags, "fig7a_completeness_vs_users", fig7a);
  exp::maybe_dump_csv(flags, "fig7a_tasks_completed_vs_users", fig7a_tasks);
  exp::maybe_dump_csv(flags, "fig7b_completeness_vs_round", fig7b);
  exp::warn_unconsumed(flags);
  return 0;
}
