// Extension: adaptive budget reallocation.
//
// The paper's Eq. 9 fixes the base reward from the whole budget up front;
// every cheap measurement then strands slack. This bench compares the
// static on-demand mechanism against our adaptive variant that re-derives
// r0 each round from the remaining budget and the still-missing
// measurements (see incentive/adaptive_budget_mechanism.h), across user
// populations.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "incentive/adaptive_budget_mechanism.h"
#include "incentive/on_demand_mechanism.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  const std::vector<int> users = exp::user_counts_from_config(flags);
  exp::print_experiment_header(base, "Extension: adaptive budget vs Eq. 9");

  TextTable table({"users", "static compl %", "adaptive compl %",
                   "static paid $", "adaptive paid $", "static $/meas",
                   "adaptive $/meas"});
  for (const int n : users) {
    exp::ExperimentConfig cfg = base;
    cfg.scenario.num_users = n;

    cfg.mechanism = incentive::MechanismKind::kOnDemand;
    const exp::AggregateResult fixed_r0 = exp::run_experiment(cfg);

    const exp::MechanismFactory adaptive =
        [&cfg](const model::World&,
               Rng&) -> std::unique_ptr<incentive::IncentiveMechanism> {
      return std::make_unique<incentive::AdaptiveBudgetMechanism>(
          incentive::DemandIndicator::with_paper_defaults(),
          incentive::DemandLevelScale(cfg.mech_params.demand_levels),
          cfg.mech_params.platform_budget, cfg.mech_params.lambda);
    };
    const exp::AggregateResult adaptive_r0 =
        exp::run_experiment_with(cfg, adaptive);

    table.add_row({std::to_string(n),
                   format_fixed(fixed_r0.completeness.mean(), 2),
                   format_fixed(adaptive_r0.completeness.mean(), 2),
                   format_fixed(fixed_r0.total_paid.mean(), 1),
                   format_fixed(adaptive_r0.total_paid.mean(), 1),
                   format_fixed(fixed_r0.reward_per_measurement.mean(), 3),
                   format_fixed(adaptive_r0.reward_per_measurement.mean(), 3)});
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_adaptive_budget", table);
  exp::warn_unconsumed(flags);
  return 0;
}
