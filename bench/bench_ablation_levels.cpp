// Ablation: how many demand levels N does the reward rule need?
//
// Eq. 9 couples N to the base reward (bigger N -> lower r0 for the same
// budget): coarse scales cannot discriminate between starved and satisfied
// tasks, very fine scales burn the budget headroom on the top levels. This
// bench sweeps N with everything else at the paper's defaults.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Ablation: demand level count N");

  TextTable table({"levels N", "r0 $", "max reward $", "coverage %",
                   "completeness %", "variance", "$ / measurement"});
  for (const int levels : {1, 2, 3, 5, 8, 10}) {
    exp::ExperimentConfig cfg = base;
    cfg.mech_params.demand_levels = levels;
    // Eq. 9 must stay feasible: r0 = B/sum(phi) - lambda(N-1) > 0.
    const double r0 =
        cfg.mech_params.platform_budget /
            static_cast<double>(cfg.scenario.num_tasks *
                                cfg.scenario.required_measurements) -
        cfg.mech_params.lambda * (levels - 1);
    if (r0 <= 0.0) {
      table.add_row({std::to_string(levels), "-", "-", "infeasible (Eq. 9)",
                     "-", "-", "-"});
      continue;
    }
    const exp::AggregateResult r = exp::run_experiment(cfg);
    table.add_row(
        {std::to_string(levels), format_fixed(r0, 2),
         format_fixed(r0 + cfg.mech_params.lambda * (levels - 1), 2),
         format_fixed(r.coverage.mean(), 2),
         format_fixed(r.completeness.mean(), 2),
         format_fixed(r.measurement_variance.mean(), 2),
         format_fixed(r.reward_per_measurement.mean(), 3)});
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ablation_levels", table);
  exp::warn_unconsumed(flags);
  return 0;
}
