// Fig. 6 — coverage (% of tasks with at least one measurement).
//  (a) vs number of users, for the three incentive mechanisms;
//  (b) vs sensing round at a fixed user count (default 100).
#include <iostream>

#include "common/config.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  const std::vector<int> users = exp::user_counts_from_config(flags);
  exp::print_experiment_header(base, "Fig. 6: coverage");

  exp::UserSweep sweep(base, users, exp::all_mechanisms());
  sweep.run();
  std::cout << "--- Fig. 6(a): coverage % vs number of users ---\n";
  const TextTable fig6a = sweep.table(
      [](const exp::AggregateResult& r) { return r.coverage.mean(); });
  fig6a.print(std::cout);

  exp::RoundSeries series(base, exp::all_mechanisms());
  series.run();
  std::cout << "\n--- Fig. 6(b): coverage % vs sensing round (users="
            << base.scenario.num_users << ") ---\n";
  const TextTable fig6b =
      series.table([](const exp::AggregateResult& r, std::size_t k) {
        return r.round_coverage[k].mean();
      });
  fig6b.print(std::cout);
  exp::maybe_dump_csv(flags, "fig6a_coverage_vs_users", fig6a);
  exp::maybe_dump_csv(flags, "fig6b_coverage_vs_round", fig6b);
  exp::warn_unconsumed(flags);
  return 0;
}
