// Regenerates the paper's worked AHP example — Table I (pairwise comparison
// matrix), Table II (column-normalized matrix), the §IV-B weight vector
// W = (0.648, 0.230, 0.122) — plus the Table III demand-level mapping and
// the §VI reward rule instantiation (B=$1000 => r0=$0.5).
#include <iostream>

#include "ahp/comparison_matrix.h"
#include "ahp/consistency.h"
#include "ahp/weights.h"
#include "common/csv.h"
#include "common/strings.h"
#include "incentive/demand_level.h"
#include "incentive/reward.h"

int main() {
  using namespace mcs;
  using namespace mcs::ahp;

  const auto a = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});

  std::cout << "=== Table I: pairwise comparison matrix A ===\n";
  TextTable t1({"", "C1", "C2", "C3"});
  const char* names[] = {"C1 (deadline)", "C2 (progress)", "C3 (neighbors)"};
  for (std::size_t i = 0; i < 3; ++i) {
    t1.add_row({names[i], format_fixed(a.at(i, 0), 3), format_fixed(a.at(i, 1), 3),
                format_fixed(a.at(i, 2), 3)});
  }
  t1.print(std::cout);

  std::cout << "\n=== Table II: column-normalized matrix ===\n";
  const auto norm = a.normalized();
  TextTable t2({"", "C1", "C2", "C3"});
  for (std::size_t i = 0; i < 3; ++i) {
    t2.add_row({names[i], format_fixed(norm[i][0], 3), format_fixed(norm[i][1], 3),
                format_fixed(norm[i][2], 3)});
  }
  t2.print(std::cout);

  std::cout << "\n=== Weight vector (paper: W = (0.648, 0.230, 0.122)) ===\n";
  TextTable t3({"method", "w1", "w2", "w3"});
  for (const auto method :
       {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
        WeightMethod::kEigenvector}) {
    const auto w = compute_weights(a, method);
    t3.add_row({weight_method_name(method), format_fixed(w[0], 3),
                format_fixed(w[1], 3), format_fixed(w[2], 3)});
  }
  t3.print(std::cout);

  const auto report = check_consistency(a);
  std::cout << "\nconsistency: lambda_max=" << format_fixed(report.lambda_max, 4)
            << " CI=" << format_fixed(report.ci, 4)
            << " CR=" << format_fixed(report.cr, 4)
            << (report.acceptable ? " (acceptable, CR <= 0.1)" : " (NOT acceptable)")
            << "\n";

  std::cout << "\n=== Table III: demand levels (N=5) ===\n";
  const incentive::DemandLevelScale scale(5);
  TextTable t4({"demand bucket", "level"});
  for (int lvl = 1; lvl <= 5; ++lvl) {
    t4.add_row({(lvl == 1 ? "[" : "(") + format_fixed(scale.bucket_low(lvl), 1) +
                    ", " + format_fixed(scale.bucket_high(lvl), 1) + "]",
                std::to_string(lvl)});
  }
  t4.print(std::cout);

  std::cout << "\n=== Reward rule (Eqs. 7-9, B=$1000, 20 tasks x 20 meas, "
               "lambda=$0.5, N=5) ===\n";
  const auto rule = incentive::RewardRule::from_budget(1000.0, 400, 0.5, 5);
  std::cout << "r0 = $" << format_fixed(rule.r0(), 3) << " (paper: $0.5)\n";
  TextTable t5({"demand level", "reward $"});
  for (int lvl = 1; lvl <= 5; ++lvl) {
    t5.add_row({std::to_string(lvl), format_fixed(rule.reward(lvl), 2)});
  }
  t5.print(std::cout);
  std::cout << "worst-case payout: $" << format_fixed(rule.worst_case_payout(400), 2)
            << " <= B = $1000 (Eq. 8 holds)\n";
  return 0;
}
