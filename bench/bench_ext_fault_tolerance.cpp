// Extension: fault tolerance of the incentive mechanisms.
//
// The paper's evaluation assumes perfectly reliable workers. This bench
// re-runs the mechanism comparison while the fault layer (sim/faults.h)
// knocks a fraction of workers offline each round and optionally loses
// uploads, and asks which mechanism's sensing quality degrades most
// gracefully. The on-demand mechanism has a built-in recovery path: a lost
// or undelivered measurement never advances pi_i, so the demand indicator
// re-inflates the task's reward until somebody actually delivers — fixed
// rewards have no such feedback. Not a paper figure: an extension
// experiment.
//
// Flags: the usual experiment knobs (see figures.h) plus
//   --dropouts=0,0.1,0.2,0.4   swept per-round worker dropout rates
//   --abandon/--loss/...       extra fault rates held fixed across the sweep
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/strings.h"
#include "exp/figures.h"

namespace {

std::vector<double> dropout_rates(const mcs::Config& flags) {
  std::vector<double> rates;
  for (const std::string& tok :
       mcs::split(flags.get_string("dropouts", "0,0.1,0.2,0.4"), ',')) {
    rates.push_back(std::stod(tok));
  }
  MCS_CHECK(!rates.empty(), "--dropouts needs at least one rate");
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base, "Extension: fault tolerance");

  const std::vector<double> rates = dropout_rates(flags);
  const auto mechs = exp::all_mechanisms();

  // One full mechanism comparison per dropout rate; the same repetition
  // seeds (hence the same worlds and the same fault draws per rate) are
  // used in every column.
  std::vector<std::vector<exp::AggregateResult>> grid;  // [rate][mech]
  grid.reserve(rates.size());
  for (const double rate : rates) {
    std::vector<exp::AggregateResult> row;
    row.reserve(mechs.size());
    for (const auto mech : mechs) {
      exp::ExperimentConfig cfg = base;
      cfg.faults.dropout_prob = rate;
      cfg.mechanism = mech;
      row.push_back(exp::run_experiment(cfg));
    }
    grid.push_back(std::move(row));
  }

  const auto table_for =
      [&](const char* x_label,
          const std::function<double(const exp::AggregateResult&)>& metric,
          int decimals) {
        TextTable t({x_label, "on-demand", "fixed", "steered"});
        for (std::size_t ri = 0; ri < rates.size(); ++ri) {
          std::vector<std::string> row{format_fixed(rates[ri], 2)};
          for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
            row.push_back(format_fixed(metric(grid[ri][mi]), decimals));
          }
          t.add_row(std::move(row));
        }
        return t;
      };

  std::cout << "--- overall completeness % ---\n";
  TextTable completeness = table_for(
      "dropout", [](const exp::AggregateResult& r) {
        return r.completeness.mean();
      },
      2);
  completeness.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_fault_completeness", completeness);

  std::cout << "\n--- coverage % ---\n";
  TextTable coverage = table_for(
      "dropout",
      [](const exp::AggregateResult& r) { return r.coverage.mean(); }, 2);
  coverage.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_fault_coverage", coverage);

  // Degradation relative to the mechanism's own fault-free baseline (first
  // swept rate, ideally 0): percentage points of completeness lost. The
  // fault-tolerance headline: smaller is more robust.
  std::cout << "\n--- completeness loss vs dropout=" << format_fixed(rates[0], 2)
            << " (pp) ---\n";
  TextTable degradation({"dropout", "on-demand", "fixed", "steered"});
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    std::vector<std::string> row{format_fixed(rates[ri], 2)};
    for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
      row.push_back(format_fixed(
          grid[0][mi].completeness.mean() - grid[ri][mi].completeness.mean(),
          2));
    }
    degradation.add_row(std::move(row));
  }
  degradation.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_fault_degradation", degradation);

  // Fault accounting at the highest swept rate: what the campaigns actually
  // endured (mean per repetition).
  const std::size_t worst = rates.size() - 1;
  std::cout << "\n--- fault accounting at dropout=" << format_fixed(rates[worst], 2)
            << " (mean per campaign) ---\n";
  TextTable accounting(
      {"metric", "on-demand", "fixed", "steered"});
  const auto account_row =
      [&](const char* label,
          const std::function<double(const exp::AggregateResult&)>& metric,
          int decimals) {
        std::vector<std::string> row{label};
        for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
          row.push_back(format_fixed(metric(grid[worst][mi]), decimals));
        }
        accounting.add_row(std::move(row));
      };
  account_row("dropped user-rounds", [](const exp::AggregateResult& r) {
    return r.dropped_users.mean();
  }, 1);
  account_row("abandoned tours", [](const exp::AggregateResult& r) {
    return r.abandoned_tours.mean();
  }, 1);
  account_row("lost uploads", [](const exp::AggregateResult& r) {
    return r.lost_measurements.mean();
  }, 1);
  account_row("wasted travel (m)", [](const exp::AggregateResult& r) {
    return r.wasted_travel.mean();
  }, 0);
  accounting.print(std::cout);
  exp::maybe_dump_csv(flags, "ext_fault_accounting", accounting);

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
      if (!grid[ri][mi].failed_reps.empty()) {
        std::cerr << "note: " << grid[ri][mi].failed_reps.size()
                  << " repetition(s) failed at dropout="
                  << format_fixed(rates[ri], 2) << " for "
                  << incentive::mechanism_name(mechs[mi]) << "\n";
      }
    }
  }

  exp::warn_unconsumed(flags);
  return 0;
}
