// Statistical confirmation of the headline comparisons.
//
// The paper plots means over 100 runs but never reports variability. This
// bench replays the key pairwise comparisons (on-demand vs each baseline,
// for the metrics of Figs. 7-9) across R independent scenarios and reports
// Welch's t and Mann-Whitney U p-values, so "on-demand wins" comes with an
// uncertainty statement.
#include <iostream>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/significance.h"
#include "common/strings.h"
#include "exp/figures.h"

namespace {

using namespace mcs;

struct Metric {
  const char* label;
  double sim::CampaignMetrics::* field;
  bool higher_is_better;
};

}  // namespace

int main(int argc, char** argv) {
  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  exp::print_experiment_header(base,
                               "Significance of the mechanism comparisons");

  // Collect per-repetition campaign metrics for every mechanism on shared
  // scenario seeds (paired designs reduce variance, but we report the
  // unpaired tests the way an external replication would).
  const std::vector<Metric> metrics = {
      {"completeness %", &sim::CampaignMetrics::completeness_pct, true},
      {"avg measurements", &sim::CampaignMetrics::avg_measurements, true},
      {"meas. variance", &sim::CampaignMetrics::measurement_variance, false},
      {"$ / measurement", &sim::CampaignMetrics::avg_reward_per_measurement,
       false},
  };

  std::vector<incentive::MechanismKind> mechs = exp::all_mechanisms();
  std::vector<std::vector<sim::CampaignMetrics>> runs(mechs.size());
  for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
    exp::ExperimentConfig cfg = base;
    cfg.mechanism = mechs[mi];
    for (int rep = 0; rep < cfg.repetitions; ++rep) {
      // One campaign per (mechanism, rep); seeds match across mechanisms.
      exp::ExperimentConfig one = cfg;
      one.repetitions = 1;
      one.seed = cfg.seed + static_cast<std::uint64_t>(rep) * 1013904223ULL;
      runs[mi].push_back(exp::run_repetition(one, one.seed).campaign);
    }
  }

  TextTable table({"metric", "baseline", "on-demand mean", "baseline mean",
                   "welch t", "p (welch)", "p (mann-whitney)", "verdict"});
  for (const Metric& m : metrics) {
    std::vector<double> on_demand;
    for (const auto& c : runs[0]) on_demand.push_back(c.*(m.field));
    for (std::size_t mi = 1; mi < mechs.size(); ++mi) {
      std::vector<double> baseline;
      for (const auto& c : runs[mi]) baseline.push_back(c.*(m.field));
      const TestResult welch = welch_t_test(on_demand, baseline);
      const TestResult mw = mann_whitney_u(on_demand, baseline);
      const bool wins = m.higher_is_better ? welch.effect > 0 : welch.effect < 0;
      const char* verdict = welch.p_value < 0.01
                                ? (wins ? "on-demand wins (p<0.01)"
                                        : "baseline wins (p<0.01)")
                                : "no significant difference";
      table.add_row({m.label, incentive::mechanism_name(mechs[mi]),
                     format_fixed(mean_of(on_demand), 3),
                     format_fixed(mean_of(baseline), 3),
                     format_fixed(welch.statistic, 2),
                     format_fixed(welch.p_value, 5),
                     format_fixed(mw.p_value, 5), verdict});
    }
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "significance", table);
  exp::warn_unconsumed(flags);
  return 0;
}
