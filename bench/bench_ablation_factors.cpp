// Ablation: which demand factor earns its keep?
//
// The on-demand mechanism's demand indicator blends three criteria with AHP
// weights (paper: W = (0.648, 0.230, 0.122)). This bench re-runs the
// default campaign with the indicator restricted to single factors, equal
// weights, and the paper weights, holding everything else fixed — the
// design-choice evidence DESIGN.md calls out.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "incentive/on_demand_mechanism.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  exp::print_experiment_header(cfg, "Ablation: demand-indicator factors");

  struct Variant {
    const char* label;
    std::vector<double> weights;  // (deadline, progress, neighbors)
  };
  const std::vector<Variant> variants = {
      {"paper (AHP)", {}},  // empty -> Table I weights
      {"equal", {1.0 / 3, 1.0 / 3, 1.0 / 3}},
      {"deadline-only", {1.0, 0.0, 0.0}},
      {"progress-only", {0.0, 1.0, 0.0}},
      {"neighbors-only", {0.0, 0.0, 1.0}},
  };

  TextTable table({"indicator", "coverage %", "completeness %", "variance",
                   "$ / measurement", "total paid $"});
  for (const Variant& v : variants) {
    const exp::MechanismFactory factory =
        [&v, &cfg](const model::World& world,
                   Rng&) -> std::unique_ptr<incentive::IncentiveMechanism> {
      const auto rule = incentive::RewardRule::from_budget(
          cfg.mech_params.platform_budget, world.total_required(),
          cfg.mech_params.lambda, cfg.mech_params.demand_levels);
      auto indicator =
          v.weights.empty()
              ? incentive::DemandIndicator::with_paper_defaults()
              : incentive::DemandIndicator({}, v.weights);
      return std::make_unique<incentive::OnDemandMechanism>(
          std::move(indicator),
          incentive::DemandLevelScale(cfg.mech_params.demand_levels), rule);
    };
    const exp::AggregateResult r = exp::run_experiment_with(cfg, factory);
    table.add_row({v.label, format_fixed(r.coverage.mean(), 2),
                   format_fixed(r.completeness.mean(), 2),
                   format_fixed(r.measurement_variance.mean(), 2),
                   format_fixed(r.reward_per_measurement.mean(), 3),
                   format_fixed(r.total_paid.mean(), 2)});
  }
  table.print(std::cout);
  exp::maybe_dump_csv(flags, "ablation_factors", table);
  exp::warn_unconsumed(flags);
  return 0;
}
