// Checkpoint overhead: what one write (encode + tmp + fsync + rename + dir
// fsync + prune) and one load (read + CRC verify + parse + world rebuild)
// cost for a mid-campaign snapshot, and how the envelope encode/decode pair
// scales on its own. This bounds the price of `--checkpoint-every k` in a
// sweep: write cost is paid every k rounds per repetition, load cost only
// on a crash-recovery resume. The fsyncs dominate BM_CheckpointWrite on
// real disks, which is exactly the number the knob's consumer needs.
//
// Methodology: one fixed checkpoint fixture (30 users, 12 tasks, 4 rounds
// in, events recorded) is captured once; iterations reuse it, so every
// sample serializes an identical byte stream. bytes_per_second reports the
// envelope size throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/rng.h"
#include "incentive/mechanism.h"
#include "select/selector.h"
#include "sim/checkpoint.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

using namespace mcs;

sim::CampaignCheckpoint make_checkpoint() {
  sim::ScenarioParams p;
  p.num_users = 30;
  p.num_tasks = 12;
  p.required_measurements = 6;
  Rng rng(4242);
  model::World world = sim::generate_world(p, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                        world, {}, mech_rng);
  auto selector = select::make_selector(select::SelectorKind::kGreedy, 14);
  sim::SimulatorParams sp;
  sp.max_rounds = 15;
  sp.record_events = true;
  sim::Simulator s(std::move(world), std::move(mech), std::move(selector), sp);
  for (int k = 0; k < 4; ++k) s.step();
  return s.checkpoint();
}

std::string make_temp_dir() {
  std::string tmpl = "/tmp/mcs_bench_ckpt_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) std::abort();
  return tmpl;
}

void BM_CheckpointEncode(benchmark::State& state) {
  const sim::CampaignCheckpoint ckpt = make_checkpoint();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string envelope = sim::encode_checkpoint(ckpt);
    bytes = envelope.size();
    benchmark::DoNotOptimize(envelope.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_CheckpointEncode);

void BM_CheckpointDecode(benchmark::State& state) {
  const std::string envelope = sim::encode_checkpoint(make_checkpoint());
  for (auto _ : state) {
    const sim::CampaignCheckpoint back = sim::decode_checkpoint(envelope);
    benchmark::DoNotOptimize(back.next_round);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(envelope.size()) *
                          state.iterations());
}
BENCHMARK(BM_CheckpointDecode);

void BM_CheckpointWrite(benchmark::State& state) {
  const sim::CampaignCheckpoint ckpt = make_checkpoint();
  const std::string dir = make_temp_dir();
  sim::CheckpointWriter writer(dir, /*keep=*/2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.write(ckpt));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(sim::encode_checkpoint(ckpt).size()) *
      state.iterations());
  const int rc = std::system(("rm -rf " + dir).c_str());
  (void)rc;
}
BENCHMARK(BM_CheckpointWrite);

void BM_CheckpointLoad(benchmark::State& state) {
  const sim::CampaignCheckpoint ckpt = make_checkpoint();
  const std::string dir = make_temp_dir();
  {
    sim::CheckpointWriter writer(dir);
    writer.write(ckpt);
    writer.write(ckpt);
  }
  for (auto _ : state) {
    const sim::LoadedCheckpoint loaded = sim::load_latest_checkpoint(dir);
    benchmark::DoNotOptimize(loaded.generation);
  }
  const int rc = std::system(("rm -rf " + dir).c_str());
  (void)rc;
}
BENCHMARK(BM_CheckpointLoad);

}  // namespace
