// Microbenchmarks for the §V complexity claims: the DP solver is
// O(m^2 * 2^m), greedy is O(m^2), branch-and-bound sits in between in
// practice.
//
// Methodology: every size m is measured over a fixed panel of
// kInstancesPerSize seeded instances (the seed depends only on m and the
// panel slot), and one benchmark iteration solves the whole panel. A single
// unseeded draw per size made the series non-monotone — one lucky m=16
// instance whose budget pruned most subsets measured faster than m=14 —
// which the per-size averaging removes. `items_per_second` reports
// single-instance throughput.
//
// BM_DpSelector reuses one selector across iterations (the production
// shape: a simulator keeps its selector for the whole campaign, so the DP
// scratch arena is warm). BM_DpSelectorColdArena constructs a fresh
// selector per panel solve and therefore pays the arena allocation each
// time; the gap between the two is the allocation cost the arena removes.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "select/branch_bound_selector.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"
#include "select/instance.h"

namespace {

using namespace mcs;

constexpr int kInstancesPerSize = 5;

select::SelectionInstance make_instance(int m, std::uint64_t seed) {
  Rng rng(seed);
  select::SelectionInstance inst;
  inst.start = {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)};
  inst.travel = {};
  inst.time_budget = 1200.0;  // 2400 m of walking
  for (int i = 0; i < m; ++i) {
    inst.candidates.push_back({static_cast<TaskId>(i),
                               {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)},
                               rng.uniform(0.5, 2.5)});
  }
  return inst;
}

std::vector<select::SelectionInstance> make_panel(int m) {
  std::vector<select::SelectionInstance> panel;
  panel.reserve(kInstancesPerSize);
  for (int r = 0; r < kInstancesPerSize; ++r) {
    panel.push_back(make_instance(
        m, 0xabcd0000ULL + 257ULL * static_cast<std::uint64_t>(m) +
               static_cast<std::uint64_t>(r)));
  }
  return panel;
}

template <typename Selector>
void solve_panel(const Selector& s,
                 const std::vector<select::SelectionInstance>& panel) {
  for (const auto& inst : panel) {
    benchmark::DoNotOptimize(s.select(inst));
  }
}

void BM_DpSelector(benchmark::State& state) {
  const auto panel = make_panel(static_cast<int>(state.range(0)));
  const select::DpSelector dp(/*candidate_cap=*/20);
  for (auto _ : state) {
    solve_panel(dp, panel);
  }
  state.SetItemsProcessed(state.iterations() * kInstancesPerSize);
  state.SetComplexityN(state.range(0));
}

void BM_DpSelectorColdArena(benchmark::State& state) {
  const auto panel = make_panel(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const select::DpSelector dp(/*candidate_cap=*/20);
    solve_panel(dp, panel);
  }
  state.SetItemsProcessed(state.iterations() * kInstancesPerSize);
  state.SetComplexityN(state.range(0));
}

void BM_GreedySelector(benchmark::State& state) {
  const auto panel = make_panel(static_cast<int>(state.range(0)));
  const select::GreedySelector greedy;
  for (auto _ : state) {
    solve_panel(greedy, panel);
  }
  state.SetItemsProcessed(state.iterations() * kInstancesPerSize);
  state.SetComplexityN(state.range(0));
}

void BM_BranchBoundSelector(benchmark::State& state) {
  const auto panel = make_panel(static_cast<int>(state.range(0)));
  const select::BranchBoundSelector bb;
  for (auto _ : state) {
    solve_panel(bb, panel);
  }
  state.SetItemsProcessed(state.iterations() * kInstancesPerSize);
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_DpSelector)->DenseRange(4, 18, 2);
BENCHMARK(BM_DpSelectorColdArena)->Arg(14)->Arg(18);
BENCHMARK(BM_GreedySelector)->DenseRange(4, 18, 2)->Arg(64)->Arg(256);
BENCHMARK(BM_BranchBoundSelector)->DenseRange(4, 18, 2);
