// Microbenchmarks for the §V complexity claims: the DP solver is
// O(m^2 * 2^m), greedy is O(m^2), branch-and-bound sits in between in
// practice. Instances are random but fixed per size (seeded).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "select/branch_bound_selector.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"
#include "select/instance.h"

namespace {

using namespace mcs;

select::SelectionInstance make_instance(int m, std::uint64_t seed) {
  Rng rng(seed);
  select::SelectionInstance inst;
  inst.start = {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)};
  inst.travel = {};
  inst.time_budget = 1200.0;  // 2400 m of walking
  for (int i = 0; i < m; ++i) {
    inst.candidates.push_back({static_cast<TaskId>(i),
                               {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)},
                               rng.uniform(0.5, 2.5)});
  }
  return inst;
}

void BM_DpSelector(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto inst = make_instance(m, 0xabcd + static_cast<std::uint64_t>(m));
  const select::DpSelector dp(/*candidate_cap=*/20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.select(inst));
  }
  state.SetComplexityN(m);
}

void BM_GreedySelector(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto inst = make_instance(m, 0xabcd + static_cast<std::uint64_t>(m));
  const select::GreedySelector greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy.select(inst));
  }
  state.SetComplexityN(m);
}

void BM_BranchBoundSelector(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto inst = make_instance(m, 0xabcd + static_cast<std::uint64_t>(m));
  const select::BranchBoundSelector bb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb.select(inst));
  }
  state.SetComplexityN(m);
}

}  // namespace

BENCHMARK(BM_DpSelector)->DenseRange(4, 18, 2);
BENCHMARK(BM_GreedySelector)->DenseRange(4, 18, 2)->Arg(64)->Arg(256);
BENCHMARK(BM_BranchBoundSelector)->DenseRange(4, 18, 2);
