// Fig. 8 — number of measurements.
//  (a) average # of measurements per task (capped at phi) vs number of
//      users, at the end of the campaign;
//  (b) total new measurements delivered in each round at a fixed user count.
#include <iostream>

#include "common/config.h"
#include "exp/figures.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig base = exp::experiment_from_config(flags);
  const std::vector<int> users = exp::user_counts_from_config(flags);
  exp::print_experiment_header(base, "Fig. 8: number of measurements");

  exp::UserSweep sweep(base, users, exp::all_mechanisms());
  sweep.run();
  std::cout << "--- Fig. 8(a): average # of measurements per task ---\n";
  const TextTable fig8a = sweep.table(
      [](const exp::AggregateResult& r) { return r.avg_measurements.mean(); });
  fig8a.print(std::cout);

  exp::RoundSeries series(base, exp::all_mechanisms());
  series.run();
  std::cout << "\n--- Fig. 8(b): new measurements per round (users="
            << base.scenario.num_users << ") ---\n";
  const TextTable fig8b =
      series.table([](const exp::AggregateResult& r, std::size_t k) {
        return r.round_new_measurements[k].mean();
      });
  fig8b.print(std::cout);
  exp::maybe_dump_csv(flags, "fig8a_avg_measurements_vs_users", fig8a);
  exp::maybe_dump_csv(flags, "fig8b_new_measurements_vs_round", fig8b);
  exp::warn_unconsumed(flags);
  return 0;
}
