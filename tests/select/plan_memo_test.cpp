// PlanMemo's two reuse proofs and its accounting (select/plan_memo.h):
// a cached plan is returned only for a bit-equal instance (exact hit) or
// through the dominance fix-up for a provably-empty optimum; every
// constructed near-miss — same key, different reachable set — must take
// the exact fallback. Hashes only route to buckets; these tests steer keys
// through geometry, never through hash values.
#include "select/plan_memo.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.h"
#include "select/candidate_pool.h"

namespace mcs::select {
namespace {

// Three candidates clustered far in the upper-right of the area, so every
// start point inside the origin cell [0,250)^2 is "closer/farther" from all
// of them monotonically along the diagonal.
std::shared_ptr<const CandidatePool> make_pool() {
  std::vector<Candidate> c;
  c.push_back({TaskId{0}, {2000.0, 2000.0}, 2.0});
  c.push_back({TaskId{1}, {2200.0, 1900.0}, 3.0});
  c.push_back({TaskId{2}, {1900.0, 2300.0}, 1.5});
  return std::make_shared<CandidatePool>(std::move(c));
}

SelectionInstance make_inst(const std::shared_ptr<const CandidatePool>& pool,
                            const std::vector<std::int32_t>& rows,
                            geo::Point start, Seconds budget) {
  SelectionInstance inst;
  inst.start = start;
  inst.travel = geo::TravelModel{2.0, 0.002};
  inst.time_budget = budget;
  inst.pool = pool;
  for (const std::int32_t row : rows) {
    inst.candidates.push_back(
        pool->candidates()[static_cast<std::size_t>(row)]);
    inst.pool_index.push_back(row);
  }
  return inst;
}

Selection make_plan() {
  Selection s;
  s.order = {TaskId{1}, TaskId{0}};
  s.distance = 3100.0;
  s.reward = 5.0;
  s.cost = 6.2;
  return s;
}

TEST(PlanMemo, ExactHitCopiesTheOwnersPlan) {
  auto pool = make_pool();
  PlanMemoParams p;
  p.enabled = true;
  PlanMemo memo(p);
  memo.begin_round(*pool);

  const SelectionInstance owner = make_inst(pool, {0, 1}, {100.0, 100.0},
                                            3000.0);
  const PlanMemo::Ticket t0 = memo.classify(owner, /*exact_limit=*/14);
  ASSERT_EQ(t0.outcome, PlanMemo::Outcome::kOwner);
  ASSERT_NE(t0.entry, PlanMemo::kNoEntry);
  EXPECT_EQ(memo.stats().misses, 1);

  memo.publish(t0, make_plan(), /*feasible=*/true);

  // A bit-equal instance (another user at the same POI, same budget, same
  // contributed set) gets the cached plan verbatim.
  const SelectionInstance probe = make_inst(pool, {0, 1}, {100.0, 100.0},
                                            3000.0);
  const PlanMemo::Ticket t1 = memo.classify(probe, 14);
  ASSERT_EQ(t1.outcome, PlanMemo::Outcome::kExactHit);
  const Selection& cached = memo.cached_plan(t1);
  EXPECT_EQ(cached.order, make_plan().order);
  EXPECT_EQ(cached.distance, make_plan().distance);
  EXPECT_EQ(cached.reward, make_plan().reward);
  EXPECT_EQ(cached.cost, make_plan().cost);
  EXPECT_TRUE(memo.cached_feasible(t1));
  EXPECT_EQ(memo.stats().exact_hits, 1);
  EXPECT_EQ(memo.stats().misses, 1);
}

TEST(PlanMemo, DifferentIncludedSubsetIsAMiss) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);

  const PlanMemo::Ticket a =
      memo.classify(make_inst(pool, {0, 1}, {100.0, 100.0}, 3000.0), 14);
  memo.publish(a, make_plan(), true);
  // Same start, same budget — but this user already contributed to task 1,
  // so its included subset differs. Must not hit.
  const PlanMemo::Ticket b =
      memo.classify(make_inst(pool, {0, 2}, {100.0, 100.0}, 3000.0), 14);
  EXPECT_EQ(b.outcome, PlanMemo::Outcome::kOwner);
  EXPECT_EQ(memo.stats().exact_hits, 0);
  EXPECT_EQ(memo.stats().misses, 2);
}

TEST(PlanMemo, RepricedCandidateDegradesToAMiss) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);

  const PlanMemo::Ticket a =
      memo.classify(make_inst(pool, {0, 1}, {100.0, 100.0}, 3000.0), 14);
  memo.publish(a, make_plan(), true);

  // Same geometry, different published reward: prices are part of the
  // verification, so the memo must refuse the cached plan.
  SelectionInstance repriced = make_inst(pool, {0, 1}, {100.0, 100.0},
                                         3000.0);
  repriced.candidates[0].reward = 99.0;
  const PlanMemo::Ticket b = memo.classify(repriced, 14);
  EXPECT_EQ(b.outcome, PlanMemo::Outcome::kOwner);
  EXPECT_EQ(memo.stats().exact_hits, 0);
}

TEST(PlanMemo, DominanceFixupProvesTheEmptyPlan) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);

  // Owner at (240,240): the closest point of the origin cell to the
  // cluster. Tiny budget => exact solver returns the empty tour.
  const SelectionInstance owner =
      make_inst(pool, {0, 1, 2}, {240.0, 240.0}, 60.0);
  const PlanMemo::Ticket t0 = memo.classify(owner, 14);
  ASSERT_EQ(t0.outcome, PlanMemo::Outcome::kOwner);
  memo.publish(t0, Selection{}, /*feasible=*/true);

  // Prober at (10,10), same cell and budget bucket, strictly farther from
  // every candidate, budget no larger: every tour it could afford, the
  // owner could afford at no higher cost — its optimum is empty too.
  const SelectionInstance probe =
      make_inst(pool, {0, 1, 2}, {10.0, 10.0}, 60.0);
  PlanMemo::Ticket t1 = memo.classify(probe, 14);
  ASSERT_EQ(t1.outcome, PlanMemo::Outcome::kPending);
  const Selection* plan = nullptr;
  ASSERT_TRUE(memo.resolve(t1, &plan));
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(memo.stats().fixup_hits, 1);
  EXPECT_EQ(memo.stats().fallbacks, 0);
}

TEST(PlanMemo, NearMissSameSignatureDifferentReachableSetFallsBack) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);

  // Owner close enough (and funded enough) that its optimum is a real tour.
  const SelectionInstance owner =
      make_inst(pool, {0, 1, 2}, {240.0, 240.0}, 4000.0);
  const PlanMemo::Ticket t0 = memo.classify(owner, 14);
  ASSERT_EQ(t0.outcome, PlanMemo::Outcome::kOwner);
  memo.publish(t0, make_plan(), true);

  // Prober: same included subset (same signature, same budget bucket ⇒
  // same key), dominated start, smaller budget — its reachable set under
  // the travel budget is genuinely different, and the owner's optimum is
  // non-empty, so no fix-up argument applies. resolve() must send it to
  // the exact fallback.
  const SelectionInstance probe =
      make_inst(pool, {0, 1, 2}, {10.0, 10.0}, 3990.0);
  PlanMemo::Ticket t1 = memo.classify(probe, 14);
  ASSERT_EQ(t1.outcome, PlanMemo::Outcome::kPending);
  const Selection* plan = nullptr;
  EXPECT_FALSE(memo.resolve(t1, &plan));
  EXPECT_EQ(memo.stats().fixup_hits, 0);
  EXPECT_EQ(memo.stats().fallbacks, 1);
  // A fallback is a full solve: counted in misses too.
  EXPECT_EQ(memo.stats().misses, 2);
}

TEST(PlanMemo, HeuristicSelectorNeverTakesTheDominancePath) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);

  const PlanMemo::Ticket t0 =
      memo.classify(make_inst(pool, {0, 1, 2}, {240.0, 240.0}, 60.0), 14);
  memo.publish(t0, Selection{}, true);

  // exact_candidate_limit = 0 (a heuristic): the empty-optimum dominance
  // argument needs exactness on both sides, so the dominated prober must
  // classify as a fresh owner, never as pending.
  const PlanMemo::Ticket t1 =
      memo.classify(make_inst(pool, {0, 1, 2}, {10.0, 10.0}, 60.0),
                    /*exact_limit=*/0);
  EXPECT_EQ(t1.outcome, PlanMemo::Outcome::kOwner);
}

TEST(PlanMemo, ProberWithLargerBudgetIsNotDominated) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);

  const PlanMemo::Ticket t0 =
      memo.classify(make_inst(pool, {0, 1, 2}, {240.0, 240.0}, 60.0), 14);
  memo.publish(t0, Selection{}, true);

  // Farther start but a *larger* budget (same 60 s bucket): the prober
  // might afford a tour the owner could not — dominance must not trigger.
  const PlanMemo::Ticket t1 =
      memo.classify(make_inst(pool, {0, 1, 2}, {10.0, 10.0}, 110.0), 14);
  EXPECT_EQ(t1.outcome, PlanMemo::Outcome::kOwner);
}

TEST(PlanMemo, FullBucketStopsInsertionButStillSolves) {
  auto pool = make_pool();
  PlanMemoParams p;
  p.max_entries_per_key = 1;
  PlanMemo memo(p);
  memo.begin_round(*pool);

  const PlanMemo::Ticket a =
      memo.classify(make_inst(pool, {0, 1, 2}, {10.0, 10.0}, 3000.0), 14);
  ASSERT_EQ(a.outcome, PlanMemo::Outcome::kOwner);
  ASSERT_NE(a.entry, PlanMemo::kNoEntry);
  memo.publish(a, make_plan(), true);

  // Same key (same cell, same bucket, same subset) but a closer start (not
  // an exact hit, not dominated): the bucket is full, so this owner is not
  // cached — publish must be a harmless no-op.
  const PlanMemo::Ticket b =
      memo.classify(make_inst(pool, {0, 1, 2}, {200.0, 200.0}, 3000.0), 14);
  ASSERT_EQ(b.outcome, PlanMemo::Outcome::kOwner);
  EXPECT_EQ(b.entry, PlanMemo::kNoEntry);
  memo.publish(b, Selection{}, true);
  EXPECT_EQ(memo.stats().misses, 2);
}

TEST(PlanMemo, BeginRoundDropsEntriesButKeepsStats) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);
  const PlanMemo::Ticket a =
      memo.classify(make_inst(pool, {0, 1}, {100.0, 100.0}, 3000.0), 14);
  memo.publish(a, make_plan(), true);
  (void)memo.classify(make_inst(pool, {0, 1}, {100.0, 100.0}, 3000.0), 14);
  EXPECT_EQ(memo.stats().exact_hits, 1);

  memo.begin_round(*pool);
  // The identical instance is an owner again — last round's table is gone.
  const PlanMemo::Ticket c =
      memo.classify(make_inst(pool, {0, 1}, {100.0, 100.0}, 3000.0), 14);
  EXPECT_EQ(c.outcome, PlanMemo::Outcome::kOwner);
  EXPECT_EQ(memo.stats().rounds, 2);
  EXPECT_EQ(memo.stats().exact_hits, 1);  // cumulative across rounds
  EXPECT_EQ(memo.stats().misses, 2);      // one owner per round
  EXPECT_EQ(memo.stats().lookups(),
            memo.stats().hits() + memo.stats().misses);
}

TEST(PlanMemo, RejectsInstancesWithoutTheRoundPool) {
  auto pool = make_pool();
  PlanMemo memo({});
  memo.begin_round(*pool);
  SelectionInstance inst = make_inst(pool, {0}, {100.0, 100.0}, 600.0);
  inst.pool = nullptr;
  inst.pool_index.clear();
  EXPECT_THROW(memo.classify(inst, 14), Error);

  // A pool other than the one begin_round() announced is rejected too.
  auto other = make_pool();
  EXPECT_THROW(
      memo.classify(make_inst(other, {0}, {100.0, 100.0}, 600.0), 14),
      Error);
}

}  // namespace
}  // namespace mcs::select
