#include "select/dp_selector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "geo/distance.h"

namespace mcs::select {
namespace {

SelectionInstance basic(double budget_s = 600.0) {
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = budget_s;
  return inst;
}

TEST(DpSelector, EmptyInstanceReturnsEmptySelection) {
  const DpSelector dp;
  const Selection s = dp.select(basic());
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.profit(), 0.0);
}

TEST(DpSelector, SingleProfitableTask) {
  auto inst = basic();
  inst.candidates = {{0, {100, 0}, 1.0}};  // cost 0.2, reward 1.0
  const Selection s = DpSelector().select(inst);
  ASSERT_EQ(s.order.size(), 1u);
  EXPECT_EQ(s.order[0], 0);
  EXPECT_DOUBLE_EQ(s.distance, 100.0);
  EXPECT_DOUBLE_EQ(s.profit(), 0.8);
}

TEST(DpSelector, SkipsUnprofitableTask) {
  auto inst = basic();
  inst.candidates = {{0, {1000, 0}, 1.0}};  // cost 2.0 > reward 1.0
  const Selection s = DpSelector().select(inst);
  EXPECT_TRUE(s.empty());
}

TEST(DpSelector, RespectsTimeBudget) {
  auto inst = basic(100.0);                  // 200 m of walking
  inst.candidates = {{0, {150, 0}, 5.0},     // reachable
                     {1, {400, 0}, 50.0}};   // lucrative but out of reach
  const Selection s = DpSelector().select(inst);
  ASSERT_EQ(s.order.size(), 1u);
  EXPECT_EQ(s.order[0], 0);
  EXPECT_TRUE(is_feasible(inst, s));
}

TEST(DpSelector, FindsOptimalVisitingOrder) {
  // Tasks on a line: visiting 0 -> 1 -> 2 walks 300 m; any other order is
  // longer. All are worth selecting.
  auto inst = basic();
  inst.candidates = {{0, {100, 0}, 1.0}, {1, {200, 0}, 1.0}, {2, {300, 0}, 1.0}};
  const Selection s = DpSelector().select(inst);
  EXPECT_EQ(s.order, (std::vector<TaskId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(s.distance, 300.0);
}

TEST(DpSelector, TradesDetourAgainstReward) {
  // A detour task worth less than its marginal travel cost is excluded.
  auto inst = basic();
  inst.travel.cost_per_meter = 0.01;
  inst.candidates = {{0, {100, 0}, 2.0},
                     {1, {100, 300}, 2.9}};  // detour 300 m = $3.0 > $2.9
  const Selection s = DpSelector().select(inst);
  EXPECT_EQ(s.order, (std::vector<TaskId>{0}));
}

TEST(DpSelector, IncludesDetourWhenWorthIt) {
  auto inst = basic();
  inst.travel.cost_per_meter = 0.01;
  inst.candidates = {{0, {100, 0}, 2.0},
                     {1, {100, 300}, 3.1}};  // detour 300 m = $3.0 < $3.1
  const Selection s = DpSelector().select(inst);
  EXPECT_EQ(s.order.size(), 2u);
}

TEST(DpSelector, SelectionBookkeepingConsistent) {
  Rng rng(44);
  for (int trial = 0; trial < 30; ++trial) {
    auto inst = basic(rng.uniform(200.0, 1500.0));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < m; ++i) {
      inst.candidates.push_back(
          {i, {rng.uniform(0, 2000), rng.uniform(0, 2000)}, rng.uniform(0.5, 2.5)});
    }
    const Selection s = DpSelector().select(inst);
    const Selection replay = evaluate_order(inst, s.order);
    EXPECT_NEAR(replay.distance, s.distance, 1e-6);
    EXPECT_NEAR(replay.reward, s.reward, 1e-9);
    EXPECT_NEAR(replay.cost, s.cost, 1e-9);
    EXPECT_TRUE(is_feasible(inst, s));
    EXPECT_GE(s.profit(), 0.0);
  }
}

TEST(DpSelector, CapValidation) {
  EXPECT_THROW(DpSelector(0), Error);
  EXPECT_THROW(DpSelector(21), Error);
  EXPECT_NO_THROW(DpSelector(1));
  EXPECT_NO_THROW(DpSelector(20));
}

TEST(PruneCandidates, DropsUnreachable) {
  auto inst = basic(100.0);  // 200 m budget
  inst.candidates = {{0, {150, 0}, 1.0}, {1, {500, 0}, 9.0}};
  const auto pruned = prune_candidates(inst, 10);
  ASSERT_EQ(pruned.candidates.size(), 1u);
  EXPECT_EQ(pruned.candidates[0].task, 0);
}

TEST(PruneCandidates, KeepsBestBySoloProfit) {
  auto inst = basic(10000.0);
  // Task 1 has the best solo profit, task 2 the worst.
  inst.candidates = {{0, {500, 0}, 1.5}, {1, {100, 0}, 2.5}, {2, {900, 0}, 1.0}};
  const auto pruned = prune_candidates(inst, 2);
  ASSERT_EQ(pruned.candidates.size(), 2u);
  std::vector<TaskId> kept{pruned.candidates[0].task, pruned.candidates[1].task};
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(kept, (std::vector<TaskId>{0, 1}));
}

TEST(PruneCandidates, NoopWhenUnderCap) {
  auto inst = basic();
  inst.candidates = {{0, {10, 0}, 1.0}};
  const auto pruned = prune_candidates(inst, 5);
  EXPECT_EQ(pruned.candidates.size(), 1u);
}

TEST(DpSelector, ZeroBudgetSelectsNothing) {
  auto inst = basic(0.0);
  inst.candidates = {{0, {1, 0}, 5.0}};
  EXPECT_TRUE(DpSelector().select(inst).empty());
}

TEST(DpSelector, ColocatedTaskIsFree) {
  auto inst = basic(0.0);
  inst.candidates = {{0, {0, 0}, 5.0}};  // at the start location
  const Selection s = DpSelector().select(inst);
  ASSERT_EQ(s.order.size(), 1u);
  EXPECT_DOUBLE_EQ(s.profit(), 5.0);
}

}  // namespace
}  // namespace mcs::select
