#include "select/beam_search_selector.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"

namespace mcs::select {
namespace {

SelectionInstance random_instance(Rng& rng, int m, double budget_s) {
  SelectionInstance inst;
  inst.start = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
  inst.travel = {};
  inst.time_budget = budget_s;
  for (int i = 0; i < m; ++i) {
    inst.candidates.push_back(
        {i, {rng.uniform(0, 2000), rng.uniform(0, 2000)}, rng.uniform(0.5, 2.5)});
  }
  return inst;
}

TEST(BeamSearch, EmptyInstance) {
  EXPECT_TRUE(BeamSearchSelector().select({}).empty());
}

TEST(BeamSearch, WidthValidation) {
  EXPECT_THROW(BeamSearchSelector(0), Error);
  EXPECT_NO_THROW(BeamSearchSelector(1));
}

TEST(BeamSearch, HugeWidthIsExact) {
  // With width >= number of reachable states the beam is exhaustive.
  Rng rng(91);
  const BeamSearchSelector beam(100000);
  const DpSelector dp;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = random_instance(rng, 7, rng.uniform(200, 1200));
    EXPECT_NEAR(beam.select(inst).profit(), dp.select(inst).profit(), 1e-9)
        << "trial " << trial;
  }
}

TEST(BeamSearch, AlwaysFeasibleAndNonNegative) {
  Rng rng(92);
  const BeamSearchSelector beam(8);
  for (int trial = 0; trial < 60; ++trial) {
    const auto inst = random_instance(
        rng, static_cast<int>(rng.uniform_int(0, 14)), rng.uniform(0, 1500));
    const Selection s = beam.select(inst);
    EXPECT_TRUE(is_feasible(inst, s));
    EXPECT_GE(s.profit(), 0.0);
    const Selection replay = evaluate_order(inst, s.order);
    EXPECT_NEAR(replay.profit(), s.profit(), 1e-9);
  }
}

TEST(BeamSearch, NeverExceedsOptimalAndImprovesWithWidth) {
  Rng rng(93);
  const DpSelector dp;
  for (int trial = 0; trial < 25; ++trial) {
    const auto inst = random_instance(rng, 10, rng.uniform(400, 1500));
    const double opt = dp.select(inst).profit();
    double prev = -1.0;
    for (const int width : {1, 4, 16, 64}) {
      const double p = BeamSearchSelector(width).select(inst).profit();
      EXPECT_LE(p, opt + 1e-9);
      // Monotone improvement in width is not guaranteed state-by-state, but
      // wider beams keep strictly more states; allow tiny tolerance.
      EXPECT_GE(p, prev - 1e-6);
      prev = p;
    }
  }
}

TEST(BeamSearch, TypicallyMatchesOrBeatsGreedy) {
  // Beam search with a non-trivial width should on aggregate recover at
  // least greedy's profit (it explores strictly more routes per step).
  Rng rng(94);
  const BeamSearchSelector beam(16);
  const GreedySelector greedy;
  double beam_total = 0.0;
  double greedy_total = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto inst = random_instance(rng, 12, 1000.0);
    beam_total += beam.select(inst).profit();
    greedy_total += greedy.select(inst).profit();
  }
  EXPECT_GE(beam_total, greedy_total);
}

TEST(BeamSearch, RejectsOversizedMask) {
  Rng rng(95);
  auto inst = random_instance(rng, 33, 100000.0);
  EXPECT_THROW(BeamSearchSelector(4).select(inst), Error);
}

}  // namespace
}  // namespace mcs::select
