#include "select/travel_graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::select {
namespace {

SelectionInstance square_instance() {
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = 1000.0;
  inst.candidates = {{10, {100, 0}, 1.0},
                     {11, {100, 100}, 2.0},
                     {12, {0, 100}, 0.5}};
  return inst;
}

TEST(TravelGraph, DistancesAndRewards) {
  const TravelGraph g(square_instance());
  EXPECT_EQ(g.num_candidates(), 3u);
  EXPECT_DOUBLE_EQ(g.dist(0, 1), 100.0);  // start -> candidate 0
  EXPECT_DOUBLE_EQ(g.dist(1, 2), 100.0);
  EXPECT_DOUBLE_EQ(g.dist(0, 2), std::sqrt(2.0) * 100.0);
  EXPECT_DOUBLE_EQ(g.dist(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(g.reward(0), 0.0);  // start has no reward
  EXPECT_DOUBLE_EQ(g.reward(1), 1.0);
  EXPECT_DOUBLE_EQ(g.reward(2), 2.0);
}

TEST(TravelGraph, Symmetry) {
  const TravelGraph g(square_instance());
  for (std::size_t i = 0; i <= 3; ++i) {
    for (std::size_t j = 0; j <= 3; ++j) {
      EXPECT_DOUBLE_EQ(g.dist(i, j), g.dist(j, i));
    }
  }
}

TEST(TravelGraph, TaskIds) {
  const TravelGraph g(square_instance());
  EXPECT_EQ(g.task(1), 10);
  EXPECT_EQ(g.task(2), 11);
  EXPECT_EQ(g.task(3), 12);
  EXPECT_THROW(g.task(0), Error);
  EXPECT_THROW(g.task(4), Error);
}

TEST(TravelGraph, MinIncomingEdges) {
  const TravelGraph g(square_instance());
  // Candidate 0 at (100,0): closest other node is the start (100) or
  // candidate 1 (100) -> 100.
  EXPECT_DOUBLE_EQ(g.min_incoming(1), 100.0);
  EXPECT_DOUBLE_EQ(g.min_incoming(2), 100.0);
  EXPECT_DOUBLE_EQ(g.min_incoming(3), 100.0);
}

TEST(TravelGraph, EmptyInstance) {
  SelectionInstance inst;
  inst.start = {5, 5};
  const TravelGraph g(inst);
  EXPECT_EQ(g.num_candidates(), 0u);
}

}  // namespace
}  // namespace mcs::select
