// Equivalence pins for the optimized DpSelector (scratch arena, bit
// iteration, fused best scan, admissible state prune, shared candidate
// pool): the returned Selection must be IDENTICAL — same visiting order and
// bit-identical economics, not merely the same profit — to the
// straightforward pre-optimization DP, reproduced verbatim below as the
// oracle. Profits are additionally cross-checked against the independent
// exact solvers (branch-and-bound, brute force).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "geo/distance.h"
#include "select/branch_bound_selector.h"
#include "select/brute_force_selector.h"
#include "select/candidate_pool.h"
#include "select/dp_selector.h"
#include "select/travel_graph.h"

namespace mcs::select {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation: the seed-repo DP (allocating, unpruned, separate
// best-profit pass), kept verbatim so optimizations can be diffed against
// the exact bits it produces.
// ---------------------------------------------------------------------------

SelectionInstance reference_prune(const SelectionInstance& instance, int cap) {
  SelectionInstance pruned = instance;
  pruned.pool.reset();
  pruned.pool_index.clear();
  const Meters budget = instance.distance_budget();
  std::erase_if(pruned.candidates, [&](const Candidate& c) {
    return geo::euclidean(instance.start, c.location) > budget;
  });
  if (pruned.candidates.size() <= static_cast<std::size_t>(cap)) return pruned;

  std::vector<std::size_t> idx(pruned.candidates.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto score = [&](std::size_t i) {
    const Candidate& c = pruned.candidates[i];
    return c.reward - instance.travel.cost_for(
                          geo::euclidean(instance.start, c.location));
  };
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return score(a) > score(b); });
  idx.resize(static_cast<std::size_t>(cap));
  std::sort(idx.begin(), idx.end());
  std::vector<Candidate> kept;
  kept.reserve(idx.size());
  for (const std::size_t i : idx) kept.push_back(pruned.candidates[i]);
  pruned.candidates = std::move(kept);
  return pruned;
}

Selection reference_dp_select(const SelectionInstance& instance, int cap) {
  const SelectionInstance inst = reference_prune(instance, cap);
  const std::size_t m = inst.candidates.size();
  if (m == 0) return {};

  const TravelGraph g(inst);
  const Meters dist_budget = inst.distance_budget();
  const std::size_t num_masks = std::size_t{1} << m;

  std::vector<Meters> dp(num_masks * m, kInf);
  std::vector<std::int8_t> parent(num_masks * m, -1);

  for (std::size_t j = 0; j < m; ++j) {
    const Meters d = g.dist(0, j + 1);
    if (d <= dist_budget) {
      const std::size_t mask = std::size_t{1} << j;
      dp[mask * m + j] = d;
      parent[mask * m + j] = 0;
    }
  }

  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      const Meters cur = dp[mask * m + j];
      if (cur == kInf) continue;
      for (std::size_t q = 0; q < m; ++q) {
        if (mask & (std::size_t{1} << q)) continue;
        const Meters next = cur + g.dist(j + 1, q + 1);
        if (next > dist_budget) continue;
        const std::size_t nmask = mask | (std::size_t{1} << q);
        if (next < dp[nmask * m + q]) {
          dp[nmask * m + q] = next;
          parent[nmask * m + q] = static_cast<std::int8_t>(j + 1);
        }
      }
    }
  }

  std::vector<Money> subset_reward(num_masks, 0.0);
  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    const std::size_t low = mask & (~mask + 1);
    const std::size_t j = static_cast<std::size_t>(std::countr_zero(mask));
    subset_reward[mask] = subset_reward[mask ^ low] + g.reward(j + 1);
  }

  Money best_profit = 0.0;
  std::size_t best_mask = 0;
  std::size_t best_end = 0;
  Meters best_dist = 0.0;
  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    Meters shortest = kInf;
    std::size_t end = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      if (dp[mask * m + j] < shortest) {
        shortest = dp[mask * m + j];
        end = j;
      }
    }
    if (shortest == kInf) continue;
    const Money profit = subset_reward[mask] - inst.travel.cost_for(shortest);
    if (profit > best_profit) {
      best_profit = profit;
      best_mask = mask;
      best_end = end;
      best_dist = shortest;
    }
  }

  if (best_mask == 0) return {};

  Selection s;
  s.distance = best_dist;
  s.reward = subset_reward[best_mask];
  s.cost = inst.travel.cost_for(best_dist);
  std::vector<TaskId> reversed;
  std::size_t mask = best_mask;
  std::size_t j = best_end;
  while (true) {
    reversed.push_back(g.task(j + 1));
    const std::int8_t p = parent[mask * m + j];
    mask ^= (std::size_t{1} << j);
    if (p == 0) break;
    j = static_cast<std::size_t>(p - 1);
  }
  s.order.assign(reversed.rbegin(), reversed.rend());
  return s;
}

// ---------------------------------------------------------------------------

SelectionInstance random_instance(Rng& rng, int m, double budget_s,
                                  double cost_per_meter, double area) {
  SelectionInstance inst;
  inst.start = {rng.uniform(0.0, area), rng.uniform(0.0, area)};
  inst.travel.cost_per_meter = cost_per_meter;
  inst.time_budget = budget_s;
  for (int i = 0; i < m; ++i) {
    inst.candidates.push_back({static_cast<TaskId>(i),
                               {rng.uniform(0.0, area), rng.uniform(0.0, area)},
                               rng.uniform(0.25, 2.5)});
  }
  return inst;
}

void expect_selection_identical(const Selection& got, const Selection& want,
                                const char* what) {
  EXPECT_EQ(got.order, want.order) << what;
  // Bit-identical economics: EXPECT_EQ on doubles, not EXPECT_NEAR.
  EXPECT_EQ(got.distance, want.distance) << what;
  EXPECT_EQ(got.reward, want.reward) << what;
  EXPECT_EQ(got.cost, want.cost) << what;
}

TEST(DpEquivalence, OptimizedDpBitIdenticalToReferenceOracle) {
  // One selector reused across every trial: a fresh arena per instance and
  // a warm arena must be indistinguishable.
  const DpSelector dp(14);
  const BranchBoundSelector bb;
  const BruteForceSelector brute(9);

  const struct {
    int m;
    double budget_s;
    double cost_per_meter;
  } grid[] = {
      {1, 600.0, 0.002},  {3, 600.0, 0.002},  {5, 600.0, 0.002},
      {7, 200.0, 0.002},  {8, 1200.0, 0.004}, {9, 900.0, 0.01},
      {11, 600.0, 0.002}, {13, 1200.0, 0.002}, {14, 1500.0, 0.002},
      {16, 900.0, 0.002},  // above the cap: pruning path
  };
  for (const auto& sc : grid) {
    Rng rng(0x5e1ec70aULL + static_cast<std::uint64_t>(sc.m));
    const int trials = sc.m >= 13 ? 8 : 25;
    for (int t = 0; t < trials; ++t) {
      const SelectionInstance inst =
          random_instance(rng, sc.m, sc.budget_s, sc.cost_per_meter, 2500.0);
      const Selection ref = reference_dp_select(inst, 14);
      expect_selection_identical(dp.select(inst), ref, "optimized vs oracle");
      EXPECT_NEAR(ref.profit(), bb.select(inst).profit(), 1e-9)
          << "m=" << sc.m << " trial=" << t;
      if (sc.m <= 9) {
        EXPECT_NEAR(ref.profit(), brute.select(inst).profit(), 1e-9)
            << "m=" << sc.m << " trial=" << t;
      }
    }
  }
}

TEST(DpEquivalence, SharedPoolIsBitInvisible) {
  // A pooled instance (the simulator's per-round shape, including the
  // has-contributed subset filter) must select exactly what the poolless
  // instance selects — for the DP and for branch-and-bound, whose
  // TravelGraph also reads the pool.
  const DpSelector dp(14);
  const BranchBoundSelector bb;
  Rng rr(0xbeefULL);
  for (int t = 0; t < 30; ++t) {
    const int round_m = static_cast<int>(rr.uniform_int(2, 14));
    SelectionInstance round =
        random_instance(rr, round_m, rr.uniform(300.0, 1200.0), 0.002, 2500.0);
    auto pool = std::make_shared<const CandidatePool>(round.candidates);

    // Subset-filter candidates like has_contributed would.
    SelectionInstance plain;
    plain.start = {rr.uniform(0.0, 2500.0), rr.uniform(0.0, 2500.0)};
    plain.travel = round.travel;
    plain.time_budget = round.time_budget;
    SelectionInstance pooled = plain;
    pooled.pool = pool;
    for (int i = 0; i < round_m; ++i) {
      if (rr.uniform(0.0, 1.0) < 0.3) continue;  // "already contributed"
      plain.candidates.push_back(round.candidates[static_cast<std::size_t>(i)]);
      pooled.candidates.push_back(round.candidates[static_cast<std::size_t>(i)]);
      pooled.pool_index.push_back(i);
    }

    expect_selection_identical(dp.select(pooled), dp.select(plain),
                               "pooled vs plain dp");
    expect_selection_identical(bb.select(pooled), bb.select(plain),
                               "pooled vs plain bb");
    expect_selection_identical(
        dp.select(pooled), reference_dp_select(plain, 14), "pooled vs oracle");
  }
}

TEST(DpEquivalence, ArenaCarriesNoStateBetweenInstances) {
  // Solving a large instance then a small one (and vice versa) out of the
  // same arena must match fresh selectors exactly.
  const DpSelector reused(14);
  Rng rng(0xa12e4aULL);
  std::vector<SelectionInstance> seq;
  for (int t = 0; t < 12; ++t) {
    const int m = static_cast<int>(rng.uniform_int(1, 14));
    seq.push_back(random_instance(rng, m, rng.uniform(200.0, 1500.0), 0.002,
                                  2500.0));
  }
  for (const auto& inst : seq) {
    const DpSelector fresh(14);
    expect_selection_identical(reused.select(inst), fresh.select(inst),
                               "reused vs fresh arena");
  }
}

TEST(PruneCandidatesInto, MatchesReferencePrune) {
  Rng rng(0x9871ULL);
  for (int t = 0; t < 20; ++t) {
    const int m = static_cast<int>(rng.uniform_int(1, 24));
    const SelectionInstance inst =
        random_instance(rng, m, rng.uniform(100.0, 1200.0), 0.002, 2500.0);
    const SelectionInstance want = reference_prune(inst, 10);
    std::vector<Candidate> kept;
    std::vector<std::int32_t> kept_rows;
    prune_candidates_into(inst, 10, kept, kept_rows);
    ASSERT_EQ(kept.size(), want.candidates.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(kept[i].task, want.candidates[i].task);
      EXPECT_EQ(kept[i].reward, want.candidates[i].reward);
    }
    EXPECT_TRUE(kept_rows.empty());  // no pool on these instances
  }
}

}  // namespace
}  // namespace mcs::select
