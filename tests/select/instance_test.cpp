#include "select/instance.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::select {
namespace {

SelectionInstance line_instance() {
  // Start at origin; three tasks on the x axis at 100, 200, 300 meters.
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};  // 2 m/s, 0.002 $/m
  inst.time_budget = 600.0;
  inst.candidates = {{0, {100, 0}, 1.0}, {1, {200, 0}, 1.5}, {2, {300, 0}, 2.0}};
  return inst;
}

TEST(SelectionInstance, DistanceBudget) {
  const auto inst = line_instance();
  EXPECT_DOUBLE_EQ(inst.distance_budget(), 1200.0);
}

TEST(Selection, ProfitArithmetic) {
  Selection s;
  s.reward = 3.0;
  s.cost = 1.2;
  EXPECT_DOUBLE_EQ(s.profit(), 1.8);
  EXPECT_TRUE(s.empty());
  s.order.push_back(0);
  EXPECT_FALSE(s.empty());
}

TEST(EvaluateOrder, WalksInOrder) {
  const auto inst = line_instance();
  const Selection s = evaluate_order(inst, {0, 1, 2});
  EXPECT_DOUBLE_EQ(s.distance, 300.0);
  EXPECT_DOUBLE_EQ(s.reward, 4.5);
  EXPECT_DOUBLE_EQ(s.cost, 0.6);
  EXPECT_DOUBLE_EQ(s.profit(), 3.9);
}

TEST(EvaluateOrder, OrderMatters) {
  const auto inst = line_instance();
  const Selection bad = evaluate_order(inst, {2, 0, 1});
  EXPECT_DOUBLE_EQ(bad.distance, 300.0 + 200.0 + 100.0);
  EXPECT_DOUBLE_EQ(bad.reward, 4.5);  // same set, same reward
}

TEST(EvaluateOrder, EmptyOrder) {
  const auto inst = line_instance();
  const Selection s = evaluate_order(inst, {});
  EXPECT_DOUBLE_EQ(s.distance, 0.0);
  EXPECT_DOUBLE_EQ(s.profit(), 0.0);
}

TEST(EvaluateOrder, RejectsUnknownAndRepeatedTasks) {
  const auto inst = line_instance();
  EXPECT_THROW(evaluate_order(inst, {7}), Error);
  EXPECT_THROW(evaluate_order(inst, {0, 0}), Error);
}

TEST(IsFeasible, BudgetBoundary) {
  const auto inst = line_instance();
  Selection s;
  s.distance = 1200.0;  // exactly the budget (600 s at 2 m/s)
  EXPECT_TRUE(is_feasible(inst, s));
  s.distance = 1200.1;
  EXPECT_FALSE(is_feasible(inst, s));
}

}  // namespace
}  // namespace mcs::select
