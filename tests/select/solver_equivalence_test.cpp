// Cross-solver properties: on random instances small enough for the
// exhaustive oracle, DP == brute force == branch-and-bound (same optimal
// profit), and every solver dominates greedy.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "select/branch_bound_selector.h"
#include "select/brute_force_selector.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"
#include "select/selector.h"

namespace mcs::select {
namespace {

struct Scenario {
  int num_candidates;
  double budget_s;
  double cost_per_meter;
};

class SolverEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(SolverEquivalence, OptimalSolversAgreeAndDominateGreedy) {
  const Scenario sc = GetParam();
  const DpSelector dp(14);
  const BruteForceSelector brute(9);
  const BranchBoundSelector bb;
  const GreedySelector greedy;

  Rng rng(static_cast<std::uint64_t>(sc.num_candidates) * 1000 +
          static_cast<std::uint64_t>(sc.budget_s));
  for (int trial = 0; trial < 40; ++trial) {
    SelectionInstance inst;
    inst.start = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
    inst.travel.cost_per_meter = sc.cost_per_meter;
    inst.time_budget = sc.budget_s;
    for (int i = 0; i < sc.num_candidates; ++i) {
      inst.candidates.push_back(
          {i, {rng.uniform(0, 2000), rng.uniform(0, 2000)}, rng.uniform(0.25, 2.5)});
    }

    const Selection s_dp = dp.select(inst);
    const Selection s_bf = brute.select(inst);
    const Selection s_bb = bb.select(inst);
    const Selection s_gr = greedy.select(inst);

    // All exact solvers find the same optimum.
    EXPECT_NEAR(s_dp.profit(), s_bf.profit(), 1e-9) << "trial " << trial;
    EXPECT_NEAR(s_bb.profit(), s_bf.profit(), 1e-9) << "trial " << trial;
    // The optimum dominates the heuristic.
    EXPECT_GE(s_dp.profit(), s_gr.profit() - 1e-9) << "trial " << trial;
    // Everything is feasible.
    EXPECT_TRUE(is_feasible(inst, s_dp));
    EXPECT_TRUE(is_feasible(inst, s_bf));
    EXPECT_TRUE(is_feasible(inst, s_bb));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverEquivalence,
    ::testing::Values(Scenario{3, 600.0, 0.002}, Scenario{5, 600.0, 0.002},
                      Scenario{7, 600.0, 0.002}, Scenario{7, 1500.0, 0.002},
                      Scenario{7, 200.0, 0.002}, Scenario{6, 900.0, 0.01},
                      Scenario{8, 1200.0, 0.004}));

TEST(SolverEquivalence, DpAndBranchBoundAgreeOnLargerInstances) {
  // Beyond brute-force reach but still exact for both.
  const DpSelector dp(14);
  const BranchBoundSelector bb;
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    SelectionInstance inst;
    inst.start = {1000, 1000};
    inst.travel = {};
    inst.time_budget = 1200.0;
    for (int i = 0; i < 13; ++i) {
      inst.candidates.push_back(
          {i, {rng.uniform(0, 3000), rng.uniform(0, 3000)}, rng.uniform(0.5, 2.5)});
    }
    EXPECT_NEAR(dp.select(inst).profit(), bb.select(inst).profit(), 1e-9)
        << "trial " << trial;
  }
}

TEST(BruteForce, RefusesOversizedInstances) {
  const BruteForceSelector brute(4);
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = 100.0;
  for (int i = 0; i < 5; ++i) inst.candidates.push_back({i, {1, 1}, 1.0});
  EXPECT_THROW(brute.select(inst), Error);
}

TEST(SelectorFactory, BuildsEveryKind) {
  for (const auto kind :
       {SelectorKind::kDp, SelectorKind::kGreedy, SelectorKind::kGreedy2Opt,
        SelectorKind::kBranchBound, SelectorKind::kBruteForce}) {
    const auto s = make_selector(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->name(), selector_name(kind));
  }
}

TEST(SelectorFactory, ParseNames) {
  EXPECT_EQ(parse_selector("dp"), SelectorKind::kDp);
  EXPECT_EQ(parse_selector("GREEDY"), SelectorKind::kGreedy);
  EXPECT_EQ(parse_selector("greedy+2opt"), SelectorKind::kGreedy2Opt);
  EXPECT_EQ(parse_selector("bb"), SelectorKind::kBranchBound);
  EXPECT_EQ(parse_selector("brute-force"), SelectorKind::kBruteForce);
  EXPECT_THROW(parse_selector("oracle"), Error);
}

}  // namespace
}  // namespace mcs::select
