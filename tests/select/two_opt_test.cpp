#include "select/two_opt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace mcs::select {
namespace {

SelectionInstance square_instance() {
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = 1e9;
  inst.candidates = {{0, {100, 0}, 1.0},
                     {1, {100, 100}, 1.0},
                     {2, {0, 100}, 1.0}};
  return inst;
}

TEST(TwoOpt, UncrossesAZigzag) {
  const auto inst = square_instance();
  // 0 -> 2 -> 1 walks 100 + sqrt(2)*100 + 100; the improved order
  // 0 -> 1 -> 2 walks 300.
  const Selection zigzag = evaluate_order(inst, {0, 2, 1});
  const Selection improved = improve_two_opt(inst, zigzag);
  EXPECT_LT(improved.distance, zigzag.distance);
  EXPECT_DOUBLE_EQ(improved.distance, 300.0);
  EXPECT_EQ(improved.order, (std::vector<TaskId>{0, 1, 2}));
}

TEST(TwoOpt, PreservesTaskSetAndReward) {
  const auto inst = square_instance();
  const Selection before = evaluate_order(inst, {2, 0, 1});
  const Selection after = improve_two_opt(inst, before);
  EXPECT_DOUBLE_EQ(after.reward, before.reward);
  auto a = before.order;
  auto b = after.order;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(TwoOpt, ShortOrdersPassThrough) {
  const auto inst = square_instance();
  const Selection two = evaluate_order(inst, {0, 1});
  const Selection improved = improve_two_opt(inst, two);
  EXPECT_EQ(improved.order, two.order);
  const Selection empty = evaluate_order(inst, {});
  EXPECT_TRUE(improve_two_opt(inst, empty).empty());
}

TEST(TwoOpt, NeverLengthensRandomTours) {
  Rng rng(66);
  for (int trial = 0; trial < 60; ++trial) {
    SelectionInstance inst;
    inst.start = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
    inst.travel = {};
    inst.time_budget = 1e9;
    const int m = static_cast<int>(rng.uniform_int(3, 10));
    std::vector<TaskId> order;
    for (int i = 0; i < m; ++i) {
      inst.candidates.push_back(
          {i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, 1.0});
      order.push_back(i);
    }
    rng.shuffle(order);
    const Selection before = evaluate_order(inst, order);
    const Selection after = improve_two_opt(inst, before);
    EXPECT_LE(after.distance, before.distance + 1e-9);
    EXPECT_DOUBLE_EQ(after.reward, before.reward);
  }
}

TEST(TwoOpt, ResultIsTwoOptLocalOptimum) {
  // Re-running 2-opt on its own output must not improve further.
  Rng rng(67);
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = 1e9;
  std::vector<TaskId> order;
  for (int i = 0; i < 8; ++i) {
    inst.candidates.push_back(
        {i, {rng.uniform(0, 500), rng.uniform(0, 500)}, 1.0});
    order.push_back(i);
  }
  const Selection once = improve_two_opt(inst, evaluate_order(inst, order));
  const Selection twice = improve_two_opt(inst, once);
  EXPECT_NEAR(twice.distance, once.distance, 1e-9);
}

}  // namespace
}  // namespace mcs::select
