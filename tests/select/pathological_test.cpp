// Degenerate and adversarial geometries for every solver: collinear tasks,
// exact duplicates, co-located start, zero rewards, all-unprofitable sets,
// and zero-cost travel. Every solver must stay feasible, rational and (for
// the exact ones) agree.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "select/beam_search_selector.h"
#include "select/branch_bound_selector.h"
#include "select/brute_force_selector.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"
#include "select/ils_selector.h"

namespace mcs::select {
namespace {

std::vector<const TaskSelector*> all_solvers() {
  static const DpSelector dp;
  static const GreedySelector greedy;
  static const GreedySelector greedy2(true);
  static const BranchBoundSelector bb;
  static const BeamSearchSelector beam;
  static const IlsSelector ils(10, 3);
  return {&dp, &greedy, &greedy2, &bb, &beam, &ils};
}

SelectionInstance base_instance() {
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = 600.0;
  return inst;
}

void expect_sane(const SelectionInstance& inst, const TaskSelector& solver) {
  const Selection s = solver.select(inst);
  EXPECT_TRUE(is_feasible(inst, s)) << solver.name();
  EXPECT_GE(s.profit(), -1e-9) << solver.name();
  const Selection replay = evaluate_order(inst, s.order);
  EXPECT_NEAR(replay.profit(), s.profit(), 1e-9) << solver.name();
}

TEST(Pathological, AllTasksAtTheStartLocation) {
  auto inst = base_instance();
  for (int i = 0; i < 6; ++i) inst.candidates.push_back({i, {0, 0}, 1.0});
  for (const auto* solver : all_solvers()) {
    const Selection s = solver->select(inst);
    // Free money: every solver must take all six.
    EXPECT_EQ(s.order.size(), 6u) << solver->name();
    EXPECT_NEAR(s.profit(), 6.0, 1e-9) << solver->name();
    EXPECT_NEAR(s.distance, 0.0, 1e-9) << solver->name();
  }
}

TEST(Pathological, ExactDuplicateTaskLocations) {
  auto inst = base_instance();
  inst.candidates = {{0, {100, 0}, 1.0}, {1, {100, 0}, 0.6}, {2, {100, 0}, 0.4}};
  for (const auto* solver : all_solvers()) {
    const Selection s = solver->select(inst);
    // One trip, three rewards: optimal takes all (only 0.2 travel cost).
    EXPECT_EQ(s.order.size(), 3u) << solver->name();
    EXPECT_NEAR(s.profit(), 2.0 - 0.2, 1e-9) << solver->name();
  }
}

TEST(Pathological, CollinearChain) {
  auto inst = base_instance();
  for (int i = 0; i < 8; ++i) {
    inst.candidates.push_back({i, {100.0 * (i + 1), 0}, 0.5});
  }
  // Walking the line in order is optimal; budget 1200 m reaches all 8.
  const DpSelector dp;
  const Selection s = dp.select(inst);
  EXPECT_EQ(s.order, (std::vector<TaskId>{0, 1, 2, 3, 4, 5, 6, 7}));
  for (const auto* solver : all_solvers()) expect_sane(inst, *solver);
}

TEST(Pathological, EverythingUnprofitable) {
  auto inst = base_instance();
  inst.travel.cost_per_meter = 1.0;  // $100+ per leg vs $1 rewards
  for (int i = 0; i < 5; ++i) {
    inst.candidates.push_back({i, {100.0 + i, 50.0}, 1.0});
  }
  for (const auto* solver : all_solvers()) {
    EXPECT_TRUE(solver->select(inst).empty()) << solver->name();
  }
}

TEST(Pathological, FreeTravel) {
  auto inst = base_instance();
  inst.travel.cost_per_meter = 0.0;
  for (int i = 0; i < 7; ++i) {
    inst.candidates.push_back(
        {i, {50.0 * (i + 1), 30.0 * (i % 3)}, 0.1 * (i + 1)});
  }
  // With free travel, take everything reachable within time.
  const DpSelector dp;
  const Selection s = dp.select(inst);
  EXPECT_EQ(s.order.size(), 7u);
  for (const auto* solver : all_solvers()) expect_sane(inst, *solver);
}

TEST(Pathological, ZeroRewardCandidates) {
  auto inst = base_instance();
  inst.candidates = {{0, {100, 0}, 0.0}, {1, {50, 0}, 1.0}};
  for (const auto* solver : all_solvers()) {
    const Selection s = solver->select(inst);
    // The zero-reward task is never worth a detour (and never harmful to
    // skip): the profit must equal taking task 1 alone.
    EXPECT_NEAR(s.profit(), 1.0 - 0.1, 1e-9) << solver->name();
  }
}

TEST(Pathological, SingleCandidateExactlyAtBudgetEdge) {
  auto inst = base_instance();  // budget 600 s -> 1200 m
  inst.candidates = {{0, {1200, 0}, 5.0}};
  for (const auto* solver : all_solvers()) {
    const Selection s = solver->select(inst);
    ASSERT_EQ(s.order.size(), 1u) << solver->name();
    EXPECT_TRUE(is_feasible(inst, s)) << solver->name();
  }
  // One meter beyond: infeasible for everyone.
  inst.candidates[0].location.x = 1200.001;
  for (const auto* solver : all_solvers()) {
    EXPECT_TRUE(solver->select(inst).empty()) << solver->name();
  }
}

TEST(Pathological, ExactSolversAgreeOnRandomDegenerateMixes) {
  Rng rng(202);
  const DpSelector dp;
  const BranchBoundSelector bb;
  const BruteForceSelector brute(8);
  for (int trial = 0; trial < 25; ++trial) {
    auto inst = base_instance();
    inst.time_budget = rng.uniform(0.0, 800.0);
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < m; ++i) {
      // Mix: duplicates, collinear points, zero rewards.
      geo::Point p;
      switch (rng.uniform_int(0, 2)) {
        case 0: p = {100, 100}; break;
        case 1: p = {rng.uniform(0, 1000), 0}; break;
        default: p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
      }
      const Money reward = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.1, 2.5);
      inst.candidates.push_back({i, p, reward});
    }
    const double opt = brute.select(inst).profit();
    EXPECT_NEAR(dp.select(inst).profit(), opt, 1e-9) << "trial " << trial;
    EXPECT_NEAR(bb.select(inst).profit(), opt, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mcs::select
