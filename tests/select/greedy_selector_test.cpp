#include "select/greedy_selector.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "select/dp_selector.h"

namespace mcs::select {
namespace {

SelectionInstance basic(double budget_s = 600.0) {
  SelectionInstance inst;
  inst.start = {0, 0};
  inst.travel = {};
  inst.time_budget = budget_s;
  return inst;
}

TEST(GreedySelector, EmptyInstance) {
  EXPECT_TRUE(GreedySelector().select(basic()).empty());
}

TEST(GreedySelector, TakesBestMarginalFirst) {
  auto inst = basic();
  inst.candidates = {{0, {400, 0}, 1.0},   // marginal 0.2
                     {1, {100, 0}, 1.0}};  // marginal 0.8 -> picked first
  const Selection s = GreedySelector().select(inst);
  ASSERT_EQ(s.order.size(), 2u);
  EXPECT_EQ(s.order[0], 1);
  EXPECT_EQ(s.order[1], 0);
}

TEST(GreedySelector, StopsWhenNoPositiveMarginal) {
  auto inst = basic();
  inst.candidates = {{0, {100, 0}, 1.0},
                     {1, {2000, 0}, 1.0}};  // marginal from task 0: negative
  const Selection s = GreedySelector().select(inst);
  EXPECT_EQ(s.order, (std::vector<TaskId>{0}));
}

TEST(GreedySelector, RespectsBudgetEvenForProfitableTasks) {
  auto inst = basic(100.0);  // 200 m
  inst.candidates = {{0, {90, 0}, 1.0}, {1, {180, 0}, 1.0}, {2, {270, 0}, 1.0}};
  const Selection s = GreedySelector().select(inst);
  // 0 (90m) then 1 (+90m = 180m) fit; 2 would need 270m total.
  EXPECT_EQ(s.order, (std::vector<TaskId>{0, 1}));
  EXPECT_TRUE(is_feasible(inst, s));
}

TEST(GreedySelector, MyopiaCanLoseToDp) {
  // Greedy grabs the near cheap task first and then pays a long detour;
  // DP routes optimally. This is the known counterexample family.
  auto inst = basic(2000.0);
  inst.travel.cost_per_meter = 0.004;
  inst.candidates = {{0, {100, 0}, 1.0},      // tempting first grab
                     {1, {0, 800}, 2.5},
                     {2, {0, 1000}, 2.5}};
  const Selection greedy = GreedySelector().select(inst);
  const Selection dp = DpSelector().select(inst);
  EXPECT_GE(dp.profit(), greedy.profit());
}

TEST(GreedySelector, NeverNegativeProfitAndAlwaysFeasible) {
  Rng rng(55);
  const GreedySelector greedy;
  for (int trial = 0; trial < 100; ++trial) {
    auto inst = basic(rng.uniform(0.0, 1200.0));
    const int m = static_cast<int>(rng.uniform_int(0, 15));
    for (int i = 0; i < m; ++i) {
      inst.candidates.push_back(
          {i, {rng.uniform(0, 3000), rng.uniform(0, 3000)}, rng.uniform(0.5, 2.5)});
    }
    const Selection s = greedy.select(inst);
    EXPECT_GE(s.profit(), 0.0);
    EXPECT_TRUE(is_feasible(inst, s));
    const Selection replay = evaluate_order(inst, s.order);
    EXPECT_NEAR(replay.profit(), s.profit(), 1e-9);
  }
}

TEST(GreedySelector, TwoOptVariantNeverWorse) {
  Rng rng(56);
  const GreedySelector plain(false);
  const GreedySelector improved(true);
  for (int trial = 0; trial < 60; ++trial) {
    auto inst = basic(rng.uniform(300.0, 2000.0));
    const int m = static_cast<int>(rng.uniform_int(3, 12));
    for (int i = 0; i < m; ++i) {
      inst.candidates.push_back(
          {i, {rng.uniform(0, 2000), rng.uniform(0, 2000)}, rng.uniform(0.5, 2.5)});
    }
    const Selection a = plain.select(inst);
    const Selection b = improved.select(inst);
    EXPECT_GE(b.profit(), a.profit() - 1e-9);
    EXPECT_TRUE(is_feasible(inst, b));
  }
}

TEST(GreedySelector, Names) {
  EXPECT_STREQ(GreedySelector(false).name(), "greedy");
  EXPECT_STREQ(GreedySelector(true).name(), "greedy+2opt");
}

}  // namespace
}  // namespace mcs::select
