#include "select/ils_selector.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "select/dp_selector.h"
#include "select/greedy_selector.h"

namespace mcs::select {
namespace {

SelectionInstance random_instance(Rng& rng, int m, double budget_s) {
  SelectionInstance inst;
  inst.start = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
  inst.travel = {};
  inst.time_budget = budget_s;
  for (int i = 0; i < m; ++i) {
    inst.candidates.push_back(
        {i, {rng.uniform(0, 2000), rng.uniform(0, 2000)}, rng.uniform(0.5, 2.5)});
  }
  return inst;
}

TEST(IlsSelector, EmptyInstanceAndValidation) {
  EXPECT_TRUE(IlsSelector().select({}).empty());
  EXPECT_THROW(IlsSelector(-1), Error);
  EXPECT_NO_THROW(IlsSelector(0));
}

TEST(IlsSelector, NeverWorseThanGreedy) {
  Rng rng(71);
  const IlsSelector ils(30, 5);
  const GreedySelector greedy;
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = random_instance(
        rng, static_cast<int>(rng.uniform_int(1, 25)), rng.uniform(200, 1800));
    const double ils_profit = ils.select(inst).profit();
    const double greedy_profit = greedy.select(inst).profit();
    EXPECT_GE(ils_profit, greedy_profit - 1e-9) << "trial " << trial;
  }
}

TEST(IlsSelector, FeasibleAndConsistent) {
  Rng rng(72);
  const IlsSelector ils(20, 9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = random_instance(
        rng, static_cast<int>(rng.uniform_int(0, 30)), rng.uniform(0, 1500));
    const Selection s = ils.select(inst);
    EXPECT_TRUE(is_feasible(inst, s));
    EXPECT_GE(s.profit(), 0.0);
    const Selection replay = evaluate_order(inst, s.order);
    EXPECT_NEAR(replay.profit(), s.profit(), 1e-9);
  }
}

TEST(IlsSelector, NearOptimalOnSmallInstances) {
  // On DP-solvable sizes, ILS should close most of the greedy-optimal gap.
  Rng rng(73);
  const IlsSelector ils(80, 3);
  const DpSelector dp;
  const GreedySelector greedy;
  double opt_total = 0.0, ils_total = 0.0, greedy_total = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = random_instance(rng, 11, 1200.0);
    opt_total += dp.select(inst).profit();
    ils_total += ils.select(inst).profit();
    greedy_total += greedy.select(inst).profit();
  }
  EXPECT_LE(ils_total, opt_total + 1e-9);
  EXPECT_GE(ils_total, greedy_total);
  // A drop-and-reinsert ILS with 2-opt closes a meaningful share of the
  // greedy-to-optimal gap in aggregate (measured ~40% on this workload;
  // assert a conservative floor so the test flags regressions, not noise).
  EXPECT_GE(ils_total - greedy_total, 0.3 * (opt_total - greedy_total) - 1e-9);
}

TEST(IlsSelector, DeterministicForFixedSeed) {
  Rng rng(74);
  const auto inst = random_instance(rng, 18, 1500.0);
  const IlsSelector a(25, 42);
  const IlsSelector b(25, 42);
  EXPECT_EQ(a.select(inst).order, b.select(inst).order);
}

TEST(IlsSelector, HandlesLargeInstances) {
  Rng rng(75);
  const auto inst = random_instance(rng, 200, 2400.0);
  const IlsSelector ils(10, 7);
  const Selection s = ils.select(inst);
  EXPECT_TRUE(is_feasible(inst, s));
  EXPECT_GT(s.profit(), 0.0);
}

}  // namespace
}  // namespace mcs::select
