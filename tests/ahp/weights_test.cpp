#include "ahp/weights.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace mcs::ahp {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Weights, PaperTableIRowAverage) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const auto w = row_average_weights(m);
  // §IV-B of the paper: W = (0.648, 0.230, 0.122).
  EXPECT_NEAR(w[0], 0.648, 0.001);
  EXPECT_NEAR(w[1], 0.230, 0.001);
  EXPECT_NEAR(w[2], 0.122, 0.001);
  EXPECT_NEAR(sum(w), 1.0, 1e-12);
}

TEST(Weights, AllMethodsSumToOne) {
  const auto m = ComparisonMatrix::from_upper_triangle(4, {2, 4, 8, 2, 4, 2});
  for (const auto method :
       {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
        WeightMethod::kEigenvector}) {
    const auto w = compute_weights(m, method);
    ASSERT_EQ(w.size(), 4u);
    EXPECT_NEAR(sum(w), 1.0, 1e-9) << weight_method_name(method);
    for (const double x : w) EXPECT_GT(x, 0.0);
  }
}

TEST(Weights, MethodsAgreeOnConsistentMatrices) {
  const std::vector<double> true_w{0.5, 0.3, 0.15, 0.05};
  const auto m = consistent_matrix_from_weights(true_w);
  for (const auto method :
       {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
        WeightMethod::kEigenvector}) {
    const auto w = compute_weights(m, method);
    for (std::size_t i = 0; i < true_w.size(); ++i) {
      EXPECT_NEAR(w[i], true_w[i], 1e-6) << weight_method_name(method);
    }
  }
}

TEST(Weights, EigenvectorLambdaMaxEqualsNForConsistent) {
  const auto m = consistent_matrix_from_weights({3.0, 2.0, 1.0, 0.5});
  const EigenResult r = eigenvector_weights(m);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda_max, 4.0, 1e-8);
}

TEST(Weights, EigenvectorLambdaMaxExceedsNForInconsistent) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const EigenResult r = eigenvector_weights(m);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.lambda_max, 3.0);
  EXPECT_LT(r.lambda_max, 3.1);  // Table I is nearly consistent
}

TEST(Weights, EigenvectorIsFixedPoint) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const EigenResult r = eigenvector_weights(m);
  // A*w should be proportional to w with factor lambda_max.
  const auto aw = m.multiply(r.weights);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(aw[i] / r.weights[i], r.lambda_max, 1e-6);
  }
}

TEST(Weights, OrderPreservation) {
  // Random Saaty-scale matrices: the row-average weights of a matrix where
  // criterion 0 dominates everything must rank it first.
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    ComparisonMatrix m(4);
    for (std::size_t j = 1; j < 4; ++j) {
      m.set(0, j, static_cast<double>(rng.uniform_int(5, 9)));
    }
    for (std::size_t i = 1; i < 4; ++i) {
      for (std::size_t j = i + 1; j < 4; ++j) {
        m.set(i, j, 1.0 / static_cast<double>(rng.uniform_int(1, 3)));
      }
    }
    for (const auto method :
         {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
          WeightMethod::kEigenvector}) {
      const auto w = compute_weights(m, method);
      for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_GT(w[0], w[i]) << weight_method_name(method);
      }
    }
  }
}

TEST(Weights, EstimateLambdaMaxMatchesEigenEstimate) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {2.0, 6.0, 3.0});
  const EigenResult r = eigenvector_weights(m);
  EXPECT_NEAR(estimate_lambda_max(m, r.weights), r.lambda_max, 1e-9);
}

TEST(Weights, ParseMethodNames) {
  EXPECT_EQ(parse_weight_method("row-average"), WeightMethod::kRowAverage);
  EXPECT_EQ(parse_weight_method("avg"), WeightMethod::kRowAverage);
  EXPECT_EQ(parse_weight_method("geomean"), WeightMethod::kGeometricMean);
  EXPECT_EQ(parse_weight_method("Eigenvector"), WeightMethod::kEigenvector);
  EXPECT_THROW(parse_weight_method("magic"), Error);
}

TEST(Weights, TrivialOneByOne) {
  const ComparisonMatrix m(1);
  for (const auto method :
       {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
        WeightMethod::kEigenvector}) {
    const auto w = compute_weights(m, method);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
  }
}

}  // namespace
}  // namespace mcs::ahp
