#include "ahp/comparison_matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::ahp {
namespace {

TEST(ComparisonMatrix, IdentityByDefault) {
  const ComparisonMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m.at(i, j), 1.0);
  }
  EXPECT_TRUE(m.is_consistent());
}

TEST(ComparisonMatrix, SetMaintainsReciprocity) {
  ComparisonMatrix m(3);
  m.set(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.25);
  m.set(2, 0, 2.0);  // setting the lower triangle updates the upper
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.5);
}

TEST(ComparisonMatrix, FromUpperTrianglePaperTableI) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.2);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 0.5);
  EXPECT_TRUE(m.on_saaty_scale(1e-9));
}

TEST(ComparisonMatrix, FromUpperTriangleSizeValidation) {
  EXPECT_THROW(ComparisonMatrix::from_upper_triangle(3, {1.0}), Error);
  EXPECT_THROW(ComparisonMatrix::from_upper_triangle(3, {1, 2, 3, 4}), Error);
}

TEST(ComparisonMatrix, FromRowsValidatesReciprocity) {
  EXPECT_NO_THROW(ComparisonMatrix::from_rows(
      {{1.0, 2.0}, {0.5, 1.0}}));
  EXPECT_THROW(ComparisonMatrix::from_rows({{1.0, 2.0}, {0.6, 1.0}}), Error);
  EXPECT_THROW(ComparisonMatrix::from_rows({{2.0, 2.0}, {0.5, 1.0}}), Error);
  EXPECT_THROW(ComparisonMatrix::from_rows({{1.0, -2.0}, {-0.5, 1.0}}), Error);
  EXPECT_THROW(ComparisonMatrix::from_rows({{1.0, 2.0}}), Error);  // not square
}

TEST(ComparisonMatrix, NormalizedColumnsMatchPaperTableII) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const auto n = m.normalized();
  // Table II of the paper (3 decimals).
  EXPECT_NEAR(n[0][0], 0.652, 0.001);
  EXPECT_NEAR(n[0][1], 0.667, 0.001);
  EXPECT_NEAR(n[0][2], 0.625, 0.001);
  EXPECT_NEAR(n[1][0], 0.217, 0.001);
  EXPECT_NEAR(n[1][1], 0.222, 0.001);
  EXPECT_NEAR(n[1][2], 0.250, 0.001);
  EXPECT_NEAR(n[2][0], 0.130, 0.001);  // paper prints 0.131 (rounding)
  EXPECT_NEAR(n[2][1], 0.111, 0.001);
  EXPECT_NEAR(n[2][2], 0.125, 0.001);
  // Every column of the normalized matrix sums to 1.
  for (std::size_t j = 0; j < 3; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 3; ++i) s += n[i][j];
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(ComparisonMatrix, MultiplyBasics) {
  const auto m = ComparisonMatrix::from_upper_triangle(2, {4.0});
  const auto v = m.multiply({1.0, 2.0});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 9.0);    // 1*1 + 4*2
  EXPECT_DOUBLE_EQ(v[1], 2.25);   // 0.25*1 + 1*2
  EXPECT_THROW(m.multiply({1.0}), Error);
}

TEST(ComparisonMatrix, SaatyScaleDetection) {
  auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  EXPECT_TRUE(m.on_saaty_scale());
  m.set(0, 1, 3.7);  // not on the 1..9 scale
  EXPECT_FALSE(m.on_saaty_scale());
  m.set(0, 1, 1.0 / 7.0);  // reciprocal of 7 is on the scale
  EXPECT_TRUE(m.on_saaty_scale(1e-9));
}

TEST(ComparisonMatrix, ConsistencyDetection) {
  // w = (4, 2, 1) generates a perfectly consistent matrix.
  const auto consistent = consistent_matrix_from_weights({4.0, 2.0, 1.0});
  EXPECT_TRUE(consistent.is_consistent(1e-9));
  // Table I is *not* perfectly consistent (3*2 != 5).
  const auto table1 = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  EXPECT_FALSE(table1.is_consistent(1e-9));
}

TEST(ComparisonMatrix, ConsistentMatrixFromWeightsEntries) {
  const auto m = consistent_matrix_from_weights({4.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 2.0);
  EXPECT_THROW(consistent_matrix_from_weights({1.0, 0.0}), Error);
}

TEST(ComparisonMatrix, GroupAggregationGeometricMean) {
  // Two experts disagree 2 vs 8 -> geometric mean 4.
  const auto e1 = ComparisonMatrix::from_upper_triangle(2, {2.0});
  const auto e2 = ComparisonMatrix::from_upper_triangle(2, {8.0});
  const auto g = aggregate_judgments({e1, e2});
  EXPECT_DOUBLE_EQ(g.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 0.25);  // reciprocity preserved
}

TEST(ComparisonMatrix, GroupAggregationIdentityAndValidation) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const auto same = aggregate_judgments({m, m, m});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(same.at(i, j), m.at(i, j), 1e-12);
    }
  }
  EXPECT_THROW(aggregate_judgments({}), Error);
  EXPECT_THROW(aggregate_judgments({m, ComparisonMatrix(2)}), Error);
}

TEST(ComparisonMatrix, GroupAggregationPreservesConsistency) {
  // Aggregating consistent matrices built from different weights yields a
  // consistent matrix (geometric mean of consistent matrices is consistent).
  const auto a = consistent_matrix_from_weights({4.0, 2.0, 1.0});
  const auto b = consistent_matrix_from_weights({9.0, 3.0, 1.0});
  EXPECT_TRUE(aggregate_judgments({a, b}).is_consistent(1e-9));
}

TEST(ComparisonMatrix, InvalidOperations) {
  ComparisonMatrix m(3);
  EXPECT_THROW(m.set(0, 1, 0.0), Error);
  EXPECT_THROW(m.set(0, 1, -2.0), Error);
  EXPECT_THROW(m.set(0, 0, 2.0), Error);   // diagonal must stay 1
  EXPECT_THROW(m.set(0, 5, 2.0), Error);   // out of range
  EXPECT_THROW(m.at(3, 0), Error);
  EXPECT_THROW(ComparisonMatrix(0), Error);
}

TEST(ComparisonMatrix, ToStringContainsEntries) {
  const auto m = ComparisonMatrix::from_upper_triangle(2, {3.0});
  const std::string s = m.to_string(2);
  EXPECT_NE(s.find("3.00"), std::string::npos);
  EXPECT_NE(s.find("0.33"), std::string::npos);
}

}  // namespace
}  // namespace mcs::ahp
