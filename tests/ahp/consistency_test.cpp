#include "ahp/consistency.h"

#include <gtest/gtest.h>

#include "ahp/weights.h"
#include "common/error.h"

namespace mcs::ahp {
namespace {

TEST(Consistency, RandomIndexTable) {
  EXPECT_DOUBLE_EQ(random_index(1), 0.0);
  EXPECT_DOUBLE_EQ(random_index(2), 0.0);
  EXPECT_DOUBLE_EQ(random_index(3), 0.58);
  EXPECT_DOUBLE_EQ(random_index(4), 0.90);
  EXPECT_DOUBLE_EQ(random_index(9), 1.45);
  EXPECT_DOUBLE_EQ(random_index(15), 1.59);
  EXPECT_DOUBLE_EQ(random_index(50), 1.59);  // clamps to the last entry
  EXPECT_THROW(random_index(0), Error);
}

TEST(Consistency, IndexFormula) {
  EXPECT_DOUBLE_EQ(consistency_index(3.0, 3), 0.0);
  EXPECT_NEAR(consistency_index(3.2, 3), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(consistency_index(5.0, 2), 0.0);  // n<=2 always consistent
}

TEST(Consistency, RatioFormula) {
  EXPECT_NEAR(consistency_ratio(3.2, 3), 0.1 / 0.58, 1e-12);
  EXPECT_DOUBLE_EQ(consistency_ratio(9.9, 2), 0.0);
}

TEST(Consistency, PerfectlyConsistentMatrixHasZeroCr) {
  const auto m = consistent_matrix_from_weights({5.0, 2.0, 1.0});
  const ConsistencyReport r = check_consistency(m);
  EXPECT_NEAR(r.lambda_max, 3.0, 1e-9);
  EXPECT_NEAR(r.ci, 0.0, 1e-9);
  EXPECT_NEAR(r.cr, 0.0, 1e-9);
  EXPECT_TRUE(r.acceptable);
}

TEST(Consistency, PaperTableIIsAcceptable) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const ConsistencyReport r = check_consistency(m);
  EXPECT_GT(r.cr, 0.0);
  EXPECT_LT(r.cr, 0.1);
  EXPECT_TRUE(r.acceptable);
}

TEST(Consistency, WildlyInconsistentMatrixIsRejected) {
  // 0>1 strongly, 1>2 strongly, but 2>0 strongly: a preference cycle.
  const auto m = ComparisonMatrix::from_upper_triangle(3, {9.0, 1.0 / 9.0, 9.0});
  const ConsistencyReport r = check_consistency(m);
  EXPECT_GT(r.cr, 0.1);
  EXPECT_FALSE(r.acceptable);
}

TEST(Consistency, ThresholdIsConfigurable) {
  const auto m = ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0});
  const ConsistencyReport strict = check_consistency(m, /*threshold=*/1e-6);
  EXPECT_FALSE(strict.acceptable);
}

}  // namespace
}  // namespace mcs::ahp
