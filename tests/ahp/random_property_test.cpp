// Randomized AHP properties: weight extractors on random consistent and
// random Saaty-scale matrices, ranking invariants, and consistency-ratio
// behaviour under increasing perturbation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ahp/comparison_matrix.h"
#include "ahp/consistency.h"
#include "ahp/weights.h"
#include "common/rng.h"

namespace mcs::ahp {
namespace {

class RandomConsistent : public ::testing::TestWithParam<int> {};

TEST_P(RandomConsistent, AllMethodsRecoverGeneratingWeights) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 77 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (double& x : w) {
      x = rng.uniform(0.05, 1.0);
      sum += x;
    }
    for (double& x : w) x /= sum;
    const auto m = consistent_matrix_from_weights(w);
    for (const auto method :
         {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
          WeightMethod::kEigenvector}) {
      const auto got = compute_weights(m, method);
      for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_NEAR(got[i], w[i], 1e-6)
            << weight_method_name(method) << " n=" << n << " trial " << trial;
      }
    }
    // lambda_max == n for consistent matrices.
    const ConsistencyReport r = check_consistency(m);
    EXPECT_NEAR(r.lambda_max, static_cast<double>(n), 1e-6);
    EXPECT_NEAR(r.cr, 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomConsistent, ::testing::Values(2, 3, 5, 8));

class RandomSaaty : public ::testing::TestWithParam<int> {};

TEST_P(RandomSaaty, WeightsValidAndLambdaMaxAtLeastN) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 131 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    ComparisonMatrix m(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      for (std::size_t j = i + 1; j < static_cast<std::size_t>(n); ++j) {
        const double v = static_cast<double>(rng.uniform_int(1, 9));
        m.set(i, j, rng.bernoulli(0.5) ? v : 1.0 / v);
      }
    }
    for (const auto method :
         {WeightMethod::kRowAverage, WeightMethod::kGeometricMean,
          WeightMethod::kEigenvector}) {
      const auto w = compute_weights(m, method);
      double sum = 0.0;
      for (const double x : w) {
        EXPECT_GT(x, 0.0);
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
    // Perron-Frobenius: the principal eigenvalue of a positive reciprocal
    // matrix is >= n (equality iff consistent).
    const EigenResult eig = eigenvector_weights(m);
    EXPECT_TRUE(eig.converged);
    EXPECT_GE(eig.lambda_max, static_cast<double>(n) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSaaty, ::testing::Values(3, 4, 6, 9));

TEST(ConsistencyRatio, GrowsWithPerturbation) {
  // Start from a consistent matrix and progressively corrupt one entry;
  // the consistency ratio must grow monotonically with the corruption.
  const std::vector<double> w{0.5, 0.3, 0.2};
  double prev_cr = -1.0;
  for (const double factor : {1.0, 2.0, 4.0, 8.0}) {
    auto m = consistent_matrix_from_weights(w);
    m.set(0, 2, m.at(0, 2) * factor);
    const ConsistencyReport r = check_consistency(m);
    EXPECT_GT(r.cr, prev_cr);
    prev_cr = r.cr;
  }
  EXPECT_GT(prev_cr, 0.1);  // an 8x corruption must be rejected
}

TEST(RankingInvariance, DominantCriterionStaysFirstUnderAggregation) {
  // Group aggregation of judgments that all rank criterion 0 first keeps
  // it first (geometric mean preserves unanimous order).
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ComparisonMatrix> experts;
    for (int e = 0; e < 3; ++e) {
      ComparisonMatrix m(3);
      m.set(0, 1, static_cast<double>(rng.uniform_int(2, 9)));
      m.set(0, 2, static_cast<double>(rng.uniform_int(2, 9)));
      const double v = static_cast<double>(rng.uniform_int(1, 9));
      m.set(1, 2, rng.bernoulli(0.5) ? v : 1.0 / v);
      experts.push_back(std::move(m));
    }
    const auto w = row_average_weights(aggregate_judgments(experts));
    EXPECT_GT(w[0], w[1]);
    EXPECT_GT(w[0], w[2]);
  }
}

}  // namespace
}  // namespace mcs::ahp
