#include "ahp/hierarchy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"

namespace mcs::ahp {
namespace {

Hierarchy paper_hierarchy() {
  return Hierarchy(
      "task demand", {"deadline", "progress", "neighbors"},
      ComparisonMatrix::from_upper_triangle(3, {3.0, 5.0, 2.0}));
}

TEST(Hierarchy, CriteriaWeightsMatchPaper) {
  const Hierarchy h = paper_hierarchy();
  EXPECT_EQ(h.goal(), "task demand");
  EXPECT_EQ(h.num_criteria(), 3u);
  EXPECT_NEAR(h.criteria_weights()[0], 0.648, 0.001);
  EXPECT_NEAR(h.criteria_weights()[1], 0.230, 0.001);
  EXPECT_NEAR(h.criteria_weights()[2], 0.122, 0.001);
}

TEST(Hierarchy, SynthesizeFromScoreVectors) {
  const Hierarchy h = paper_hierarchy();
  // Two alternatives; alternative 0 dominates every criterion.
  const std::vector<std::vector<double>> scores{
      {0.9, 0.1}, {0.8, 0.2}, {0.7, 0.3}};
  const auto p = h.synthesize(scores);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_GT(p[0], p[1]);
  const auto& w = h.criteria_weights();
  EXPECT_NEAR(p[0], w[0] * 0.9 + w[1] * 0.8 + w[2] * 0.7, 1e-12);
}

TEST(Hierarchy, SynthesisIsLinearInWeights) {
  const Hierarchy h = paper_hierarchy();
  // If all criteria give identical scores the synthesis returns them.
  const std::vector<std::vector<double>> scores{
      {0.4, 0.6}, {0.4, 0.6}, {0.4, 0.6}};
  const auto p = h.synthesize(scores);
  EXPECT_NEAR(p[0], 0.4, 1e-12);
  EXPECT_NEAR(p[1], 0.6, 1e-12);
}

TEST(Hierarchy, ClassicalAlternativeMatrices) {
  Hierarchy h("choose", {"c1", "c2"},
              ComparisonMatrix::from_upper_triangle(2, {1.0}));
  // Under c1 alternative 0 wins 3:1, under c2 alternative 1 wins 3:1;
  // with equal criteria weights the synthesis is symmetric.
  h.set_alternative_matrix(0, ComparisonMatrix::from_upper_triangle(2, {3.0}));
  h.set_alternative_matrix(1,
                           ComparisonMatrix::from_upper_triangle(2, {1.0 / 3}));
  const auto p = h.synthesize_from_matrices();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 0.5, 1e-9);
  EXPECT_NEAR(p[1], 0.5, 1e-9);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
}

TEST(Hierarchy, MixedMatrixAndScores) {
  Hierarchy h("mixed", {"c1", "c2"},
              ComparisonMatrix::from_upper_triangle(2, {1.0}));
  h.set_alternative_matrix(0, ComparisonMatrix::from_upper_triangle(2, {3.0}));
  // c2 supplies raw scores; c1's row is ignored (matrix takes precedence).
  const auto p = h.synthesize({{0.0, 0.0}, {0.25, 0.75}});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 0.5 * 0.75 + 0.5 * 0.25, 1e-9);
  EXPECT_NEAR(p[1], 0.5 * 0.25 + 0.5 * 0.75, 1e-9);
}

TEST(Hierarchy, Validation) {
  EXPECT_THROW(Hierarchy("g", {"a", "b"}, ComparisonMatrix(3)), Error);
  Hierarchy h = paper_hierarchy();
  EXPECT_THROW(h.set_alternative_matrix(7, ComparisonMatrix(2)), Error);
  EXPECT_THROW(h.synthesize({{0.1}}), Error);           // wrong criteria count
  EXPECT_THROW(h.synthesize({{0.1}, {0.1}, {0.1, 0.2}}), Error);  // ragged
  EXPECT_THROW(h.synthesize_from_matrices(), Error);    // no matrices attached
}

}  // namespace
}  // namespace mcs::ahp
