// World::neighbor_counts() is backed by a persistent spatial grid with
// lazy delta sync; counts must stay *exactly* equal to the brute-force
// O(U*T) scan through any sequence of user moves, population growth and
// task additions (integer counts, shared distance predicate — no epsilon).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "geo/distance.h"
#include "model/world.h"

namespace mcs::model {
namespace {

std::vector<int> brute_force_counts(const World& w) {
  std::vector<int> counts(w.num_tasks(), 0);
  const double r2 = w.neighbor_radius() * w.neighbor_radius();
  for (std::size_t i = 0; i < w.num_tasks(); ++i) {
    for (const User& u : w.users()) {
      if (geo::squared_euclidean(w.tasks()[i].location(), u.location()) <=
          r2) {
        ++counts[i];
      }
    }
  }
  return counts;
}

geo::Point random_point(Rng& rng, double side) {
  return {rng.uniform(0.0, side), rng.uniform(0.0, side)};
}

TEST(NeighborCache, DeltaSyncMatchesBruteForceAcrossRandomMoves) {
  const double side = 2000.0;
  World w(geo::BoundingBox::square(side), geo::TravelModel{}, 300.0);
  Rng rng(2024);
  for (int i = 0; i < 25; ++i) w.add_task(random_point(rng, side), 10, 5);
  for (int i = 0; i < 60; ++i) w.add_user(random_point(rng, side), 600.0);

  ASSERT_EQ(w.neighbor_counts(), brute_force_counts(w));

  for (int iter = 0; iter < 30; ++iter) {
    // Move a random subset (sometimes nobody, exercising the no-op sync).
    const int moves = static_cast<int>(rng.uniform_int(0, 10));
    for (int m = 0; m < moves; ++m) {
      const auto who = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(w.num_users()) - 1));
      w.users()[who].set_location(random_point(rng, side));
    }
    EXPECT_EQ(w.neighbor_counts(), brute_force_counts(w)) << "iter " << iter;
  }
}

TEST(NeighborCache, MovesOntoExactRadiusBoundary) {
  // The predicate is <= r: a user sitting exactly on the circle counts.
  // The delta path must agree with the rebuild on that boundary.
  World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 100.0);
  w.add_task({500.0, 500.0}, 10, 5);
  w.add_user({0.0, 0.0}, 600.0);
  EXPECT_EQ(w.neighbor_counts(), std::vector<int>{0});
  w.users()[0].set_location({600.0, 500.0});  // exactly 100 m away
  EXPECT_EQ(w.neighbor_counts(), std::vector<int>{1});
  w.users()[0].set_location({600.001, 500.0});
  EXPECT_EQ(w.neighbor_counts(), std::vector<int>{0});
}

TEST(NeighborCache, PopulationAndTaskGrowthForceRebuild) {
  const double side = 1500.0;
  World w(geo::BoundingBox::square(side), geo::TravelModel{}, 250.0);
  Rng rng(7);
  for (int i = 0; i < 8; ++i) w.add_task(random_point(rng, side), 10, 5);
  for (int i = 0; i < 20; ++i) w.add_user(random_point(rng, side), 600.0);
  EXPECT_EQ(w.neighbor_counts(), brute_force_counts(w));

  // New user after the cache is warm: sizes diverge, cache must rebuild.
  w.add_user({10.0, 10.0}, 600.0);
  EXPECT_EQ(w.neighbor_counts(), brute_force_counts(w));

  // New task after the cache is warm: likewise.
  w.add_task({700.0, 700.0}, 10, 5);
  EXPECT_EQ(w.neighbor_counts(), brute_force_counts(w));

  // And moves keep delta-syncing correctly after the rebuilds.
  w.users()[3].set_location({705.0, 705.0});
  EXPECT_EQ(w.neighbor_counts(), brute_force_counts(w));
}

TEST(NeighborCache, RunningMaxMatchesMaxElementAcrossRandomMoves) {
  const double side = 2000.0;
  World w(geo::BoundingBox::square(side), geo::TravelModel{}, 300.0);
  Rng rng(99);
  for (int i = 0; i < 25; ++i) w.add_task(random_point(rng, side), 10, 5);
  for (int i = 0; i < 60; ++i) w.add_user(random_point(rng, side), 600.0);

  for (int iter = 0; iter < 40; ++iter) {
    const int moves = static_cast<int>(rng.uniform_int(0, 10));
    for (int m = 0; m < moves; ++m) {
      const auto who = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(w.num_users()) - 1));
      w.users()[who].set_location(random_point(rng, side));
    }
    const std::vector<int>& counts = w.neighbor_counts();
    EXPECT_EQ(w.neighbor_max_count(),
              *std::max_element(counts.begin(), counts.end()))
        << "iter " << iter;
  }
}

TEST(NeighborCache, ChangeJournalReportsExactlyTheTouchedTasks) {
  World w(geo::BoundingBox::square(3000.0), geo::TravelModel{}, 500.0);
  w.add_task({300.0, 300.0}, 10, 5);
  w.add_task({900.0, 300.0}, 10, 5);
  w.add_task({1500.0, 300.0}, 10, 5);
  w.add_user({300.0, 320.0}, 600.0);
  w.add_user({900.0, 320.0}, 600.0);

  // First take after construction: a rebuild, no delta to replay.
  model::World::NeighborDelta d = w.take_neighbor_changes();
  EXPECT_TRUE(d.rebuilt);

  // No movement: an empty, non-rebuilt delta.
  d = w.take_neighbor_changes();
  EXPECT_FALSE(d.rebuilt);
  ASSERT_NE(d.changed, nullptr);
  EXPECT_TRUE(d.changed->empty());

  // User 0 walks from task 0's disc to task 2's: exactly {0, 2} touched.
  w.users()[0].set_location({1500.0, 320.0});
  d = w.take_neighbor_changes();
  EXPECT_FALSE(d.rebuilt);
  std::vector<std::size_t> touched(*d.changed);
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<std::size_t>{0, 2}));

  // A round trip within one sync window is journaled (first-touch, not
  // net-change): consumers recompute from the current count, so the
  // net-zero entry is redundant but never wrong.
  w.users()[0].set_location({300.0, 320.0});
  (void)w.neighbor_counts();  // sync: leaves 2, enters 0
  w.users()[0].set_location({1500.0, 320.0});
  (void)w.neighbor_counts();  // sync: leaves 0, enters 2
  d = w.take_neighbor_changes();
  EXPECT_FALSE(d.rebuilt);
  touched.assign(d.changed->begin(), d.changed->end());
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<std::size_t>{0, 2}));

  // Growth rebuilds the cache; the journal must say so.
  w.add_user({900.0, 280.0}, 600.0);
  d = w.take_neighbor_changes();
  EXPECT_TRUE(d.rebuilt);
}

TEST(NeighborCache, ZeroRadiusAndCoincidentPoints) {
  World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 0.0);
  w.add_task({50.0, 50.0}, 10, 5);
  w.add_user({50.0, 50.0}, 600.0);  // distance 0 <= 0: counts
  w.add_user({50.0, 51.0}, 600.0);
  EXPECT_EQ(w.neighbor_counts(), std::vector<int>{1});
  w.users()[1].set_location({50.0, 50.0});
  EXPECT_EQ(w.neighbor_counts(), std::vector<int>{2});
}

}  // namespace
}  // namespace mcs::model
