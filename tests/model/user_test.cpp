#include "model/user.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::model {
namespace {

TEST(User, ConstructionAndAccessors) {
  const User u(2, {10.0, 20.0}, 600.0);
  EXPECT_EQ(u.id(), 2);
  EXPECT_EQ(u.home(), (geo::Point{10.0, 20.0}));
  EXPECT_EQ(u.location(), u.home());  // starts at home
  EXPECT_DOUBLE_EQ(u.time_budget(), 600.0);
  EXPECT_EQ(u.tasks_contributed(), 0u);
}

TEST(User, ConstructionValidation) {
  EXPECT_THROW(User(-1, {0, 0}, 10.0), Error);
  EXPECT_THROW(User(0, {0, 0}, -1.0), Error);
}

TEST(User, LocationAndHome) {
  User u(0, {5, 5}, 100.0);
  u.set_location({50, 60});
  EXPECT_EQ(u.location(), (geo::Point{50, 60}));
  u.return_home();
  EXPECT_EQ(u.location(), (geo::Point{5, 5}));
}

TEST(User, ContributionTracking) {
  User u(0, {0, 0}, 100.0);
  EXPECT_FALSE(u.has_contributed(3));
  u.mark_contributed(3);
  EXPECT_TRUE(u.has_contributed(3));
  u.mark_contributed(3);  // idempotent
  EXPECT_EQ(u.tasks_contributed(), 1u);
  u.mark_contributed(5);
  EXPECT_EQ(u.tasks_contributed(), 2u);
}

TEST(User, EarningsAccumulate) {
  User u(0, {0, 0}, 100.0);
  u.add_earnings(2.5, 1.0);
  u.add_earnings(1.0, 0.25);
  EXPECT_DOUBLE_EQ(u.total_reward(), 3.5);
  EXPECT_DOUBLE_EQ(u.total_cost(), 1.25);
  EXPECT_DOUBLE_EQ(u.total_profit(), 2.25);
}

TEST(User, TimeBudgetUpdate) {
  User u(0, {0, 0}, 100.0);
  u.set_time_budget(250.0);
  EXPECT_DOUBLE_EQ(u.time_budget(), 250.0);
  EXPECT_THROW(u.set_time_budget(-5.0), Error);
}

}  // namespace
}  // namespace mcs::model
