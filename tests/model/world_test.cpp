#include "model/world.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::model {
namespace {

World make_world(Meters radius = 500.0) {
  return World(geo::BoundingBox::square(3000.0), geo::TravelModel{}, radius);
}

TEST(World, AddTasksAndUsersAssignsSequentialIds) {
  World w = make_world();
  EXPECT_EQ(w.add_task({100, 100}, 10, 20), 0);
  EXPECT_EQ(w.add_task({200, 200}, 5, 10), 1);
  EXPECT_EQ(w.add_user({0, 0}, 600.0), 0);
  EXPECT_EQ(w.add_user({1, 1}, 600.0), 1);
  EXPECT_EQ(w.num_tasks(), 2u);
  EXPECT_EQ(w.num_users(), 2u);
  EXPECT_EQ(w.task(1).deadline(), 5);
  EXPECT_EQ(w.user(1).home(), (geo::Point{1, 1}));
}

TEST(World, IdRangeChecks) {
  World w = make_world();
  w.add_task({0, 0}, 5, 1);
  EXPECT_THROW(w.task(1), Error);
  EXPECT_THROW(w.task(-1), Error);
  EXPECT_THROW(w.user(0), Error);
}

TEST(World, NeighborCountsWithinRadius) {
  World w = make_world(500.0);
  w.add_task({1000, 1000}, 10, 5);   // task 0
  w.add_task({2500, 2500}, 10, 5);   // task 1, far corner
  w.add_user({1200, 1000}, 600.0);   // 200 m from task 0
  w.add_user({1000, 1499}, 600.0);   // 499 m from task 0
  w.add_user({1000, 1501}, 600.0);   // 501 m from task 0 -> outside
  w.add_user({2500, 2400}, 600.0);   // 100 m from task 1
  const auto counts = w.neighbor_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
}

TEST(World, NeighborCountsUseCurrentLocations) {
  World w = make_world(500.0);
  w.add_task({1000, 1000}, 10, 5);
  w.add_user({2900, 2900}, 600.0);
  EXPECT_EQ(w.neighbor_counts()[0], 0);
  w.user(0).set_location({1010, 1000});
  EXPECT_EQ(w.neighbor_counts()[0], 1);
}

TEST(World, ZeroRadiusCountsOnlyColocated) {
  World w = make_world(0.0);
  w.add_task({100, 100}, 10, 5);
  w.add_user({100, 100}, 600.0);
  w.add_user({100.5, 100}, 600.0);
  EXPECT_EQ(w.neighbor_counts()[0], 1);
}

TEST(World, Totals) {
  World w = make_world();
  w.add_task({0, 0}, 10, 20);
  w.add_task({1, 1}, 10, 15);
  w.add_user({0, 0}, 600.0);
  w.add_user({0, 0}, 600.0);
  EXPECT_EQ(w.total_required(), 35);
  EXPECT_EQ(w.total_received(), 0);
  w.task(0).add_measurement(0, 1, 1.5);
  w.task(0).add_measurement(1, 1, 2.0);
  w.task(1).add_measurement(0, 1, 0.5);
  EXPECT_EQ(w.total_received(), 3);
  EXPECT_DOUBLE_EQ(w.total_paid(), 4.0);
}

TEST(World, ConstructionValidation) {
  EXPECT_THROW(
      World(geo::BoundingBox::square(10.0), geo::TravelModel{}, -1.0), Error);
  geo::TravelModel bad;
  bad.speed_mps = 0.0;
  EXPECT_THROW(World(geo::BoundingBox::square(10.0), bad, 1.0), Error);
}

// Sparse-id lookups go through the stores' lazily built id→row hash index
// (model/store.h), not the historical O(n) scan: ids far from their row
// positions must resolve, unknown ids must throw, and growing the store
// must refresh the index.
TEST(World, SparseIdLookupsResolveThroughRowIndex) {
  World w = make_world();
  w.tasks().emplace_back(TaskId{10}, geo::Point{100.0, 100.0}, 5, 2);
  w.tasks().emplace_back(TaskId{20}, geo::Point{200.0, 200.0}, 6, 3);
  w.tasks().emplace_back(TaskId{31}, geo::Point{300.0, 300.0}, 7, 4);
  w.users().emplace_back(UserId{70}, geo::Point{10.0, 10.0}, 600.0);
  w.users().emplace_back(UserId{10}, geo::Point{20.0, 20.0}, 600.0);
  w.users().emplace_back(UserId{55}, geo::Point{30.0, 30.0}, 600.0);

  EXPECT_EQ(w.task(10).deadline(), 5);
  EXPECT_EQ(w.task(20).deadline(), 6);
  EXPECT_EQ(w.task(31).deadline(), 7);
  EXPECT_THROW(w.task(11), Error);
  EXPECT_THROW(w.task(-1), Error);
  EXPECT_EQ(w.user(70).home(), (geo::Point{10.0, 10.0}));
  EXPECT_EQ(w.user(55).home(), (geo::Point{30.0, 30.0}));
  EXPECT_THROW(w.user(0), Error);

  // Growing the store invalidates the built index; the next lookup rebuilds.
  w.tasks().emplace_back(TaskId{4}, geo::Point{400.0, 400.0}, 8, 5);
  EXPECT_EQ(w.task(4).deadline(), 8);
  EXPECT_EQ(w.task(10).deadline(), 5);

  // An id overwritten in place (test-setup only) is found after the stale
  // hit triggers the rebuild-once retry.
  w.task_store_mut().id[3] = TaskId{99};
  EXPECT_EQ(w.task(99).deadline(), 8);
  EXPECT_THROW(w.task(4), Error);
}

// Dense ids take the id == row fast path and never build the hash index.
TEST(World, DenseIdLookupsStayIndexFree) {
  World w = make_world();
  w.add_task({100, 100}, 10, 20);
  w.add_task({200, 200}, 5, 10);
  w.add_user({0, 0}, 600.0);
  EXPECT_EQ(w.task(1).deadline(), 5);
  EXPECT_EQ(w.user(0).time_budget(), 600.0);
  EXPECT_EQ(w.task_store().row_index.built_size, static_cast<std::size_t>(-1));
  EXPECT_EQ(w.user_store().row_index.built_size, static_cast<std::size_t>(-1));
}

}  // namespace
}  // namespace mcs::model
