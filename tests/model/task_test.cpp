#include "model/task.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::model {
namespace {

TEST(Task, ConstructionAndAccessors) {
  const Task t(3, {100.0, 200.0}, 10, 20);
  EXPECT_EQ(t.id(), 3);
  EXPECT_EQ(t.location(), (geo::Point{100.0, 200.0}));
  EXPECT_EQ(t.deadline(), 10);
  EXPECT_EQ(t.required(), 20);
  EXPECT_EQ(t.received(), 0);
  EXPECT_DOUBLE_EQ(t.progress(), 0.0);
  EXPECT_FALSE(t.completed());
}

TEST(Task, ConstructionValidation) {
  EXPECT_THROW(Task(-1, {0, 0}, 5, 1), Error);
  EXPECT_THROW(Task(0, {0, 0}, 0, 1), Error);
  EXPECT_THROW(Task(0, {0, 0}, 5, 0), Error);
}

TEST(Task, ProgressTracksMeasurements) {
  Task t(0, {0, 0}, 10, 4);
  t.add_measurement(1, 1, 0.5);
  EXPECT_DOUBLE_EQ(t.progress(), 0.25);
  t.add_measurement(2, 1, 0.5);
  t.add_measurement(3, 2, 1.0);
  EXPECT_EQ(t.received(), 3);
  EXPECT_DOUBLE_EQ(t.progress(), 0.75);
  EXPECT_FALSE(t.completed());
  t.add_measurement(4, 2, 1.0);
  EXPECT_TRUE(t.completed());
  EXPECT_DOUBLE_EQ(t.progress(), 1.0);
}

TEST(Task, DistinctUserRule) {
  Task t(0, {0, 0}, 10, 5);
  t.add_measurement(7, 1, 0.5);
  EXPECT_TRUE(t.has_contributed(7));
  EXPECT_FALSE(t.has_contributed(8));
  EXPECT_THROW(t.add_measurement(7, 2, 0.5), Error);
  EXPECT_EQ(t.received(), 1);
}

TEST(Task, DeadlineEnforcement) {
  Task t(0, {0, 0}, 3, 5);
  EXPECT_FALSE(t.expired_at(3));  // the deadline round itself is playable
  EXPECT_TRUE(t.expired_at(4));
  t.add_measurement(1, 3, 0.5);
  EXPECT_THROW(t.add_measurement(2, 4, 0.5), Error);
}

TEST(Task, AcceptsPredicate) {
  Task t(0, {0, 0}, 3, 2);
  EXPECT_TRUE(t.accepts(1, 1));
  t.add_measurement(1, 1, 0.5);
  EXPECT_FALSE(t.accepts(1, 2));  // same user
  EXPECT_TRUE(t.accepts(2, 2));
  t.add_measurement(2, 2, 0.5);
  EXPECT_FALSE(t.accepts(3, 3));  // completed
  const Task fresh(1, {0, 0}, 3, 2);
  EXPECT_FALSE(fresh.accepts(1, 4));  // expired
}

TEST(Task, OverflowWithinRoundIsAccepted) {
  // Users committing within the completing round are still paid (see
  // task.h); the progress is capped at 1 but received() reflects reality.
  Task t(0, {0, 0}, 10, 2);
  t.add_measurement(1, 1, 0.5);
  t.add_measurement(2, 1, 0.5);
  EXPECT_TRUE(t.completed());
  EXPECT_NO_THROW(t.add_measurement(3, 1, 0.5));
  EXPECT_EQ(t.received(), 3);
  EXPECT_DOUBLE_EQ(t.progress(), 1.0);
}

TEST(Task, PaymentBookkeeping) {
  Task t(0, {0, 0}, 10, 5);
  t.add_measurement(1, 1, 0.5);
  t.add_measurement(2, 2, 1.5);
  EXPECT_DOUBLE_EQ(t.total_paid(), 2.0);
  ASSERT_EQ(t.measurements().size(), 2u);
  EXPECT_EQ(t.measurements()[0].user, 1);
  EXPECT_EQ(t.measurements()[0].round, 1);
  EXPECT_DOUBLE_EQ(t.measurements()[1].reward_paid, 1.5);
}

TEST(Task, RejectsInvalidUser) {
  Task t(0, {0, 0}, 10, 5);
  EXPECT_THROW(t.add_measurement(-1, 1, 0.5), Error);
}

}  // namespace
}  // namespace mcs::model
