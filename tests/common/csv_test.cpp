#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace mcs {
namespace {

TEST(CsvWriter, BasicOutput) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  w.add_row({"x", "y"});
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
}

TEST(CsvWriter, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, NumericRows) {
  CsvWriter w({"v"});
  w.add_numeric_row(std::vector<double>{1.23456}, 2);
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "v\n1.23\n");
}

TEST(CsvWriter, RowWidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), Error);
}

TEST(CsvWriter, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter({}), Error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"id", "value"});
  t.add_row({"1", "short"});
  t.add_row({"100", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find(" id | value"), std::string::npos);
  EXPECT_NE(s.find("  1 | short"), std::string::npos);
  EXPECT_NE(s.find("100 |     x"), std::string::npos);
  EXPECT_NE(s.find("---+------"), std::string::npos);
}

TEST(TextTable, NumericRows) {
  TextTable t({"v"});
  t.add_numeric_row(std::vector<double>{2.5}, 1);
  EXPECT_NE(t.to_string().find("2.5"), std::string::npos);
}

TEST(TextTable, WidthMismatchThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

}  // namespace
}  // namespace mcs
