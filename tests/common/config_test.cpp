#include "common/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace mcs {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValueFlags) {
  const Config c = parse({"--users=120", "--mechanism=fixed"});
  EXPECT_EQ(c.get_int("users", 0), 120);
  EXPECT_EQ(c.get_string("mechanism", ""), "fixed");
}

TEST(Config, BareFlagIsTrue) {
  const Config c = parse({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
}

TEST(Config, PositionalsCollected) {
  const Config c = parse({"input.txt", "--k=1", "other"});
  ASSERT_EQ(c.positionals().size(), 2u);
  EXPECT_EQ(c.positionals()[0], "input.txt");
  EXPECT_EQ(c.positionals()[1], "other");
}

TEST(Config, DefaultsWhenMissing) {
  const Config c = parse({});
  EXPECT_EQ(c.get_int("users", 100), 100);
  EXPECT_DOUBLE_EQ(c.get_double("lambda", 0.5), 0.5);
  EXPECT_EQ(c.get_string("name", "x"), "x");
  EXPECT_FALSE(c.get_bool("flag", false));
}

TEST(Config, RequireThrowsWhenMissing) {
  const Config c = parse({});
  EXPECT_THROW(c.require_string("missing"), Error);
  EXPECT_THROW(c.require_int("missing"), Error);
  EXPECT_THROW(c.require_double("missing"), Error);
}

TEST(Config, RequireReturnsValue) {
  const Config c = parse({"--x=7", "--y=1.5", "--z=abc"});
  EXPECT_EQ(c.require_int("x"), 7);
  EXPECT_DOUBLE_EQ(c.require_double("y"), 1.5);
  EXPECT_EQ(c.require_string("z"), "abc");
}

TEST(Config, UnconsumedTracking) {
  const Config c = parse({"--used=1", "--typo=2"});
  (void)c.get_int("used", 0);
  const auto unused = c.unconsumed_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Config, LastFlagWins) {
  const Config c = parse({"--k=1", "--k=2"});
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, MalformedNumberThrows) {
  const Config c = parse({"--n=12x"});
  EXPECT_THROW(c.get_int("n", 0), Error);
}

TEST(ConfigFile, ParsesFileWithComments) {
  const std::string path = ::testing::TempDir() + "/mcs_config_test.cfg";
  {
    std::ofstream out(path);
    out << "# a comment\n"
        << "users = 80\n"
        << "\n"
        << "mechanism = steered # trailing comment\n";
  }
  const Config c = Config::from_file(path);
  EXPECT_EQ(c.get_int("users", 0), 80);
  EXPECT_EQ(c.get_string("mechanism", ""), "steered");
  std::remove(path.c_str());
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/nope.cfg"), Error);
}

TEST(ConfigFile, MalformedLineThrows) {
  const std::string path = ::testing::TempDir() + "/mcs_config_bad.cfg";
  {
    std::ofstream out(path);
    out << "this line has no equals sign\n";
  }
  EXPECT_THROW(Config::from_file(path), Error);
  std::remove(path.c_str());
}

TEST(Config, ItemsSortedByKey) {
  const Config c = parse({"--b=2", "--a=1"});
  const auto items = c.items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "a");
  EXPECT_EQ(items[1].first, "b");
}

}  // namespace
}  // namespace mcs
