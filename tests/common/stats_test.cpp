#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mcs {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook dataset
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(17);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, Errors) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, 1.5), Error);
}

TEST(QuantileSorted, MatchesTheCopyingOverload) {
  Rng rng(31);
  std::vector<double> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.normal(10.0, 4.0));
  std::vector<double> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, q), quantile(v, q)) << "q=" << q;
  }
}

TEST(QuantileSorted, Errors) {
  EXPECT_THROW(quantile_sorted({}, 0.5), Error);
  EXPECT_THROW(quantile_sorted({1.0}, -0.1), Error);
}

// boxplot_summary now uses the sorted-input quantile path (one sort total
// instead of one plus three copy+re-sorts); the reported numbers must be
// exactly what the by-value quantile produces.
TEST(Boxplot, SortedPathMatchesQuantileOverload) {
  Rng rng(47);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.uniform(-50.0, 50.0));
  const BoxplotSummary s = boxplot_summary(v);
  EXPECT_DOUBLE_EQ(s.q1, quantile(v, 0.25));
  EXPECT_DOUBLE_EQ(s.median, quantile(v, 0.5));
  EXPECT_DOUBLE_EQ(s.q3, quantile(v, 0.75));
}

TEST(Boxplot, SymmetricData) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxplotSummary s = boxplot_summary(v);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 9.0);
  EXPECT_EQ(s.n_outliers, 0u);
}

TEST(Boxplot, DetectsOutliers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 100.0};
  const BoxplotSummary s = boxplot_summary(v);
  EXPECT_EQ(s.n_outliers, 1u);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_LT(s.whisker_high, 100.0);
}

TEST(Boxplot, ConstantData) {
  const std::vector<double> v{4, 4, 4, 4};
  const BoxplotSummary s = boxplot_summary(v);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_DOUBLE_EQ(s.q1, 4.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_EQ(s.n_outliers, 0u);
}

TEST(PopulationVariance, MatchesRunningStats) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(population_variance(v), 4.0);
  EXPECT_DOUBLE_EQ(population_variance({}), 0.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2 (left edge of [4,6))
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace mcs
