#include "common/significance.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mcs {
namespace {

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-12);
  // I_x(2,2) = x^2(3-2x).
  EXPECT_NEAR(incomplete_beta(2, 2, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(incomplete_beta(2, 2, 0.25), 0.25 * 0.25 * 2.5, 1e-12);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(3.5, 1.2, 0.7),
              1.0 - incomplete_beta(1.2, 3.5, 0.3), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
  EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), Error);
  EXPECT_THROW(incomplete_beta(1.0, 1.0, 1.5), Error);
}

TEST(StudentT, KnownQuantiles) {
  // df=10: t=2.228 is the 97.5% quantile -> two-sided p = 0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.228, 10), 0.05, 0.001);
  // df=1 (Cauchy): t=1 -> two-sided p = 0.5.
  EXPECT_NEAR(student_t_two_sided_p(1.0, 1), 0.5, 1e-9);
  // t=0 -> p=1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 5), 1.0, 1e-12);
  // Large df behaves like the normal: t=1.96 -> p ~ 0.05.
  EXPECT_NEAR(student_t_two_sided_p(1.96, 100000), 0.05, 0.001);
}

TEST(WelchTTest, DetectsObviousDifference) {
  Rng rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.normal(10.0, 1.0));
    b.push_back(rng.normal(12.0, 1.0));
  }
  const TestResult r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.statistic, 0.0);  // a's mean below b's
  EXPECT_NEAR(r.effect, -2.0, 0.7);
}

TEST(WelchTTest, NoFalsePositiveOnSameDistribution) {
  Rng rng(2);
  int rejections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 20; ++i) {
      a.push_back(rng.normal(5.0, 2.0));
      b.push_back(rng.normal(5.0, 2.0));
    }
    if (welch_t_test(a, b).p_value < 0.05) ++rejections;
  }
  // Expect ~5% rejections; allow generous slack.
  EXPECT_LT(rejections, trials / 5);
}

TEST(WelchTTest, ConstantSamples) {
  const std::vector<double> same{3, 3, 3};
  EXPECT_DOUBLE_EQ(welch_t_test(same, same).p_value, 1.0);
  const std::vector<double> other{4, 4, 4};
  EXPECT_DOUBLE_EQ(welch_t_test(same, other).p_value, 0.0);
  EXPECT_THROW(welch_t_test({1.0}, same), Error);
}

TEST(WelchTTest, UnequalVariancesHandled) {
  Rng rng(3);
  std::vector<double> tight, wide;
  for (int i = 0; i < 25; ++i) {
    tight.push_back(rng.normal(0.0, 0.1));
    wide.push_back(rng.normal(0.0, 10.0));
  }
  const TestResult r = welch_t_test(tight, wide);
  EXPECT_GT(r.p_value, 0.01);  // same mean: should not reject strongly
}

TEST(MannWhitney, DetectsShift) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.exponential(1.0));        // mean 1
    b.push_back(rng.exponential(1.0) + 2.0);  // shifted by 2
  }
  const TestResult r = mann_whitney_u(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.effect, -0.5);  // strong rank-biserial effect toward b
}

TEST(MannWhitney, SymmetricUnderSwap) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  const TestResult ab = mann_whitney_u(a, b);
  const TestResult ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.effect, -ba.effect, 1e-12);
}

TEST(MannWhitney, AllTied) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 1, 1, 1};
  const TestResult r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_NEAR(r.effect, 0.0, 1e-12);
}

TEST(MannWhitney, RobustToOutliersWhereTTestIsNot) {
  // Identical medians, but one wild outlier in b drags its mean far away:
  // the U test should stay calm.
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> b{1, 2, 3, 4, 5, 6, 7, 8, 9, 10000.0};
  const TestResult u = mann_whitney_u(a, b);
  EXPECT_GT(u.p_value, 0.3);
}

}  // namespace
}  // namespace mcs
