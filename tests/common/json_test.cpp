#include "common/json.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs {
namespace {

TEST(Json, ConstructionAndTypes) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json(42).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
}

TEST(Json, TypedAccessors) {
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(2.5).as_number(), 2.5);
  EXPECT_EQ(Json(7).as_int(), 7);
  EXPECT_EQ(Json("x").as_string(), "x");
  EXPECT_THROW(Json(2.5).as_int(), Error);   // not integral
  EXPECT_THROW(Json(1).as_string(), Error);  // type mismatch
  EXPECT_THROW(Json("x").as_number(), Error);
}

TEST(Json, ObjectAccess) {
  Json o = Json::object();
  o["name"] = Json("mcs");
  o["version"] = Json(2);
  EXPECT_TRUE(o.has("name"));
  EXPECT_FALSE(o.has("missing"));
  EXPECT_EQ(o.at("name").as_string(), "mcs");
  EXPECT_THROW(o.at("missing"), Error);
  EXPECT_DOUBLE_EQ(o.get("version", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(o.get("absent", 9.0), 9.0);
  EXPECT_EQ(o.get("absent", std::string("d")), "d");
  EXPECT_TRUE(o.get("absent", true));
  EXPECT_EQ(o.size(), 2u);
}

TEST(Json, ArrayAccess) {
  Json a = Json::array();
  a.push_back(Json(1));
  a.push_back(Json("two"));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(0).as_int(), 1);
  EXPECT_EQ(a.at(1).as_string(), "two");
  EXPECT_THROW(a.at(2), Error);
  EXPECT_THROW(Json(1).push_back(Json(2)), Error);
}

TEST(Json, DumpCompact) {
  Json o = Json::object();
  o["b"] = Json(true);
  o["a"] = Json(Json::Array{Json(1), Json(2)});
  // Keys come out sorted (std::map) -> deterministic.
  EXPECT_EQ(o.dump(), "{\"a\":[1,2],\"b\":true}");
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json().dump(), "null");
}

TEST(Json, DumpPretty) {
  Json o = Json::object();
  o["k"] = Json(1);
  EXPECT_EQ(o.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(Json(5).dump(), "5");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  // Round-trips the double exactly.
  const double v = 0.1 + 0.2;
  EXPECT_DOUBLE_EQ(Json::parse(Json(v).dump()).as_number(), v);
}

TEST(Json, StringEscaping) {
  const std::string nasty = "a\"b\\c\nd\te\x01";
  const Json j(nasty);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), nasty);
}

TEST(Json, ParseBasics) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse(" [1, 2, 3] ").size(), 3u);
  const Json o = Json::parse("{\"a\": {\"b\": [true, null]}}");
  EXPECT_TRUE(o.at("a").at("b").at(1).is_null());
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");  // €
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);     // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("01x"), Error);
  EXPECT_THROW(Json::parse("-"), Error);
  EXPECT_THROW(Json::parse("1."), Error);
  EXPECT_THROW(Json::parse("1e"), Error);
}

TEST(Json, RoundTripComplexDocument) {
  const std::string doc =
      "{\"tasks\":[{\"id\":0,\"loc\":{\"x\":12.5,\"y\":-3}},"
      "{\"id\":1,\"loc\":{\"x\":0,\"y\":0}}],\"meta\":null,\"ok\":true}";
  const Json parsed = Json::parse(doc);
  EXPECT_EQ(Json::parse(parsed.dump()), parsed);
  EXPECT_EQ(Json::parse(parsed.dump(2)), parsed);
}

TEST(Json, Equality) {
  EXPECT_EQ(Json::parse("[1,2]"), Json::parse("[1, 2]"));
  EXPECT_NE(Json::parse("[1,2]"), Json::parse("[2,1]"));
  EXPECT_NE(Json(1), Json("1"));
  EXPECT_EQ(Json::parse("{\"a\":1,\"b\":2}"), Json::parse("{\"b\":2,\"a\":1}"));
}

}  // namespace
}  // namespace mcs
