#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ToLower, Basics) {
  EXPECT_EQ(to_lower("AbC-1"), "abc-1");
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 "), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("12abc"), Error);
  EXPECT_THROW(parse_double(""), Error);
  EXPECT_THROW(parse_double("  "), Error);
  EXPECT_THROW(parse_double("1.2.3"), Error);
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_THROW(parse_int("4.2"), Error);
  EXPECT_THROW(parse_int("x"), Error);
  EXPECT_THROW(parse_int(""), Error);
}

TEST(ParseBool, AcceptedSpellings) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("Yes"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("ON"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("no"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_FALSE(parse_bool("off"));
}

TEST(ParseBool, RejectsGarbage) {
  EXPECT_THROW(parse_bool("maybe"), Error);
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace mcs
