#include "common/log.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("loud"), Error);
}

TEST(Log, SuppressedBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MCS_INFO << "should not appear";
  MCS_ERROR << "should appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST(Log, StreamsValues) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MCS_DEBUG << "x=" << 42 << " y=" << 1.5;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=42 y=1.5"), std::string::npos);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    MCS_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("log_test.cpp"), std::string::npos);
  }
}

TEST(Error, CheckMacroPassesSilently) {
  MCS_CHECK(true, "never");
  SUCCEED();
}

}  // namespace
}  // namespace mcs
