// Randomized JSON round-trip: generate random documents, dump (compact and
// pretty), parse back, compare structurally. Exercises nesting, escapes,
// numeric formats and empty containers far beyond the hand-written cases.
#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"

namespace mcs {
namespace {

Json random_json(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth <= 0 ? 3 : 5));
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.bernoulli(0.5));
    case 2: {
      // Mix integers, negatives, fractions and exponents.
      switch (rng.uniform_int(0, 3)) {
        case 0: return Json(static_cast<int>(rng.uniform_int(-1000, 1000)));
        case 1: return Json(rng.uniform(-1e6, 1e6));
        case 2: return Json(rng.uniform(-1e-6, 1e-6));
        default: return Json(static_cast<long long>(rng.uniform_int(
            -1000000000000LL, 1000000000000LL)));
      }
    }
    case 3: {
      std::string s;
      const int len = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < len; ++i) {
        // Printable ASCII plus the characters that need escaping.
        const char* pool = "abcXYZ 0189\"\\\n\t/{}[]:,";
        s += pool[rng.uniform_int(0, 22)];
      }
      return Json(std::move(s));
    }
    case 4: {
      Json a = Json::array();
      const int len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < len; ++i) a.push_back(random_json(rng, depth - 1));
      return a;
    }
    default: {
      Json o = Json::object();
      const int len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < len; ++i) {
        o["k" + std::to_string(rng.uniform_int(0, 99))] =
            random_json(rng, depth - 1);
      }
      return o;
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 3);
  for (int trial = 0; trial < 60; ++trial) {
    const Json doc = random_json(rng, 4);
    const Json compact = Json::parse(doc.dump());
    EXPECT_EQ(compact, doc) << doc.dump();
    const Json pretty = Json::parse(doc.dump(2));
    EXPECT_EQ(pretty, doc) << doc.dump(2);
    // Idempotence: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(compact.dump(), doc.dump());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range(0, 6));

TEST(JsonFuzz, DeeplyNestedDocument) {
  Json j = Json(1);
  for (int i = 0; i < 200; ++i) {
    Json a = Json::array();
    a.push_back(std::move(j));
    j = std::move(a);
  }
  EXPECT_EQ(Json::parse(j.dump()), j);
}

}  // namespace
}  // namespace mcs
