// ChunkedBitset backs User::contributed_ / Task::contributors_ in the SoA
// world: sparse 256-bit chunks, sorted by base, exact equality. The suite
// hammers the chunk-boundary arithmetic (word 0..3 edges, bit 63/64 edges)
// and the out-of-order insertion path the sorted invariant depends on.
#include "common/chunked_bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "common/error.h"

namespace mcs {
namespace {

TEST(ChunkedBitset, StartsEmpty) {
  ChunkedBitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(12345));
}

TEST(ChunkedBitset, SetReportsNewVsDuplicate) {
  ChunkedBitset b;
  EXPECT_TRUE(b.set(17));
  EXPECT_FALSE(b.set(17));
  EXPECT_TRUE(b.test(17));
  EXPECT_EQ(b.count(), 1u);
}

TEST(ChunkedBitset, ChunkAndWordBoundaries) {
  // Every edge of the chunk layout: word boundaries within a chunk (63/64,
  // 127/128, 191/192), the chunk boundary itself (255/256), and the
  // neighbours of each — membership must be exact on both sides.
  const std::int64_t edges[] = {0,   1,   62,  63,  64,  65,  127, 128,
                                191, 192, 254, 255, 256, 257, 511, 512};
  ChunkedBitset b;
  for (const std::int64_t v : edges) EXPECT_TRUE(b.set(v)) << v;
  for (const std::int64_t v : edges) EXPECT_TRUE(b.test(v)) << v;
  // Values adjacent to the set ones but not in the list stay clear.
  EXPECT_FALSE(b.test(2));
  EXPECT_FALSE(b.test(61));
  EXPECT_FALSE(b.test(66));
  EXPECT_FALSE(b.test(126));
  EXPECT_FALSE(b.test(190));
  EXPECT_FALSE(b.test(253));
  EXPECT_FALSE(b.test(258));
  EXPECT_FALSE(b.test(510));
  EXPECT_FALSE(b.test(513));
  EXPECT_EQ(b.count(), std::size(edges));
}

TEST(ChunkedBitset, OutOfOrderInsertKeepsSortedIteration) {
  // Descending and interleaved inserts exercise the mid-vector chunk
  // insertion; for_each must still walk ascending.
  ChunkedBitset b;
  const std::vector<std::int64_t> values = {100000, 5, 70000, 300, 6,
                                            99999,  0, 256,   255};
  for (const std::int64_t v : values) EXPECT_TRUE(b.set(v));
  std::vector<std::int64_t> seen;
  b.for_each([&](std::int64_t v) { seen.push_back(v); });
  std::vector<std::int64_t> want = values;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(seen, want);
}

TEST(ChunkedBitset, EqualityIsContentBased) {
  ChunkedBitset a, b;
  // Same content, different insertion orders.
  for (const std::int64_t v : {9, 1000, 42}) a.set(v);
  for (const std::int64_t v : {42, 9, 1000}) b.set(v);
  EXPECT_TRUE(a == b);
  b.set(7);
  EXPECT_FALSE(a == b);
  a.set(7);
  EXPECT_TRUE(a == b);
}

TEST(ChunkedBitset, ClearResets) {
  ChunkedBitset b;
  for (std::int64_t v = 0; v < 1000; v += 37) b.set(v);
  EXPECT_FALSE(b.empty());
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.test(0));
  EXPECT_EQ(b, ChunkedBitset{});
}

TEST(ChunkedBitset, NegativeTestIsFalseNegativeSetThrows) {
  ChunkedBitset b;
  EXPECT_FALSE(b.test(-1));  // ids start at 0; a miss, not an error
  EXPECT_THROW(b.set(-1), Error);
  EXPECT_THROW(b.set(0x100000000ll), Error);
  EXPECT_NO_THROW(b.set(0xffffffffll));  // the top of the id range is valid
  EXPECT_TRUE(b.test(0xffffffffll));
}

TEST(ChunkedBitset, RandomizedAgainstStdSet) {
  // Reference-model fuzz: 4000 operations mirrored into std::set, then the
  // full membership picture and iteration order must agree.
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<std::int64_t> value(0, 1 << 20);
  ChunkedBitset b;
  std::set<std::int64_t> ref;
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t v = value(rng);
    EXPECT_EQ(b.set(v), ref.insert(v).second) << v;
  }
  EXPECT_EQ(b.count(), ref.size());
  std::vector<std::int64_t> seen;
  b.for_each([&](std::int64_t v) { seen.push_back(v); });
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), ref.begin(), ref.end()));
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = value(rng);
    EXPECT_EQ(b.test(v), ref.count(v) != 0) << v;
  }
}

std::vector<std::int64_t> to_vector(const ChunkedBitset& b) {
  std::vector<std::int64_t> out;
  b.for_each([&](std::int64_t v) { out.push_back(v); });
  return out;
}

TEST(ChunkedBitsetMerge, StraddlingChunkBoundaries) {
  // Values on both sides of the 256-bit chunk boundary, split across the
  // operands so the merge has to interleave, share and extend chunks.
  ChunkedBitset a;
  ChunkedBitset b;
  for (const std::int64_t v : {0ll, 255ll, 256ll, 1000ll}) a.set(v);
  for (const std::int64_t v : {255ll, 257ll, 511ll, 512ll, 99999ll}) b.set(v);
  a |= b;
  EXPECT_EQ(to_vector(a), (std::vector<std::int64_t>{0, 255, 256, 257, 511,
                                                     512, 1000, 99999}));
  EXPECT_EQ(a.count(), 8u);
  // The operand is untouched.
  EXPECT_EQ(to_vector(b),
            (std::vector<std::int64_t>{255, 257, 511, 512, 99999}));
}

TEST(ChunkedBitsetMerge, EmptyIntoNonEmptyAndBack) {
  ChunkedBitset a;
  ChunkedBitset empty;
  a.set(7);
  a.set(4096);
  a |= empty;  // no-op
  EXPECT_EQ(to_vector(a), (std::vector<std::int64_t>{7, 4096}));
  empty |= a;  // adopt
  EXPECT_EQ(to_vector(empty), (std::vector<std::int64_t>{7, 4096}));
  EXPECT_EQ(empty.count(), 2u);
}

TEST(ChunkedBitsetMerge, SelfMergeIsIdentity) {
  ChunkedBitset a;
  for (const std::int64_t v : {1ll, 300ll, 70000ll}) a.set(v);
  a |= a;
  EXPECT_EQ(to_vector(a), (std::vector<std::int64_t>{1, 300, 70000}));
  EXPECT_EQ(a.count(), 3u);
}

TEST(ChunkedBitsetMerge, RandomizedAgainstStdSetUnion) {
  std::mt19937_64 rng(20260810);
  std::uniform_int_distribution<std::int64_t> value(0, 1 << 16);
  for (int trial = 0; trial < 20; ++trial) {
    ChunkedBitset a;
    ChunkedBitset b;
    std::set<std::int64_t> ref;
    for (int i = 0; i < 300; ++i) {
      const std::int64_t va = value(rng);
      a.set(va);
      ref.insert(va);
      const std::int64_t vb = value(rng);
      b.set(vb);
      ref.insert(vb);
    }
    a |= b;
    EXPECT_EQ(a.count(), ref.size());
    const std::vector<std::int64_t> got = to_vector(a);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), ref.begin(), ref.end()));
    for (const std::int64_t v : ref) EXPECT_TRUE(a.test(v)) << v;
  }
}

}  // namespace
}  // namespace mcs
