#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/error.h"

namespace mcs {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
  EXPECT_GE(resolve_threads(0), 1);  // hardware concurrency, at least one
  EXPECT_THROW(resolve_threads(-1), Error);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&hits] { hits.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(hits.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&hits] { hits.fetch_add(1); });
    // no wait_idle(): the destructor must still run everything.
  }
  EXPECT_EQ(hits.load(), 50);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing queued: must not block
}

TEST(ParallelForEach, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> visits(97);
    parallel_for_each(threads, visits.size(),
                      [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForEach, SlotWritesAssembleInOrder) {
  // The runner's pattern: workers fill slot[i], the caller merges in order.
  std::vector<int> slots(64, -1);
  parallel_for_each(4, slots.size(),
                    [&](std::size_t i) { slots[i] = static_cast<int>(i * i); });
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i * i));
  }
}

TEST(ParallelForEach, ZeroAndOneIndexRunInline) {
  int calls = 0;
  parallel_for_each(8, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_each(8, 1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForEach, FirstExceptionPropagates) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        parallel_for_each(threads, 32,
                          [](std::size_t i) {
                            if (i == 7) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << threads << " threads";
  }
}

TEST(ParallelForEach, StopsClaimingAfterFailure) {
  // After an index throws, workers stop pulling new indices; with a serial
  // run the abort is immediate, so indices past the failing one never run.
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for_each(1, 1000,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace mcs
