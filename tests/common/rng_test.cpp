#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace mcs {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-5.0, 11.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 11.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntEmptyRangeThrows) {
  Rng rng(8);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(11);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesTinyVectors) {
  Rng rng(16);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, SplitStreamsAreIndependentOfParent) {
  Rng a(99);
  Rng b(99);
  const Rng split = a.split(1);
  (void)split;
  // Deriving a stream must not perturb the parent sequence.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsDifferByTag) {
  const Rng parent(7);
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(2);
  int diffs = 0;
  for (int i = 0; i < 10; ++i) diffs += (s1.next() != s2.next()) ? 1 : 0;
  EXPECT_GT(diffs, 0);
}

TEST(Rng, StateRoundTripResumesEveryDrawBitIdentically) {
  Rng a(77);
  for (int i = 0; i < 37; ++i) a.next();
  // Mid-stream snapshot right after a normal(): the basic Box–Muller draws
  // both uniforms fresh each call, so s_ really is the complete state.
  (void)a.normal(1.0, 2.0);
  const Rng::State snap = a.state();

  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(a.normal(0.0, 1.0));
  const std::uint64_t tail = a.next();

  Rng b(123456);  // unrelated stream, fully overwritten by restore
  b.restore_state(snap);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(b.normal(0.0, 1.0), expected[i]) << "draw " << i;
  }
  EXPECT_EQ(b.next(), tail);
}

TEST(Rng, RestoreRejectsTheAllZeroFixedPoint) {
  Rng rng(1);
  EXPECT_THROW(rng.restore_state(Rng::State{}), Error);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace mcs
