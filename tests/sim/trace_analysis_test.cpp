#include "sim/trace_analysis.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "incentive/on_demand_mechanism.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

model::World trace_world() {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  w.add_task({0, 0}, 9, 2);   // task 0
  w.add_task({50, 50}, 9, 2); // task 1, never touched
  for (int u = 0; u < 3; ++u) w.add_user({0, 0}, 100.0);
  return w;
}

TEST(TraceAnalysis, TimelinesFromHandCraftedLog) {
  const model::World w = trace_world();
  EventLog log(true);
  log.record({1, 0, 0, 1.0, 10.0});
  log.record({3, 1, 0, 1.5, 20.0});  // completes task 0 at round 3
  log.record({4, 2, 0, 2.0, 30.0});  // overflow measurement

  const auto timelines = task_timelines(w, log);
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines[0].first_measurement, 1);
  EXPECT_EQ(timelines[0].completed_round, 3);
  EXPECT_EQ(timelines[0].measurements, 3);
  EXPECT_DOUBLE_EQ(timelines[0].total_paid, 4.5);
  EXPECT_EQ(timelines[1].first_measurement, 0);  // never covered
  EXPECT_EQ(timelines[1].completed_round, 0);

  const TraceSummary s = summarize_trace(w, log);
  EXPECT_DOUBLE_EQ(s.mean_rounds_to_coverage, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_rounds_to_completion, 3.0);
  EXPECT_EQ(s.tasks_never_covered, 1);
  EXPECT_EQ(s.tasks_never_completed, 1);
  EXPECT_DOUBLE_EQ(s.total_distance, 60.0);
  EXPECT_DOUBLE_EQ(s.mean_leg_distance, 20.0);
}

TEST(TraceAnalysis, EmptyLog) {
  const model::World w = trace_world();
  const EventLog log(true);
  const TraceSummary s = summarize_trace(w, log);
  EXPECT_EQ(s.tasks_never_covered, 2);
  EXPECT_EQ(s.tasks_never_completed, 2);
  EXPECT_DOUBLE_EQ(s.mean_leg_distance, 0.0);
}

TEST(TraceAnalysis, UnknownTaskRejected) {
  const model::World w = trace_world();
  EventLog log(true);
  log.record({1, 0, 7, 1.0, 1.0});
  EXPECT_THROW(task_timelines(w, log), Error);
}

TEST(TraceAnalysis, ConsistentWithSimulatorLedgers) {
  sim::ScenarioParams params;
  params.num_users = 40;
  params.num_tasks = 10;
  Rng rng(11);
  model::World world = generate_world(params, rng);
  auto mech = std::make_unique<incentive::OnDemandMechanism>(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), incentive::RewardRule(0.5, 0.5, 5));
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  SimulatorParams sp;
  sp.record_events = true;
  Simulator s(std::move(world), std::move(mech), std::move(sel), sp);
  s.run();

  const auto timelines = task_timelines(s.world(), s.events());
  for (const TaskTimeline& t : timelines) {
    const model::Task& task = s.world().task(t.task);
    EXPECT_EQ(t.measurements, task.received());
    EXPECT_NEAR(t.total_paid, task.total_paid(), 1e-9);
    if (task.completed()) {
      EXPECT_GT(t.completed_round, 0);
      EXPECT_LE(t.completed_round, task.deadline());
    } else {
      EXPECT_EQ(t.completed_round, 0);
    }
    if (task.received() > 0) {
      EXPECT_GE(t.first_measurement, 1);
    }
  }
}

}  // namespace
}  // namespace mcs::sim
