#include "sim/scenario.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "geo/distance.h"

namespace mcs::sim {
namespace {

TEST(Scenario, GeneratesRequestedCounts) {
  ScenarioParams p;
  Rng rng(1);
  const model::World w = generate_world(p, rng);
  EXPECT_EQ(w.num_tasks(), 20u);
  EXPECT_EQ(w.num_users(), 100u);
  EXPECT_EQ(w.total_required(), 400);
}

TEST(Scenario, RespectsRanges) {
  ScenarioParams p;
  p.num_tasks = 50;
  p.num_users = 80;
  Rng rng(2);
  const model::World w = generate_world(p, rng);
  for (const model::Task& t : w.tasks()) {
    EXPECT_TRUE(w.area().contains(t.location()));
    EXPECT_GE(t.deadline(), p.deadline_min);
    EXPECT_LE(t.deadline(), p.deadline_max);
    EXPECT_EQ(t.required(), p.required_measurements);
  }
  for (const model::User& u : w.users()) {
    EXPECT_TRUE(w.area().contains(u.home()));
    EXPECT_GE(u.time_budget(), p.user_budget_min_s);
    EXPECT_LE(u.time_budget(), p.user_budget_max_s);
  }
  EXPECT_DOUBLE_EQ(w.travel().speed_mps, p.speed_mps);
  EXPECT_DOUBLE_EQ(w.travel().cost_per_meter, p.cost_per_meter);
  EXPECT_DOUBLE_EQ(w.neighbor_radius(), p.neighbor_radius);
}

TEST(Scenario, DeterministicForSameSeed) {
  ScenarioParams p;
  Rng a(7);
  Rng b(7);
  const model::World wa = generate_world(p, a);
  const model::World wb = generate_world(p, b);
  for (std::size_t i = 0; i < wa.num_tasks(); ++i) {
    EXPECT_EQ(wa.tasks()[i].location(), wb.tasks()[i].location());
    EXPECT_EQ(wa.tasks()[i].deadline(), wb.tasks()[i].deadline());
  }
  for (std::size_t i = 0; i < wa.num_users(); ++i) {
    EXPECT_EQ(wa.users()[i].home(), wb.users()[i].home());
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioParams p;
  Rng a(7);
  Rng b(8);
  const model::World wa = generate_world(p, a);
  const model::World wb = generate_world(p, b);
  EXPECT_NE(wa.tasks()[0].location(), wb.tasks()[0].location());
}

TEST(Scenario, SpatialCoverageOfUniformPlacement) {
  // With 200 points in a 3000 m square, every quadrant should be populated.
  ScenarioParams p;
  p.num_tasks = 200;
  Rng rng(3);
  const model::World w = generate_world(p, rng);
  int quadrant[4] = {0, 0, 0, 0};
  for (const model::Task& t : w.tasks()) {
    const int qx = t.location().x < 1500.0 ? 0 : 1;
    const int qy = t.location().y < 1500.0 ? 0 : 1;
    ++quadrant[qx * 2 + qy];
  }
  for (const int q : quadrant) EXPECT_GT(q, 20);
}

TEST(Scenario, ClusteredWorldConcentratesTasks) {
  ScenarioParams p;
  p.num_tasks = 60;
  Rng rng(4);
  const model::World w = generate_clustered_world(p, /*clusters=*/2,
                                                  /*sigma=*/50.0, rng);
  EXPECT_EQ(w.num_tasks(), 60u);
  // With sigma=50 and 2 clusters, the average pairwise distance must be far
  // below the uniform expectation (~1550 m for a 3000 m square).
  double total = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < w.num_tasks(); ++i) {
    for (std::size_t j = i + 1; j < w.num_tasks(); ++j) {
      total += geo::euclidean(w.tasks()[i].location(), w.tasks()[j].location());
      ++pairs;
    }
  }
  EXPECT_LT(total / pairs, 1200.0);
  for (const model::Task& t : w.tasks()) {
    EXPECT_TRUE(w.area().contains(t.location()));
  }
}

TEST(Scenario, HeterogeneousRequirements) {
  ScenarioParams p;
  p.num_tasks = 200;
  p.required_measurements = 20;
  p.required_spread = 5;
  Rng rng(9);
  const model::World w = generate_world(p, rng);
  bool varied = false;
  for (const model::Task& t : w.tasks()) {
    EXPECT_GE(t.required(), 15);
    EXPECT_LE(t.required(), 25);
    if (t.required() != 20) varied = true;
  }
  EXPECT_TRUE(varied);
  // Mean phi stays near the center.
  EXPECT_NEAR(static_cast<double>(w.total_required()) / 200.0, 20.0, 1.0);
}

TEST(Scenario, SpreadClampsAtOne) {
  ScenarioParams p;
  p.num_tasks = 100;
  p.required_measurements = 2;
  p.required_spread = 10;  // lower bound would be negative without clamping
  Rng rng(10);
  const model::World w = generate_world(p, rng);
  for (const model::Task& t : w.tasks()) {
    EXPECT_GE(t.required(), 1);
    EXPECT_LE(t.required(), 12);
  }
}

TEST(Scenario, ParamValidation) {
  Rng rng(5);
  ScenarioParams p;
  p.num_tasks = 0;
  EXPECT_THROW(generate_world(p, rng), Error);
  p = {};
  p.deadline_min = 10;
  p.deadline_max = 5;
  EXPECT_THROW(generate_world(p, rng), Error);
  p = {};
  p.user_budget_min_s = 700.0;
  p.user_budget_max_s = 600.0;
  EXPECT_THROW(generate_world(p, rng), Error);
  p = {};
  EXPECT_THROW(generate_clustered_world(p, 0, 10.0, rng), Error);
  EXPECT_THROW(generate_clustered_world(p, 2, -1.0, rng), Error);
  p = {};
  p.required_spread = -1;
  EXPECT_THROW(generate_world(p, rng), Error);
}

}  // namespace
}  // namespace mcs::sim
