#include "sim/sensing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mcs::sim {
namespace {

TEST(Sensing, PopulationDraw) {
  Rng rng(1);
  const auto pop = draw_sensor_population(500, 2.0, 0.5, 1.5, rng);
  ASSERT_EQ(pop.size(), 500u);
  double bias_sum = 0.0;
  for (const auto& s : pop) {
    EXPECT_GE(s.noise_stddev, 0.5);
    EXPECT_LE(s.noise_stddev, 1.5);
    bias_sum += s.bias;
  }
  EXPECT_NEAR(bias_sum / 500.0, 0.0, 0.3);  // biases centered at 0
  EXPECT_THROW(draw_sensor_population(5, -1.0, 0.0, 1.0, rng), Error);
  EXPECT_THROW(draw_sensor_population(5, 1.0, 2.0, 1.0, rng), Error);
}

TEST(Sensing, SenseAddsBiasAndNoise) {
  Rng rng(2);
  const SensorProfile clean{0.0, 0.0};
  EXPECT_DOUBLE_EQ(sense(42.0, clean, rng), 42.0);
  const SensorProfile biased{3.0, 0.0};
  EXPECT_DOUBLE_EQ(sense(42.0, biased, rng), 45.0);
  const SensorProfile noisy{0.0, 1.0};
  double var = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double e = sense(0.0, noisy, rng);
    var += e * e;
  }
  EXPECT_NEAR(var / 10000.0, 1.0, 0.1);
}

TEST(Aggregate, MeanMedianTrimmed) {
  const std::vector<double> v{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregator::kMean), 22.0);
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregator::kMedian), 3.0);
  // n=5 -> trim 1 each side -> mean(2,3,4)=3.
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregator::kTrimmedMean), 3.0);
  EXPECT_DOUBLE_EQ(aggregate({5.0}, Aggregator::kMedian), 5.0);
  EXPECT_DOUBLE_EQ(aggregate({5.0}, Aggregator::kTrimmedMean), 5.0);
  EXPECT_DOUBLE_EQ(aggregate({1.0, 3.0}, Aggregator::kMedian), 2.0);
  EXPECT_THROW(aggregate({}, Aggregator::kMean), Error);
}

TEST(Aggregate, MedianRobustToOutliers) {
  // One corrupted reading moves the mean but not the median.
  const std::vector<double> good{10, 10.5, 9.5, 10.2, 9.8};
  std::vector<double> corrupted = good;
  corrupted.push_back(1000.0);
  EXPECT_GT(aggregate(corrupted, Aggregator::kMean), 100.0);
  EXPECT_NEAR(aggregate(corrupted, Aggregator::kMedian), 10.0, 0.5);
}

TEST(Aggregate, ParseNames) {
  EXPECT_EQ(parse_aggregator("mean"), Aggregator::kMean);
  EXPECT_EQ(parse_aggregator("Median"), Aggregator::kMedian);
  EXPECT_EQ(parse_aggregator("trimmed-mean"), Aggregator::kTrimmedMean);
  EXPECT_THROW(parse_aggregator("mode"), Error);
  EXPECT_STREQ(aggregator_name(Aggregator::kMean), "mean");
}

TEST(QualityCurve, RmseDecreasesWithMeasurements) {
  Rng rng(3);
  const auto pop = draw_sensor_population(100, 1.0, 0.5, 2.0, rng);
  const auto rmse = quality_curve(pop, 20, 400, Aggregator::kMean, rng);
  ASSERT_EQ(rmse.size(), 20u);
  // Not necessarily monotone sample-by-sample, but the endpoints must obey
  // the law of large numbers decisively.
  EXPECT_LT(rmse[19], 0.6 * rmse[0]);
  EXPECT_LT(rmse[9], rmse[0]);
  for (const double r : rmse) EXPECT_GT(r, 0.0);
}

TEST(QualityCurve, Validation) {
  Rng rng(4);
  const auto pop = draw_sensor_population(10, 1.0, 0.5, 1.0, rng);
  EXPECT_THROW(quality_curve(pop, 11, 10, Aggregator::kMean, rng), Error);
  EXPECT_THROW(quality_curve(pop, 0, 10, Aggregator::kMean, rng), Error);
  EXPECT_THROW(quality_curve(pop, 5, 0, Aggregator::kMean, rng), Error);
  EXPECT_THROW(quality_curve({}, 1, 1, Aggregator::kMean, rng), Error);
}

TEST(QualityModel, RmseToQualityNormalizes) {
  const auto q = rmse_to_quality({2.0, 1.0, 0.5, 0.4});
  ASSERT_EQ(q.size(), 4u);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_DOUBLE_EQ(q[1], 0.5);
  EXPECT_DOUBLE_EQ(q[2], 0.75);
  EXPECT_DOUBLE_EQ(q[3], 0.8);
  EXPECT_THROW(rmse_to_quality({}), Error);
  EXPECT_THROW(rmse_to_quality({0.0, 1.0}), Error);
}

TEST(QualityModel, FitRecoversKnownDelta) {
  // Generate Q(x) = 1 - (1-0.3)^x exactly; the fit must recover 0.3.
  std::vector<double> q;
  for (int x = 1; x <= 15; ++x) q.push_back(1.0 - std::pow(0.7, x));
  EXPECT_NEAR(fit_quality_delta(q), 0.3, 0.002);
}

TEST(QualityModel, EndToEndDeltaIsPlausible) {
  // The paper's steered baseline uses delta = 0.2; a simulated sensor
  // population should produce a diminishing-returns curve whose fitted
  // delta is in the same regime (order 0.1-0.5), closing the loop between
  // the sensing substrate and the steered mechanism's quality model.
  Rng rng(5);
  const auto pop = draw_sensor_population(200, 1.0, 0.5, 2.0, rng);
  const auto rmse = quality_curve(pop, 20, 300, Aggregator::kMean, rng);
  const double delta = fit_quality_delta(rmse_to_quality(rmse));
  EXPECT_GT(delta, 0.05);
  EXPECT_LT(delta, 0.6);
}

}  // namespace
}  // namespace mcs::sim
