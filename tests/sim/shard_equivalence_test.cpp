// The sharded round loop's contract (SimulatorParams::shards): campaigns
// are bit-identical at any shard count — and, for static mobility with the
// shipped DP/greedy selectors, bit-identical to the legacy round loop too
// (the sharded candidate gather drops only tasks beyond the travel-distance
// budget, using the exact predicate the DP front-end prunes with). Runs
// under TSan in tier-1: the sharded pre-pass and plan phase are concurrent
// regions over the world's stores.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "incentive/mechanism.h"
#include "model/world.h"
#include "select/plan_memo.h"
#include "select/selector.h"
#include "sim/checkpoint.h"
#include "sim/mobility.h"
#include "sim/scenario.h"
#include "sim/serialize.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

FaultPlan stress_faults() {
  FaultPlan f;
  f.dropout_prob = 0.15;
  f.abandon_prob = 0.2;
  f.upload_loss_prob = 0.1;
  f.seed = 7;
  return f;
}

struct RunKnobs {
  incentive::MechanismKind kind = incentive::MechanismKind::kOnDemand;
  select::SelectorKind selector = select::SelectorKind::kDp;
  bool faults = false;
  bool memo = false;
  int shards = 0;
  MobilityKind mobility = MobilityKind::kStaticHome;
  // Dense home sites + budget quantum give the memo real equivalence
  // classes when enabled.
  int home_sites = 0;
  Seconds budget_quantum = 0.0;
};

ScenarioParams scenario(const RunKnobs& k) {
  ScenarioParams p;
  p.num_users = 30;
  p.num_tasks = 12;
  p.required_measurements = 6;
  p.home_sites = k.home_sites;
  p.user_budget_quantum_s = k.budget_quantum;
  return p;
}

struct CampaignRun {
  std::vector<RoundMetrics> rounds;
  Money spent = 0.0;
  std::string world_json;
  select::PlanMemoStats memo_stats;
};

Simulator make_simulator(const RunKnobs& k) {
  Rng rng(4242);
  model::World world = generate_world(scenario(k), rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = incentive::make_mechanism(k.kind, world, {}, mech_rng);
  auto selector = select::make_selector(k.selector, 14);
  SimulatorParams sp;
  sp.max_rounds = 8;
  sp.shards = k.shards;
  sp.memo.enabled = k.memo;
  if (k.faults) sp.faults = stress_faults();
  return Simulator(std::move(world), std::move(mechanism),
                   std::move(selector), sp,
                   make_mobility(k.mobility, /*drift_sigma=*/150.0));
}

CampaignRun finish(const Simulator& s) {
  CampaignRun out;
  out.rounds = s.history();
  out.spent = s.budget().spent();
  out.world_json = world_to_json(s.world()).dump(2);
  out.memo_stats = s.plan_memo_stats();
  return out;
}

CampaignRun run_campaign(RunKnobs k) {
  Simulator s = make_simulator(k);
  s.run();
  return finish(s);
}

void expect_bit_identical(const CampaignRun& a, const CampaignRun& b) {
  // The serialized end world catches every task/user divergence byte for
  // byte; the round histories catch ordering/accounting divergences.
  EXPECT_EQ(a.world_json, b.world_json);
  EXPECT_EQ(a.spent, b.spent);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t k = 0; k < a.rounds.size(); ++k) {
    EXPECT_EQ(rounds_to_json({a.rounds[k]}).dump(),
              rounds_to_json({b.rounds[k]}).dump())
        << "round " << k;
  }
}

void expect_same_memo_stats(const CampaignRun& a, const CampaignRun& b) {
  EXPECT_EQ(a.memo_stats.exact_hits, b.memo_stats.exact_hits);
  EXPECT_EQ(a.memo_stats.fixup_hits, b.memo_stats.fixup_hits);
  EXPECT_EQ(a.memo_stats.misses, b.memo_stats.misses);
  EXPECT_EQ(a.memo_stats.fallbacks, b.memo_stats.fallbacks);
  EXPECT_EQ(a.memo_stats.rounds, b.memo_stats.rounds);
}

// {fixed, on-demand, steered} x {clean, faulted} x shards {1, 2, 8, auto}
// against the legacy shards = 0 loop, DP selector, static-home mobility.
// Steered is intra-round (the knob is a documented no-op there) and pins
// exactly that.
TEST(ShardEquivalence, ShardCountsMatchLegacyLoopBitIdentical) {
  for (const auto kind :
       {incentive::MechanismKind::kFixed, incentive::MechanismKind::kOnDemand,
        incentive::MechanismKind::kSteered}) {
    for (const bool faults : {false, true}) {
      RunKnobs base;
      base.kind = kind;
      base.faults = faults;
      const CampaignRun legacy = run_campaign(base);
      for (const int shards : {1, 2, 8, SimulatorParams::kAutoShards}) {
        SCOPED_TRACE(std::string(incentive::mechanism_name(kind)) +
                     (faults ? "/faults" : "/clean") + "/shards=" +
                     std::to_string(shards));
        RunKnobs k = base;
        k.shards = shards;
        expect_bit_identical(legacy, run_campaign(k));
      }
    }
  }
}

// The greedy selector never picks a candidate beyond the travel-distance
// budget (the first leg is checked directly, later legs by the triangle
// inequality), so the sharded reach filter is invisible to it too.
TEST(ShardEquivalence, GreedySelectorShardedMatchesLegacy) {
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faults" : "clean");
    RunKnobs k;
    k.selector = select::SelectorKind::kGreedy;
    k.faults = faults;
    const CampaignRun legacy = run_campaign(k);
    k.shards = 4;
    expect_bit_identical(legacy, run_campaign(k));
  }
}

// Memo on: the per-cell tables depend only on the world geometry (cell
// partition) and per-cell position order, never on the worker count — so
// plans AND hit/miss accounting are shard-count-invariant. The trajectory
// also matches the legacy memo-free run (the memo is proof-gated either
// way); only the stats differ between per-round and per-cell tables.
TEST(ShardEquivalence, MemoShardCountInvariantIncludingStats) {
  RunKnobs k;
  k.memo = true;
  k.home_sites = 6;
  k.budget_quantum = 300.0;
  k.shards = 1;
  const CampaignRun one = run_campaign(k);
  EXPECT_GT(one.memo_stats.lookups(), 0);
  for (const int shards : {2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    k.shards = shards;
    const CampaignRun many = run_campaign(k);
    expect_bit_identical(one, many);
    expect_same_memo_stats(one, many);
  }
  RunKnobs legacy = k;
  legacy.shards = 0;
  legacy.memo = false;
  expect_bit_identical(run_campaign(legacy), one);
}

// Stochastic mobility draws per-user substreams in sharded mode (a
// different trajectory from the legacy serial stream, by design), but the
// substreams are pure functions of (seed, round, position): any two shard
// counts walk the exact same campaign.
TEST(ShardEquivalence, StochasticMobilityShardCountInvariant) {
  for (const auto mobility :
       {MobilityKind::kGaussianDrift, MobilityKind::kRandomWaypoint}) {
    SCOPED_TRACE(mobility_name(mobility));
    RunKnobs k;
    k.mobility = mobility;
    k.faults = true;
    k.shards = 1;
    const CampaignRun one = run_campaign(k);
    k.shards = 8;
    expect_bit_identical(one, run_campaign(k));
  }
}

// Commute mobility is deterministic (no draws), so sharded must also match
// the legacy loop exactly — the substream seeding is bit-invisible.
TEST(ShardEquivalence, CommuteMobilityShardedMatchesLegacy) {
  RunKnobs k;
  k.mobility = MobilityKind::kCommute;
  const CampaignRun legacy = run_campaign(k);
  k.shards = 4;
  expect_bit_identical(legacy, run_campaign(k));
}

// Sparse user ids through the sharded loop: ids {70, 10, 55} on a 3-user
// world force every piece of shard bookkeeping (cell scatter, substream
// seeding, profit rows, dropped flags) to index by *position*, never by id.
// Task ids stay dense — the incentive layer sizes its reward table by task
// count but indexes it by id, a repo-wide dense-task-id convention for
// campaigns (sparse task ids are pinned in the storage round-trip below).
TEST(ShardEquivalence, SparseUserIdsShardedMatchesLegacy) {
  const auto build_world = [] {
    geo::BoundingBox area{{0.0, 0.0}, {1000.0, 1000.0}};
    model::World world(area, geo::TravelModel{2.0, 0.002}, 500.0);
    world.add_task({100.0, 100.0}, /*deadline=*/5, /*required=*/2);
    world.add_task({900.0, 900.0}, 5, 2);
    world.add_task({500.0, 480.0}, 5, 2);
    world.users().emplace_back(UserId{70}, geo::Point{120.0, 120.0}, 900.0);
    world.users().emplace_back(UserId{10}, geo::Point{880.0, 880.0}, 900.0);
    world.users().emplace_back(UserId{55}, geo::Point{500.0, 500.0}, 900.0);
    for (model::User& u : world.users()) u.return_home();
    return world;
  };
  const auto run = [&](int shards) {
    model::World world = build_world();
    Rng mech_rng(1);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                          world, {}, mech_rng);
    auto selector = select::make_selector(select::SelectorKind::kDp, 14);
    SimulatorParams sp;
    sp.max_rounds = 4;
    sp.shards = shards;
    Simulator s(std::move(world), std::move(mech), std::move(selector), sp);
    s.run();
    return finish(s);
  };
  const CampaignRun legacy = run(0);
  EXPECT_GT(legacy.spent, 0.0);
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_bit_identical(legacy, run(shards));
  }
}

// Sparse task AND user ids through the SoA stores and the checkpoint's
// world payload: task ids {10, 20, 31} / user ids {70, 10, 55} with
// contributions recorded into the chunked bitsets must survive
// world_to_json -> world_from_json byte for byte, with membership intact.
TEST(ShardEquivalence, SparseIdsSoAStorageSerializationRoundTrip) {
  geo::BoundingBox area{{0.0, 0.0}, {1000.0, 1000.0}};
  model::World world(area, geo::TravelModel{2.0, 0.002}, 500.0);
  world.tasks().emplace_back(TaskId{10}, geo::Point{100.0, 100.0},
                             /*deadline=*/5, /*required=*/2);
  world.tasks().emplace_back(TaskId{20}, geo::Point{900.0, 900.0}, 5, 2);
  world.tasks().emplace_back(TaskId{31}, geo::Point{500.0, 480.0}, 5, 2);
  world.users().emplace_back(UserId{70}, geo::Point{120.0, 120.0}, 900.0);
  world.users().emplace_back(UserId{10}, geo::Point{880.0, 880.0}, 900.0);
  world.users().emplace_back(UserId{55}, geo::Point{500.0, 500.0}, 900.0);
  for (model::User& u : world.users()) u.return_home();
  // The snapshot format derives contributed sets from the task measurement
  // lists, so marks and measurements must agree.
  world.users()[0].mark_contributed(TaskId{31});
  world.tasks()[2].add_measurement(UserId{70}, /*round=*/1,
                                   /*reward_paid=*/3.0);
  world.users()[2].mark_contributed(TaskId{10});
  world.tasks()[0].add_measurement(UserId{55}, 1, 2.5);
  world.users()[2].mark_contributed(TaskId{20});
  world.tasks()[1].add_measurement(UserId{55}, 1, 2.0);

  const std::string before = world_to_json(world).dump(2);
  model::World back = world_from_json(world_to_json(world));
  EXPECT_EQ(world_to_json(back).dump(2), before);
  EXPECT_TRUE(back.users()[0].has_contributed(TaskId{31}));
  EXPECT_FALSE(back.users()[0].has_contributed(TaskId{10}));
  EXPECT_TRUE(back.users()[2].has_contributed(TaskId{10}));
  EXPECT_TRUE(back.users()[2].has_contributed(TaskId{20}));
  EXPECT_EQ(back.users()[2].tasks_contributed(), 2u);
}

// A selector without clone() cannot fan out: shards != 0 must fall back to
// the legacy loop (same as plan_threads does) and stay bit-identical.
class UncloneableSelector final : public select::TaskSelector {
 public:
  UncloneableSelector()
      : inner_(select::make_selector(select::SelectorKind::kGreedy, 14)) {}
  const char* name() const override { return "uncloneable"; }
  select::Selection select(
      const select::SelectionInstance& instance) const override {
    return inner_->select(instance);
  }
  // clone() intentionally not overridden: the base returns nullptr.

 private:
  std::unique_ptr<select::TaskSelector> inner_;
};

TEST(ShardEquivalence, SelectorWithoutCloneFallsBackToLegacyLoop) {
  const auto run = [](int shards) {
    RunKnobs k;
    Rng rng(4242);
    model::World world = generate_world(scenario(k), rng);
    Rng mech_rng = rng.split(0xfeed);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                          world, {}, mech_rng);
    SimulatorParams sp;
    sp.max_rounds = 5;
    sp.shards = shards;
    Simulator s(std::move(world), std::move(mech),
                std::make_unique<UncloneableSelector>(), sp);
    s.run();
    return world_to_json(s.world()).dump(2);
  };
  EXPECT_EQ(run(0), run(4));
}

// Checkpoint/resume round-trips the SoA world and the sharded knob: a
// sharded campaign torn down mid-flight through the envelope bytes resumes
// bit-identically, and the decoded params still say sharded.
TEST(ShardEquivalence, CheckpointResumeMidCampaignSharded) {
  RunKnobs k;
  k.faults = true;
  k.memo = true;
  k.home_sites = 6;
  k.budget_quantum = 300.0;
  k.shards = 2;
  const CampaignRun straight = run_campaign(k);

  std::optional<Simulator> s(make_simulator(k));
  const Round max_rounds = 8;
  while (s->current_round() < max_rounds && !s->all_tasks_closed()) {
    s->step();
    const Round done = s->current_round();
    if (done % 2 == 0 && done < max_rounds) {
      const std::string bytes = encode_checkpoint(s->checkpoint());
      s.reset();  // the original campaign is gone, bytes are all that's left
      const CampaignCheckpoint back = decode_checkpoint(bytes);
      EXPECT_EQ(back.params.shards, 2);
      // Replay the construction-time draws exactly as the runner does.
      Rng rng(4242);
      model::World fresh = generate_world(scenario(k), rng);
      Rng mech_rng = rng.split(0xfeed);
      s.emplace(Simulator::resume(
          back,
          incentive::make_mechanism(k.kind, fresh, {}, mech_rng),
          select::make_selector(k.selector, 14),
          make_mobility(k.mobility, 150.0)));
    }
  }
  const CampaignRun resumed = finish(*s);
  expect_bit_identical(straight, resumed);
  expect_same_memo_stats(straight, resumed);
}

}  // namespace
}  // namespace mcs::sim
