#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "geo/distance.h"
#include "incentive/fixed_mechanism.h"
#include "incentive/on_demand_mechanism.h"
#include "select/candidate_pool.h"
#include "select/selector.h"
#include "sim/scenario.h"

namespace mcs::sim {
namespace {

using incentive::DemandIndicator;
using incentive::DemandLevelScale;
using incentive::FixedMechanism;
using incentive::OnDemandMechanism;
using incentive::RewardRule;

model::World tiny_world() {
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 200.0);
  w.add_task({100, 0}, 5, 2);   // near user homes
  w.add_task({900, 900}, 5, 2); // far corner
  w.add_user({0, 0}, 600.0);    // can walk 1200 m per round
  w.add_user({50, 0}, 600.0);
  w.add_user({0, 50}, 600.0);
  return w;
}

Simulator make_sim(model::World world, SimulatorParams sp = {}) {
  auto mech = std::make_unique<OnDemandMechanism>(
      DemandIndicator::with_paper_defaults(), DemandLevelScale(5),
      RewardRule(0.5, 0.5, 5));
  auto sel = select::make_selector(select::SelectorKind::kDp);
  return Simulator(std::move(world), std::move(mech), std::move(sel), sp);
}

TEST(Simulator, StepProducesRoundMetrics) {
  Simulator s = make_sim(tiny_world());
  const RoundMetrics& rm = s.step();
  EXPECT_EQ(rm.round, 1);
  EXPECT_GT(rm.new_measurements, 0);
  EXPECT_EQ(rm.total_measurements, rm.new_measurements);
  EXPECT_EQ(rm.user_profit.size(), 3u);
  EXPECT_EQ(s.current_round(), 1);
}

TEST(Simulator, UsersNeverRepeatATask) {
  Simulator s = make_sim(tiny_world());
  for (int k = 0; k < 5; ++k) s.step();
  for (const model::Task& t : s.world().tasks()) {
    std::set<UserId> contributors;
    for (const auto& m : t.measurements()) {
      EXPECT_TRUE(contributors.insert(m.user).second)
          << "user " << m.user << " contributed twice to task " << t.id();
    }
  }
}

TEST(Simulator, CompletedTasksAreWithdrawnNextRound) {
  // Task 0 needs 2 measurements and has 3 users adjacent: it completes in
  // round 1 (possibly with overflow) and must receive nothing afterwards.
  Simulator s = make_sim(tiny_world());
  s.step();
  const int after_round1 = s.world().task(0).received();
  EXPECT_GE(after_round1, 2);
  for (int k = 0; k < 4; ++k) s.step();
  EXPECT_EQ(s.world().task(0).received(), after_round1);
}

TEST(Simulator, NoMeasurementsAfterDeadline) {
  SimulatorParams sp;
  sp.max_rounds = 8;
  Simulator sim = make_sim(tiny_world(), sp);
  for (int k = 0; k < 8; ++k) sim.step();
  for (const model::Task& t : sim.world().tasks()) {
    for (const auto& m : t.measurements()) {
      EXPECT_LE(m.round, t.deadline());
    }
  }
}

TEST(Simulator, PaymentsMatchTaskLedgers) {
  Simulator s = make_sim(tiny_world());
  for (int k = 0; k < 5 && !s.all_tasks_closed(); ++k) s.step();
  EXPECT_NEAR(s.budget().spent(), s.world().total_paid(), 1e-9);
}

TEST(Simulator, UserProfitsConsistentWithLedger) {
  Simulator s = make_sim(tiny_world());
  s.step();
  const auto& rm = s.history().back();
  for (std::size_t u = 0; u < 3; ++u) {
    const model::User& user = s.world().users()[u];
    EXPECT_NEAR(rm.user_profit[u], user.total_profit(), 1e-9);
  }
}

TEST(Simulator, RunStopsWhenAllTasksClosed) {
  SimulatorParams sp;
  sp.max_rounds = 15;
  Simulator s = make_sim(tiny_world(), sp);
  const CampaignMetrics m = s.run();
  EXPECT_TRUE(s.all_tasks_closed() || s.current_round() == 15);
  EXPECT_GT(m.total_measurements, 0);
  // Both tasks are trivially reachable for 3 users at budget 600 s; the
  // near one completes, the far one at (900,900) is within 1273 m one-way,
  // too far for the 1200 m budget -> expired uncovered.
  EXPECT_TRUE(s.world().task(0).completed());
}

TEST(Simulator, StepPastEndThrows) {
  SimulatorParams sp;
  sp.max_rounds = 1;
  Simulator s = make_sim(tiny_world(), sp);
  s.step();
  EXPECT_THROW(s.step(), Error);
}

TEST(Simulator, EventTraceMatchesMeasurements) {
  SimulatorParams sp;
  sp.record_events = true;
  Simulator s = make_sim(tiny_world(), sp);
  for (int k = 0; k < 3; ++k) s.step();
  EXPECT_EQ(static_cast<long long>(s.events().size()),
            s.world().total_received());
  for (const SensingEvent& e : s.events().events()) {
    EXPECT_TRUE(s.world().task(e.task).has_contributed(e.user));
    EXPECT_GT(e.reward, 0.0);
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  SimulatorParams sp;
  sp.max_rounds = 5;
  Simulator a = make_sim(tiny_world(), sp);
  Simulator b = make_sim(tiny_world(), sp);
  const CampaignMetrics ma = a.run();
  const CampaignMetrics mb = b.run();
  EXPECT_EQ(ma.total_measurements, mb.total_measurements);
  EXPECT_DOUBLE_EQ(ma.total_paid, mb.total_paid);
  EXPECT_EQ(ma.per_task_received, mb.per_task_received);
}

TEST(Simulator, PeekInstancesDoesNotMutateState) {
  Simulator s = make_sim(tiny_world());
  const auto insts = s.peek_instances();
  ASSERT_EQ(insts.size(), 3u);
  EXPECT_EQ(s.world().total_received(), 0);
  EXPECT_EQ(s.current_round(), 0);
  // Users near (0,0) see the near task as a candidate; the far corner task
  // (1273 m away) exceeds every budget and is still listed as a candidate —
  // filtering by reachability is the selector's job, not the instance's.
  for (const auto& inst : insts) {
    EXPECT_EQ(inst.candidates.size(), 2u);
    EXPECT_DOUBLE_EQ(inst.time_budget, 600.0);
  }
  // Stepping afterwards behaves exactly like a fresh simulator.
  Simulator fresh = make_sim(tiny_world());
  EXPECT_EQ(s.step().new_measurements, fresh.step().new_measurements);
}

TEST(Simulator, FixedMechanismCountsArePaidAtFixedRate) {
  model::World w = tiny_world();
  auto mech = std::make_unique<FixedMechanism>(RewardRule(0.5, 0.5, 5),
                                               std::vector<int>{3, 3});
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  Simulator s(std::move(w), std::move(mech), std::move(sel), {});
  s.step();
  for (const model::Task& t : s.world().tasks()) {
    for (const auto& m : t.measurements()) {
      EXPECT_DOUBLE_EQ(m.reward_paid, 1.5);  // level 3
    }
  }
}

TEST(Simulator, MeanOpenRewardTracksPublishedPrices) {
  Simulator s = make_sim(tiny_world());
  const RoundMetrics& rm = s.step();
  EXPECT_EQ(rm.open_tasks, 2);
  // Both tasks open at round 1; the snapshot mean is within the rule range.
  EXPECT_GE(rm.mean_open_reward, 0.5);
  EXPECT_LE(rm.mean_open_reward, 2.5);
  // After the near task completes, only the far one stays open.
  const RoundMetrics& rm2 = s.step();
  EXPECT_EQ(rm2.open_tasks, 1);
}

// Prices ramp 1, 2, 3, ... on every update_rewards() call and the mechanism
// reprices before each user session — a minimal intra-round mechanism with
// exactly predictable published prices.
class RampMechanism final : public incentive::IncentiveMechanism {
 public:
  const char* name() const override { return "ramp"; }
  bool updates_within_round() const override { return true; }
  void update_rewards(const model::World& world, Round) override {
    rewards_.assign(world.num_tasks(), next_price_);
    next_price_ += 1.0;
  }

 private:
  Money next_price_ = 1.0;
};

TEST(Simulator, IntraRoundMeanRewardAveragesSessionPrices) {
  // Round 1 publishes $1 at round start, then reprices to $2/$3/$4 before
  // the three user sessions. The recorded mean must be what users were
  // actually offered — the session average $3 — not the $1 start snapshot.
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  Simulator s(tiny_world(), std::make_unique<RampMechanism>(), std::move(sel),
              {});
  const RoundMetrics& rm = s.step();
  EXPECT_EQ(rm.open_tasks, 2);  // the round-start snapshot is unchanged
  EXPECT_DOUBLE_EQ(rm.mean_open_reward, 3.0);
}

TEST(Simulator, ConstructionValidation) {
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  EXPECT_THROW(Simulator(tiny_world(), nullptr, std::move(sel), {}), Error);
  auto mech = std::make_unique<FixedMechanism>(RewardRule(0.5, 0.5, 5),
                                               std::vector<int>{1, 1});
  EXPECT_THROW(Simulator(tiny_world(), std::move(mech), nullptr, {}), Error);
}

// Pays 1 + id/10 dollars for every open task, keyed strictly by task id —
// valid for worlds whose ids are not dense vector positions.
class IdKeyedMechanism final : public incentive::IncentiveMechanism {
 public:
  explicit IdKeyedMechanism(TaskId max_id) {
    rewards_.assign(static_cast<std::size_t>(max_id) + 1, 0.0);
  }
  const char* name() const override { return "id-keyed"; }
  void update_rewards(const model::World& world, Round k) override {
    for (const model::Task& t : world.tasks()) {
      rewards_[static_cast<std::size_t>(t.id())] =
          (t.completed() || t.expired_at(k))
              ? 0.0
              : 1.0 + 0.1 * static_cast<double>(t.id());
    }
  }
};

TEST(Simulator, RoundMetricsIndexRewardsByTaskIdNotPosition) {
  // Regression: the mean_open_reward snapshot used to query
  // mechanism->reward(position). With ids {10, 20, 31} that read rewards
  // the mechanism never published (same bug class as the DemandIndicator
  // position/id mixup fixed in PR 1).
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 200.0);
  w.tasks().emplace_back(TaskId{10}, geo::Point{100, 0}, Round{5}, 1);
  w.tasks().emplace_back(TaskId{20}, geo::Point{200, 0}, Round{5}, 1);
  w.tasks().emplace_back(TaskId{31}, geo::Point{900, 900}, Round{5}, 1);
  w.add_user({0, 0}, 600.0);

  auto sel = select::make_selector(select::SelectorKind::kDp);
  Simulator s(std::move(w), std::make_unique<IdKeyedMechanism>(31),
              std::move(sel), {});
  const RoundMetrics& rm = s.step();
  EXPECT_EQ(rm.open_tasks, 3);
  EXPECT_DOUBLE_EQ(rm.mean_open_reward, (2.0 + 3.0 + 4.1) / 3.0);
  // The campaign itself runs on id-keyed lookups too: the user reached the
  // two nearby tasks and was paid their published (id-keyed) rewards.
  EXPECT_EQ(s.world().task(10).received(), 1);
  EXPECT_EQ(s.world().task(20).received(), 1);
  EXPECT_DOUBLE_EQ(s.world().task(10).measurements()[0].reward_paid, 2.0);
  EXPECT_DOUBLE_EQ(s.world().task(20).measurements()[0].reward_paid, 3.0);
}

TEST(Simulator, PeekInstancesShareRoundPool) {
  // Every instance of a round points at one shared CandidatePool whose
  // distance block matches a direct recomputation.
  Simulator s = make_sim(tiny_world());
  const auto instances = s.peek_instances();
  ASSERT_EQ(instances.size(), 3u);
  const auto& pool = instances[0].pool;
  ASSERT_NE(pool, nullptr);
  for (const auto& inst : instances) {
    EXPECT_EQ(inst.pool.get(), pool.get());
    ASSERT_TRUE(inst.has_pool());
    for (std::size_t i = 0; i < inst.candidates.size(); ++i) {
      const auto row = static_cast<std::size_t>(inst.pool_index[i]);
      EXPECT_EQ(pool->candidates()[row].task, inst.candidates[i].task);
      for (std::size_t j = 0; j < inst.candidates.size(); ++j) {
        EXPECT_EQ(pool->dist(row, static_cast<std::size_t>(inst.pool_index[j])),
                  geo::euclidean(inst.candidates[i].location,
                                 inst.candidates[j].location));
      }
    }
  }
}

}  // namespace
}  // namespace mcs::sim
