// Simulator x mechanism interplay: properties that only show up when the
// pricing policy and the round loop interact — order (in)sensitivity,
// reward trajectories on crafted worlds, mobility effects on specific
// mechanisms.
#include <gtest/gtest.h>

#include "incentive/fixed_mechanism.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/steered_mechanism.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

using incentive::DemandIndicator;
using incentive::DemandLevelScale;
using incentive::RewardRule;

model::World seeded_world(std::uint64_t seed, int users = 30, int tasks = 8) {
  ScenarioParams p;
  p.num_users = users;
  p.num_tasks = tasks;
  p.required_measurements = 6;
  Rng rng(seed);
  return generate_world(p, rng);
}

Simulator sim_with(model::World world,
                   std::unique_ptr<incentive::IncentiveMechanism> mech,
                   std::uint64_t order_seed) {
  SimulatorParams sp;
  sp.order_seed = order_seed;
  return Simulator(std::move(world), std::move(mech),
                   select::make_selector(select::SelectorKind::kGreedy), sp);
}

std::unique_ptr<incentive::IncentiveMechanism> on_demand() {
  return std::make_unique<incentive::OnDemandMechanism>(
      DemandIndicator::with_paper_defaults(), DemandLevelScale(5),
      RewardRule(0.5, 0.5, 5));
}

TEST(Interplay, RoundGranularMechanismIsUserOrderInvariant) {
  // On-demand publishes once per round, and deliveries within a round are
  // all honored — so the user visiting order must not change any outcome.
  Simulator a = sim_with(seeded_world(5), on_demand(), /*order_seed=*/1);
  Simulator b = sim_with(seeded_world(5), on_demand(), /*order_seed=*/999);
  const CampaignMetrics ma = a.run();
  const CampaignMetrics mb = b.run();
  EXPECT_EQ(ma.per_task_received, mb.per_task_received);
  EXPECT_DOUBLE_EQ(ma.total_paid, mb.total_paid);
  EXPECT_DOUBLE_EQ(ma.completeness_pct, mb.completeness_pct);
}

TEST(Interplay, SteeredIsUserOrderSensitive) {
  // Steered reprices per user session, so the shuffle genuinely matters.
  // (Identical results for every seed would mean the intra-round path is
  // dead; distinct results confirm it runs. Compare several seeds to dodge
  // coincidental equality.)
  const CampaignMetrics base =
      sim_with(seeded_world(6),
               std::make_unique<incentive::SteeredMechanism>(0.5, 10.0, 0.2), 1)
          .run();
  bool any_difference = false;
  for (const std::uint64_t seed : {2ULL, 3ULL, 4ULL, 5ULL}) {
    const CampaignMetrics other =
        sim_with(seeded_world(6),
                 std::make_unique<incentive::SteeredMechanism>(0.5, 10.0, 0.2),
                 seed)
            .run();
    if (other.total_paid != base.total_paid ||
        other.per_task_received != base.per_task_received) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Interplay, OnDemandRewardRisesOnAStarvedTask) {
  // A world with one popular task cluster and one remote task: the remote
  // task's published reward must be non-decreasing while it is starved and
  // its deadline approaches.
  model::World w(geo::BoundingBox::square(3000.0), geo::TravelModel{}, 500.0);
  w.add_task({100, 100}, 10, 3);     // popular
  w.add_task({2900, 2900}, 10, 30);  // remote, effectively never completes
  for (int i = 0; i < 10; ++i) {
    w.add_user({100.0 + 10.0 * i, 100.0}, 300.0);
  }
  auto mech = std::make_unique<incentive::OnDemandMechanism>(
      DemandIndicator::with_paper_defaults(), DemandLevelScale(5),
      RewardRule(0.5, 0.5, 5));
  const incentive::OnDemandMechanism* raw = mech.get();
  SimulatorParams sp;
  sp.max_rounds = 10;
  Simulator s(std::move(w), std::move(mech),
              select::make_selector(select::SelectorKind::kGreedy), sp);
  Money prev = 0.0;
  for (Round k = 1; k <= 10; ++k) {
    s.step();
    const Money remote_reward = raw->rewards()[1];
    EXPECT_GE(remote_reward, prev - 1e-12) << "round " << k;
    prev = remote_reward;
  }
  // By the final rounds the starved remote task must sit at the top level.
  EXPECT_DOUBLE_EQ(prev, 2.5);
}

TEST(Interplay, FixedRewardsIdenticalEveryRound) {
  model::World w = seeded_world(7);
  auto mech = std::make_unique<incentive::FixedMechanism>(
      RewardRule(0.5, 0.5, 5), std::vector<int>(w.num_tasks(), 3));
  const incentive::FixedMechanism* raw = mech.get();
  SimulatorParams sp;
  Simulator s(std::move(w), std::move(mech),
              select::make_selector(select::SelectorKind::kGreedy), sp);
  for (Round k = 1; k <= 5; ++k) {
    s.step();
    for (std::size_t i = 0; i < s.world().num_tasks(); ++i) {
      const model::Task& t = s.world().tasks()[i];
      if (!t.completed() && !t.expired_at(k)) {
        EXPECT_DOUBLE_EQ(raw->rewards()[i], 1.5);
      }
    }
  }
}

TEST(Interplay, WaypointChurnBeatsStaticForFixedMechanism) {
  // The mobility claim behind bench_ext_mobility, pinned as a test: a fixed
  // mechanism collects strictly more under full churn than with a static
  // population (fresh users keep arriving near unexhausted tasks).
  auto run = [](MobilityKind mob) {
    ScenarioParams p;
    p.num_users = 60;
    Rng rng(8);
    model::World world = generate_world(p, rng);
    Rng mech_rng(1);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kFixed,
                                          world, {}, mech_rng);
    SimulatorParams sp;
    Simulator s(std::move(world), std::move(mech),
                select::make_selector(select::SelectorKind::kGreedy), sp,
                make_mobility(mob));
    return s.run().completeness_pct;
  };
  const double static_compl = run(MobilityKind::kStaticHome);
  const double churn_compl = run(MobilityKind::kRandomWaypoint);
  EXPECT_GT(churn_compl, static_compl + 5.0);
}

TEST(Interplay, IntraRoundMechanismStillHonorsRoundStartOpenSet) {
  // A task completed in an earlier round must never receive measurements
  // under an intra-round mechanism either.
  model::World w(geo::BoundingBox::square(500.0), geo::TravelModel{}, 100.0);
  w.add_task({10, 10}, 10, 1);
  w.add_task({400, 400}, 10, 5);
  for (int i = 0; i < 5; ++i) w.add_user({0, 0}, 600.0);
  SimulatorParams sp;
  Simulator s(std::move(w),
              std::make_unique<incentive::SteeredMechanism>(0.5, 10.0, 0.2),
              select::make_selector(select::SelectorKind::kGreedy), sp);
  s.step();
  const int after_r1 = s.world().task(0).received();
  EXPECT_GE(after_r1, 1);
  for (int k = 0; k < 4; ++k) s.step();
  EXPECT_EQ(s.world().task(0).received(), after_r1);
}

}  // namespace
}  // namespace mcs::sim
