// The checkpoint envelope, the atomic generational writer and the
// storage-fault harness: every corruption mode (bit flip, truncation,
// version skew, short/torn/ENOSPC writes, crash points) must end in a clean
// mcs::Error or a fallback to an older good generation — never a crash, a
// hang or a silently wrong resume. The CheckpointCrash suite forks and
// _exit()s mid-write (tier-1 skips it with --skip-crash on platforms where
// fork inside the test binary is awkward).
#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/hash.h"
#include "common/rng.h"
#include "incentive/mechanism.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/serialize.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

/// Fresh empty directory under the test temp root.
std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "mcs_ckpt_XXXXXX";
  const char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

/// A real mid-campaign checkpoint (3 rounds into an 8-round on-demand
/// campaign with events recorded), the fixture every envelope/writer test
/// serializes.
CampaignCheckpoint sample_checkpoint(Round steps = 3) {
  ScenarioParams p;
  p.num_users = 20;
  p.num_tasks = 8;
  p.required_measurements = 4;
  Rng rng(77);
  model::World world = generate_world(p, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                        world, {}, mech_rng);
  auto selector = select::make_selector(select::SelectorKind::kGreedy, 14);
  SimulatorParams sp;
  sp.max_rounds = 8;
  sp.record_events = true;
  Simulator s(std::move(world), std::move(mech), std::move(selector), sp);
  for (Round k = 0; k < steps; ++k) s.step();
  CampaignCheckpoint ckpt = s.checkpoint();
  ckpt.scenario = scenario_to_json(p);
  // A caller identity stamp, so the envelope round-trip tests cover the
  // provenance field the experiment runner relies on.
  Json::Object prov;
  prov["seed"] = Json(std::string("000000000000004d"));
  prov["sweep_point"] = Json(20);
  ckpt.provenance = Json(std::move(prov));
  return ckpt;
}

TEST(CheckpointEnvelope, Crc32MatchesTheIeeeTestVector) {
  const char* v = "123456789";
  EXPECT_EQ(crc32(v, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(v, 0), 0u);
}

TEST(CheckpointEnvelope, EncodeDecodeRoundTripIsIdentity) {
  const CampaignCheckpoint ckpt = sample_checkpoint();
  const std::string bytes = encode_checkpoint(ckpt);
  ASSERT_EQ(bytes.compare(0, 9, "MCS-CKPT "), 0);
  const CampaignCheckpoint back = decode_checkpoint(bytes);
  // The JSON payload is canonical (sorted keys, %.17g doubles), so equality
  // of dumps is equality of every field bit for bit.
  EXPECT_EQ(checkpoint_to_json(back).dump(), checkpoint_to_json(ckpt).dump());
  EXPECT_EQ(back.next_round, ckpt.next_round);
  EXPECT_EQ(back.mobility_rng, ckpt.mobility_rng);
  EXPECT_EQ(back.history.size(), ckpt.history.size());
  EXPECT_EQ(back.events.size(), ckpt.events.size());
}

TEST(CheckpointEnvelope, EveryBitFlipIsRejected) {
  std::string bytes = encode_checkpoint(sample_checkpoint());
  // Stride through the envelope; each flipped bit must fail decode (header
  // flips break the header/version/CRC parse, payload flips break the CRC).
  for (std::size_t i = 0; i < bytes.size(); i += 97) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    if (mutated == bytes) continue;
    EXPECT_THROW(decode_checkpoint(mutated), Error) << "byte " << i;
  }
}

TEST(CheckpointEnvelope, EveryTruncationIsRejected) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); len += 211) {
    EXPECT_THROW(decode_checkpoint(bytes.substr(0, len)), Error)
        << "length " << len;
  }
  EXPECT_THROW(decode_checkpoint(bytes.substr(0, bytes.size() - 1)), Error);
  // Appended garbage is not something the writer produced either.
  EXPECT_THROW(decode_checkpoint(bytes + "x"), Error);
}

TEST(CheckpointEnvelope, UnsupportedVersionIsRejected) {
  CampaignCheckpoint ckpt = sample_checkpoint();
  ckpt.version = kCheckpointFormatVersion + 1;
  const std::string bytes = encode_checkpoint(ckpt);
  EXPECT_THROW(decode_checkpoint(bytes), Error);
}

TEST(CheckpointEnvelope, MalformedHeadersAreRejected) {
  EXPECT_THROW(decode_checkpoint(""), Error);
  EXPECT_THROW(decode_checkpoint("\n"), Error);
  EXPECT_THROW(decode_checkpoint("not a checkpoint\n{}"), Error);
  EXPECT_THROW(decode_checkpoint(std::string(200, 'a')), Error);
  EXPECT_THROW(decode_checkpoint("MCS-CKPT v1 crc32=00000000 len=-3\n"), Error);
}

TEST(CheckpointWriter, RetainsTheNewestKeepGenerations) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  CheckpointWriter writer(dir, /*keep=*/2);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(writer.write(ckpt));
  EXPECT_EQ(writer.last_path(), dir + "/" + checkpoint_file_name(3));

  struct stat st{};
  EXPECT_NE(::stat((dir + "/" + checkpoint_file_name(1)).c_str(), &st), 0)
      << "generation 1 must be pruned";
  EXPECT_EQ(::stat((dir + "/" + checkpoint_file_name(2)).c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/" + checkpoint_file_name(3)).c_str(), &st), 0);

  const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
  EXPECT_EQ(loaded.generation, 3);
  EXPECT_EQ(loaded.skipped_generations, 0);
}

TEST(CheckpointWriter, ContinuesNumberingAcrossProcessRestarts) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  {
    CheckpointWriter writer(dir);
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_TRUE(writer.write(ckpt));
  }
  // A resumed process must not overwrite the generation it just recovered
  // from: the fresh writer picks up at 3.
  CheckpointWriter resumed(dir);
  EXPECT_TRUE(resumed.write(ckpt));
  EXPECT_EQ(resumed.last_path(), dir + "/" + checkpoint_file_name(3));
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 3);
}

TEST(CheckpointWriter, RejectsMissingDirectoryAndBadKeep) {
  EXPECT_THROW(CheckpointWriter("/nonexistent/mcs-ckpt-dir"), Error);
  const std::string dir = make_temp_dir();
  EXPECT_THROW(CheckpointWriter(dir, /*keep=*/0), Error);
}

TEST(CheckpointWriter, HasCheckpointIgnoresTmpAndForeignFiles) {
  const std::string dir = make_temp_dir();
  EXPECT_FALSE(has_checkpoint(dir));
  EXPECT_FALSE(has_checkpoint(dir + "/does-not-exist"));
  { std::ofstream(dir + "/gen-00000001.ckpt.tmp") << "torn"; }
  { std::ofstream(dir + "/notes.txt") << "hi"; }
  EXPECT_FALSE(has_checkpoint(dir));
  CheckpointWriter writer(dir);
  EXPECT_TRUE(writer.write(sample_checkpoint()));
  EXPECT_TRUE(has_checkpoint(dir));
}

TEST(CheckpointFaults, ShortWriteLeavesThePreviousGenerationGood) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  CheckpointWriter writer(dir);
  EXPECT_TRUE(writer.write(ckpt));

  StorageFaults faults;
  faults.short_write_after = 100;
  writer.set_faults(faults);
  EXPECT_FALSE(writer.write(ckpt));  // "crashed": tmp left, never renamed

  const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
  EXPECT_EQ(loaded.generation, 1);
  EXPECT_EQ(loaded.skipped_generations, 0) << "tmp files are never candidates";
  // Faults are one-shot: the next write is clean again, and it reuses the
  // generation number the crashed attempt never published.
  EXPECT_TRUE(writer.write(ckpt));
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 2);
}

TEST(CheckpointFaults, TornWritePublishesCorruptGenerationAndFallsBack) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  CheckpointWriter writer(dir);
  EXPECT_TRUE(writer.write(ckpt));

  StorageFaults faults;
  faults.torn_write_after = 200;
  writer.set_faults(faults);
  EXPECT_FALSE(writer.write(ckpt));

  // The corrupt generation 2 is on disk with the right name and size; only
  // its CRC gives it away, and the loader falls back to generation 1.
  EXPECT_THROW(load_checkpoint(dir + "/" + checkpoint_file_name(2)), Error);
  const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
  EXPECT_EQ(loaded.generation, 1);
  EXPECT_EQ(loaded.skipped_generations, 1);
}

TEST(CheckpointFaults, EnospcThrowsAndKeepsThePreviousGeneration) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  CheckpointWriter writer(dir);
  EXPECT_TRUE(writer.write(ckpt));

  StorageFaults faults;
  faults.enospc_after = 50;
  writer.set_faults(faults);
  EXPECT_THROW(writer.write(ckpt), Error);

  // The failed write unlinked its tmp and published nothing.
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 1);
  EXPECT_TRUE(writer.write(ckpt));  // disk "freed": clean write works
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 2);
}

TEST(CheckpointFaults, CrashBeforeRenameKeepsThePreviousGeneration) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  CheckpointWriter writer(dir);
  EXPECT_TRUE(writer.write(ckpt));

  StorageFaults faults;
  faults.crash_before_rename = true;
  bool fired = false;
  faults.on_crash_point = [&fired] { fired = true; };
  writer.set_faults(faults);
  EXPECT_FALSE(writer.write(ckpt));
  EXPECT_TRUE(fired);

  // The durable-but-unpublished tmp is invisible to the loader.
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 1);
}

TEST(CheckpointFaults, CrashBeforePruneLeavesStaleSiblingsLoadable) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  CheckpointWriter writer(dir, /*keep=*/1);
  EXPECT_TRUE(writer.write(ckpt));

  StorageFaults faults;
  faults.crash_before_prune = true;
  writer.set_faults(faults);
  EXPECT_FALSE(writer.write(ckpt));

  // Generation 2 is fully durable; generation 1 survived the skipped prune.
  struct stat st{};
  EXPECT_EQ(::stat((dir + "/" + checkpoint_file_name(1)).c_str(), &st), 0);
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 2);
  // The next clean write prunes everything older than keep=1.
  EXPECT_TRUE(writer.write(ckpt));
  EXPECT_NE(::stat((dir + "/" + checkpoint_file_name(1)).c_str(), &st), 0);
  EXPECT_NE(::stat((dir + "/" + checkpoint_file_name(2)).c_str(), &st), 0);
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 3);
}

TEST(CheckpointFaults, LoadOfEmptyDirectoryThrowsWithCandidateCount) {
  const std::string dir = make_temp_dir();
  try {
    load_latest_checkpoint(dir);
    FAIL() << "empty directory must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("0 candidate(s)"), std::string::npos)
        << e.what();
  }
}

// Real kill-mid-write: the child process dies inside the write protocol via
// _exit() at the crash point; the parent then recovers from whatever the
// dead process left on disk. Named CheckpointCrash so tier-1's --skip-crash
// escape hatch (ctest -E CheckpointCrash) can exclude fork-based tests.
class CheckpointCrash : public ::testing::Test {
 protected:
  /// Fork, arm `faults` with an _exit crash point, write in the child, and
  /// reap it. Returns the child's exit status.
  int crash_child(const std::string& dir, StorageFaults faults,
                  const CampaignCheckpoint& ckpt) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      faults.on_crash_point = [] { ::_exit(42); };
      try {
        CheckpointWriter writer(dir);
        writer.set_faults(faults);
        writer.write(ckpt);
      } catch (...) {
      }
      ::_exit(7);  // the crash point should have killed us first
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

TEST_F(CheckpointCrash, KillDuringShortWriteRecoversLastGoodGeneration) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  {
    CheckpointWriter writer(dir);
    ASSERT_TRUE(writer.write(ckpt));
  }
  StorageFaults faults;
  faults.short_write_after = 64;
  EXPECT_EQ(crash_child(dir, faults, ckpt), 42);

  const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
  EXPECT_EQ(loaded.generation, 1);
  EXPECT_EQ(checkpoint_to_json(loaded.checkpoint).dump(),
            checkpoint_to_json(ckpt).dump());
}

TEST_F(CheckpointCrash, KillBeforeRenameRecoversLastGoodGeneration) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  {
    CheckpointWriter writer(dir);
    ASSERT_TRUE(writer.write(ckpt));
    ASSERT_TRUE(writer.write(ckpt));
  }
  StorageFaults faults;
  faults.crash_before_rename = true;
  EXPECT_EQ(crash_child(dir, faults, ckpt), 42);

  const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
  EXPECT_EQ(loaded.generation, 2);
  // And the survivor continues the numbering past the dead tmp.
  CheckpointWriter writer(dir);
  EXPECT_TRUE(writer.write(ckpt));
  EXPECT_EQ(load_latest_checkpoint(dir).generation, 3);
}

TEST_F(CheckpointCrash, KillDuringTornWriteFallsBackPastCorruptGeneration) {
  const std::string dir = make_temp_dir();
  const CampaignCheckpoint ckpt = sample_checkpoint();
  {
    CheckpointWriter writer(dir);
    ASSERT_TRUE(writer.write(ckpt));
  }
  StorageFaults faults;
  faults.torn_write_after = 128;
  EXPECT_EQ(crash_child(dir, faults, ckpt), 42);

  const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
  EXPECT_EQ(loaded.generation, 1);
  EXPECT_EQ(loaded.skipped_generations, 1);
}

// Structured fuzz over the decode path: random corruptions of a valid
// envelope must always end in mcs::Error or a successful decode — never a
// crash, hang or out-of-bounds read (tier-1 runs this under ASan+UBSan).
TEST(CheckpointFuzz, RandomBitFlipsNeverCrashTheDecoder) {
  const CampaignCheckpoint ckpt = sample_checkpoint();
  const std::string bytes = encode_checkpoint(ckpt);
  const std::string canonical = checkpoint_to_json(ckpt).dump();
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = bytes;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      mutated[at] = static_cast<char>(
          mutated[at] ^ (1 << static_cast<int>(rng.uniform_int(0, 7))));
    }
    try {
      const CampaignCheckpoint out = decode_checkpoint(mutated);
      // Only a mutation that cancelled itself out can decode — and then it
      // must decode to exactly the original.
      EXPECT_EQ(checkpoint_to_json(out).dump(), canonical);
    } catch (const Error&) {
      // Clean rejection: the expected outcome.
    }
  }
}

TEST(CheckpointFuzz, RandomTruncationsAndPaddingNeverCrashTheDecoder) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  Rng rng(2027);
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    EXPECT_THROW(decode_checkpoint(bytes.substr(0, len)), Error);
    EXPECT_THROW(
        decode_checkpoint(bytes +
                          std::string(1 + static_cast<std::size_t>(
                                              rng.uniform_int(0, 16)),
                                      '#')),
        Error);
  }
}

TEST(CheckpointFuzz, CorruptedDirectoriesAlwaysFallBackOrRejectCleanly) {
  const CampaignCheckpoint ckpt = sample_checkpoint();
  Rng rng(2028);
  for (int trial = 0; trial < 20; ++trial) {
    const std::string dir = make_temp_dir();
    CheckpointWriter writer(dir);
    ASSERT_TRUE(writer.write(ckpt));
    ASSERT_TRUE(writer.write(ckpt));
    // Corrupt the newest generation in a random way.
    const std::string newest = dir + "/" + checkpoint_file_name(2);
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    if (mode == 0) {
      std::ofstream(newest, std::ios::trunc) << "";
    } else if (mode == 1) {
      std::ofstream(newest, std::ios::trunc) << "MCS-CKPT v99 garbage\n";
    } else {
      std::string b = encode_checkpoint(ckpt);
      b[b.size() / 2] ^= 0x40;
      std::ofstream(newest, std::ios::trunc | std::ios::binary) << b;
    }
    const LoadedCheckpoint loaded = load_latest_checkpoint(dir);
    EXPECT_EQ(loaded.generation, 1);
    EXPECT_EQ(loaded.skipped_generations, 1);
    EXPECT_EQ(checkpoint_to_json(loaded.checkpoint).dump(),
              checkpoint_to_json(ckpt).dump());
  }
}

}  // namespace
}  // namespace mcs::sim
