// The keystone durability contract: a campaign that is checkpointed every k
// rounds, torn down completely (simulator destroyed, checkpoint serialized
// to envelope bytes and decoded back) and resumed, is bit-identical to the
// uninterrupted run — across every mechanism kind, with and without
// injected campaign faults, at any plan-thread count and with the plan memo
// on or off. This is what makes crash recovery in the runner safe: a
// resumed repetition contributes exactly the doubles the original would
// have.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "incentive/mechanism.h"
#include "model/world.h"
#include "select/selector.h"
#include "sim/checkpoint.h"
#include "sim/scenario.h"
#include "sim/serialize.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

FaultPlan stress_faults() {
  FaultPlan f;
  f.dropout_prob = 0.15;
  f.abandon_prob = 0.2;
  f.upload_loss_prob = 0.1;
  f.seed = 7;
  return f;
}

ScenarioParams scenario() {
  ScenarioParams p;
  p.num_users = 30;
  p.num_tasks = 12;
  p.required_measurements = 6;
  return p;
}

/// Deterministic replay of the construction-time draws (exactly what the
/// experiment runner does on resume): world generation consumes the stream,
/// the mechanism splits from the post-generation state, so fixed's random
/// level draws come out identical every time.
std::unique_ptr<incentive::IncentiveMechanism> fresh_mechanism(
    incentive::MechanismKind kind) {
  Rng rng(4242);
  model::World world = generate_world(scenario(), rng);
  Rng mech_rng = rng.split(0xfeed);
  return incentive::make_mechanism(kind, world, {}, mech_rng);
}

SimulatorParams make_params(bool faults, int plan_threads, bool memo) {
  SimulatorParams sp;
  sp.max_rounds = 8;
  sp.record_events = true;
  sp.plan_threads = plan_threads;
  sp.memo.enabled = memo;
  if (faults) sp.faults = stress_faults();
  return sp;
}

Simulator make_simulator(incentive::MechanismKind kind, bool faults,
                         int plan_threads, bool memo) {
  Rng rng(4242);
  model::World world = generate_world(scenario(), rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = incentive::make_mechanism(kind, world, {}, mech_rng);
  auto selector = select::make_selector(select::SelectorKind::kDp, 14);
  return Simulator(std::move(world), std::move(mechanism),
                   std::move(selector), make_params(faults, plan_threads, memo));
}

struct CampaignRun {
  std::vector<RoundMetrics> rounds;
  Money spent = 0.0;
  std::string world_json;
  std::string events_json;
  select::PlanMemoStats memo_stats;
};

CampaignRun finish(const Simulator& s) {
  CampaignRun out;
  out.rounds = s.history();
  out.spent = s.budget().spent();
  out.world_json = world_to_json(s.world()).dump(2);
  out.events_json = events_to_json(s.events()).dump(2);
  out.memo_stats = s.plan_memo_stats();
  return out;
}

CampaignRun run_straight(incentive::MechanismKind kind, bool faults,
                         int plan_threads, bool memo) {
  Simulator s = make_simulator(kind, faults, plan_threads, memo);
  s.run();
  return finish(s);
}

/// The hostile version: every `every` rounds the simulator is checkpointed
/// THROUGH THE ENVELOPE BYTES, destroyed, and a brand-new one resumed from
/// the decoded checkpoint with freshly constructed mechanism/selector.
CampaignRun run_with_resume(incentive::MechanismKind kind, bool faults,
                            int plan_threads, bool memo, Round every) {
  std::optional<Simulator> s(make_simulator(kind, faults, plan_threads, memo));
  const Round max_rounds = 8;
  while (s->current_round() < max_rounds && !s->all_tasks_closed()) {
    s->step();
    const Round done = s->current_round();
    if (done % every == 0 && done < max_rounds) {
      const std::string bytes = encode_checkpoint(s->checkpoint());
      s.reset();  // the original campaign is gone, bytes are all that's left
      const CampaignCheckpoint back = decode_checkpoint(bytes);
      s.emplace(Simulator::resume(
          back, fresh_mechanism(kind),
          select::make_selector(select::SelectorKind::kDp, 14)));
    }
  }
  return finish(*s);
}

void expect_bit_identical(const CampaignRun& a, const CampaignRun& b) {
  EXPECT_EQ(a.world_json, b.world_json);
  EXPECT_EQ(a.events_json, b.events_json);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.memo_stats.exact_hits, b.memo_stats.exact_hits);
  EXPECT_EQ(a.memo_stats.fixup_hits, b.memo_stats.fixup_hits);
  EXPECT_EQ(a.memo_stats.misses, b.memo_stats.misses);
  EXPECT_EQ(a.memo_stats.fallbacks, b.memo_stats.fallbacks);
  EXPECT_EQ(a.memo_stats.rounds, b.memo_stats.rounds);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t k = 0; k < a.rounds.size(); ++k) {
    EXPECT_EQ(rounds_to_json({a.rounds[k]}).dump(),
              rounds_to_json({b.rounds[k]}).dump())
        << "round " << k;
  }
}

// The full equivalence matrix: {fixed, on-demand, steered} x {clean,
// faulted} x plan_threads {1, 8} x memo {on, off}, checkpoint every 2
// rounds with teardown-and-resume at each one.
TEST(CheckpointResume, ResumedCampaignsBitIdenticalAcrossTheMatrix) {
  for (const auto kind :
       {incentive::MechanismKind::kFixed, incentive::MechanismKind::kOnDemand,
        incentive::MechanismKind::kSteered}) {
    for (const bool faults : {false, true}) {
      for (const int plan_threads : {1, 8}) {
        for (const bool memo : {false, true}) {
          SCOPED_TRACE(std::string(incentive::mechanism_name(kind)) +
                       (faults ? "/faults" : "/clean") + "/threads=" +
                       std::to_string(plan_threads) +
                       (memo ? "/memo" : "/nomemo"));
          const CampaignRun straight =
              run_straight(kind, faults, plan_threads, memo);
          const CampaignRun resumed =
              run_with_resume(kind, faults, plan_threads, memo, /*every=*/2);
          expect_bit_identical(straight, resumed);
        }
      }
    }
  }
}

// Resuming every single round is the worst case for drift (7 teardowns in
// an 8-round campaign) and must still be exact.
TEST(CheckpointResume, ResumeEveryRoundStillBitIdentical) {
  const auto kind = incentive::MechanismKind::kOnDemand;
  const CampaignRun straight = run_straight(kind, true, 1, false);
  const CampaignRun resumed = run_with_resume(kind, true, 1, false, 1);
  expect_bit_identical(straight, resumed);
}

// Cross-knob resume: a campaign checkpointed under plan_threads=1 resumed
// into a plan_threads=8 simulator (the checkpoint pins the knobs — params
// travel in the envelope, so the resumed run keeps the original's).
TEST(CheckpointResume, CheckpointCarriesItsOwnSimulatorParams) {
  Simulator s = make_simulator(incentive::MechanismKind::kOnDemand, true, 1,
                               false);
  s.step();
  s.step();
  const CampaignCheckpoint ckpt = s.checkpoint();
  EXPECT_EQ(ckpt.params.plan_threads, 1);
  EXPECT_EQ(ckpt.params.max_rounds, 8);
  EXPECT_TRUE(ckpt.params.record_events);
  EXPECT_EQ(ckpt.next_round, 3);
  EXPECT_EQ(ckpt.history.size(), 2u);
}

// Phase timers travel through the envelope: a resumed campaign's summary
// reports whole-campaign phase times, not just the post-resume slice, and
// the serialized params carry the legacy_commit oracle knob.
TEST(CheckpointResume, PhaseTimersCarriedThroughCheckpoint) {
  Rng rng(4242);
  model::World world = generate_world(scenario(), rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism =
      incentive::make_mechanism(incentive::MechanismKind::kOnDemand, world, {},
                                mech_rng);
  SimulatorParams sp = make_params(/*faults=*/false, /*plan_threads=*/1,
                                   /*memo=*/false);
  sp.phase_timers = true;
  sp.legacy_commit = true;
  sp.reprice_threads = 3;
  Simulator s(std::move(world), std::move(mechanism),
              select::make_selector(select::SelectorKind::kDp, 14), sp);
  s.step();
  s.step();
  const std::string bytes = encode_checkpoint(s.checkpoint());
  const CampaignCheckpoint back = decode_checkpoint(bytes);
  EXPECT_TRUE(back.params.phase_timers);
  EXPECT_TRUE(back.params.legacy_commit);
  // reprice_threads rides the same params envelope (it is bit-identity-
  // neutral, but the checkpoint pins the knobs it ran with).
  EXPECT_EQ(back.params.reprice_threads, 3);
  const double timed = back.phase_prepass_s + back.phase_plan_s +
                       back.phase_reprice_s + back.phase_commit_s;
  EXPECT_GT(timed, 0.0);
  Simulator resumed = Simulator::resume(
      back, fresh_mechanism(incentive::MechanismKind::kOnDemand),
      select::make_selector(select::SelectorKind::kDp, 14));
  resumed.step();
  const CampaignMetrics m = resumed.summary();
  // Cumulative across the teardown: the resumed round adds to the carried
  // timers instead of restarting them at zero.
  EXPECT_GE(m.phase_prepass_s + m.phase_plan_s + m.phase_reprice_s +
                m.phase_commit_s,
            timed);
  EXPECT_GT(m.phase_commit_s, back.phase_commit_s);
}

// A pre-phase-timer payload (no "phase_seconds" key) must decode with
// all-zero timers — the back-compat has() guard in checkpoint_from_json.
TEST(CheckpointResume, PayloadWithoutPhaseSecondsDecodesWithZeros) {
  Simulator s = make_simulator(incentive::MechanismKind::kOnDemand, false, 1,
                               false);
  s.step();
  Json j = checkpoint_to_json(s.checkpoint());
  Json::Object o = j.as_object();
  o.erase("phase_seconds");
  const CampaignCheckpoint back = checkpoint_from_json(Json(std::move(o)));
  EXPECT_EQ(back.phase_prepass_s, 0.0);
  EXPECT_EQ(back.phase_plan_s, 0.0);
  EXPECT_EQ(back.phase_reprice_s, 0.0);
  EXPECT_EQ(back.phase_commit_s, 0.0);
  EXPECT_EQ(back.next_round, 2);
}

TEST(CheckpointResume, MechanismNameMismatchRejected) {
  Simulator s = make_simulator(incentive::MechanismKind::kOnDemand, false, 1,
                               false);
  s.step();
  const CampaignCheckpoint ckpt = s.checkpoint();
  EXPECT_THROW(
      Simulator::resume(ckpt,
                        fresh_mechanism(incentive::MechanismKind::kFixed),
                        select::make_selector(select::SelectorKind::kDp, 14)),
      Error);
}

TEST(CheckpointResume, SelectorNameMismatchRejected) {
  Simulator s = make_simulator(incentive::MechanismKind::kOnDemand, false, 1,
                               false);
  s.step();
  const CampaignCheckpoint ckpt = s.checkpoint();
  EXPECT_THROW(
      Simulator::resume(
          ckpt, fresh_mechanism(incentive::MechanismKind::kOnDemand),
          select::make_selector(select::SelectorKind::kGreedy, 14)),
      Error);
}

TEST(CheckpointResume, VersionSkewRejected) {
  Simulator s = make_simulator(incentive::MechanismKind::kOnDemand, false, 1,
                               false);
  s.step();
  CampaignCheckpoint ckpt = s.checkpoint();
  ckpt.version = kCheckpointFormatVersion + 1;
  EXPECT_THROW(
      Simulator::resume(ckpt,
                        fresh_mechanism(incentive::MechanismKind::kOnDemand),
                        select::make_selector(select::SelectorKind::kDp, 14)),
      Error);
}

TEST(CheckpointResume, HistoryCursorMismatchRejected) {
  Simulator s = make_simulator(incentive::MechanismKind::kOnDemand, false, 1,
                               false);
  s.step();
  s.step();
  CampaignCheckpoint ckpt = s.checkpoint();
  ckpt.history.pop_back();  // silent loss of a round must not resume
  EXPECT_THROW(
      Simulator::resume(ckpt,
                        fresh_mechanism(incentive::MechanismKind::kOnDemand),
                        select::make_selector(select::SelectorKind::kDp, 14)),
      Error);
}

}  // namespace
}  // namespace mcs::sim
