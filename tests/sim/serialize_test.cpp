#include "sim/serialize.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/rng.h"
#include "sim/scenario.h"

namespace mcs::sim {
namespace {

TEST(SerializeScenario, RoundTripIsIdentity) {
  ScenarioParams p;
  p.area_side = 1234.5;
  p.num_tasks = 7;
  p.num_users = 33;
  p.required_measurements = 9;
  p.required_spread = 2;
  p.deadline_min = 3;
  p.deadline_max = 11;
  p.speed_mps = 1.4;
  p.cost_per_meter = 0.005;
  p.user_budget_min_s = 120.0;
  p.user_budget_max_s = 480.0;
  p.neighbor_radius = 321.0;

  p.user_budget_quantum_s = 30.0;
  p.home_sites = 4;

  const ScenarioParams q = scenario_from_json(scenario_to_json(p));
  EXPECT_DOUBLE_EQ(q.area_side, p.area_side);
  EXPECT_EQ(q.num_tasks, p.num_tasks);
  EXPECT_EQ(q.num_users, p.num_users);
  EXPECT_EQ(q.required_measurements, p.required_measurements);
  EXPECT_EQ(q.required_spread, p.required_spread);
  EXPECT_EQ(q.deadline_min, p.deadline_min);
  EXPECT_EQ(q.deadline_max, p.deadline_max);
  EXPECT_DOUBLE_EQ(q.speed_mps, p.speed_mps);
  EXPECT_DOUBLE_EQ(q.cost_per_meter, p.cost_per_meter);
  EXPECT_DOUBLE_EQ(q.user_budget_min_s, p.user_budget_min_s);
  EXPECT_DOUBLE_EQ(q.user_budget_max_s, p.user_budget_max_s);
  EXPECT_DOUBLE_EQ(q.neighbor_radius, p.neighbor_radius);
  EXPECT_DOUBLE_EQ(q.user_budget_quantum_s, p.user_budget_quantum_s);
  EXPECT_EQ(q.home_sites, p.home_sites);
}

TEST(SerializeScenario, MissingKeysUseDefaults) {
  const ScenarioParams p =
      scenario_from_json(Json::parse("{\"num_users\": 55}"));
  EXPECT_EQ(p.num_users, 55);
  EXPECT_EQ(p.num_tasks, ScenarioParams{}.num_tasks);
  EXPECT_DOUBLE_EQ(p.area_side, ScenarioParams{}.area_side);
}

TEST(SerializeScenario, UnknownKeyRejected) {
  EXPECT_THROW(scenario_from_json(Json::parse("{\"num_userz\": 55}")), Error);
}

TEST(SerializeScenario, InvalidValuesRejectedByValidation) {
  EXPECT_THROW(scenario_from_json(Json::parse("{\"num_tasks\": 0}")), Error);
}

TEST(SerializeScenario, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/mcs_scenario.json";
  {
    std::ofstream out(path);
    out << "{\"num_tasks\": 4, \"num_users\": 8, \"area_side\": 500}";
  }
  const ScenarioParams p = load_scenario(path);
  EXPECT_EQ(p.num_tasks, 4);
  EXPECT_EQ(p.num_users, 8);
  EXPECT_DOUBLE_EQ(p.area_side, 500.0);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario("/nonexistent/x.json"), Error);
}

TEST(SerializeWorld, SnapshotStructure) {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 25.0);
  w.add_task({10, 20}, 5, 3);
  w.add_user({1, 2}, 300.0);
  w.task(0).add_measurement(0, 1, 1.5);
  w.user(0).add_earnings(1.5, 0.2);
  w.user(0).mark_contributed(0);

  const Json j = world_to_json(w);
  EXPECT_DOUBLE_EQ(j.at("area_side").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(j.at("neighbor_radius").as_number(), 25.0);
  EXPECT_DOUBLE_EQ(j.at("travel").at("speed_mps").as_number(), 2.0);
  ASSERT_EQ(j.at("tasks").size(), 1u);
  const Json& t = j.at("tasks").at(0);
  EXPECT_EQ(t.at("id").as_int(), 0);
  EXPECT_DOUBLE_EQ(t.at("location").at("x").as_number(), 10.0);
  EXPECT_EQ(t.at("received").as_int(), 1);
  EXPECT_FALSE(t.at("completed").as_bool());
  ASSERT_EQ(t.at("measurements").size(), 1u);
  EXPECT_DOUBLE_EQ(t.at("measurements").at(0).at("reward").as_number(), 1.5);
  const Json& u = j.at("users").at(0);
  EXPECT_DOUBLE_EQ(u.at("total_reward").as_number(), 1.5);
  EXPECT_EQ(u.at("tasks_contributed").as_int(), 1);
  // The dump parses back to an equal document.
  EXPECT_EQ(Json::parse(j.dump(2)), j);
}

TEST(SerializeScenario, LoadErrorNamesPathAndErrno) {
  const std::string path = ::testing::TempDir() + "/mcs_no_such_scenario.json";
  try {
    load_scenario(path);
    FAIL() << "missing file must throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("No such file"), std::string::npos) << msg;
  }
}

TEST(SerializeScenario, LoadErrorOnUnreadableFile) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root ignores file permissions";
  }
  const std::string path = ::testing::TempDir() + "/mcs_unreadable.json";
  {
    std::ofstream out(path);
    out << "{}";
  }
  ::chmod(path.c_str(), 0000);
  try {
    load_scenario(path);
    FAIL() << "unreadable file must throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("Permission denied"), std::string::npos) << msg;
  }
  ::chmod(path.c_str(), 0644);
  std::remove(path.c_str());
}

TEST(SerializeWorld, RoundTripIsIdentity) {
  ScenarioParams p;
  p.num_users = 25;
  p.num_tasks = 9;
  Rng rng(31337);
  model::World w = generate_world(p, rng);
  // Mutate some state so progress/earnings round-trip too.
  w.task(0).add_measurement(3, 1, 1.25);
  w.task(0).add_measurement(4, 1, 1.25);
  w.user(3).add_earnings(1.25, 0.4);
  w.user(3).mark_contributed(0);
  w.user(4).add_earnings(1.25, 0.6);
  w.user(4).mark_contributed(0);

  const Json j = world_to_json(w);
  const model::World back = world_from_json(j);
  // Byte-for-byte equal snapshots: every double survived %.17g.
  EXPECT_EQ(world_to_json(back).dump(2), j.dump(2));
  EXPECT_EQ(back.num_tasks(), w.num_tasks());
  EXPECT_EQ(back.num_users(), w.num_users());
  EXPECT_EQ(back.task(0).received(), 2);
  EXPECT_TRUE(back.user(3).has_contributed(0));
  EXPECT_DOUBLE_EQ(back.user(3).total_profit(), w.user(3).total_profit());
}

// Worlds assembled through the mutable accessors may carry arbitrary ids
// (tasks {10, 20, 31}, users {70, 10, 55}); the round trip must preserve
// them verbatim instead of renumbering densely.
TEST(SerializeWorld, SparseIdsSurviveTheRoundTrip) {
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 200.0);
  w.tasks().push_back(model::Task(10, {100.0, 100.0}, 5, 3));
  w.tasks().push_back(model::Task(20, {500.0, 500.0}, 6, 2));
  w.tasks().push_back(model::Task(31, {900.0, 900.0}, 7, 4));
  w.users().emplace_back(UserId{70}, geo::Point{120.0, 120.0}, 600.0);
  w.users().emplace_back(UserId{10}, geo::Point{880.0, 880.0}, 600.0);
  w.users().emplace_back(UserId{55}, geo::Point{500.0, 500.0}, 600.0);
  for (model::User& u : w.users()) u.return_home();
  w.tasks()[0].add_measurement(70, 2, 0.75);
  w.users()[0].add_earnings(0.75, 0.1);
  w.users()[0].mark_contributed(10);

  const Json j = world_to_json(w);
  const model::World back = world_from_json(j);
  ASSERT_EQ(back.tasks().size(), 3u);
  EXPECT_EQ(back.tasks()[0].id(), 10);
  EXPECT_EQ(back.tasks()[1].id(), 20);
  EXPECT_EQ(back.tasks()[2].id(), 31);
  ASSERT_EQ(back.users().size(), 3u);
  EXPECT_EQ(back.users()[0].id(), 70);
  EXPECT_EQ(back.users()[1].id(), 10);
  EXPECT_EQ(back.users()[2].id(), 55);
  EXPECT_TRUE(back.users()[0].has_contributed(10));
  EXPECT_EQ(back.users()[0].tasks_contributed(), 1u);
  EXPECT_EQ(back.tasks()[0].received(), 1);
  EXPECT_EQ(world_to_json(back).dump(2), j.dump(2));
}

// The snapshot carries derived counts (received, total_paid, contributor
// sets) alongside the raw measurement list; a snapshot whose copies
// disagree with its own measurements is corrupt and must be rejected, not
// silently "fixed".
TEST(SerializeWorld, TamperedDerivedStateRejected) {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 25.0);
  w.add_task({10, 20}, 5, 3);
  w.add_user({1, 2}, 300.0);
  w.task(0).add_measurement(0, 1, 1.5);
  w.user(0).add_earnings(1.5, 0.2);
  w.user(0).mark_contributed(0);
  const Json good = world_to_json(w);
  ASSERT_NO_THROW(world_from_json(good));

  const std::string dump = good.dump(2);
  auto tampered = [&dump](const std::string& from, const std::string& to) {
    std::string s = dump;
    const std::size_t at = s.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    s.replace(at, from.size(), to);
    return Json::parse(s);
  };
  EXPECT_THROW(world_from_json(tampered("\"received\": 1", "\"received\": 2")),
               Error);
  EXPECT_THROW(world_from_json(tampered("\"total_paid\": 1.5",
                                        "\"total_paid\": 2.5")),
               Error);
  EXPECT_THROW(
      world_from_json(tampered("\"tasks_contributed\": 1",
                               "\"tasks_contributed\": 0")),
      Error);
}

TEST(SerializeMetrics, RoundMetricsRoundTripIsIdentity) {
  RoundMetrics rm;
  rm.round = 4;
  rm.new_measurements = 9;
  rm.active_users = 17;
  rm.open_tasks = 3;
  rm.coverage_pct = 81.25;
  rm.completeness_pct = 64.5;
  rm.payout = 12.75;
  rm.mean_open_reward = 1.4375;
  rm.mean_user_profit = 0.3125;
  rm.dropped_users = 2;
  rm.abandoned_tours = 1;
  rm.lost_measurements = 3;
  rm.corrupted_measurements = 1;
  rm.withdrawn_tasks = 2;
  rm.wasted_travel = 123.5;
  rm.user_profit = {0.5, -0.25, 1.75};
  const std::vector<RoundMetrics> back = rounds_from_json(rounds_to_json({rm}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(rounds_to_json(back).dump(2), rounds_to_json({rm}).dump(2));
  EXPECT_EQ(back[0].user_profit, rm.user_profit);
}

TEST(SerializeEvents, RoundTripIsIdentity) {
  EventLog log(true);
  log.record({2, 5, 1, 0.75, 33.0});
  log.record({3, 1, 0, 1.5, 12.25});
  const Json j = events_to_json(log);
  const std::vector<SensingEvent> back = events_from_json(j);
  ASSERT_EQ(back.size(), 2u);
  EventLog relogged(true);
  relogged.restore(back);
  EXPECT_EQ(events_to_json(relogged).dump(2), j.dump(2));
}

TEST(SerializeMetrics, CampaignAndRounds) {
  CampaignMetrics m;
  m.coverage_pct = 95.0;
  m.total_paid = 123.5;
  m.total_measurements = 77;
  m.per_task_received = {3, 4};
  m.reward_gini = 0.25;
  const Json j = campaign_to_json(m);
  EXPECT_DOUBLE_EQ(j.at("coverage_pct").as_number(), 95.0);
  EXPECT_EQ(j.at("total_measurements").as_int(), 77);
  EXPECT_EQ(j.at("per_task_received").size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("reward_gini").as_number(), 0.25);

  RoundMetrics rm;
  rm.round = 3;
  rm.new_measurements = 12;
  rm.mean_open_reward = 1.25;
  const Json jr = rounds_to_json({rm});
  ASSERT_EQ(jr.size(), 1u);
  EXPECT_EQ(jr.at(0).at("round").as_int(), 3);
  EXPECT_DOUBLE_EQ(jr.at(0).at("mean_open_reward").as_number(), 1.25);
}

TEST(SerializeEvents, TraceExport) {
  EventLog log(true);
  log.record({2, 5, 1, 0.75, 33.0});
  const Json j = events_to_json(log);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.at(0).at("round").as_int(), 2);
  EXPECT_EQ(j.at(0).at("user").as_int(), 5);
  EXPECT_DOUBLE_EQ(j.at(0).at("reward").as_number(), 0.75);
}

}  // namespace
}  // namespace mcs::sim
