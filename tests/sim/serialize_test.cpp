#include "sim/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/rng.h"

namespace mcs::sim {
namespace {

TEST(SerializeScenario, RoundTripIsIdentity) {
  ScenarioParams p;
  p.area_side = 1234.5;
  p.num_tasks = 7;
  p.num_users = 33;
  p.required_measurements = 9;
  p.required_spread = 2;
  p.deadline_min = 3;
  p.deadline_max = 11;
  p.speed_mps = 1.4;
  p.cost_per_meter = 0.005;
  p.user_budget_min_s = 120.0;
  p.user_budget_max_s = 480.0;
  p.neighbor_radius = 321.0;

  const ScenarioParams q = scenario_from_json(scenario_to_json(p));
  EXPECT_DOUBLE_EQ(q.area_side, p.area_side);
  EXPECT_EQ(q.num_tasks, p.num_tasks);
  EXPECT_EQ(q.num_users, p.num_users);
  EXPECT_EQ(q.required_measurements, p.required_measurements);
  EXPECT_EQ(q.required_spread, p.required_spread);
  EXPECT_EQ(q.deadline_min, p.deadline_min);
  EXPECT_EQ(q.deadline_max, p.deadline_max);
  EXPECT_DOUBLE_EQ(q.speed_mps, p.speed_mps);
  EXPECT_DOUBLE_EQ(q.cost_per_meter, p.cost_per_meter);
  EXPECT_DOUBLE_EQ(q.user_budget_min_s, p.user_budget_min_s);
  EXPECT_DOUBLE_EQ(q.user_budget_max_s, p.user_budget_max_s);
  EXPECT_DOUBLE_EQ(q.neighbor_radius, p.neighbor_radius);
}

TEST(SerializeScenario, MissingKeysUseDefaults) {
  const ScenarioParams p =
      scenario_from_json(Json::parse("{\"num_users\": 55}"));
  EXPECT_EQ(p.num_users, 55);
  EXPECT_EQ(p.num_tasks, ScenarioParams{}.num_tasks);
  EXPECT_DOUBLE_EQ(p.area_side, ScenarioParams{}.area_side);
}

TEST(SerializeScenario, UnknownKeyRejected) {
  EXPECT_THROW(scenario_from_json(Json::parse("{\"num_userz\": 55}")), Error);
}

TEST(SerializeScenario, InvalidValuesRejectedByValidation) {
  EXPECT_THROW(scenario_from_json(Json::parse("{\"num_tasks\": 0}")), Error);
}

TEST(SerializeScenario, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/mcs_scenario.json";
  {
    std::ofstream out(path);
    out << "{\"num_tasks\": 4, \"num_users\": 8, \"area_side\": 500}";
  }
  const ScenarioParams p = load_scenario(path);
  EXPECT_EQ(p.num_tasks, 4);
  EXPECT_EQ(p.num_users, 8);
  EXPECT_DOUBLE_EQ(p.area_side, 500.0);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario("/nonexistent/x.json"), Error);
}

TEST(SerializeWorld, SnapshotStructure) {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 25.0);
  w.add_task({10, 20}, 5, 3);
  w.add_user({1, 2}, 300.0);
  w.task(0).add_measurement(0, 1, 1.5);
  w.user(0).add_earnings(1.5, 0.2);
  w.user(0).mark_contributed(0);

  const Json j = world_to_json(w);
  EXPECT_DOUBLE_EQ(j.at("area_side").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(j.at("neighbor_radius").as_number(), 25.0);
  EXPECT_DOUBLE_EQ(j.at("travel").at("speed_mps").as_number(), 2.0);
  ASSERT_EQ(j.at("tasks").size(), 1u);
  const Json& t = j.at("tasks").at(0);
  EXPECT_EQ(t.at("id").as_int(), 0);
  EXPECT_DOUBLE_EQ(t.at("location").at("x").as_number(), 10.0);
  EXPECT_EQ(t.at("received").as_int(), 1);
  EXPECT_FALSE(t.at("completed").as_bool());
  ASSERT_EQ(t.at("measurements").size(), 1u);
  EXPECT_DOUBLE_EQ(t.at("measurements").at(0).at("reward").as_number(), 1.5);
  const Json& u = j.at("users").at(0);
  EXPECT_DOUBLE_EQ(u.at("total_reward").as_number(), 1.5);
  EXPECT_EQ(u.at("tasks_contributed").as_int(), 1);
  // The dump parses back to an equal document.
  EXPECT_EQ(Json::parse(j.dump(2)), j);
}

TEST(SerializeMetrics, CampaignAndRounds) {
  CampaignMetrics m;
  m.coverage_pct = 95.0;
  m.total_paid = 123.5;
  m.total_measurements = 77;
  m.per_task_received = {3, 4};
  m.reward_gini = 0.25;
  const Json j = campaign_to_json(m);
  EXPECT_DOUBLE_EQ(j.at("coverage_pct").as_number(), 95.0);
  EXPECT_EQ(j.at("total_measurements").as_int(), 77);
  EXPECT_EQ(j.at("per_task_received").size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("reward_gini").as_number(), 0.25);

  RoundMetrics rm;
  rm.round = 3;
  rm.new_measurements = 12;
  rm.mean_open_reward = 1.25;
  const Json jr = rounds_to_json({rm});
  ASSERT_EQ(jr.size(), 1u);
  EXPECT_EQ(jr.at(0).at("round").as_int(), 3);
  EXPECT_DOUBLE_EQ(jr.at(0).at("mean_open_reward").as_number(), 1.25);
}

TEST(SerializeEvents, TraceExport) {
  EventLog log(true);
  log.record({2, 5, 1, 0.75, 33.0});
  const Json j = events_to_json(log);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.at(0).at("round").as_int(), 2);
  EXPECT_EQ(j.at(0).at("user").as_int(), 5);
  EXPECT_DOUBLE_EQ(j.at(0).at("reward").as_number(), 0.75);
}

}  // namespace
}  // namespace mcs::sim
