#include "sim/mobility.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "geo/distance.h"
#include "incentive/on_demand_mechanism.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

const geo::BoundingBox kArea = geo::BoundingBox::square(1000.0);

model::User make_user(geo::Point home = {100.0, 200.0}) {
  return model::User(0, home, 600.0);
}

TEST(StaticHomeMobility, AlwaysHome) {
  StaticHomeMobility m;
  Rng rng(1);
  const model::User u = make_user();
  for (Round k = 1; k <= 5; ++k) {
    EXPECT_EQ(m.start_of_round(u, k, kArea, rng), u.home());
  }
}

TEST(RandomWaypointMobility, UniformInAreaAndVarying) {
  RandomWaypointMobility m;
  Rng rng(2);
  const model::User u = make_user();
  geo::Point prev = m.start_of_round(u, 1, kArea, rng);
  bool moved = false;
  for (Round k = 2; k <= 20; ++k) {
    const geo::Point p = m.start_of_round(u, k, kArea, rng);
    EXPECT_TRUE(kArea.contains(p));
    if (p != prev) moved = true;
    prev = p;
  }
  EXPECT_TRUE(moved);
}

TEST(GaussianDriftMobility, StaysNearHomeForSmallSigma) {
  GaussianDriftMobility m(10.0);
  Rng rng(3);
  const model::User u = make_user({500, 500});
  for (Round k = 1; k <= 50; ++k) {
    const geo::Point p = m.start_of_round(u, k, kArea, rng);
    EXPECT_TRUE(kArea.contains(p));
    EXPECT_LT(geo::euclidean(p, u.home()), 100.0);  // ~10 sigma
  }
}

TEST(GaussianDriftMobility, ClampsToArea) {
  GaussianDriftMobility m(500.0);
  Rng rng(4);
  const model::User u = make_user({5, 5});  // next to the corner
  for (Round k = 1; k <= 50; ++k) {
    EXPECT_TRUE(kArea.contains(m.start_of_round(u, k, kArea, rng)));
  }
}

TEST(GaussianDriftMobility, RejectsNegativeSigma) {
  EXPECT_THROW(GaussianDriftMobility(-1.0), Error);
}

TEST(CommuteMobility, AlternatesBetweenTwoAnchors) {
  CommuteMobility m;
  Rng rng(5);
  const model::User u = make_user({100, 200});
  const geo::Point odd = m.start_of_round(u, 1, kArea, rng);
  const geo::Point even = m.start_of_round(u, 2, kArea, rng);
  EXPECT_EQ(odd, u.home());
  EXPECT_NE(even, u.home());
  // Workplace is home mirrored through the center (500,500) -> (900,800).
  EXPECT_EQ(even, (geo::Point{900, 800}));
  EXPECT_EQ(m.start_of_round(u, 3, kArea, rng), odd);
  EXPECT_EQ(m.start_of_round(u, 4, kArea, rng), even);
}

TEST(MobilityFactory, ParseAndBuild) {
  EXPECT_EQ(parse_mobility("static-home"), MobilityKind::kStaticHome);
  EXPECT_EQ(parse_mobility("waypoint"), MobilityKind::kRandomWaypoint);
  EXPECT_EQ(parse_mobility("DRIFT"), MobilityKind::kGaussianDrift);
  EXPECT_EQ(parse_mobility("commute"), MobilityKind::kCommute);
  EXPECT_THROW(parse_mobility("teleport"), Error);
  for (const auto kind :
       {MobilityKind::kStaticHome, MobilityKind::kRandomWaypoint,
        MobilityKind::kGaussianDrift, MobilityKind::kCommute}) {
    const auto m = make_mobility(kind);
    ASSERT_NE(m, nullptr);
    EXPECT_STREQ(m->name(), mobility_name(kind));
  }
}

TEST(MobilityInSimulator, WaypointChurnRevivesLateRounds) {
  // With a static population the default campaign runs dry in later rounds
  // for the fixed mechanism; with full churn every round brings new users
  // into range of unexhausted tasks, so late-round activity persists. Here
  // we only check the simulator actually consults the mobility model:
  // user locations after a round differ from their homes under waypoint.
  ScenarioParams params;
  params.num_users = 30;
  params.num_tasks = 8;
  Rng rng(6);
  model::World world = generate_world(params, rng);

  auto rule = incentive::RewardRule(0.5, 0.5, 5);
  auto mech = std::make_unique<incentive::OnDemandMechanism>(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), rule);
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  Simulator s(std::move(world), std::move(mech), std::move(sel), {},
              std::make_unique<RandomWaypointMobility>());
  EXPECT_STREQ(s.mobility().name(), "random-waypoint");
  s.step();
  int away_from_home = 0;
  for (const model::User& u : s.world().users()) {
    if (u.location() != u.home()) ++away_from_home;
  }
  // Every idle user sits at its waypoint, not at home; active users sit at
  // their last task. Either way, almost nobody is exactly at home.
  EXPECT_GT(away_from_home, 25);
}

TEST(MobilityInSimulator, DefaultIsStaticHome) {
  ScenarioParams params;
  params.num_users = 5;
  params.num_tasks = 2;
  Rng rng(7);
  model::World world = generate_world(params, rng);
  auto mech = std::make_unique<incentive::OnDemandMechanism>(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), incentive::RewardRule(0.5, 0.5, 5));
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  const Simulator s(std::move(world), std::move(mech), std::move(sel), {});
  EXPECT_STREQ(s.mobility().name(), "static-home");
}

}  // namespace
}  // namespace mcs::sim
