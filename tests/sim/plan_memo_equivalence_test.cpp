// The plan-memo contract (SimulatorParams::memo): a memoized campaign is
// bit-identical to the memo-free one — for every mechanism granularity,
// with and without faults, at any plan-thread count — and the hit/miss
// accounting is deterministic across thread counts. The dense-POI scenario
// (home_sites + budget quantization) is the regime the memo exists for and
// must actually produce exact hits there. Runs under TSan in tier-1.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "incentive/mechanism.h"
#include "model/world.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/serialize.h"
#include "sim/simulator.h"

namespace mcs {
namespace {

sim::FaultPlan stress_faults() {
  sim::FaultPlan f;
  f.dropout_prob = 0.15;
  f.abandon_prob = 0.2;
  f.upload_loss_prob = 0.1;
  f.seed = 7;
  return f;
}

struct CampaignRun {
  std::vector<sim::RoundMetrics> rounds;
  Money spent = 0.0;
  std::string world_json;
  select::PlanMemoStats memo;
  sim::CampaignMetrics summary;
};

struct RunSpec {
  incentive::MechanismKind kind = incentive::MechanismKind::kOnDemand;
  bool faults = false;
  int plan_threads = 1;
  bool memo = false;
  bool dense = false;  // shared-POI homes + quantized budgets
};

CampaignRun run_campaign(const RunSpec& spec) {
  sim::ScenarioParams p;
  p.num_users = 40;
  p.num_tasks = 12;
  p.required_measurements = 6;
  if (spec.dense) {
    // A handful of shared homes and budget buckets: many users start every
    // round bit-equal, the regime the memo is built for.
    p.home_sites = 4;
    p.user_budget_quantum_s = 150.0;
  }
  Rng rng(4242);
  model::World world = sim::generate_world(p, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = incentive::make_mechanism(spec.kind, world, {}, mech_rng);
  auto selector = select::make_selector(select::SelectorKind::kDp, 14);
  sim::SimulatorParams sp;
  sp.max_rounds = 8;
  sp.plan_threads = spec.plan_threads;
  sp.memo.enabled = spec.memo;
  if (spec.faults) sp.faults = stress_faults();
  sim::Simulator s(std::move(world), std::move(mechanism),
                   std::move(selector), sp);
  CampaignRun out;
  out.summary = s.run();
  out.rounds = s.history();
  out.spent = s.budget().spent();
  out.world_json = sim::world_to_json(s.world()).dump(2);
  out.memo = s.plan_memo_stats();
  return out;
}

void expect_bit_identical(const CampaignRun& a, const CampaignRun& b) {
  EXPECT_EQ(a.world_json, b.world_json);
  EXPECT_EQ(a.spent, b.spent);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t k = 0; k < a.rounds.size(); ++k) {
    const sim::RoundMetrics& ra = a.rounds[k];
    const sim::RoundMetrics& rb = b.rounds[k];
    EXPECT_EQ(ra.new_measurements, rb.new_measurements) << "round " << k;
    EXPECT_EQ(ra.active_users, rb.active_users) << "round " << k;
    EXPECT_EQ(ra.open_tasks, rb.open_tasks) << "round " << k;
    EXPECT_EQ(ra.dropped_users, rb.dropped_users) << "round " << k;
    EXPECT_EQ(ra.abandoned_tours, rb.abandoned_tours) << "round " << k;
    EXPECT_EQ(ra.lost_measurements, rb.lost_measurements) << "round " << k;
    EXPECT_EQ(ra.payout, rb.payout) << "round " << k;
    EXPECT_EQ(ra.mean_open_reward, rb.mean_open_reward) << "round " << k;
    EXPECT_EQ(ra.wasted_travel, rb.wasted_travel) << "round " << k;
    EXPECT_EQ(ra.user_profit, rb.user_profit) << "round " << k;
  }
}

void expect_accounting_sane(const select::PlanMemoStats& s) {
  EXPECT_GE(s.exact_hits, 0);
  EXPECT_GE(s.fixup_hits, 0);
  EXPECT_GE(s.misses, 0);
  EXPECT_LE(s.fallbacks, s.misses);
  EXPECT_EQ(s.lookups(), s.hits() + s.misses);
}

// {fixed, on-demand, steered} x {clean, faults} x plan_threads {1, 2, 8}:
// the memoized campaign equals the memo-free serial baseline bit for bit.
// Steered is intra-round — the memo is a documented no-op there, and this
// pins exactly that.
TEST(PlanMemoEquivalence, MemoOnMatchesMemoOffEverywhere) {
  for (const bool dense : {false, true}) {
    for (const auto kind : {incentive::MechanismKind::kFixed,
                            incentive::MechanismKind::kOnDemand,
                            incentive::MechanismKind::kSteered}) {
      for (const bool faults : {false, true}) {
        const CampaignRun baseline =
            run_campaign({kind, faults, 1, false, dense});
        for (const int threads : {1, 2, 8}) {
          SCOPED_TRACE(std::string(incentive::mechanism_name(kind)) +
                       (faults ? "/faults" : "/clean") +
                       (dense ? "/dense" : "/uniform") + "/threads=" +
                       std::to_string(threads));
          const CampaignRun memo =
              run_campaign({kind, faults, threads, true, dense});
          expect_bit_identical(baseline, memo);
          expect_accounting_sane(memo.memo);
        }
      }
    }
  }
}

TEST(PlanMemoEquivalence, AutoThreadCountBitIdentical) {
  const CampaignRun baseline = run_campaign(
      {incentive::MechanismKind::kOnDemand, true, 1, false, true});
  expect_bit_identical(
      baseline, run_campaign(
                    {incentive::MechanismKind::kOnDemand, true, 0, true,
                     true}));
}

// The accounting itself is deterministic: classification and publication
// are serial phases in user-position order, so hit/miss counts cannot
// depend on how the owner solves were sharded.
TEST(PlanMemoEquivalence, HitAccountingIdenticalAcrossThreadCounts) {
  const CampaignRun serial = run_campaign(
      {incentive::MechanismKind::kOnDemand, false, 1, true, true});
  for (const int threads : {2, 8}) {
    const CampaignRun parallel = run_campaign(
        {incentive::MechanismKind::kOnDemand, false, threads, true, true});
    EXPECT_EQ(serial.memo.exact_hits, parallel.memo.exact_hits);
    EXPECT_EQ(serial.memo.fixup_hits, parallel.memo.fixup_hits);
    EXPECT_EQ(serial.memo.misses, parallel.memo.misses);
    EXPECT_EQ(serial.memo.fallbacks, parallel.memo.fallbacks);
    EXPECT_EQ(serial.memo.rounds, parallel.memo.rounds);
  }
}

// The dense-POI scenario must actually share solves — otherwise the memo
// is dead weight — and the campaign summary must surface the same numbers
// the simulator accessor reports.
TEST(PlanMemoEquivalence, DensePoiScenarioProducesExactHits) {
  const CampaignRun r = run_campaign(
      {incentive::MechanismKind::kOnDemand, false, 1, true, true});
  EXPECT_GT(r.memo.exact_hits, 0);
  EXPECT_GT(r.memo.rounds, 0);
  expect_accounting_sane(r.memo);
  EXPECT_EQ(r.summary.plan_exact_hits, r.memo.exact_hits);
  EXPECT_EQ(r.summary.plan_fixup_hits, r.memo.fixup_hits);
  EXPECT_EQ(r.summary.plan_misses, r.memo.misses);
  EXPECT_EQ(r.summary.plan_fallbacks, r.memo.fallbacks);
}

TEST(PlanMemoEquivalence, MemoOffReportsZeroActivity) {
  const CampaignRun r = run_campaign(
      {incentive::MechanismKind::kOnDemand, false, 1, false, true});
  EXPECT_EQ(r.memo.exact_hits, 0);
  EXPECT_EQ(r.memo.fixup_hits, 0);
  EXPECT_EQ(r.memo.misses, 0);
  EXPECT_EQ(r.memo.fallbacks, 0);
  EXPECT_EQ(r.memo.rounds, 0);
}

// Steered reprices within the round, so the memo must stay inert there —
// zero lookups, not merely zero hits.
TEST(PlanMemoEquivalence, IntraRoundMechanismIgnoresTheMemo) {
  const CampaignRun r = run_campaign(
      {incentive::MechanismKind::kSteered, false, 1, true, true});
  EXPECT_EQ(r.memo.lookups(), 0);
  EXPECT_EQ(r.memo.rounds, 0);
}

}  // namespace
}  // namespace mcs
