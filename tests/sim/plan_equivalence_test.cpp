// The parallel plan / serial commit contract: a campaign is bit-identical
// at any plan-thread count, including the serial fallback for selectors
// without clone(), and steered's incremental intra-round repricing matches
// a full per-session recompute. These suites run under TSan in tier-1 (the
// plan phase is the only concurrent region touching the world).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "incentive/adaptive_budget_mechanism.h"
#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/mechanism.h"
#include "incentive/steered_mechanism.h"
#include "model/world.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/serialize.h"
#include "sim/simulator.h"

namespace mcs {
namespace {

sim::FaultPlan stress_faults() {
  sim::FaultPlan f;
  f.dropout_prob = 0.15;
  f.abandon_prob = 0.2;
  f.upload_loss_prob = 0.1;
  f.seed = 7;
  return f;
}

struct CampaignRun {
  std::vector<sim::RoundMetrics> rounds;
  Money spent = 0.0;
  std::string world_json;
  std::string events_json;
};

CampaignRun run_campaign(incentive::MechanismKind kind, bool faults,
                         int plan_threads,
                         std::unique_ptr<incentive::IncentiveMechanism>
                             mechanism_override = nullptr,
                         int reprice_threads = 1) {
  sim::ScenarioParams p;
  p.num_users = 30;
  p.num_tasks = 12;
  p.required_measurements = 6;
  Rng rng(4242);
  model::World world = sim::generate_world(p, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = mechanism_override
                       ? std::move(mechanism_override)
                       : incentive::make_mechanism(kind, world, {}, mech_rng);
  auto selector = select::make_selector(select::SelectorKind::kDp, 14);
  sim::SimulatorParams sp;
  sp.max_rounds = 8;
  sp.plan_threads = plan_threads;
  sp.reprice_threads = reprice_threads;
  sp.record_events = true;
  if (faults) sp.faults = stress_faults();
  sim::Simulator s(std::move(world), std::move(mechanism),
                   std::move(selector), sp);
  s.run();
  CampaignRun out;
  out.rounds = s.history();
  out.spent = s.budget().spent();
  out.world_json = sim::world_to_json(s.world()).dump(2);
  out.events_json = sim::events_to_json(s.events()).dump();
  return out;
}

void expect_bit_identical(const CampaignRun& a, const CampaignRun& b) {
  // The serialized end world catches every task/user divergence byte for
  // byte; the event trace catches per-measurement divergences even when
  // they cancel out in the end state; the round histories catch
  // ordering/accounting divergences.
  EXPECT_EQ(a.world_json, b.world_json);
  EXPECT_EQ(a.events_json, b.events_json);
  EXPECT_EQ(a.spent, b.spent);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t k = 0; k < a.rounds.size(); ++k) {
    const sim::RoundMetrics& ra = a.rounds[k];
    const sim::RoundMetrics& rb = b.rounds[k];
    EXPECT_EQ(ra.new_measurements, rb.new_measurements) << "round " << k;
    EXPECT_EQ(ra.active_users, rb.active_users) << "round " << k;
    EXPECT_EQ(ra.open_tasks, rb.open_tasks) << "round " << k;
    EXPECT_EQ(ra.dropped_users, rb.dropped_users) << "round " << k;
    EXPECT_EQ(ra.abandoned_tours, rb.abandoned_tours) << "round " << k;
    EXPECT_EQ(ra.lost_measurements, rb.lost_measurements) << "round " << k;
    EXPECT_EQ(ra.payout, rb.payout) << "round " << k;
    EXPECT_EQ(ra.mean_open_reward, rb.mean_open_reward) << "round " << k;
    EXPECT_EQ(ra.wasted_travel, rb.wasted_travel) << "round " << k;
    EXPECT_EQ(ra.user_profit, rb.user_profit) << "round " << k;
  }
}

// The adaptive-budget mechanism is not a MechanismKind (it is our
// extension, built directly); the scenario's budget keeps its Eq. 9 base
// reward positive (1000 / (12*6) - 0.5*4 > 0).
std::unique_ptr<incentive::IncentiveMechanism> make_adaptive() {
  return std::make_unique<incentive::AdaptiveBudgetMechanism>(
      incentive::DemandIndicator::with_paper_defaults(),
      incentive::DemandLevelScale(5), /*budget=*/1000.0, /*lambda=*/0.5);
}

// {fixed, on-demand, steered} x {no faults, faulted} x plan threads {2, 8}
// against the serial plan_threads = 1 run. Steered is intra-round (the knob
// is a documented no-op there) and pins exactly that.
TEST(PlanEquivalence, SerialAndParallelCampaignsBitIdentical) {
  for (const auto kind :
       {incentive::MechanismKind::kFixed, incentive::MechanismKind::kOnDemand,
        incentive::MechanismKind::kSteered}) {
    for (const bool faults : {false, true}) {
      const CampaignRun serial = run_campaign(kind, faults, 1);
      for (const int threads : {2, 8}) {
        SCOPED_TRACE(std::string(incentive::mechanism_name(kind)) +
                     (faults ? "/faults" : "/clean") + "/threads=" +
                     std::to_string(threads));
        expect_bit_identical(serial, run_campaign(kind, faults, threads));
      }
    }
  }
}

TEST(PlanEquivalence, AutoThreadCountBitIdentical) {
  const CampaignRun serial =
      run_campaign(incentive::MechanismKind::kOnDemand, true, 1);
  expect_bit_identical(
      serial, run_campaign(incentive::MechanismKind::kOnDemand, true, 0));
}

// Same plan-thread matrix for the adaptive-budget mechanism (it rides the
// round-granularity planned path like on-demand does).
TEST(PlanEquivalence, AdaptiveBudgetCampaignsBitIdentical) {
  for (const bool faults : {false, true}) {
    const CampaignRun serial = run_campaign(
        incentive::MechanismKind::kOnDemand, faults, 1, make_adaptive());
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(std::string(faults ? "faults" : "clean") +
                   "/threads=" + std::to_string(threads));
      expect_bit_identical(
          serial, run_campaign(incentive::MechanismKind::kOnDemand, faults,
                               threads, make_adaptive()));
    }
  }
}

// A selector that predates the clone() hook: the simulator must fall back
// to serial planning rather than sharing one (non-reentrant) solver across
// workers — and the campaign stays identical.
class UncloneableSelector final : public select::TaskSelector {
 public:
  UncloneableSelector()
      : inner_(select::make_selector(select::SelectorKind::kGreedy, 14)) {}
  const char* name() const override { return "uncloneable"; }
  select::Selection select(
      const select::SelectionInstance& instance) const override {
    return inner_->select(instance);
  }
  // clone() intentionally not overridden: the base returns nullptr.

 private:
  std::unique_ptr<select::TaskSelector> inner_;
};

TEST(PlanEquivalence, SelectorWithoutCloneFallsBackToSerial) {
  auto run = [](int plan_threads) {
    sim::ScenarioParams p;
    p.num_users = 20;
    p.num_tasks = 8;
    p.required_measurements = 4;
    Rng rng(99);
    model::World world = sim::generate_world(p, rng);
    Rng mech_rng = rng.split(0xfeed);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                          world, {}, mech_rng);
    sim::SimulatorParams sp;
    sp.max_rounds = 5;
    sp.plan_threads = plan_threads;
    sim::Simulator s(std::move(world), std::move(mech),
                     std::make_unique<UncloneableSelector>(), sp);
    s.run();
    return sim::world_to_json(s.world()).dump(2);
  };
  EXPECT_EQ(run(1), run(4));
}

// Non-dense user ids: worlds assembled through the mutable users() accessor
// may carry arbitrary ids. step() must index profit rows (and everything
// else) by user *position* — the old id-indexed write ran off the end of
// rm.user_profit for ids >= num_users.
TEST(PlanEquivalence, NonDenseUserIdsProfitRowsByPosition) {
  geo::BoundingBox area{{0.0, 0.0}, {1000.0, 1000.0}};
  model::World world(area, geo::TravelModel{2.0, 0.002}, 500.0);
  world.add_task({100.0, 100.0}, /*deadline=*/5, /*required=*/3);
  world.add_task({900.0, 900.0}, 5, 3);
  world.users().emplace_back(UserId{70}, geo::Point{120.0, 120.0}, 600.0);
  world.users().emplace_back(UserId{10}, geo::Point{880.0, 880.0}, 600.0);
  world.users().emplace_back(UserId{55}, geo::Point{500.0, 500.0}, 600.0);
  for (model::User& u : world.users()) u.return_home();

  Rng mech_rng(1);
  auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                        world, {}, mech_rng);
  auto selector = select::make_selector(select::SelectorKind::kGreedy, 14);
  sim::SimulatorParams sp;
  sp.max_rounds = 3;
  sim::Simulator s(std::move(world), std::move(mech), std::move(selector),
                   sp);
  const sim::RoundMetrics& rm = s.step();
  ASSERT_EQ(rm.user_profit.size(), 3u);
  // Each profit row matches its position's user (round 1 profit == lifetime
  // profit after one round), not its id.
  for (std::size_t pos = 0; pos < 3; ++pos) {
    EXPECT_DOUBLE_EQ(rm.user_profit[pos],
                     s.world().users()[pos].total_profit())
        << "position " << pos;
  }
  EXPECT_GT(rm.active_users, 0);
}

// Reference oracle: steered with the incremental path disabled — reprice
// always recomputes in full, exactly what the pre-optimization simulator
// did before every session.
class FullRepriceSteered final : public incentive::SteeredMechanism {
 public:
  using incentive::SteeredMechanism::SteeredMechanism;
  void reprice(const model::World& world, Round k,
               const std::vector<std::size_t>& dirty_tasks) override {
    (void)dirty_tasks;
    update_rewards(world, k);
  }
};

// The reprice-sharding contract: {fixed, on-demand, steered, adaptive} x
// {clean, faulted} campaigns are bit-identical at reprice worker counts
// {2, 8, auto} against the serial run — end world JSON, full event trace,
// per-round metrics and the exact budget doubles. On-demand and adaptive
// exercise the fused sharded sweep (adaptive through the journal-consuming
// path); fixed ignores the workers; steered pins that intra-round
// mechanisms only see the pool at their round-start publish while the
// per-session reprices stay serial.
TEST(RepriceEquivalence, CampaignsBitIdenticalAtAnyWorkerCount) {
  for (const bool faults : {false, true}) {
    for (const auto kind :
         {incentive::MechanismKind::kFixed, incentive::MechanismKind::kOnDemand,
          incentive::MechanismKind::kSteered}) {
      const CampaignRun serial = run_campaign(kind, faults, 1, nullptr, 1);
      for (const int workers : {2, 8, 0}) {
        SCOPED_TRACE(std::string(incentive::mechanism_name(kind)) +
                     (faults ? "/faults" : "/clean") + "/reprice_threads=" +
                     std::to_string(workers));
        expect_bit_identical(serial,
                             run_campaign(kind, faults, 1, nullptr, workers));
      }
    }
    const CampaignRun serial = run_campaign(incentive::MechanismKind::kOnDemand,
                                            faults, 1, make_adaptive(), 1);
    for (const int workers : {2, 8, 0}) {
      SCOPED_TRACE(std::string("on-demand-adaptive") +
                   (faults ? "/faults" : "/clean") + "/reprice_threads=" +
                   std::to_string(workers));
      expect_bit_identical(serial,
                           run_campaign(incentive::MechanismKind::kOnDemand,
                                        faults, 1, make_adaptive(), workers));
    }
  }
}

TEST(RepriceEquivalence, SteeredIncrementalMatchesFullRecompute) {
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faults" : "clean");
    const CampaignRun incremental = run_campaign(
        incentive::MechanismKind::kSteered, faults, 1,
        std::make_unique<incentive::SteeredMechanism>(0.5, 10.0, 0.2));
    const CampaignRun full = run_campaign(
        incentive::MechanismKind::kSteered, faults, 1,
        std::make_unique<FullRepriceSteered>(0.5, 10.0, 0.2));
    expect_bit_identical(incremental, full);
  }
}

}  // namespace
}  // namespace mcs
