#include "sim/ascii_map.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::sim {
namespace {

model::World map_world() {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  w.add_task({5, 95}, 5, 4);    // top-left, untouched -> '0'
  w.add_task({95, 95}, 5, 2);   // top-right, will complete -> '*'
  w.add_task({5, 5}, 1, 4);     // bottom-left, will expire -> '!'
  w.add_user({50, 50}, 100.0);  // center -> '.'
  w.add_user({50, 50}, 100.0);  // same cell -> ','
  return w;
}

TEST(AsciiMap, GlyphsAndOrientation) {
  model::World w = map_world();
  w.task(1).add_measurement(0, 1, 1.0);
  w.task(1).add_measurement(1, 1, 1.0);  // completed

  AsciiMapOptions opt;
  opt.width = 20;
  opt.height = 10;
  opt.round = 2;  // task 2 (deadline 1) now expired
  const std::string map = render_ascii_map(w, opt);

  const auto lines = [&] {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : map) {
      if (c == '\n') {
        out.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    return out;
  }();
  // Frame: border rows plus content rows plus legend.
  ASSERT_EQ(lines.size(), 10u + 2u + 1u);
  EXPECT_EQ(lines[0], "+" + std::string(20, '-') + "+");
  // Top row holds the fresh task '0' on the left and the completed '*' on
  // the right (y grows upward -> first content line).
  EXPECT_NE(lines[1].find('0'), std::string::npos);
  EXPECT_NE(lines[1].find('*'), std::string::npos);
  // Bottom content line holds the expired task.
  EXPECT_NE(lines[10].find('!'), std::string::npos);
  // Two users in one cell -> ','.
  EXPECT_NE(map.find(','), std::string::npos);
  // Legend present.
  EXPECT_NE(map.find("users:"), std::string::npos);
}

TEST(AsciiMap, ProgressDigits) {
  model::World w(geo::BoundingBox::square(10.0), geo::TravelModel{}, 1.0);
  w.add_task({5, 5}, 9, 10);
  for (int u = 0; u < 7; ++u) w.task(0).add_measurement(u, 1, 0.1);
  AsciiMapOptions opt;
  opt.width = 5;
  opt.height = 5;
  opt.legend = false;
  const std::string map = render_ascii_map(w, opt);
  EXPECT_NE(map.find('7'), std::string::npos);  // 7/10 progress
}

TEST(AsciiMap, LeastCompleteTaskWinsSharedCell) {
  model::World w(geo::BoundingBox::square(10.0), geo::TravelModel{}, 1.0);
  w.add_task({5, 5}, 9, 2);
  w.add_task({5.1, 5.0}, 9, 2);  // same cell at width 4
  w.task(0).add_measurement(0, 1, 0.1);  // 50%
  AsciiMapOptions opt;
  opt.width = 4;
  opt.height = 4;
  opt.legend = false;
  const std::string map = render_ascii_map(w, opt);
  EXPECT_NE(map.find('0'), std::string::npos);  // the untouched one shows
  EXPECT_EQ(map.find('5'), std::string::npos);
}

TEST(AsciiMap, RejectsTinyCanvas) {
  const model::World w = map_world();
  AsciiMapOptions opt;
  opt.width = 2;
  EXPECT_THROW(render_ascii_map(w, opt), Error);
}

}  // namespace
}  // namespace mcs::sim
