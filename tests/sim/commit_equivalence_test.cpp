// The buffered commit pipeline's contract (sim/commit.h): campaigns
// committed through the walk/merge/apply pipeline are bit-identical to the
// legacy one-user-at-a-time serial commit (SimulatorParams::legacy_commit)
// — spend down to the budget tracker's compensation word, deliveries,
// per-task measurement order, the event trace and every round metric — at
// any shard or plan-thread count. Runs under TSan in tier-1: phase A walks
// and the phase C row apply are concurrent regions over the world's stores.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "incentive/mechanism.h"
#include "model/world.h"
#include "select/selector.h"
#include "sim/event_log.h"
#include "sim/mobility.h"
#include "sim/scenario.h"
#include "sim/serialize.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

FaultPlan stress_faults() {
  FaultPlan f;
  f.dropout_prob = 0.15;
  f.abandon_prob = 0.2;
  f.upload_loss_prob = 0.1;
  f.corruption_prob = 0.1;
  f.seed = 7;
  return f;
}

struct RunKnobs {
  incentive::MechanismKind kind = incentive::MechanismKind::kOnDemand;
  select::SelectorKind selector = select::SelectorKind::kDp;
  bool faults = false;
  bool legacy_commit = false;
  int shards = 0;
  int plan_threads = 1;
};

ScenarioParams scenario() {
  ScenarioParams p;
  p.num_users = 30;
  p.num_tasks = 12;
  p.required_measurements = 6;
  return p;
}

struct CampaignRun {
  std::vector<RoundMetrics> rounds;
  Money spent = 0.0;
  Money spent_raw = 0.0;
  Money spent_comp = 0.0;
  std::string world_json;
  std::string events_json;
};

CampaignRun finish(const Simulator& s) {
  CampaignRun out;
  out.rounds = s.history();
  out.spent = s.budget().spent();
  // The raw Neumaier words, not just their sum: the merge must reproduce
  // the exact accumulation order, and these two words are its witnesses.
  out.spent_raw = s.budget().spent_raw();
  out.spent_comp = s.budget().compensation();
  out.world_json = world_to_json(s.world()).dump(2);
  out.events_json = events_to_json(s.events()).dump();
  return out;
}

CampaignRun run_campaign(const RunKnobs& k) {
  Rng rng(4242);
  model::World world = generate_world(scenario(), rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = incentive::make_mechanism(k.kind, world, {}, mech_rng);
  auto selector = select::make_selector(k.selector, 14);
  SimulatorParams sp;
  sp.max_rounds = 8;
  sp.shards = k.shards;
  sp.plan_threads = k.plan_threads;
  sp.legacy_commit = k.legacy_commit;
  sp.record_events = true;  // pins the event-trace order, not just totals
  if (k.faults) sp.faults = stress_faults();
  Simulator s(std::move(world), std::move(mechanism), std::move(selector),
              sp);
  s.run();
  return finish(s);
}

void expect_bit_identical(const CampaignRun& a, const CampaignRun& b) {
  EXPECT_EQ(a.world_json, b.world_json);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.spent_raw, b.spent_raw);
  EXPECT_EQ(a.spent_comp, b.spent_comp);
  EXPECT_EQ(a.events_json, b.events_json);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t k = 0; k < a.rounds.size(); ++k) {
    EXPECT_EQ(rounds_to_json({a.rounds[k]}).dump(),
              rounds_to_json({b.rounds[k]}).dump())
        << "round " << k;
  }
}

// {fixed, on-demand, steered} x {clean, faulted} x shards {0, 1, 2, 8,
// auto}: the buffered commit against the legacy serial commit on the same
// configuration. Steered is intra-round — both runs take the per-session
// commit there, pinning that legacy_commit is a documented no-op.
TEST(CommitEquivalence, BufferedCommitMatchesLegacySerialBitIdentical) {
  for (const auto kind :
       {incentive::MechanismKind::kFixed, incentive::MechanismKind::kOnDemand,
        incentive::MechanismKind::kSteered}) {
    for (const bool faults : {false, true}) {
      for (const int shards : {0, 1, 2, 8, SimulatorParams::kAutoShards}) {
        SCOPED_TRACE(std::string(incentive::mechanism_name(kind)) +
                     (faults ? "/faults" : "/clean") + "/shards=" +
                     std::to_string(shards));
        RunKnobs k;
        k.kind = kind;
        k.faults = faults;
        k.shards = shards;
        k.legacy_commit = true;
        const CampaignRun legacy = run_campaign(k);
        k.legacy_commit = false;
        expect_bit_identical(legacy, run_campaign(k));
      }
    }
  }
}

// The planned (non-sharded) path with plan workers: phase A fans the walk
// over the plan pool, so the buffered commit must stay bit-identical to the
// serial legacy commit at any plan-thread count.
TEST(CommitEquivalence, PlannedPathParallelWalkMatchesLegacy) {
  for (const bool faults : {false, true}) {
    RunKnobs k;
    k.faults = faults;
    k.legacy_commit = true;
    const CampaignRun legacy = run_campaign(k);
    for (const int plan_threads : {1, 4}) {
      SCOPED_TRACE(std::string(faults ? "faults" : "clean") +
                   "/plan_threads=" + std::to_string(plan_threads));
      k.legacy_commit = false;
      k.plan_threads = plan_threads;
      expect_bit_identical(legacy, run_campaign(k));
    }
  }
}

// Greedy selector coverage: a different plan shape (and thus a different
// leg stream) through the same pipeline.
TEST(CommitEquivalence, GreedySelectorBufferedMatchesLegacy) {
  RunKnobs k;
  k.selector = select::SelectorKind::kGreedy;
  k.faults = true;
  k.shards = 2;
  k.legacy_commit = true;
  const CampaignRun legacy = run_campaign(k);
  k.legacy_commit = false;
  expect_bit_identical(legacy, run_campaign(k));
}

// Sparse user ids: the buffered walk reads ids and state through store
// columns by *position*; ids {70, 10, 55} catch any id-as-index slip. Task
// ids stay dense per the repo-wide campaign convention.
TEST(CommitEquivalence, SparseUserIdsBufferedMatchesLegacy) {
  const auto run = [](bool legacy_commit, int shards) {
    geo::BoundingBox area{{0.0, 0.0}, {1000.0, 1000.0}};
    model::World world(area, geo::TravelModel{2.0, 0.002}, 500.0);
    world.add_task({100.0, 100.0}, /*deadline=*/5, /*required=*/2);
    world.add_task({900.0, 900.0}, 5, 2);
    world.add_task({500.0, 480.0}, 5, 2);
    world.users().emplace_back(UserId{70}, geo::Point{120.0, 120.0}, 900.0);
    world.users().emplace_back(UserId{10}, geo::Point{880.0, 880.0}, 900.0);
    world.users().emplace_back(UserId{55}, geo::Point{500.0, 500.0}, 900.0);
    for (model::User& u : world.users()) u.return_home();
    Rng mech_rng(1);
    auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                          world, {}, mech_rng);
    auto selector = select::make_selector(select::SelectorKind::kDp, 14);
    SimulatorParams sp;
    sp.max_rounds = 4;
    sp.shards = shards;
    sp.legacy_commit = legacy_commit;
    sp.record_events = true;
    Simulator s(std::move(world), std::move(mech), std::move(selector), sp);
    s.run();
    return finish(s);
  };
  for (const int shards : {0, 2}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const CampaignRun legacy = run(true, shards);
    EXPECT_GT(legacy.spent, 0.0);
    expect_bit_identical(legacy, run(false, shards));
  }
}

}  // namespace
}  // namespace mcs::sim
