#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace mcs::sim {
namespace {

model::World crafted_world() {
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 100.0);
  w.add_task({0, 0}, 10, 4);    // will be completed
  w.add_task({10, 10}, 10, 4);  // half done
  w.add_task({20, 20}, 10, 4);  // untouched
  w.add_task({30, 30}, 10, 2);  // overfilled (3 of 2)
  for (int u = 0; u < 6; ++u) w.add_user({0, 0}, 100.0);
  for (int u = 0; u < 4; ++u) w.task(0).add_measurement(u, 1, 1.0);
  for (int u = 0; u < 2; ++u) w.task(1).add_measurement(u, 1, 0.5);
  for (int u = 0; u < 3; ++u) w.task(3).add_measurement(u, 1, 2.0);
  return w;
}

TEST(Metrics, Coverage) {
  const model::World w = crafted_world();
  EXPECT_DOUBLE_EQ(coverage_pct(w), 75.0);  // 3 of 4 touched
}

TEST(Metrics, Completeness) {
  const model::World w = crafted_world();
  // useful = 4 + 2 + 0 + 2 = 8; required = 4+4+4+2 = 14.
  EXPECT_NEAR(completeness_pct(w), 100.0 * 8.0 / 14.0, 1e-12);
}

TEST(Metrics, TasksCompleted) {
  const model::World w = crafted_world();
  EXPECT_DOUBLE_EQ(tasks_completed_pct(w), 50.0);  // tasks 0 and 3
}

TEST(Metrics, AvgMeasurementsCapped) {
  const model::World w = crafted_world();
  // capped counts: 4, 2, 0, 2 -> mean 2.
  EXPECT_DOUBLE_EQ(avg_measurements_capped(w), 2.0);
}

TEST(Metrics, VarianceOfCappedCounts) {
  const model::World w = crafted_world();
  // counts 4,2,0,2: mean 2, variance (4+0+4+0)/4 = 2.
  EXPECT_DOUBLE_EQ(measurement_variance(w), 2.0);
}

TEST(Metrics, SummarizeBundlesEverything) {
  const model::World w = crafted_world();
  const CampaignMetrics m = summarize(w, /*total_paid=*/11.0,
                                      /*overdraft=*/0.5);
  EXPECT_DOUBLE_EQ(m.coverage_pct, 75.0);
  EXPECT_DOUBLE_EQ(m.tasks_completed_pct, 50.0);
  EXPECT_DOUBLE_EQ(m.avg_measurements, 2.0);
  EXPECT_DOUBLE_EQ(m.measurement_variance, 2.0);
  EXPECT_DOUBLE_EQ(m.total_paid, 11.0);
  EXPECT_EQ(m.total_measurements, 9);
  EXPECT_NEAR(m.avg_reward_per_measurement, 11.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.budget_overdraft, 0.5);
  EXPECT_EQ(m.per_task_received, (std::vector<int>{4, 2, 0, 3}));
}

TEST(Metrics, EmptyWorldConventions) {
  model::World w(geo::BoundingBox::square(10.0), geo::TravelModel{}, 1.0);
  EXPECT_DOUBLE_EQ(coverage_pct(w), 100.0);
  EXPECT_DOUBLE_EQ(completeness_pct(w), 100.0);
  EXPECT_DOUBLE_EQ(tasks_completed_pct(w), 100.0);
  EXPECT_DOUBLE_EQ(avg_measurements_capped(w), 0.0);
  EXPECT_DOUBLE_EQ(measurement_variance(w), 0.0);
  const CampaignMetrics m = summarize(w, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_reward_per_measurement, 0.0);
}

}  // namespace
}  // namespace mcs::sim
