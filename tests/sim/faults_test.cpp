// The fault-injection layer (sim/faults.h): the injector's draws are pure
// hashes (deterministic, order-free, thread-free), a zero-rate plan is
// byte-for-byte invisible, and the headline degradation story — lost
// uploads re-inflate demand because progress never advances — holds in
// full campaigns.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "exp/runner.h"
#include "sim/simulator.h"

namespace mcs::sim {
namespace {

FaultPlan plan_with(double dropout = 0.0, double abandon = 0.0,
                    double loss = 0.0, double corrupt = 0.0,
                    double withdraw = 0.0, std::uint64_t seed = 7) {
  FaultPlan p;
  p.dropout_prob = dropout;
  p.abandon_prob = abandon;
  p.upload_loss_prob = loss;
  p.corruption_prob = corrupt;
  p.withdraw_prob = withdraw;
  p.seed = seed;
  return p;
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  const FaultPlan p;
  EXPECT_FALSE(p.any());
  EXPECT_NO_THROW(p.validate());
  // seed alone does not arm the injector.
  FaultPlan seeded;
  seeded.seed = 12345;
  EXPECT_FALSE(seeded.any());
}

TEST(FaultPlan, ValidateRejectsOutOfRangeRates) {
  EXPECT_THROW(plan_with(-0.1).validate(), Error);
  EXPECT_THROW(plan_with(0, 1.5).validate(), Error);
  EXPECT_THROW(plan_with(0, 0, 2.0).validate(), Error);
  EXPECT_THROW(plan_with(0, 0, 0, -1.0).validate(), Error);
  EXPECT_THROW(plan_with(0, 0, 0, 0, 1.0001).validate(), Error);
  FaultPlan bad_noise;
  bad_noise.corruption_noise = -0.5;
  EXPECT_THROW(bad_noise.validate(), Error);
  EXPECT_NO_THROW(plan_with(1.0, 1.0, 1.0, 1.0, 1.0).validate());
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires) {
  const FaultInjector never(plan_with(0, 0, 0, 0, 0), /*campaign_seed=*/3);
  const FaultInjector always(plan_with(1, 1, 1, 1, 1), /*campaign_seed=*/3);
  for (UserId u = 0; u < 50; ++u) {
    for (Round k = 1; k <= 20; ++k) {
      EXPECT_FALSE(never.drop_user(u, k));
      EXPECT_TRUE(always.drop_user(u, k));
      EXPECT_FALSE(never.withdraw_task(u, k));
      EXPECT_TRUE(always.withdraw_task(u, k));
      EXPECT_FALSE(never.lose_upload(u, u + 1, k));
      EXPECT_TRUE(always.lose_upload(u, u + 1, k));
      EXPECT_FALSE(never.corrupt_upload(u, u + 1, k));
      EXPECT_TRUE(always.corrupt_upload(u, u + 1, k));
    }
  }
}

TEST(FaultInjector, LegsCompletedBoundsAndNoAbandonIdentity) {
  const FaultInjector clean(plan_with(0, 0), 9);
  const FaultInjector flaky(plan_with(0, 1.0), 9);
  for (UserId u = 0; u < 30; ++u) {
    for (int planned = 1; planned <= 6; ++planned) {
      EXPECT_EQ(clean.legs_completed(u, 4, planned), planned);
      const int walked = flaky.legs_completed(u, 4, planned);
      EXPECT_GE(walked, 0);
      EXPECT_LT(walked, planned) << "abandoned tour must lose >= 1 leg";
    }
  }
  EXPECT_EQ(flaky.legs_completed(0, 1, 0), 0);  // empty tour stays empty
}

TEST(FaultInjector, DrawsArePureFunctionsOfTheCell) {
  const FaultPlan plan = plan_with(0.4, 0.3, 0.2, 0.2, 0.1, /*seed=*/11);
  const FaultInjector a(plan, 77);
  const FaultInjector b(plan, 77);  // independent instance, same identity
  for (UserId u = 0; u < 40; ++u) {
    for (Round k = 1; k <= 10; ++k) {
      EXPECT_EQ(a.drop_user(u, k), b.drop_user(u, k));
      EXPECT_EQ(a.drop_user(u, k), a.drop_user(u, k)) << "re-query changed";
      EXPECT_EQ(a.legs_completed(u, k, 5), b.legs_completed(u, k, 5));
      EXPECT_EQ(a.lose_upload(u, u % 7, k), b.lose_upload(u, u % 7, k));
      EXPECT_EQ(a.corrupt_reading(1.5, u, u % 7, k),
                b.corrupt_reading(1.5, u, u % 7, k));
    }
  }
}

TEST(FaultInjector, PlanSeedAndCampaignSeedBothShiftThePattern) {
  const FaultPlan base = plan_with(0.5, 0, 0, 0, 0, /*seed=*/1);
  FaultPlan reseeded = base;
  reseeded.seed = 2;
  const FaultInjector a(base, 77);
  const FaultInjector b(reseeded, 77);
  const FaultInjector c(base, 78);
  int ab_diff = 0;
  int ac_diff = 0;
  for (UserId u = 0; u < 200; ++u) {
    for (Round k = 1; k <= 10; ++k) {
      ab_diff += a.drop_user(u, k) != b.drop_user(u, k);
      ac_diff += a.drop_user(u, k) != c.drop_user(u, k);
    }
  }
  EXPECT_GT(ab_diff, 0) << "plan seed ignored";
  EXPECT_GT(ac_diff, 0) << "campaign seed ignored";
}

TEST(FaultInjector, DropRateIsRoughlyHonored) {
  const FaultInjector inj(plan_with(0.25), 5);
  int fired = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    fired += inj.drop_user(i % 500, 1 + i / 500);
  }
  const double rate = static_cast<double>(fired) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjector, CorruptReadingAddsDeterministicNoise) {
  FaultPlan p = plan_with(0, 0, 0, 1.0);
  p.corruption_noise = 2.0;
  const FaultInjector inj(p, 5);
  const double base = 10.0;
  const double corrupted = inj.corrupt_reading(base, 3, 4, 2);
  EXPECT_NE(corrupted, base);
  EXPECT_EQ(corrupted, inj.corrupt_reading(base, 3, 4, 2));
  // Different cells draw different noise.
  EXPECT_NE(corrupted, inj.corrupt_reading(base, 3, 4, 3));
  // Zero noise stddev leaves the reading intact.
  FaultPlan silent = p;
  silent.corruption_noise = 0.0;
  EXPECT_EQ(FaultInjector(silent, 5).corrupt_reading(base, 3, 4, 2), base);
}

// ---------------------------------------------------------------------------
// Campaign-level properties (through the experiment runner).

exp::ExperimentConfig small_config() {
  exp::ExperimentConfig cfg;
  cfg.scenario.num_users = 40;
  cfg.scenario.num_tasks = 10;
  cfg.scenario.required_measurements = 8;
  cfg.repetitions = 4;
  cfg.max_rounds = 10;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.threads = 1;
  return cfg;
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b,
                            const char* what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
}

void expect_aggregate_identical(const exp::AggregateResult& a,
                                const exp::AggregateResult& b) {
  expect_stats_identical(a.coverage, b.coverage, "coverage");
  expect_stats_identical(a.completeness, b.completeness, "completeness");
  expect_stats_identical(a.total_paid, b.total_paid, "total_paid");
  expect_stats_identical(a.reward_gini, b.reward_gini, "reward_gini");
  expect_stats_identical(a.active_fraction, b.active_fraction,
                         "active_fraction");
  expect_stats_identical(a.dropped_users, b.dropped_users, "dropped_users");
  expect_stats_identical(a.abandoned_tours, b.abandoned_tours,
                         "abandoned_tours");
  expect_stats_identical(a.lost_measurements, b.lost_measurements,
                         "lost_measurements");
  expect_stats_identical(a.wasted_travel, b.wasted_travel, "wasted_travel");
  ASSERT_EQ(a.round_new_measurements.size(), b.round_new_measurements.size());
  for (std::size_t k = 0; k < a.round_new_measurements.size(); ++k) {
    expect_stats_identical(a.round_new_measurements[k],
                           b.round_new_measurements[k], "round_new");
    expect_stats_identical(a.round_completeness[k], b.round_completeness[k],
                           "round_completeness");
    expect_stats_identical(a.round_mean_reward[k], b.round_mean_reward[k],
                           "round_mean_reward");
  }
}

TEST(FaultedCampaign, ZeroRatePlanIsByteInvisibleWhateverItsSeed) {
  const exp::AggregateResult base = run_experiment(small_config());
  exp::ExperimentConfig seeded = small_config();
  seeded.faults.seed = 0xdeadbeef;  // armed seed, zero rates
  expect_aggregate_identical(base, run_experiment(seeded));
}

TEST(FaultedCampaign, FaultedAggregateBitIdenticalAcrossThreadCounts) {
  exp::ExperimentConfig serial = small_config();
  serial.faults = plan_with(0.2, 0.15, 0.2, 0.1, 0.05);
  exp::ExperimentConfig threaded = serial;
  threaded.threads = 8;
  expect_aggregate_identical(run_experiment(serial), run_experiment(threaded));
}

TEST(FaultedCampaign, FullDropoutIdlesEveryWorker) {
  exp::ExperimentConfig cfg = small_config();
  cfg.repetitions = 1;
  cfg.faults = plan_with(/*dropout=*/1.0);
  const exp::RepetitionResult rep =
      run_repetition(cfg, repetition_seed(cfg, 0));
  EXPECT_EQ(rep.campaign.total_measurements, 0);
  EXPECT_EQ(rep.campaign.total_paid, 0.0);
  EXPECT_EQ(rep.campaign.dropped_user_rounds,
            static_cast<int>(rep.rounds.size()) * cfg.scenario.num_users);
  for (const RoundMetrics& rm : rep.rounds) {
    EXPECT_EQ(rm.active_users, 0);
    EXPECT_EQ(rm.dropped_users, cfg.scenario.num_users);
  }
}

TEST(FaultedCampaign, FullUploadLossEarnsNothingAndAdvancesNothing) {
  exp::ExperimentConfig cfg = small_config();
  cfg.repetitions = 1;
  cfg.faults = plan_with(0, 0, /*loss=*/1.0);
  const exp::RepetitionResult rep =
      run_repetition(cfg, repetition_seed(cfg, 0));
  EXPECT_EQ(rep.campaign.total_measurements, 0);
  EXPECT_EQ(rep.campaign.total_paid, 0.0);
  EXPECT_EQ(rep.campaign.completeness_pct, 0.0);
  EXPECT_GT(rep.campaign.lost_measurements, 0);
  EXPECT_GT(rep.campaign.wasted_travel, 0.0);
  // Workers still walked (and paid) for tours whose uploads vanished.
  bool someone_lost_money = false;
  for (const RoundMetrics& rm : rep.rounds) {
    for (const Money p : rm.user_profit) someone_lost_money |= p < 0.0;
  }
  EXPECT_TRUE(someone_lost_money);
}

TEST(FaultedCampaign, FullWithdrawalPublishesNoTasks) {
  exp::ExperimentConfig cfg = small_config();
  cfg.repetitions = 1;
  cfg.faults = plan_with(0, 0, 0, 0, /*withdraw=*/1.0);
  const exp::RepetitionResult rep =
      run_repetition(cfg, repetition_seed(cfg, 0));
  EXPECT_EQ(rep.campaign.total_measurements, 0);
  EXPECT_GT(rep.campaign.withdrawn_task_rounds, 0);
  for (const RoundMetrics& rm : rep.rounds) {
    // Every task the round would have published got glitched out (only
    // tasks that are open — unexpired with a positive reward — count as
    // withdrawable), so nothing is selectable and nothing is sensed.
    EXPECT_EQ(rm.open_tasks, 0);
    EXPECT_EQ(rm.new_measurements, 0);
    EXPECT_EQ(rm.active_users, 0);
  }
}

TEST(FaultedCampaign, LostUploadsReInflateOnDemandRewards) {
  // The degradation story: with the on-demand mechanism, lost uploads leave
  // pi_i behind, the stateless demand indicator keeps demand (hence the
  // published reward) high, while a clean campaign's progress deflates it.
  exp::ExperimentConfig clean = small_config();
  clean.repetitions = 1;
  exp::ExperimentConfig lossy = clean;
  lossy.faults = plan_with(0, 0, /*loss=*/1.0);
  const exp::RepetitionResult clean_rep =
      run_repetition(clean, repetition_seed(clean, 0));
  const exp::RepetitionResult lossy_rep =
      run_repetition(lossy, repetition_seed(lossy, 0));
  ASSERT_GE(clean_rep.rounds.size(), 3u);
  ASSERT_GE(lossy_rep.rounds.size(), 3u);
  // Round 1 prices are identical (no history yet, same world).
  EXPECT_EQ(clean_rep.rounds[0].mean_open_reward,
            lossy_rep.rounds[0].mean_open_reward);
  // By round 3 the lossy campaign pays strictly more per open task.
  EXPECT_GT(lossy_rep.rounds[2].mean_open_reward,
            clean_rep.rounds[2].mean_open_reward);
}

TEST(FaultedCampaign, EventTraceFlagsLostAndCorruptedUploads) {
  exp::ExperimentConfig cfg = small_config();
  cfg.faults = plan_with(0, 0, /*loss=*/0.4, /*corrupt=*/0.4);
  Rng rng(repetition_seed(cfg, 0));
  model::World world = generate_world(cfg.scenario, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = incentive::make_mechanism(cfg.mechanism, world,
                                             cfg.mech_params, mech_rng);
  SimulatorParams sp;
  sp.max_rounds = cfg.max_rounds;
  sp.platform_budget = cfg.mech_params.platform_budget;
  sp.order_seed = repetition_seed(cfg, 0) ^ 0x5bd1e995;
  sp.record_events = true;
  sp.faults = cfg.faults;
  Simulator simulator(std::move(world), std::move(mechanism),
                      select::make_selector(cfg.selector, cfg.dp_candidate_cap),
                      sp);
  const CampaignMetrics m = simulator.run();
  ASSERT_GT(m.lost_measurements, 0);
  ASSERT_GT(m.corrupted_measurements, 0);
  long long lost = 0;
  long long corrupted = 0;
  for (const SensingEvent& e : simulator.events().events()) {
    if (!e.accepted) {
      ++lost;
      EXPECT_EQ(e.reward, 0.0) << "lost uploads must not be paid";
    }
    corrupted += e.corrupted;
  }
  EXPECT_EQ(lost, m.lost_measurements);
  EXPECT_EQ(corrupted, m.corrupted_measurements);
  EXPECT_EQ(static_cast<long long>(simulator.events().accepted_events().size()),
            m.total_measurements);
}

}  // namespace
}  // namespace mcs::sim
