#include "sim/event_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mcs::sim {
namespace {

TEST(EventLog, DisabledLogRecordsNothing) {
  EventLog log(false);
  log.record({1, 0, 0, 1.0, 10.0});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.enabled());
}

TEST(EventLog, EnabledLogKeepsOrder) {
  EventLog log(true);
  log.record({1, 10, 3, 1.5, 100.0});
  log.record({1, 11, 3, 1.5, 50.0});
  log.record({2, 10, 4, 2.0, 75.0});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].user, 10);
  EXPECT_EQ(log.events()[1].user, 11);
  EXPECT_EQ(log.events()[2].round, 2);
}

TEST(EventLog, RoundFilter) {
  EventLog log(true);
  log.record({1, 0, 0, 1.0, 1.0});
  log.record({2, 1, 1, 1.0, 1.0});
  log.record({2, 2, 2, 1.0, 1.0});
  EXPECT_EQ(log.round_events(1).size(), 1u);
  EXPECT_EQ(log.round_events(2).size(), 2u);
  EXPECT_TRUE(log.round_events(3).empty());
}

TEST(EventLog, CsvDump) {
  EventLog log(true);
  log.record({1, 5, 7, 1.25, 42.5});
  std::ostringstream os;
  log.write_csv(os);
  EXPECT_EQ(os.str(), "round,user,task,reward,leg_distance\n1,5,7,1.2500,42.50\n");
}

}  // namespace
}  // namespace mcs::sim
