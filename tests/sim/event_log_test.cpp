#include "sim/event_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mcs::sim {
namespace {

TEST(EventLog, DisabledLogRecordsNothing) {
  EventLog log(false);
  log.record({1, 0, 0, 1.0, 10.0});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.enabled());
}

TEST(EventLog, EnabledLogKeepsOrder) {
  EventLog log(true);
  log.record({1, 10, 3, 1.5, 100.0});
  log.record({1, 11, 3, 1.5, 50.0});
  log.record({2, 10, 4, 2.0, 75.0});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].user, 10);
  EXPECT_EQ(log.events()[1].user, 11);
  EXPECT_EQ(log.events()[2].round, 2);
}

TEST(EventLog, RoundFilter) {
  EventLog log(true);
  log.record({1, 0, 0, 1.0, 1.0});
  log.record({2, 1, 1, 1.0, 1.0});
  log.record({2, 2, 2, 1.0, 1.0});
  EXPECT_EQ(log.round_events(1).size(), 1u);
  EXPECT_EQ(log.round_events(2).size(), 2u);
  EXPECT_TRUE(log.round_events(3).empty());
}

TEST(EventLog, CsvDump) {
  EventLog log(true);
  log.record({1, 5, 7, 1.25, 42.5});
  log.record({2, 6, 8, 0.0, 10.0, /*accepted=*/false});
  log.record({2, 6, 9, 2.0, 5.0, /*accepted=*/true, /*corrupted=*/true});
  std::ostringstream os;
  log.write_csv(os);
  EXPECT_EQ(os.str(),
            "round,user,task,reward,leg_distance,accepted,corrupted\n"
            "1,5,7,1.2500,42.50,1,0\n"
            "2,6,8,0.0000,10.00,0,0\n"
            "2,6,9,2.0000,5.00,1,1\n");
}

TEST(EventLog, EventsDefaultToAcceptedAndClean) {
  EventLog log(true);
  log.record({1, 5, 7, 1.25, 42.5});
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.events()[0].accepted);
  EXPECT_FALSE(log.events()[0].corrupted);
}

TEST(EventLog, AcceptedEventsFiltersLostUploads) {
  EventLog log(true);
  log.record({1, 0, 0, 1.0, 1.0});
  log.record({1, 1, 0, 0.0, 1.0, /*accepted=*/false});
  log.record({2, 2, 1, 1.0, 1.0});
  const auto accepted = log.accepted_events();
  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_EQ(accepted[0].user, 0);
  EXPECT_EQ(accepted[1].user, 2);
  // The raw log keeps every attempt for replay.
  EXPECT_EQ(log.size(), 3u);
}

}  // namespace
}  // namespace mcs::sim
